/**
 * @file
 * Memory access coalescing: collapse the per-thread addresses of one
 * warp memory instruction into the minimal set of 128B line
 * transactions, as Fermi's LD/ST unit does.
 */

#ifndef DACSIM_MEM_COALESCER_H
#define DACSIM_MEM_COALESCER_H

#include <algorithm>
#include <array>
#include <vector>

#include "common/types.h"

namespace dacsim
{

/**
 * Compute the unique cache-line addresses touched by a warp access.
 *
 * @param addrs      per-lane byte addresses (only active lanes read).
 * @param active     lane activity mask.
 * @param accessSize bytes accessed per lane (an access spanning a line
 *                   boundary contributes both lines).
 * @return sorted unique line addresses.
 */
inline std::vector<Addr>
coalesce(const std::array<Addr, warpSize> &addrs, ThreadMask active,
         int access_size)
{
    std::vector<Addr> lines;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(active >> lane & 1))
            continue;
        Addr first = lineAlign(addrs[lane]);
        Addr last = lineAlign(addrs[lane] + access_size - 1);
        lines.push_back(first);
        if (last != first)
            lines.push_back(last);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

} // namespace dacsim

#endif // DACSIM_MEM_COALESCER_H
