/**
 * @file
 * Memory access coalescing: collapse the per-thread addresses of one
 * warp memory instruction into the minimal set of 128B line
 * transactions, as Fermi's LD/ST unit does.
 *
 * coalesce() runs once per issued global memory instruction and per
 * AEU record expansion, so it is one of the simulator's hottest paths.
 * The result set is bounded by the warp geometry (each of the 32 lanes
 * contributes at most two lines), which lets the whole computation run
 * in a fixed std::array scratch with insertion-dedup — no heap
 * allocation, no sort.
 */

#ifndef DACSIM_MEM_COALESCER_H
#define DACSIM_MEM_COALESCER_H

#include <array>
#include <cstddef>

#include "common/log.h"
#include "common/types.h"

namespace dacsim
{

/**
 * The sorted-unique line addresses of one warp access. Fixed-capacity
 * (2 lines per lane is the hardware bound); iterable like a container.
 */
class LineSet
{
  public:
    using value_type = Addr;
    using const_iterator = const Addr *;

    const_iterator begin() const { return lines_.data(); }
    const_iterator end() const { return lines_.data() + count_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    Addr operator[](std::size_t i) const { return lines_[i]; }

    /** Insert keeping the set sorted and duplicate-free. */
    void
    insert(Addr line)
    {
        // Warp accesses are overwhelmingly ascending: check the tail
        // first so unit-stride patterns are O(1) appends.
        if (count_ == 0 || line > lines_[count_ - 1]) {
            ensure(count_ < lines_.size(), "line set overflow");
            lines_[count_++] = line;
            return;
        }
        std::size_t pos = count_;
        while (pos > 0 && lines_[pos - 1] > line)
            --pos;
        if (pos > 0 && lines_[pos - 1] == line)
            return; // duplicate
        ensure(count_ < lines_.size(), "line set overflow");
        for (std::size_t i = count_; i > pos; --i)
            lines_[i] = lines_[i - 1];
        lines_[pos] = line;
        ++count_;
    }

  private:
    std::array<Addr, 2 * warpSize> lines_{};
    std::size_t count_ = 0;
};

/**
 * Compute the unique cache-line addresses touched by a warp access.
 *
 * @param addrs      per-lane byte addresses (only active lanes read).
 * @param active     lane activity mask.
 * @param accessSize bytes accessed per lane (an access spanning a line
 *                   boundary contributes both lines).
 * @return sorted unique line addresses.
 */
inline LineSet
coalesce(const std::array<Addr, warpSize> &addrs, ThreadMask active,
         int access_size)
{
    LineSet lines;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(active >> lane & 1))
            continue;
        Addr first = lineAlign(addrs[static_cast<std::size_t>(lane)]);
        Addr last = lineAlign(addrs[static_cast<std::size_t>(lane)] +
                              access_size - 1);
        lines.insert(first);
        if (last != first)
            lines.insert(last);
    }
    // Everything downstream (MSHR merge, AEU locking, replay resume)
    // assumes a sorted duplicate-free transaction list.
    for (std::size_t i = 1; i < lines.size(); ++i)
        ensure(lines[i - 1] < lines[i], "coalesce output not sorted-unique");
    return lines;
}

} // namespace dacsim

#endif // DACSIM_MEM_COALESCER_H
