#include "mem/mem_system.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "obs/collector.h"
#include "sim/audit.h"

namespace dacsim
{

namespace
{

const char *
requesterName(Requester req)
{
    switch (req) {
      case Requester::Demand:
        return "demand";
      case Requester::DacEarly:
        return "dac-early";
      case Requester::Prefetch:
        return "prefetch";
    }
    return "?";
}

} // namespace

MemorySystem::MemorySystem(const GpuConfig &cfg, RunStats *stats)
    : cfg_(cfg), stats_(stats)
{
    ensure(stats_ != nullptr, "MemorySystem needs a stats sink");
    sms_.reserve(cfg.numSms);
    for (int i = 0; i < cfg.numSms; ++i)
        sms_.emplace_back(cfg.l1);
    // Partition the L2 capacity across the memory partitions.
    CacheConfig slice = cfg.l2;
    slice.sizeBytes = cfg.l2.sizeBytes / cfg.dram.partitions;
    // Round the slice down to a power-of-two set count.
    int sets = 1;
    while (sets * 2 <= slice.numSets())
        sets *= 2;
    slice.sizeBytes = sets * slice.ways * lineSizeBytes;
    for (int p = 0; p < cfg.dram.partitions; ++p)
        l2_.emplace_back(slice);
    dramNextFree_.assign(cfg.dram.partitions, 0);
}

int
MemorySystem::partitionOf(Addr line_addr) const
{
    return static_cast<int>((line_addr / lineSizeBytes) %
                            cfg_.dram.partitions);
}

void
MemorySystem::MshrTable::insert(Addr line, Cycle ready, Cycle now)
{
    cacheUntil = 0; // live set changes: invalidate the count cache
    Slot *dead = nullptr;
    for (Slot &s : slots) {
        if (s.ready > now) {
            if (s.line == line) {
                // A re-miss of a line whose reservation was evicted
                // while in flight: assignment semantics, one entry.
                s.ready = ready;
                return;
            }
        } else if (dead == nullptr) {
            dead = &s;
        }
    }
    ensure(dead != nullptr, "MSHR insert without a free slot");
    dead->line = line;
    dead->ready = ready;
}

Cycle
MemorySystem::l2Access(Addr line_addr, Cycle arrive, bool is_store)
{
    int p = partitionOf(line_addr);
    TagArray &l2 = l2_[p];
    if (l2.access(line_addr)) {
        ++stats_->l2Hits;
        return arrive + cfg_.l2.hitLatency;
    }
    ++stats_->l2Misses;
    ++stats_->dramAccesses;
    Cycle start = std::max(arrive + static_cast<Cycle>(cfg_.l2.hitLatency),
                           dramNextFree_[p]);
    dramNextFree_[p] = start + cfg_.dram.cyclesPerLine;
    Cycle ready = start + cfg_.dram.latency;
    if (faults_) {
        // Injected DRAM latency spike/jitter (deterministic in the
        // plan seed, the line address, and the arrival cycle).
        Cycle extra = faults_->dramJitter(line_addr, arrive);
        if (extra > 0) {
            ready += extra;
            ++stats_->faultsInjected;
        }
    }
    // Reserve the L2 line now; data logically arrives at `ready`.
    if (!is_store)
        l2.fill(line_addr);
    return ready;
}

int
MemorySystem::mshrCapacity(int sm_id, Cycle now) const
{
    int cap = cfg_.l1.mshrs;
    if (faults_) {
        int stolen = faults_->stolenMshrs(sm_id, now);
        if (stolen > 0) {
            cap = std::max(0, cap - stolen);
            ++stats_->faultsInjected;
        }
    }
    return cap;
}

int
MemorySystem::freeMshrs(int sm_id, Cycle now)
{
    if (cfg_.perfectMemory)
        return cfg_.l1.mshrs;
    const SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    return mshrCapacity(sm_id, now) -
           (sm.outstanding.live(now) + sm.pfOutstanding.live(now));
}

bool
MemorySystem::linePresent(int sm_id, Addr line_addr) const
{
    if (cfg_.perfectMemory)
        return true;
    // find() does not update recency, so this is a pure probe.
    auto &sm = const_cast<SmState &>(
        sms_[static_cast<std::size_t>(sm_id)]);
    return sm.l1.find(line_addr) != nullptr;
}

AccessResult
MemorySystem::load(int sm_id, Addr line_addr, Cycle now, Requester req)
{
    AccessResult res = loadImpl(sm_id, line_addr, now, req);
    // Accepted transactions become chrome-trace lifetime spans
    // [now, ready] (DESIGN.md §11); rejections retry and re-report.
    if (obs_ != nullptr && res.accepted)
        obs_->memRequest(sm_id, line_addr, now, res.ready,
                         requesterName(req), res.l1Hit);
    return res;
}

AccessResult
MemorySystem::loadImpl(int sm_id, Addr line_addr, Cycle now, Requester req)
{
    ensure(line_addr % lineSizeBytes == 0, "unaligned line address");
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    AccessResult res;

    if (cfg_.perfectMemory) {
        res.accepted = true;
        res.l1Hit = true;
        res.ready = now + cfg_.l1.hitLatency;
        ++stats_->l1Hits;
        return res;
    }

    // L1 probe. A tag hit whose fill is still in flight behaves as an
    // MSHR merge: the access completes when the original fill does.
    if (sm.l1.access(line_addr)) {
        res.accepted = true;
        if (const auto *mshr = sm.outstanding.find(line_addr, now)) {
            res.ready = std::max(mshr->ready,
                                 now + static_cast<Cycle>(
                                           cfg_.l1.hitLatency));
        } else {
            res.l1Hit = true;
            res.ready = now + cfg_.l1.hitLatency;
            ++stats_->l1Hits;
        }
        return res;
    }

    // Prefetch buffer probe (MTA) for demand accesses.
    if (req == Requester::Demand && sm.pfBuffer) {
        if (sm.pfBuffer->access(line_addr)) {
            res.accepted = true;
            const auto *mshr = sm.pfOutstanding.find(line_addr, now);
            res.ready = mshr != nullptr
                            ? std::max(mshr->ready,
                                       now + static_cast<Cycle>(
                                                 cfg_.l1.hitLatency))
                            : now + cfg_.l1.hitLatency + 1;
            ++stats_->prefetchHits;
            return res;
        }
    }

    // True miss: need a free MSHR (shared with in-flight prefetches).
    if (sm.outstanding.live(now) + sm.pfOutstanding.live(now) >=
        mshrCapacity(sm_id, now)) {
        return res; // not accepted; requester retries
    }

    ++stats_->l1Misses;
    Cycle ready = l2Access(line_addr, now + cfg_.nocLatency, false) +
                  cfg_.nocLatency;
    sm.outstanding.insert(line_addr, ready, now);
    // Reserve the L1 line at request time (fill-on-miss). If every way
    // of the set is locked the refill bypasses L1, which is safe: the
    // data goes straight to the requester.
    sm.l1.fill(line_addr);
    res.accepted = true;
    res.ready = ready;
    return res;
}

void
MemorySystem::store(int sm_id, Addr line_addr, Cycle now)
{
    if (cfg_.perfectMemory)
        return;
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    // L1 is write-through / no-allocate: update recency if present.
    sm.l1.access(line_addr);
    // L2 is write-allocate; misses consume DRAM bandwidth.
    int p = partitionOf(line_addr);
    if (!l2_[p].access(line_addr)) {
        ++stats_->l2Misses;
        ++stats_->dramAccesses;
        Cycle start = std::max(now + static_cast<Cycle>(cfg_.nocLatency),
                               dramNextFree_[p]);
        dramNextFree_[p] = start + cfg_.dram.cyclesPerLine;
        l2_[p].fill(line_addr);
    } else {
        ++stats_->l2Hits;
    }
}

bool
MemorySystem::canLock(int sm_id, Addr line_addr, Cycle now)
{
    if (cfg_.perfectMemory)
        return true;
    if (faults_ && faults_->tagLockBlocked(sm_id, now)) {
        ++stats_->faultsInjected;
        return false;
    }
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    TagArray::Line *line = sm.l1.find(line_addr);
    if (line && line->lockCount > 0)
        return true; // already locked; incrementing is always safe
    return !sm.l1.lockSaturated(line_addr);
}

MemorySystem::EarlyFetchProbe
MemorySystem::earlyFetchProbe(int sm_id, Addr line_addr, Cycle now)
{
    if (cfg_.perfectMemory)
        return EarlyFetchProbe::Present;
    if (faults_ && faults_->tagLockBlocked(sm_id, now)) {
        ++stats_->faultsInjected;
        return EarlyFetchProbe::Blocked;
    }
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    TagArray::Line *line = sm.l1.find(line_addr);
    if (line && line->lockCount > 0)
        return EarlyFetchProbe::Present; // locked lines stay lockable
    if (sm.l1.lockSaturated(line_addr))
        return EarlyFetchProbe::Blocked;
    return line ? EarlyFetchProbe::Present : EarlyFetchProbe::NeedsMshr;
}

void
MemorySystem::lock(int sm_id, Addr line_addr)
{
    if (cfg_.perfectMemory)
        return;
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    TagArray::Line *line = sm.l1.find(line_addr);
    if (!line) {
        // The reservation was evicted between request and lock (or the
        // refill bypassed L1); re-establish it.
        auto fill = sm.l1.fill(line_addr);
        line = fill.line;
    }
    if (line)
        ++line->lockCount;
}

void
MemorySystem::unlock(int sm_id, Addr line_addr)
{
    if (cfg_.perfectMemory)
        return;
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    TagArray::Line *line = sm.l1.find(line_addr);
    if (line && line->lockCount > 0) {
        --line->lockCount;
        if (line->lockCount == 0)
            ++sm.unlockEpoch; // set saturation may have cleared
    }
}

void
MemorySystem::enablePrefetchBuffer(const MtaConfig &mta)
{
    CacheConfig buf;
    buf.sizeBytes = mta.bufferBytes;
    buf.ways = 8;
    buf.hitLatency = cfg_.l1.hitLatency;
    for (auto &sm : sms_)
        sm.pfBuffer = std::make_unique<TagArray>(buf);
}

void
MemorySystem::prefetch(int sm_id, Addr line_addr, Cycle now)
{
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    ensure(sm.pfBuffer != nullptr, "prefetch without a buffer");
    if (cfg_.perfectMemory)
        return;
    // Drop redundant prefetches.
    if (sm.l1.find(line_addr) || sm.pfBuffer->find(line_addr))
        return;
    // Prefetches are ordinary memory requests: they compete for the
    // same MSHRs as demand misses and are dropped under pressure.
    if (sm.outstanding.live(now) + sm.pfOutstanding.live(now) >=
        mshrCapacity(sm_id, now)) {
        return;
    }
    ++stats_->prefetchesIssued;
    Cycle ready = l2Access(line_addr, now + cfg_.nocLatency, false) +
                  cfg_.nocLatency;
    sm.pfOutstanding.insert(line_addr, ready, now);
    auto fill = sm.pfBuffer->fill(line_addr);
    if (fill.line)
        fill.line->prefetched = true;
    if (fill.evictedPrefetchedUnused) {
        ++stats_->prefetchUnused;
        ++sm.unusedEvictions;
    }
}

std::uint64_t
MemorySystem::takeUnusedEvictions(int sm_id)
{
    SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    return std::exchange(sm.unusedEvictions, 0);
}

void
MemorySystem::audit(Cycle now) const
{
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        const SmState &sm = sms_[i];
        AuditContext ctx;
        ctx.cycle = now;
        ctx.sm = static_cast<int>(i);

        // MSHR credit conservation: in-flight misses never exceed the
        // architected entry count (fault injection only withholds
        // capacity from *new* misses, it cannot mint extra entries).
        ctx.structure = "mshr";
        int demand = sm.outstanding.live(now);
        int pf = sm.pfOutstanding.live(now);
        auditCheck(demand + pf <= cfg_.l1.mshrs, ctx, "occupancy ",
                   demand, "+", pf, " exceeds ", cfg_.l1.mshrs,
                   " entries");

        // Lock-counter sanity: a lock count on an invalid line means a
        // lock/unlock pairing bug; a whole set locked means the AEU's
        // saturation pre-check was bypassed.
        ctx.structure = "l1-locks";
        for (int set = 0; set < sm.l1.numSets(); ++set) {
            int locked = 0;
            for (int w = 0; w < sm.l1.ways(); ++w) {
                const TagArray::Line &line =
                    sm.l1.lineAt(set, w);
                auditCheck(line.valid || line.lockCount == 0, ctx,
                           "invalid line holds lockCount=",
                           line.lockCount, " (set ", set, " way ", w,
                           ")");
                if (line.valid && line.lockCount > 0)
                    ++locked;
            }
            auditCheck(locked < sm.l1.ways() || sm.l1.ways() == 1, ctx,
                       "every way of set ", set,
                       " is locked: deadlock-avoidance rule violated");
        }
    }
}

void
MemorySystem::reset()
{
    for (auto &sm : sms_) {
        sm.l1.flush();
        sm.outstanding.clear();
        if (sm.pfBuffer)
            sm.pfBuffer->flush();
        sm.pfOutstanding.clear();
        sm.unusedEvictions = 0;
        sm.unlockEpoch = 0;
    }
    for (auto &slice : l2_)
        slice.flush();
    std::fill(dramNextFree_.begin(), dramNextFree_.end(), 0);
}

Cycle
MemorySystem::nextMshrRelease(int sm_id, Cycle now) const
{
    if (cfg_.perfectMemory)
        return now + 1;
    const SmState &sm = sms_[static_cast<std::size_t>(sm_id)];
    return std::min(sm.outstanding.nextRelease(now),
                    sm.pfOutstanding.nextRelease(now));
}

} // namespace dacsim
