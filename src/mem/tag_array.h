/**
 * @file
 * Set-associative cache tag array with LRU replacement and the
 * per-line lock counters DAC adds for its early (non-speculative)
 * loads (paper Section 4.2).
 *
 * Data is not stored here — functional values live in GpuMemory; the
 * tag array provides hit/miss timing and replacement behaviour.
 */

#ifndef DACSIM_MEM_TAG_ARRAY_H
#define DACSIM_MEM_TAG_ARRAY_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "common/types.h"

namespace dacsim
{

class StateIo;

class TagArray
{
  public:
    struct Line
    {
        Addr addr = 0;          ///< line-aligned address
        bool valid = false;
        std::uint64_t lastUse = 0;
        int lockCount = 0;      ///< DAC lock counter (> 0: not evictable)
        bool prefetched = false;
        bool referenced = false;
    };

    explicit TagArray(const CacheConfig &cfg)
        : ways_(cfg.ways), sets_(cfg.numSets()),
          lines_(static_cast<std::size_t>(ways_) * sets_)
    {
        ensure(sets_ > 0, "cache with no sets (size ", cfg.sizeBytes,
               " bytes, ", cfg.ways, " ways)");
    }

    int numSets() const { return sets_; }
    int ways() const { return ways_; }

    int
    setIndex(Addr line_addr) const
    {
        return static_cast<int>((line_addr / lineSizeBytes) %
                                static_cast<Addr>(sets_));
    }

    /** Find a resident line; nullptr on miss. Does not update LRU. */
    Line *
    find(Addr line_addr)
    {
        Line *base = setBase(line_addr);
        for (int w = 0; w < ways_; ++w)
            if (base[w].valid && base[w].addr == line_addr)
                return &base[w];
        return nullptr;
    }

    /** Probe and update recency on hit. */
    Line *
    access(Addr line_addr)
    {
        Line *l = find(line_addr);
        if (l) {
            l->lastUse = ++tick_;
            l->referenced = true;
        }
        return l;
    }

    /** True when the set already holds ways-1 locked lines, so DAC may
     * not lock another (deadlock avoidance, paper Section 4.2). */
    bool
    lockSaturated(Addr line_addr) const
    {
        const Line *base = setBaseConst(line_addr);
        int locked = 0;
        for (int w = 0; w < ways_; ++w)
            if (base[w].valid && base[w].lockCount > 0)
                ++locked;
        return locked >= ways_ - 1;
    }

    struct FillResult
    {
        Line *line = nullptr;     ///< the filled line, or nullptr on failure
        bool evictedValid = false;
        bool evictedPrefetchedUnused = false;
    };

    /**
     * Insert @p line_addr, evicting the LRU unlocked way if needed.
     * Fails (line == nullptr) only when every way is locked.
     */
    FillResult
    fill(Addr line_addr)
    {
        FillResult res;
        Line *base = setBase(line_addr);
        if (Line *hit = find(line_addr)) {
            hit->lastUse = ++tick_;
            res.line = hit;
            return res;
        }
        Line *victim = nullptr;
        for (int w = 0; w < ways_; ++w) {
            Line &l = base[w];
            if (!l.valid) {
                victim = &l;
                break;
            }
            if (l.lockCount > 0)
                continue;
            if (!victim || l.lastUse < victim->lastUse)
                victim = &l;
        }
        if (!victim)
            return res; // all ways locked
        if (victim->valid) {
            res.evictedValid = true;
            res.evictedPrefetchedUnused =
                victim->prefetched && !victim->referenced;
        }
        *victim = Line{};
        victim->addr = line_addr;
        victim->valid = true;
        victim->lastUse = ++tick_;
        res.line = victim;
        return res;
    }

    /** Invalidate every line (between kernel launches in tests). */
    void
    flush()
    {
        for (Line &l : lines_)
            l = Line{};
    }

    /** Direct line inspection (auditors / diagnostics only). */
    const Line &
    lineAt(int set, int way) const
    {
        return lines_[static_cast<std::size_t>(set) * ways_ +
                      static_cast<std::size_t>(way)];
    }

    /** Total locked lines (diagnostics). */
    int
    lockedLines() const
    {
        int n = 0;
        for (const Line &l : lines_)
            if (l.valid && l.lockCount > 0)
                ++n;
        return n;
    }

  private:
    friend class StateIo;

    int ways_;
    int sets_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;

    Line *
    setBase(Addr line_addr)
    {
        return &lines_[static_cast<std::size_t>(setIndex(line_addr)) *
                       ways_];
    }

    const Line *
    setBaseConst(Addr line_addr) const
    {
        return &lines_[static_cast<std::size_t>(setIndex(line_addr)) *
                       ways_];
    }
};

} // namespace dacsim

#endif // DACSIM_MEM_TAG_ARRAY_H
