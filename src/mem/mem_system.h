/**
 * @file
 * Timing model of the GPU memory hierarchy.
 *
 * Per-SM L1 caches (with MSHRs and DAC lock counters) in front of a
 * shared, partitioned L2 and a latency+bandwidth DRAM model. The model
 * is analytic: when a line transaction is accepted, its completion
 * cycle is computed from resource availability (per-partition DRAM
 * bandwidth, queue occupancy), and the requester polls for readiness.
 *
 * This reproduces the effects DAC's evaluation depends on — load
 * latency, MSHR limits, bandwidth saturation, cache locality, early
 * non-speculative fetch with line locking — without event-queue
 * machinery. Row-buffer locality and bank conflicts are not modelled
 * (see DESIGN.md).
 */

#ifndef DACSIM_MEM_MEM_SYSTEM_H
#define DACSIM_MEM_MEM_SYSTEM_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/tag_array.h"

namespace dacsim
{

/** Who initiated a memory transaction (for statistics & policies). */
enum class Requester
{
    Demand,    ///< an ordinary warp load
    DacEarly,  ///< the DAC AEU's early fetch (enq.data)
    Prefetch,  ///< the MTA prefetcher
};

struct AccessResult
{
    bool accepted = false;  ///< false: structural hazard, retry later
    Cycle ready = 0;        ///< cycle at which data is available
    bool l1Hit = false;
};

class MemorySystem
{
  public:
    MemorySystem(const GpuConfig &cfg, RunStats *stats);

    /** Issue one 128B-line load transaction for SM @p sm. */
    AccessResult load(int sm, Addr line_addr, Cycle now, Requester req);

    /** Free L1 MSHR entries right now (non-mutating probe). */
    int freeMshrs(int sm, Cycle now);

    /** Is the line resident in the SM's L1 tags? (no LRU update). */
    bool linePresent(int sm, Addr line_addr) const;

    /** Issue one line store transaction (fire-and-forget). */
    void store(int sm, Addr line_addr, Cycle now);

    // ----- DAC line locking (Section 4.2) --------------------------------

    /** May the AEU lock this line without risking deadlock? */
    bool canLock(int sm, Addr line_addr, Cycle now = 0);
    /** Increment the line's lock counter (line must be resident). */
    void lock(int sm, Addr line_addr);
    /** Decrement the lock counter on deq.data. */
    void unlock(int sm, Addr line_addr);

    // ----- MTA prefetch buffer -------------------------------------------

    /** Give each SM a dedicated prefetch buffer (MTA provisioning). */
    void enablePrefetchBuffer(const MtaConfig &mta);
    /** Issue a prefetch into the SM's buffer; may be dropped. */
    void prefetch(int sm, Addr line_addr, Cycle now);
    /** Lines evicted from the buffer unused since last asked (throttle). */
    std::uint64_t takeUnusedEvictions(int sm);

    /** Drop all cached state (between independent runs). */
    void reset();

    /** Install a fault plan consulted by every timing decision
     * (nullptr: fault-free). The plan must outlive the simulation. */
    void setFaultPlan(const FaultPlan *faults) { faults_ = faults; }

    /** Audit credit conservation (MSHR occupancy within capacity,
     * lock counters sane); throws AuditError on violation. */
    void audit(Cycle now) const;

    const TagArray &l1(int sm) const { return sms_[sm].l1; }

  private:
    struct SmState
    {
        TagArray l1;
        /** line -> data-ready cycle, one entry per in-flight MSHR. */
        std::unordered_map<Addr, Cycle> outstanding;
        std::unique_ptr<TagArray> pfBuffer;
        std::unordered_map<Addr, Cycle> pfOutstanding;
        std::uint64_t unusedEvictions = 0;

        explicit SmState(const CacheConfig &c) : l1(c) {}
    };

    const GpuConfig &cfg_;
    RunStats *stats_;
    const FaultPlan *faults_ = nullptr;
    std::vector<SmState> sms_;
    /** One L2 slice per memory partition. */
    std::vector<TagArray> l2_;
    /** Per-partition next-free cycle for line transfers (bandwidth). */
    std::vector<Cycle> dramNextFree_;

    int partitionOf(Addr line_addr) const;
    /** Timing through L2 (+DRAM on miss); returns data-ready cycle. */
    Cycle l2Access(Addr line_addr, Cycle arrive, bool is_store);
    void pruneOutstanding(SmState &sm, Cycle now);
    /** L1 MSHR capacity after fault injection withholds entries. */
    int mshrCapacity(int sm_id, Cycle now) const;
};

} // namespace dacsim

#endif // DACSIM_MEM_MEM_SYSTEM_H
