/**
 * @file
 * Timing model of the GPU memory hierarchy.
 *
 * Per-SM L1 caches (with MSHRs and DAC lock counters) in front of a
 * shared, partitioned L2 and a latency+bandwidth DRAM model. The model
 * is analytic: when a line transaction is accepted, its completion
 * cycle is computed from resource availability (per-partition DRAM
 * bandwidth, queue occupancy), and the requester polls for readiness.
 *
 * This reproduces the effects DAC's evaluation depends on — load
 * latency, MSHR limits, bandwidth saturation, cache locality, early
 * non-speculative fetch with line locking — without event-queue
 * machinery. Row-buffer locality and bank conflicts are not modelled
 * (see DESIGN.md).
 */

#ifndef DACSIM_MEM_MEM_SYSTEM_H
#define DACSIM_MEM_MEM_SYSTEM_H

#include <algorithm>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/tag_array.h"

namespace dacsim
{

class ObsCollector;
class StateIo;

/** Who initiated a memory transaction (for statistics & policies). */
enum class Requester
{
    Demand,    ///< an ordinary warp load
    DacEarly,  ///< the DAC AEU's early fetch (enq.data)
    Prefetch,  ///< the MTA prefetcher
};

struct AccessResult
{
    bool accepted = false;  ///< false: structural hazard, retry later
    Cycle ready = 0;        ///< cycle at which data is available
    bool l1Hit = false;
};

class MemorySystem
{
  public:
    MemorySystem(const GpuConfig &cfg, RunStats *stats);

    /** Issue one 128B-line load transaction for SM @p sm. */
    AccessResult load(int sm, Addr line_addr, Cycle now, Requester req);

    /** Free L1 MSHR entries right now (non-mutating probe). */
    int freeMshrs(int sm, Cycle now);

    /** Is the line resident in the SM's L1 tags? (no LRU update). */
    bool linePresent(int sm, Addr line_addr) const;

    /** Combined answer of the AEU's per-line pre-check. */
    enum class EarlyFetchProbe
    {
        Blocked,    ///< line may not be locked (saturation or fault)
        Present,    ///< lockable and resident (no MSHR needed)
        NeedsMshr,  ///< lockable but absent (fetch consumes an MSHR)
    };

    /**
     * One-lookup fusion of canLock() + linePresent() for the AEU's
     * early-fetch pre-check, which probes every line of a record on
     * every blocked retry. Semantically identical to calling the two
     * probes in that order (including the fault-injection accounting
     * of canLock); it just avoids walking the L1 set twice.
     */
    EarlyFetchProbe earlyFetchProbe(int sm, Addr line_addr, Cycle now);

    /** Issue one line store transaction (fire-and-forget). */
    void store(int sm, Addr line_addr, Cycle now);

    // ----- DAC line locking (Section 4.2) --------------------------------

    /** May the AEU lock this line without risking deadlock? */
    bool canLock(int sm, Addr line_addr, Cycle now = 0);
    /** Increment the line's lock counter (line must be resident). */
    void lock(int sm, Addr line_addr);
    /** Decrement the lock counter on deq.data. */
    void unlock(int sm, Addr line_addr);

    // ----- MTA prefetch buffer -------------------------------------------

    /** Give each SM a dedicated prefetch buffer (MTA provisioning). */
    void enablePrefetchBuffer(const MtaConfig &mta);
    /** Issue a prefetch into the SM's buffer; may be dropped. */
    void prefetch(int sm, Addr line_addr, Cycle now);
    /** Lines evicted from the buffer unused since last asked (throttle). */
    std::uint64_t takeUnusedEvictions(int sm);

    /** Drop all cached state (between independent runs). */
    void reset();

    /**
     * Earliest cycle after @p now at which an in-flight miss of SM
     * @p sm completes and frees its MSHR (the wake-up event for a
     * replay-blocked warp). Returns ~Cycle(0) when nothing is in
     * flight.
     */
    Cycle nextMshrRelease(int sm, Cycle now) const;

    /** Install a fault plan consulted by every timing decision
     * (nullptr: fault-free). The plan must outlive the simulation. */
    void setFaultPlan(const FaultPlan *faults) { faults_ = faults; }

    /** Install the observability collector (nullptr: off; DESIGN.md
     * §11). Accepted loads report their in-flight lifetimes to it.
     * Must outlive the simulation. */
    void setObserver(ObsCollector *obs) { obs_ = obs; }

    /** Live (in-flight) L1 MSHR entries of SM @p sm right now
     * (non-mutating timeline probe; the lazy-expiry memo makes this
     * O(1) within a stable window). */
    int
    mshrLive(int sm, Cycle now) const
    {
        return sms_[static_cast<std::size_t>(sm)].outstanding.live(now);
    }

    /**
     * Count of unlock() calls on SM @p sm that dropped a line's lock
     * count to zero. Lock saturation of a set can only clear at such
     * an event (locked lines are never evicted, and no new line can
     * be locked in an already-saturated set), so the AEU uses this as
     * the exact wake condition for deliveries blocked on canLock.
     */
    std::uint64_t unlockEpoch(int sm) const
    {
        return sms_[static_cast<std::size_t>(sm)].unlockEpoch;
    }

    /** Audit credit conservation (MSHR occupancy within capacity,
     * lock counters sane); throws AuditError on violation. */
    void audit(Cycle now) const;

    const TagArray &l1(int sm) const { return sms_[sm].l1; }

  private:
    /**
     * Flat MSHR file: one slot per architected entry, sized from the
     * configured MSHR count. A slot is live while `ready > now`;
     * expiry is lazy (no eager pruning walk on the load path — a dead
     * slot is simply reusable storage). This mirrors the eager-prune
     * unordered_map semantics exactly while keeping lookups as a
     * bounded linear scan over a few cache lines.
     */
    struct MshrTable
    {
        struct Slot
        {
            Addr line = 0;
            Cycle ready = 0;
        };
        std::vector<Slot> slots;

        /**
         * Memoized live() result. The live set only changes at an
         * insert or when the earliest in-flight completion expires, so
         * a count taken at cycle t stays exact for every cycle in
         * [t, min ready among live). Within that window live() is O(1)
         * — it is probed on every blocked issue retry, which dominated
         * host time before the cache. `cacheUntil` doubles as the
         * min-ready value nextRelease() wants (~Cycle(0) if none live).
         */
        mutable Cycle cacheFrom = 1;   ///< window [cacheFrom, cacheUntil)
        mutable Cycle cacheUntil = 0;  ///< starts empty: first call scans
        mutable int cachedLive = 0;

        void
        init(int n)
        {
            slots.assign(static_cast<std::size_t>(n), {});
            cacheUntil = 0;
        }

        void
        clear()
        {
            std::fill(slots.begin(), slots.end(), Slot{});
            cacheUntil = 0;
        }

        int
        live(Cycle now) const
        {
            if (now >= cacheFrom && now < cacheUntil)
                return cachedLive;
            int n = 0;
            Cycle next = ~static_cast<Cycle>(0);
            for (const Slot &s : slots) {
                if (s.ready > now) {
                    ++n;
                    next = std::min(next, s.ready);
                }
            }
            cacheFrom = now;
            cacheUntil = next;
            cachedLive = n;
            return n;
        }

        /** The live in-flight entry for @p line, if any. */
        const Slot *
        find(Addr line, Cycle now) const
        {
            for (const Slot &s : slots)
                if (s.ready > now && s.line == line)
                    return &s;
            return nullptr;
        }

        /** Record an in-flight miss; overwrites a live same-line entry
         * (the map-assignment semantics), else reuses any dead slot.
         * The caller's capacity check guarantees one exists. */
        void insert(Addr line, Cycle ready, Cycle now);

        /** Min completion cycle among live entries (~Cycle(0): none). */
        Cycle
        nextRelease(Cycle now) const
        {
            live(now); // refresh cacheUntil = min ready among live
            return cacheUntil;
        }
    };

    struct SmState
    {
        TagArray l1;
        /** In-flight demand/DAC-early misses, one live slot per MSHR. */
        MshrTable outstanding;
        std::unique_ptr<TagArray> pfBuffer;
        MshrTable pfOutstanding;
        std::uint64_t unusedEvictions = 0;
        std::uint64_t unlockEpoch = 0; ///< see unlockEpoch()

        explicit SmState(const CacheConfig &c) : l1(c)
        {
            outstanding.init(c.mshrs);
            pfOutstanding.init(c.mshrs);
        }
    };

    const GpuConfig &cfg_;
    RunStats *stats_;
    const FaultPlan *faults_ = nullptr;
    ObsCollector *obs_ = nullptr;
    std::vector<SmState> sms_;
    /** One L2 slice per memory partition. */
    std::vector<TagArray> l2_;
    /** Per-partition next-free cycle for line transfers (bandwidth). */
    std::vector<Cycle> dramNextFree_;

    friend class StateIo;

    AccessResult loadImpl(int sm, Addr line_addr, Cycle now,
                          Requester req);
    int partitionOf(Addr line_addr) const;
    /** Timing through L2 (+DRAM on miss); returns data-ready cycle. */
    Cycle l2Access(Addr line_addr, Cycle arrive, bool is_store);
    /** L1 MSHR capacity after fault injection withholds entries. */
    int mshrCapacity(int sm_id, Cycle now) const;
};

} // namespace dacsim

#endif // DACSIM_MEM_MEM_SYSTEM_H
