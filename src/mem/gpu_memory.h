/**
 * @file
 * Functional backing store for the simulated GPU's global memory.
 *
 * Storage is sparse (4 KiB pages allocated on first touch) so workloads
 * can use realistic pointer values without reserving host memory.
 * A simple bump allocator hands out device buffers to workloads.
 */

#ifndef DACSIM_MEM_GPU_MEMORY_H
#define DACSIM_MEM_GPU_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "isa/opcode.h"

namespace dacsim
{

class StateIo;

class GpuMemory
{
  public:
    static constexpr Addr pageSize = 4096;

    /** Allocate @p bytes of device memory, 256B-aligned. */
    Addr
    alloc(std::uint64_t bytes, Addr align = 256)
    {
        Addr base = (brk_ + align - 1) / align * align;
        brk_ = base + bytes;
        return base;
    }

    std::uint8_t
    readByte(Addr a) const
    {
        auto it = pages_.find(a / pageSize);
        if (it == pages_.end())
            return 0;
        return it->second[a % pageSize];
    }

    void
    writeByte(Addr a, std::uint8_t v)
    {
        page(a)[a % pageSize] = v;
    }

    /** Little-endian read of @p bytes (1..8) at @p a, zero-extended. */
    std::uint64_t
    read(Addr a, int bytes) const
    {
        std::uint64_t v = 0;
        for (int i = 0; i < bytes; ++i)
            v |= static_cast<std::uint64_t>(readByte(a + i)) << (8 * i);
        return v;
    }

    void
    write(Addr a, std::uint64_t v, int bytes)
    {
        for (int i = 0; i < bytes; ++i)
            writeByte(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** Typed load honouring the ISA width's size and signedness. */
    RegVal
    load(Addr a, MemWidth w) const
    {
        int bytes = memWidthBytes(w);
        std::uint64_t raw = read(a, bytes);
        if (memWidthSigned(w) && bytes < 8) {
            std::uint64_t sign = 1ull << (8 * bytes - 1);
            if (raw & sign)
                raw |= ~((sign << 1) - 1);
        }
        return static_cast<RegVal>(raw);
    }

    void
    store(Addr a, RegVal v, MemWidth w)
    {
        write(a, static_cast<std::uint64_t>(v), memWidthBytes(w));
    }

    // ----- bulk helpers used by workload setup ---------------------------

    void
    writeI32Array(Addr base, const std::vector<std::int32_t> &vals)
    {
        for (std::size_t i = 0; i < vals.size(); ++i)
            write(base + 4 * i, static_cast<std::uint32_t>(vals[i]), 4);
    }

    std::vector<std::int32_t>
    readI32Array(Addr base, std::size_t count) const
    {
        std::vector<std::int32_t> out(count);
        for (std::size_t i = 0; i < count; ++i)
            out[i] = static_cast<std::int32_t>(read(base + 4 * i, 4));
        return out;
    }

    /** FNV-1a hash of a byte range; used to compare final memory images. */
    std::uint64_t
    checksum(Addr base, std::uint64_t bytes) const
    {
        std::uint64_t h = 1469598103934665603ull;
        for (std::uint64_t i = 0; i < bytes; ++i) {
            h ^= readByte(base + i);
            h *= 1099511628211ull;
        }
        return h;
    }

  private:
    friend class StateIo;

    std::unordered_map<Addr, std::array<std::uint8_t, pageSize>> pages_;
    Addr brk_ = 0x10000;

    std::uint8_t *
    page(Addr a)
    {
        auto [it, inserted] = pages_.try_emplace(a / pageSize);
        if (inserted)
            it->second.fill(0);
        return it->second.data();
    }
};

} // namespace dacsim

#endif // DACSIM_MEM_GPU_MEMORY_H
