#include "obs/collector.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/log.h"
#include "obs/timeline_json.h"
#include "sim/gpu.h"

namespace dacsim
{

ObsCollector::ObsCollector(const ObsOptions &opt, int num_sms,
                           int max_warps_per_sm, int scheds_per_sm)
    : opt_(opt), numSms_(num_sms), maxWarps_(max_warps_per_sm)
{
    opt_.timelineEveryBoundaries =
        std::max<Cycle>(opt_.timelineEveryBoundaries, 1);
    opt_.timelineCapacity = std::max<std::size_t>(opt_.timelineCapacity, 1);
    report_.maxWarpsPerSm = maxWarps_;
    if (opt_.stalls) {
        report_.smStalls.assign(static_cast<std::size_t>(numSms_), {});
        report_.warpStalls.assign(
            static_cast<std::size_t>(numSms_) * warpStride(), {});
    }
    if (opt_.chromeOn()) {
        trace_ = std::make_unique<ChromeTraceWriter>();
        for (int s = 0; s < numSms_; ++s) {
            trace_->processName(s, "SM" + std::to_string(s));
            for (int q = 0; q < scheds_per_sm; ++q)
                trace_->threadName(s, ChromeTraceWriter::tidSchedBase + q,
                                   "sched" + std::to_string(q));
            trace_->threadName(s, ChromeTraceWriter::tidAffine,
                               "affine warp");
            trace_->threadName(s, ChromeTraceWriter::tidCounters,
                               "counters");
        }
    }
}

void
ObsCollector::chargeStall(int sm, int warp, StallReason reason)
{
    report_.stalls[reason] += 1;
    report_.stalls.idleSlots += 1;
    StallStats &s = report_.smStalls[static_cast<std::size_t>(sm)];
    s[reason] += 1;
    s.idleSlots += 1;
    // warp == -1 names the affine warp (and the no-candidate case):
    // it lives in the extra slot past the ordinary warp indices.
    std::size_t slot = warp < 0 ? static_cast<std::size_t>(maxWarps_)
                                : static_cast<std::size_t>(warp);
    StallStats &w = report_.warpStalls[static_cast<std::size_t>(sm) *
                                           warpStride() +
                                       slot];
    w[reason] += 1;
    w.idleSlots += 1;
}

void
ObsCollector::warpIssue(int sm, int sched, int warp, int pc,
                        const std::string &op, Cycle now, Cycle dur)
{
    if (!trace_)
        return;
    char args[48];
    std::snprintf(args, sizeof args, "{\"w\":%d,\"pc\":%d}", warp, pc);
    trace_->complete(sm, ChromeTraceWriter::tidSchedBase + sched, now, dur,
                     op, args);
}

void
ObsCollector::affineStep(int sm, int pc, const std::string &op, Cycle now,
                         Cycle dur, int pending_records)
{
    if (!trace_)
        return;
    char args[32];
    std::snprintf(args, sizeof args, "{\"pc\":%d}", pc);
    trace_->complete(sm, ChromeTraceWriter::tidAffine, now, dur, op, args);
    // The engine's queued-but-unconsumed work is the distance the
    // affine warp has run ahead of its consumers, in records.
    std::snprintf(args, sizeof args, "{\"records\":%d}", pending_records);
    trace_->counter(sm, now, "runahead", args);
}

void
ObsCollector::memRequest(int sm, Addr line, Cycle now, Cycle ready,
                         const char *requester, bool l1_hit)
{
    if (!trace_)
        return;
    char args[64];
    std::snprintf(args, sizeof args, "{\"line\":\"0x%llx\",\"l1\":\"%s\"}",
                  static_cast<unsigned long long>(line),
                  l1_hit ? "hit" : "miss");
    trace_->async(sm, now, ready, "mem", requester, args);
}

void
ObsCollector::sample(const Gpu &gpu, Cycle now)
{
    const RunStats &s = gpu.stats();
    TimelineSample t;
    t.cycle = now;
    t.warpInsts = s.totalWarpInsts();
    t.loadRequests = s.loadRequests;
    t.l1Misses = s.l1Misses;
    t.deqStallCycles = s.deqStallCycles;
    for (int i = 0; i < gpu.smCount(); ++i) {
        Sm::ObsOccupancy occ = gpu.sm(i).obsOccupancy();
        t.activeWarps += occ.activeWarps;
        t.atq += occ.atq;
        t.pwaq += occ.pwaq;
        t.pwpq += occ.pwpq;
        t.mshrLive += gpu.memorySystem().mshrLive(i, now);
    }
    if (report_.timeline.size() < opt_.timelineCapacity) {
        report_.timeline.push_back(t);
    } else {
        report_.timeline[ringHead_] = t;
        ringHead_ = (ringHead_ + 1) % opt_.timelineCapacity;
        ++report_.timelineDropped;
    }
    if (opt_.onSample)
        opt_.onSample(t, report_.stalls);
}

void
ObsCollector::boundary(const Gpu &gpu, Cycle now)
{
    if (!opt_.timelineOn())
        return;
    if (boundaries_++ % opt_.timelineEveryBoundaries == 0)
        sample(gpu, now);
}

void
ObsCollector::finalize(const Gpu &gpu, const std::string &bench,
                       const char *tech, double scale, RunStats &stats)
{
    if (opt_.timelineOn()) {
        // Close the timeline at the run's end cycle, so even sub-4096-
        // cycle runs carry one sample; skip if the last boundary
        // already sampled this cycle.
        Cycle end = gpu.stats().cycles;
        bool have = !report_.timeline.empty();
        std::size_t lastIdx =
            have ? (report_.timeline.size() == opt_.timelineCapacity
                        ? (ringHead_ + opt_.timelineCapacity - 1) %
                              opt_.timelineCapacity
                        : report_.timeline.size() - 1)
                 : 0;
        if (!have || report_.timeline[lastIdx].cycle != end)
            sample(gpu, end);
        // Rotate the ring into oldest-first order.
        std::rotate(report_.timeline.begin(),
                    report_.timeline.begin() +
                        static_cast<std::ptrdiff_t>(ringHead_),
                    report_.timeline.end());
        ringHead_ = 0;
    }
    stats.stalls = report_.stalls;
    if (trace_)
        report_.traceEvents = trace_->events();
    if (!opt_.timelinePath.empty())
        writeTimeline(bench, tech, scale);
    if (trace_)
        trace_->write(opt_.chromeTracePath);
}

void
ObsCollector::writeTimeline(const std::string &bench, const char *tech,
                            double scale) const
{
    std::FILE *f = std::fopen(opt_.timelinePath.c_str(), "w");
    require(f != nullptr, "cannot write timeline ", opt_.timelinePath);
    TimelineMeta meta;
    meta.bench = bench;
    meta.tech = tech;
    meta.scale = scale;
    meta.sampleEveryBoundaries = opt_.timelineEveryBoundaries;
    meta.droppedSamples = report_.timelineDropped;
    writeTimelinePrefix(f, meta, report_.timeline);
    if (!opt_.stalls) {
        std::fprintf(f, "  \"stalls\": null\n");
    } else {
        auto emitReasons = [&](const StallStats &s) {
            writeStallReasons(f, s);
        };
        std::fprintf(f, "  \"stalls\": {\n    ");
        emitReasons(report_.stalls);
        std::fprintf(f, ",\n    \"per_sm\": [\n");
        for (std::size_t i = 0; i < report_.smStalls.size(); ++i) {
            std::fprintf(f, "      {\"sm\": %zu, ", i);
            emitReasons(report_.smStalls[i]);
            std::fprintf(f, "}%s\n",
                         i + 1 < report_.smStalls.size() ? "," : "");
        }
        std::fprintf(f, "    ],\n    \"per_warp\": [\n");
        // Only warp slots that stalled at all; index maxWarpsPerSm is
        // the affine warp.
        std::vector<std::size_t> rows;
        for (std::size_t i = 0; i < report_.warpStalls.size(); ++i)
            if (report_.warpStalls[i].idleSlots != 0)
                rows.push_back(i);
        for (std::size_t k = 0; k < rows.size(); ++k) {
            std::size_t i = rows[k];
            std::size_t sm = i / warpStride();
            std::size_t warp = i % warpStride();
            std::fprintf(f, "      {\"sm\": %zu, \"warp\": %zu, "
                            "\"affine\": %s, ",
                         sm, warp,
                         warp == static_cast<std::size_t>(maxWarps_)
                             ? "true"
                             : "false");
            emitReasons(report_.warpStalls[i]);
            std::fprintf(f, "}%s\n", k + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  }\n");
    }
    std::fprintf(f, "}\n");
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    require(ok, "timeline write to ", opt_.timelinePath, " failed");
}

} // namespace dacsim
