/**
 * @file
 * Buffered Chrome trace_event JSON emitter (DESIGN.md §11).
 *
 * Events accumulate in memory during the run and are written at
 * finalize time, sorted by (timestamp, emission order) so the file is
 * deterministic and loads cleanly in Perfetto / chrome://tracing.
 * Timestamps are simulated cycles reported in the JSON's microsecond
 * field (1 cycle = 1 us on screen); pids map to SMs and tids to the
 * lanes within one (schedulers, the affine warp, counters).
 */

#ifndef DACSIM_OBS_CHROME_TRACE_H
#define DACSIM_OBS_CHROME_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace dacsim
{

class ChromeTraceWriter
{
  public:
    /** Fixed tids within one SM's pid (metadata names them). */
    static constexpr int tidSchedBase = 1;  ///< scheduler s -> tid 1 + s
    static constexpr int tidAffine = 90;
    static constexpr int tidCounters = 91;

    /** Complete event ("ph":"X"): a span of @p dur cycles. */
    void complete(int pid, int tid, Cycle ts, Cycle dur,
                  const std::string &name, const std::string &args_json);

    /** Counter event ("ph":"C") named @p name with integer series. */
    void counter(int pid, Cycle ts, const std::string &name,
                 const std::string &args_json);

    /** Async begin/end pair ("ph":"b"/"e"): a memory-request lifetime
     * from @p ts to @p ready under category @p cat. */
    void async(int pid, Cycle ts, Cycle ready, const std::string &cat,
               const std::string &name, const std::string &args_json);

    /** Name a process (SM) or thread lane in the viewer. */
    void processName(int pid, const std::string &name);
    void threadName(int pid, int tid, const std::string &name);

    std::uint64_t events() const { return static_cast<std::uint64_t>(events_.size()); }

    /** Sort and write the trace; throws on I/O failure. */
    void write(const std::string &path) const;

  private:
    struct Event
    {
        Cycle ts = 0;
        std::uint64_t seq = 0;  ///< emission order (stable tiebreak)
        bool meta = false;      ///< metadata sorts before all events
        std::string json;       ///< the complete record
    };

    std::vector<Event> events_;
    std::uint64_t nextId_ = 0;

    void push(Cycle ts, bool meta, std::string json);
};

} // namespace dacsim

#endif // DACSIM_OBS_CHROME_TRACE_H
