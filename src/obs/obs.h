/**
 * @file
 * Observability options and reports (DESIGN.md §11).
 *
 * One ObsOptions inside RunOptions switches the whole layer: stall
 * attribution, the periodic counter-timeline sampler, and Chrome
 * trace_event export. Everything is off by default and costs exactly
 * one predictable null-pointer branch per instrumented call site when
 * off (trace.h's discipline); output is a pure function of the run
 * configuration, so golden fixtures can cover it byte-for-byte.
 */

#ifndef DACSIM_OBS_OBS_H
#define DACSIM_OBS_OBS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace dacsim
{

struct TimelineSample;

/** What the observability layer records for one run. */
struct ObsOptions
{
    /**
     * Stall attribution: charge every idle issue slot to one exclusive
     * StallReason, per warp and per SM. Requires per-cycle stepping —
     * the run disables idle-cycle fast-forward exactly like an active
     * fault plan does (simulated results are unchanged either way).
     */
    bool stalls = false;
    /** Sample counter timelines into a ring buffer (kept in the
     * ObsReport even when timelinePath is empty). */
    bool timeline = false;
    /** Sample every n-th 4096-cycle audit boundary (>= 1). */
    Cycle timelineEveryBoundaries = 1;
    /** Ring capacity in samples; the oldest samples are overwritten
     * once full (ObsReport::timelineDropped counts the overwrites). */
    std::size_t timelineCapacity = 1u << 14;
    /** Write the timeline (plus stall tables) as JSON here at run end
     * (non-empty implies `timeline`). */
    std::string timelinePath;
    /** Write a Chrome trace_event JSON (Perfetto-loadable) here: warp
     * issue spans, affine-warp steps + runahead counters, and memory-
     * request lifetimes. Empty: no trace. */
    std::string chromeTracePath;
    /**
     * Streaming hook: invoked synchronously with every timeline
     * sample the collector takes (each sampled audit boundary plus
     * the finalize end-of-run sample), together with the cumulative
     * slot-exclusive stall partition at that point. The service layer
     * turns these into JobProgress frames (DESIGN.md §16.3). Like the
     * rest of the obs layer, the callback observes — it can never
     * feed back into simulated results.
     */
    std::function<void(const TimelineSample &, const StallStats &)>
        onSample;

    bool
    timelineOn() const
    {
        return timeline || !timelinePath.empty();
    }
    bool
    chromeOn() const
    {
        return !chromeTracePath.empty();
    }
    /** Anything at all to collect (the collector exists iff true). */
    bool
    enabled() const
    {
        return stalls || timelineOn() || chromeOn();
    }
};

/** One timeline sample, taken at a 4096-cycle audit boundary. All
 * counter fields are cumulative; consumers difference neighbouring
 * samples for rates (the JSON writer emits per-interval IPC). */
struct TimelineSample
{
    Cycle cycle = 0;
    std::uint64_t warpInsts = 0;        ///< non-affine + affine
    std::uint64_t loadRequests = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t deqStallCycles = 0;
    int activeWarps = 0;                ///< unfinished non-affine warps
    int atq = 0;                        ///< ATQ entries awaiting expansion
    int pwaq = 0;                       ///< delivered address records queued
    int pwpq = 0;                       ///< delivered predicate records queued
    int mshrLive = 0;                   ///< in-flight L1 misses (demand+DAC)

    bool operator==(const TimelineSample &) const = default;
};

/** Everything the collector measured, surfaced on RunOutcome. */
struct ObsReport
{
    /** Slot-exclusive stall totals (equal to RunStats::stalls). */
    StallStats stalls;
    /** Per-SM breakdown; sums to `stalls` field-wise. */
    std::vector<StallStats> smStalls;
    /** Per-(SM, warp-slot) breakdown; index sm * (maxWarpsPerSm + 1) +
     * warp, where warp == maxWarpsPerSm is the DAC affine warp. Sums
     * to the SM's entry field-wise. Warp slots are reused across CTA
     * batches, so this is a per-slot (not per-CTA-warp) view. */
    std::vector<StallStats> warpStalls;
    int maxWarpsPerSm = 0;

    /** The surviving timeline window, oldest sample first. */
    std::vector<TimelineSample> timeline;
    /** Samples overwritten after the ring filled. */
    std::uint64_t timelineDropped = 0;

    /** Chrome trace_event records emitted (0 when tracing is off). */
    std::uint64_t traceEvents = 0;
};

} // namespace dacsim

#endif // DACSIM_OBS_OBS_H
