#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/log.h"

namespace dacsim
{

namespace
{

std::string
num(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

void
ChromeTraceWriter::push(Cycle ts, bool meta, std::string json)
{
    Event e;
    e.ts = ts;
    e.seq = static_cast<std::uint64_t>(events_.size());
    e.meta = meta;
    e.json = std::move(json);
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::complete(int pid, int tid, Cycle ts, Cycle dur,
                            const std::string &name,
                            const std::string &args_json)
{
    push(ts, false,
         "{\"ph\":\"X\",\"pid\":" + num(static_cast<std::uint64_t>(pid)) +
             ",\"tid\":" + num(static_cast<std::uint64_t>(tid)) +
             ",\"ts\":" + num(ts) + ",\"dur\":" + num(dur) +
             ",\"name\":\"" + name + "\",\"args\":" + args_json + "}");
}

void
ChromeTraceWriter::counter(int pid, Cycle ts, const std::string &name,
                           const std::string &args_json)
{
    push(ts, false,
         "{\"ph\":\"C\",\"pid\":" + num(static_cast<std::uint64_t>(pid)) +
             ",\"tid\":" + num(tidCounters) + ",\"ts\":" + num(ts) +
             ",\"name\":\"" + name + "\",\"args\":" + args_json + "}");
}

void
ChromeTraceWriter::async(int pid, Cycle ts, Cycle ready,
                         const std::string &cat, const std::string &name,
                         const std::string &args_json)
{
    std::string id = num(nextId_++);
    std::string common =
        "\"pid\":" + num(static_cast<std::uint64_t>(pid)) + ",\"cat\":\"" +
        cat + "\",\"id\":" + id + ",\"name\":\"" + name + "\"";
    push(ts, false,
         "{\"ph\":\"b\"," + common + ",\"ts\":" + num(ts) +
             ",\"args\":" + args_json + "}");
    // A zero-length lifetime still needs end >= begin; Perfetto drops
    // negative-duration asyncs.
    Cycle end = std::max(ready, ts);
    push(end, false,
         "{\"ph\":\"e\"," + common + ",\"ts\":" + num(end) +
             ",\"args\":{}}");
}

void
ChromeTraceWriter::processName(int pid, const std::string &name)
{
    push(0, true,
         "{\"ph\":\"M\",\"pid\":" + num(static_cast<std::uint64_t>(pid)) +
             ",\"name\":\"process_name\",\"args\":{\"name\":\"" + name +
             "\"}}");
}

void
ChromeTraceWriter::threadName(int pid, int tid, const std::string &name)
{
    push(0, true,
         "{\"ph\":\"M\",\"pid\":" + num(static_cast<std::uint64_t>(pid)) +
             ",\"tid\":" + num(static_cast<std::uint64_t>(tid)) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + name +
             "\"}}");
}

void
ChromeTraceWriter::write(const std::string &path) const
{
    // Stable order: metadata first, then events by (ts, emission seq).
    std::vector<const Event *> order;
    order.reserve(events_.size());
    for (const Event &e : events_)
        order.push_back(&e);
    std::stable_sort(order.begin(), order.end(),
                     [](const Event *a, const Event *b) {
                         if (a->meta != b->meta)
                             return a->meta;
                         if (a->ts != b->ts)
                             return a->ts < b->ts;
                         return a->seq < b->seq;
                     });

    std::ofstream os(path, std::ios::trunc);
    require(os.good(), "cannot write chrome trace ", path);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    for (std::size_t i = 0; i < order.size(); ++i) {
        os << order[i]->json;
        if (i + 1 < order.size())
            os << ',';
        os << '\n';
    }
    os << "]}\n";
    require(os.good(), "chrome trace write to ", path, " failed");
}

} // namespace dacsim
