#include "obs/timeline_json.h"

namespace dacsim
{

void
writeTimelinePrefix(std::FILE *f, const TimelineMeta &meta,
                    const std::vector<TimelineSample> &samples)
{
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"dacsim-obs-timeline-v1\",\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", meta.bench.c_str());
    std::fprintf(f, "  \"tech\": \"%s\",\n", meta.tech.c_str());
    std::fprintf(f, "  \"scale\": %.3f,\n", meta.scale);
    std::fprintf(f, "  \"boundary_cycles\": 4096,\n");
    std::fprintf(f, "  \"sample_every_boundaries\": %llu,\n",
                 static_cast<unsigned long long>(
                     meta.sampleEveryBoundaries));
    std::fprintf(f, "  \"dropped_samples\": %llu,\n",
                 static_cast<unsigned long long>(meta.droppedSamples));
    std::fprintf(f, "  \"samples\": [\n");
    std::uint64_t prevInsts = 0;
    Cycle prevCycle = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const TimelineSample &t = samples[i];
        // Per-interval IPC relative to the previous surviving sample
        // (the first interval of a clipped ring starts mid-run).
        double dc = static_cast<double>(t.cycle - prevCycle);
        double ipc =
            dc > 0 ? static_cast<double>(t.warpInsts - prevInsts) / dc
                   : 0.0;
        std::fprintf(f,
                     "    {\"cycle\": %llu, \"ipc\": %.4f, "
                     "\"warp_insts\": %llu, \"load_requests\": %llu, "
                     "\"l1_misses\": %llu, \"deq_stall_cycles\": %llu, "
                     "\"active_warps\": %d, \"atq\": %d, \"pwaq\": %d, "
                     "\"pwpq\": %d, \"mshr\": %d}%s\n",
                     static_cast<unsigned long long>(t.cycle), ipc,
                     static_cast<unsigned long long>(t.warpInsts),
                     static_cast<unsigned long long>(t.loadRequests),
                     static_cast<unsigned long long>(t.l1Misses),
                     static_cast<unsigned long long>(t.deqStallCycles),
                     t.activeWarps, t.atq, t.pwaq, t.pwpq, t.mshrLive,
                     i + 1 < samples.size() ? "," : "");
        prevInsts = t.warpInsts;
        prevCycle = t.cycle;
    }
    std::fprintf(f, "  ],\n");
}

void
writeStallReasons(std::FILE *f, const StallStats &s)
{
    std::fprintf(f, "\"idle_slots\": %llu",
                 static_cast<unsigned long long>(s.idleSlots));
    for (int r = 0; r < numStallReasons; ++r)
        std::fprintf(f, ", \"%s\": %llu",
                     stallReasonName(static_cast<StallReason>(r)),
                     static_cast<unsigned long long>(
                         s.reasons[static_cast<std::size_t>(r)]));
}

} // namespace dacsim
