/**
 * @file
 * The run-scoped observability collector (DESIGN.md §11).
 *
 * One ObsCollector instance is created by the harness when
 * ObsOptions::enabled() and handed to the Gpu, which fans the pointer
 * out to every Sm and the MemorySystem. Instrumented call sites pay a
 * single null-pointer branch when observability is off; when on, the
 * collector accumulates stall attribution, samples counter timelines
 * at the 4096-cycle audit cadence, and buffers Chrome trace events.
 * All collected state is host-side diagnostics: it never feeds the
 * state digest, snapshots, or golden stats, so enabling observability
 * cannot perturb simulated results.
 */

#ifndef DACSIM_OBS_COLLECTOR_H
#define DACSIM_OBS_COLLECTOR_H

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/chrome_trace.h"
#include "obs/obs.h"

namespace dacsim
{

class Gpu;

class ObsCollector
{
  public:
    ObsCollector(const ObsOptions &opt, int num_sms, int max_warps_per_sm,
                 int scheds_per_sm);

    // ----- switches (hot-path call sites branch on these) ----------------
    bool stallsOn() const { return opt_.stalls; }
    bool chromeOn() const { return trace_ != nullptr; }
    /** The run must step every cycle (idle slots accrue per cycle), so
     * the Gpu disables idle-cycle fast-forward, exactly as it does
     * under a fault plan. */
    bool perCycle() const { return opt_.stalls; }

    // ----- stall attribution ---------------------------------------------
    /** Charge one idle issue slot of SM @p sm to @p reason, attributed
     * to warp slot @p warp (-1: the affine warp / no candidate). */
    void chargeStall(int sm, int warp, StallReason reason);

    // ----- chrome trace ----------------------------------------------------
    /** An ordinary warp instruction issued on @p sched. */
    void warpIssue(int sm, int sched, int warp, int pc,
                   const std::string &op, Cycle now, Cycle dur);
    /** The affine warp stepped; @p pending_records is the engine's
     * total queued work (ATQ + PWAQ + PWPQ), the runahead distance. */
    void affineStep(int sm, int pc, const std::string &op, Cycle now,
                    Cycle dur, int pending_records);
    /** An accepted memory-line request: in flight [now, ready]. */
    void memRequest(int sm, Addr line, Cycle now, Cycle ready,
                    const char *requester, bool l1_hit);

    // ----- timeline --------------------------------------------------------
    /** Called from the Gpu at every 4096-cycle audit boundary. */
    void boundary(const Gpu &gpu, Cycle now);

    // ----- finalize --------------------------------------------------------
    /**
     * Take the final timeline sample, write timelinePath /
     * chromeTracePath (when set), and fold the stall totals into
     * @p stats. Call exactly once, after the last launch.
     */
    void finalize(const Gpu &gpu, const std::string &bench,
                  const char *tech, double scale, RunStats &stats);

    const ObsReport &report() const { return report_; }

  private:
    ObsOptions opt_;
    int numSms_;
    int maxWarps_;
    ObsReport report_;
    std::unique_ptr<ChromeTraceWriter> trace_;

    // Timeline ring: report_.timeline is the backing store until
    // finalize() rotates it into oldest-first order.
    std::size_t ringHead_ = 0;
    std::uint64_t boundaries_ = 0;

    void sample(const Gpu &gpu, Cycle now);
    void writeTimeline(const std::string &bench, const char *tech,
                       double scale) const;

    /** Per-SM warp-slot stride (+1: the affine warp's slot). */
    std::size_t
    warpStride() const
    {
        return static_cast<std::size_t>(maxWarps_) + 1;
    }
};

} // namespace dacsim

#endif // DACSIM_OBS_COLLECTOR_H
