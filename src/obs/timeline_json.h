/**
 * @file
 * The timeline-JSON renderer (schema "dacsim-obs-timeline-v1"),
 * factored out of the collector so the two producers of timeline
 * files — the run-scoped ObsCollector writing at finalize(), and a
 * service client reassembling streamed JobProgress frames (DESIGN.md
 * §16.3) — emit byte-identical headers and sample arrays. The golden
 * fixtures under tests/golden/ pin the bytes; check.sh compares a
 * streamed timeline's samples section against the same golden a
 * direct run produces.
 */

#ifndef DACSIM_OBS_TIMELINE_JSON_H
#define DACSIM_OBS_TIMELINE_JSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace dacsim
{

/** Header fields of one timeline file. */
struct TimelineMeta
{
    std::string bench;
    std::string tech;
    double scale = 1.0;
    std::uint64_t sampleEveryBoundaries = 1;
    std::uint64_t droppedSamples = 0;
};

/**
 * Write the opening brace, the header fields, and the complete
 * "samples" array (per-interval IPC differenced against the previous
 * sample) up to and including the closing "  ],\n". The caller owns
 * what follows — the "stalls" section and the closing brace.
 */
void writeTimelinePrefix(std::FILE *f, const TimelineMeta &meta,
                         const std::vector<TimelineSample> &samples);

/** One cumulative stall partition as a flat JSON object body:
 * `"idle_slots": N, "<reason>": N, ...` (no braces). */
void writeStallReasons(std::FILE *f, const StallStats &s);

} // namespace dacsim

#endif // DACSIM_OBS_TIMELINE_JSON_H
