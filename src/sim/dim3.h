/**
 * @file
 * Grid/block dimension handling and thread-index decomposition.
 */

#ifndef DACSIM_SIM_DIM3_H
#define DACSIM_SIM_DIM3_H

#include "common/log.h"
#include "common/types.h"

namespace dacsim
{

/** CUDA-style three-dimensional extent. */
struct Dim3
{
    int x = 1;
    int y = 1;
    int z = 1;

    long long count() const
    {
        return static_cast<long long>(x) * y * z;
    }

    bool operator==(const Dim3 &) const = default;
};

/** A three-dimensional index. */
struct Idx3
{
    int x = 0;
    int y = 0;
    int z = 0;

    int
    dim(int d) const
    {
        return d == 0 ? x : d == 1 ? y : z;
    }

    bool operator==(const Idx3 &) const = default;
};

/** Decompose a linear index into an Idx3 under extent @p e (x fastest). */
inline Idx3
unlinearize(long long linear, const Dim3 &e)
{
    Idx3 idx;
    idx.x = static_cast<int>(linear % e.x);
    linear /= e.x;
    idx.y = static_cast<int>(linear % e.y);
    idx.z = static_cast<int>(linear / e.y);
    return idx;
}

/** Linearize an Idx3 under extent @p e. */
inline long long
linearize(const Idx3 &i, const Dim3 &e)
{
    return i.x + static_cast<long long>(e.x) * (i.y +
           static_cast<long long>(e.y) * i.z);
}

/** Warps needed to cover a CTA of @p block threads. */
inline int
warpsPerCta(const Dim3 &block)
{
    return static_cast<int>((block.count() + warpSize - 1) / warpSize);
}

} // namespace dacsim

#endif // DACSIM_SIM_DIM3_H
