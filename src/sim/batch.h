/**
 * @file
 * Description of one batch of concurrently-resident CTAs on an SM.
 *
 * An SM executes CTAs in batches of up to maxCtasPerSm; under DAC the
 * affine warp executes once per batch and serves every warp in it
 * (paper Section 4.1).
 */

#ifndef DACSIM_SIM_BATCH_H
#define DACSIM_SIM_BATCH_H

#include <vector>

#include "common/types.h"
#include "sim/dim3.h"

namespace dacsim
{

/** Identity of one warp slot within a batch. */
struct WarpSlot
{
    int ctaSlot = 0;        ///< CTA index within the batch
    Idx3 ctaId;             ///< blockIdx of that CTA
    int warpInCta = 0;      ///< warp index within the CTA
    ThreadMask valid = 0;   ///< threads that exist (last warp may be short)
};

struct BatchInfo
{
    Dim3 grid;
    Dim3 block;
    int numCtas = 0;
    std::vector<WarpSlot> warps; ///< CTA-major order

    int numWarps() const { return static_cast<int>(warps.size()); }

    /** threadIdx of (warp slot, lane). */
    Idx3
    tidOf(const WarpSlot &w, int lane) const
    {
        return unlinearize(
            static_cast<long long>(w.warpInCta) * warpSize + lane, block);
    }

    /** Valid-thread mask set over all warps of the batch. */
    std::vector<ThreadMask>
    validMasks() const
    {
        std::vector<ThreadMask> m;
        m.reserve(warps.size());
        for (const WarpSlot &w : warps)
            m.push_back(w.valid);
        return m;
    }
};

} // namespace dacsim

#endif // DACSIM_SIM_BATCH_H
