/**
 * @file
 * One streaming multiprocessor: warp contexts, SIMT stacks,
 * scoreboards, two warp schedulers, barrier handling, CTA batch
 * residency, and the technique hooks (CAE affine units, MTA
 * prefetcher, DAC engine + affine warp).
 */

#ifndef DACSIM_SIM_SM_H
#define DACSIM_SIM_SM_H

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "baselines/mta.h"
#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "dac/affine_warp.h"
#include "dac/engine.h"
#include "isa/instruction.h"
#include "mem/gpu_memory.h"
#include "mem/mem_system.h"
#include "sim/batch.h"
#include "sim/simt_stack.h"

namespace dacsim
{

class ObsCollector;
class StateIo;

/** Everything an SM needs to run one kernel launch. */
struct LaunchInfo
{
    /** The stream ordinary warps execute (the original kernel, or the
     * non-affine stream under DAC). */
    const Kernel *kernel = nullptr;
    /** The affine stream (DAC only). */
    const Kernel *affineKernel = nullptr;
    Dim3 grid;
    Dim3 block;
    const std::vector<RegVal> *params = nullptr;
    /**
     * Optional per-PC marks: instructions counted toward
     * RunStats::affineCoveredInsts when issued (used to measure DAC's
     * affine coverage on a baseline run; Fig 18).
     */
    const std::vector<bool> *coverageMarks = nullptr;
};

/** Hands out CTAs to SMs; shared by all SMs of a launch. */
class CtaDispatcher
{
  public:
    CtaDispatcher(long long total, int num_sms)
        : total_(total), numSms_(std::max(1, num_sms))
    {
    }

    /**
     * Claim up to @p n CTAs. Small grids are spread across the SMs
     * (as the hardware's round-robin CTA issue does) rather than
     * packed onto the first few.
     */
    std::pair<long long, int>
    take(int n)
    {
        long long remaining = total_ - next_;
        long long fair = (remaining + numSms_ - 1) / numSms_;
        long long grant;
        if (remaining >= numSms_) {
            // Keep batches at least half-full so the per-batch fixed
            // costs (e.g. DAC's affine warp) amortize, while still
            // spreading mid-sized grids across the SMs.
            grant = std::clamp<long long>(fair, (n + 1) / 2, n);
        } else {
            grant = 1; // spread the tail
        }
        int got = static_cast<int>(std::min(grant, remaining));
        long long first = next_;
        next_ += got;
        return {first, got};
    }

    bool exhausted() const { return next_ >= total_; }

  private:
    friend class StateIo;

    long long total_;
    int numSms_;
    long long next_ = 0;
};

class Sm
{
  public:
    Sm(int id, const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
       const CaeConfig &ccfg, const MtaConfig &mcfg, MemorySystem &mem,
       GpuMemory &gmem, RunStats &stats);

    void beginKernel(const LaunchInfo &launch, CtaDispatcher *dispatcher);

    /** True while a batch is resident or more CTAs can be claimed. */
    bool busy() const;

    void cycle(Cycle now);

    /**
     * A lower bound (> @p now) on the next cycle at which stepping
     * this SM could change any simulated state or statistic beyond the
     * one reconstructable exception below; ~Cycle(0) when no future
     * event exists. Cycles strictly before the returned bound are
     * no-ops except for deqStallCycles: a warp parked at a deq whose
     * queue is empty (or whose early-fetched data is in flight)
     * attempts and stalls every free-slot cycle, and because nothing
     * else moves while the SM sleeps, that accrual is a closed-form
     * function of the gap length. cycle() reconstructs it on the next
     * step (accrueSkippedDeqStalls), so every boundary fold still sees
     * bit-identical statistics. Conservative: returns now+1 whenever
     * per-cycle effects cannot be ruled out (fault plans, a deliverable
     * ATQ head, an issuable warp).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Bring this SM's reconstructable statistics (deqStallCycles) up
     * to date through cycle @p now - 1 without stepping it. Called by
     * the boundary fold before hashing/snapshotting so a sleeping SM's
     * pending closed-form accrual lands on the same side of the fold
     * as in a stepped run; afterwards the SM looks exactly as if its
     * last step had been @p now - 1.
     */
    void catchUpStats(Cycle now);

    /**
     * Event-core gate (DESIGN.md §13): must this SM be stepped at
     * @p now? True whenever the cached wake bound is due or no valid
     * bound is cached (stepping an SM always invalidates its cache, so
     * a dirty SM is stepped until the jump phase recomputes it).
     */
    bool awake(Cycle now) const { return !wakeValid_ || wake_ <= now; }

    /**
     * Cached nextEventCycle(): recomputes only when the cache was
     * invalidated (by stepping this SM or restoring a snapshot) and
     * memoizes the bound until the next invalidation. Same contract
     * as nextEventCycle().
     */
    Cycle
    wakeCycle(Cycle now) const
    {
        if (!wakeValid_) {
            wake_ = nextEventCycle(now);
            wakeValid_ = true;
        }
        return wake_;
    }

    /** Monotone counter for the top-level deadlock watchdog. */
    std::uint64_t progress() const { return progress_; }

    /** Install a fault plan (forwarded to the DAC engine; nullptr:
     * fault-free). The plan must outlive the simulation. */
    void setFaultPlan(const FaultPlan *faults);

    /** Install the observability collector (nullptr: off; DESIGN.md
     * §11). Issue slots, stall attribution, and chrome-trace spans
     * report through it. Must outlive the simulation. */
    void setObserver(ObsCollector *obs) { obs_ = obs; }

    /** Occupancy probe for timeline sampling (DESIGN.md §11). */
    struct ObsOccupancy
    {
        int activeWarps = 0; ///< unfinished warps of the resident batch
        int atq = 0;         ///< affine tuple queue entries
        int pwaq = 0;        ///< per-warp address queue entries (total)
        int pwpq = 0;        ///< per-warp predicate queue entries (total)
    };
    ObsOccupancy
    obsOccupancy() const
    {
        ObsOccupancy o;
        o.activeWarps = liveWarps_;
        if (dacEngine_) {
            o.atq = dacEngine_->atqSize();
            o.pwaq = dacEngine_->pwaqTotal();
            o.pwpq = dacEngine_->pwpqTotal();
        }
        return o;
    }

    /** One line per resident warp (pc, masks, blockers) for the
     * watchdog's structured state dump. */
    std::string dumpWarpStates() const;

  private:
    struct Cta
    {
        Idx3 id;
        int liveWarps = 0;
        int barArrived = 0;
        int barPassed = 0;           ///< epoch-counted barriers passed
        bool barEpochCounted = false; ///< flag of the barrier being waited
        std::vector<std::uint8_t> shared;
    };

    struct Warp
    {
        int ctaSlot = 0;
        int warpInCta = 0;
        ThreadMask valid = 0;
        SimtStack stack;
        std::vector<RegVal> regs;       ///< numRegs x warpSize
        std::vector<ThreadMask> preds;  ///< bit-per-lane predicate regs
        std::vector<Cycle> regReady;
        std::vector<Cycle> predReady;
        bool finished = true;
        bool atBarrier = false;
        /** A load whose line transactions were only partially accepted
         * (MSHR pressure); the LD/ST unit replays the rest. */
        std::vector<Addr> replayLines;
        Cycle replayReady = 0;
        int replayDstReg = -1;
        int replayPc = -1;
        /**
         * Host-only operand-wake cache (event core, DESIGN.md §13):
         * first cycle every operand of the warp's current instruction
         * is scoreboard-ready (max of the regReady/predReady entries
         * it names, scheduler availability excluded). Valid only until
         * the event that changes it — the warp's own issue (PC or
         * scoreboard change) or a replay writeback. Never serialized
         * or folded into state digests; audited against a fresh
         * recomputation every 4096 cycles.
         */
        mutable Cycle opWake = 0;
        mutable bool opWakeValid = false;
    };

    // ----- construction-time state -----------------------------------------
    int id_;
    const GpuConfig &gcfg_;
    Technique tech_;
    const DacConfig &dcfg_;
    const CaeConfig &ccfg_;
    MemorySystem &mem_;
    GpuMemory &gmem_;
    RunStats &stats_;

    std::unique_ptr<DacEngine> dacEngine_;
    std::unique_ptr<AffineWarp> affineWarp_;
    std::unique_ptr<MtaPrefetcher> mta_;
    const FaultPlan *faults_ = nullptr;
    ObsCollector *obs_ = nullptr;
    /** The injected affine-warp invalidation fired (fires once). */
    bool affineFaulted_ = false;

    // ----- per-launch state -------------------------------------------------
    LaunchInfo launch_;
    CtaDispatcher *dispatcher_ = nullptr;
    int warpsPerCta_ = 0;
    int maxCtas_ = 0;

    // ----- per-batch state ---------------------------------------------------
    bool batchActive_ = false;
    BatchInfo batch_;
    std::vector<Cta> ctas_;
    mutable std::vector<int> ctaBarScratch_; ///< see ctaBarPassed()
    std::vector<Warp> warps_;
    int liveWarps_ = 0;

    std::array<Cycle, 2> schedBusyUntil_{};
    std::array<int, 2> schedNext_{}; ///< round-robin pointers
    std::uint64_t progress_ = 0;
    /** Current cycle (for audit contexts raised below issue level). */
    Cycle now_ = 0;
    /** Warps with a pending LD/ST replay (lets serviceReplays skip its
     * whole-warp scan on the common no-replay cycle; recounted from
     * replayLines on snapshot restore, never serialized). */
    int replayPending_ = 0;
    /** Host-only SM wake cache (event core, DESIGN.md §13): the last
     * nextEventCycle() bound, invalidated by every step of this SM and
     * by beginKernel/snapshot restore. Never serialized or digested. */
    mutable Cycle wake_ = 0;
    mutable bool wakeValid_ = false;

    // ----- batch management ----------------------------------------------
    void launchBatch(Cycle now);
    void finishBatchIfDone(Cycle now);
    /** Per-CTA-slot barrier-pass counts for the engine's fetch gate.
     * Refills a member scratch vector (called every DAC cycle; a
     * fresh allocation per call dominated the engine's host cost). */
    const std::vector<int> &ctaBarPassed() const;

    // ----- interpreter helpers ---------------------------------------------
    Idx3 tidOf(const Warp &w, int lane) const;
    RegVal readOperand(const Warp &w, const Operand &op, int lane) const;
    RegVal &regAt(Warp &w, int reg, int lane);
    RegVal regAt(const Warp &w, int reg, int lane) const;
    ThreadMask effectiveMask(const Warp &w, const Instruction &inst) const;

    // ----- issue logic -------------------------------------------------------
    /** Attempt to issue warp @p wi on scheduler @p sched. */
    bool tryIssue(int wi, int sched, Cycle now);
    bool sourcesReady(const Warp &w, const Instruction &inst,
                      Cycle now) const;
    /** First cycle every operand @p inst names is ready in @p w (the
     * value cached in Warp::opWake). */
    Cycle operandWake(const Warp &w, const Instruction &inst) const;
    /** Wake bound of a warp whose next instruction is a deq, given
     * @p ready = first cycle its operands and scheduler slot clear
     * (§13): @p ready if the attempt would pop (or fault) live,
     * max(ready, rec->ready) for in-flight early-fetched data, and
     * ~Cycle(0) for an empty queue — record delivery is the engine's
     * (or the affine warp's) wake, already in the SM minimum. Stall
     * accrual for the skipped attempts is reconstructed by
     * accrueSkippedDeqStalls. */
    Cycle deqAttemptWake(int wi, const Warp &w, const Instruction &inst,
                         Cycle now, Cycle ready) const;
    /** Reconstruct the deqStallCycles the stepped schedule would have
     * counted over the skipped cycles (prev, now): while the SM slept,
     * queue state, operand readiness, and slot busy-times were frozen,
     * so each parked deq warp stalls once per cycle from
     * max(prev+1, opWake, slot busy-until) to now-1. */
    void accrueSkippedDeqStalls(Cycle prev, Cycle now);
    /** Technique: can/should this inst issue on a CAE affine unit? */
    bool caeEligible(const Warp &w, const Instruction &inst,
                     ThreadMask eff) const;

    void execAlu(Warp &w, const Instruction &inst, ThreadMask eff,
                 Cycle now);
    void execSetp(Warp &w, const Instruction &inst, ThreadMask eff,
                  Cycle now);
    void execBranch(Warp &w, const Instruction &inst, ThreadMask eff);
    /** Returns false when the memory inst cannot issue this cycle. */
    bool execMemory(int wi, Warp &w, const Instruction &inst,
                    ThreadMask eff, Cycle now);
    bool execDeq(int wi, Warp &w, const Instruction &inst, ThreadMask eff,
                 Cycle now);
    void execBarrier(int wi, Warp &w, const Instruction &inst);
    void execExit(int wi, Warp &w, ThreadMask eff);
    void releaseBarrier(int cta_slot);
    void warpFinished(int wi);

    void serviceReplays(Cycle now);

    // ----- stall attribution (observability, DESIGN.md §11) ----------------
    /**
     * Why scheduler @p s failed to issue this cycle, read-only, after
     * the issue attempt came up empty. Returns the charged reason and
     * sets @p warp to the candidate it blames (-1: the affine warp).
     * Exactly one reason per idle slot keeps the exclusivity invariant
     * (per-warp, per-SM, and total counts all sum to idle slots).
     */
    StallReason classifyStall(int s, Cycle now, int *warp) const;
    /** The single blocking reason for one unfinished warp candidate. */
    StallReason warpStallReason(int wi, const Warp &w, Cycle now) const;
    /** Read-only mirror of execDeq's structural checks: would this deq
     * instruction block right now? */
    bool deqBlocked(const Warp &w, const Instruction &inst, int wi,
                    Cycle now) const;

    /** Periodic conservation checks (scoreboard, barriers, queues). */
    void audit(Cycle now) const;

    friend class StateIo;
};

} // namespace dacsim

#endif // DACSIM_SIM_SM_H
