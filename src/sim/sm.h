/**
 * @file
 * One streaming multiprocessor: warp contexts, SIMT stacks,
 * scoreboards, two warp schedulers, barrier handling, CTA batch
 * residency, and the technique hooks (CAE affine units, MTA
 * prefetcher, DAC engine + affine warp).
 */

#ifndef DACSIM_SIM_SM_H
#define DACSIM_SIM_SM_H

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "baselines/mta.h"
#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "dac/affine_warp.h"
#include "dac/engine.h"
#include "isa/instruction.h"
#include "mem/gpu_memory.h"
#include "mem/mem_system.h"
#include "sim/batch.h"
#include "sim/simt_stack.h"

namespace dacsim
{

class ObsCollector;
class StateIo;

/** Everything an SM needs to run one kernel launch. */
struct LaunchInfo
{
    /** The stream ordinary warps execute (the original kernel, or the
     * non-affine stream under DAC). */
    const Kernel *kernel = nullptr;
    /** The affine stream (DAC only). */
    const Kernel *affineKernel = nullptr;
    Dim3 grid;
    Dim3 block;
    const std::vector<RegVal> *params = nullptr;
    /**
     * Optional per-PC marks: instructions counted toward
     * RunStats::affineCoveredInsts when issued (used to measure DAC's
     * affine coverage on a baseline run; Fig 18).
     */
    const std::vector<bool> *coverageMarks = nullptr;
};

/** Hands out CTAs to SMs; shared by all SMs of a launch. */
class CtaDispatcher
{
  public:
    CtaDispatcher(long long total, int num_sms)
        : total_(total), numSms_(std::max(1, num_sms))
    {
    }

    /**
     * Claim up to @p n CTAs. Small grids are spread across the SMs
     * (as the hardware's round-robin CTA issue does) rather than
     * packed onto the first few.
     */
    std::pair<long long, int>
    take(int n)
    {
        long long remaining = total_ - next_;
        long long fair = (remaining + numSms_ - 1) / numSms_;
        long long grant;
        if (remaining >= numSms_) {
            // Keep batches at least half-full so the per-batch fixed
            // costs (e.g. DAC's affine warp) amortize, while still
            // spreading mid-sized grids across the SMs.
            grant = std::clamp<long long>(fair, (n + 1) / 2, n);
        } else {
            grant = 1; // spread the tail
        }
        int got = static_cast<int>(std::min(grant, remaining));
        long long first = next_;
        next_ += got;
        return {first, got};
    }

    bool exhausted() const { return next_ >= total_; }

  private:
    friend class StateIo;

    long long total_;
    int numSms_;
    long long next_ = 0;
};

class Sm
{
  public:
    Sm(int id, const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
       const CaeConfig &ccfg, const MtaConfig &mcfg, MemorySystem &mem,
       GpuMemory &gmem, RunStats &stats);

    void beginKernel(const LaunchInfo &launch, CtaDispatcher *dispatcher);

    /** True while a batch is resident or more CTAs can be claimed. */
    bool busy() const;

    void cycle(Cycle now);

    /**
     * A lower bound (> @p now) on the next cycle at which stepping
     * this SM could change any simulated state or statistic; ~Cycle(0)
     * when no future event exists. Cycles strictly before the returned
     * bound are exact no-ops, so the GPU clock may skip them without
     * altering results. Conservative: returns now+1 whenever per-cycle
     * effects cannot be ruled out (fault plans, pending ATQ expansion,
     * deq retries that count stall cycles).
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Monotone counter for the top-level deadlock watchdog. */
    std::uint64_t progress() const { return progress_; }

    /** Install a fault plan (forwarded to the DAC engine; nullptr:
     * fault-free). The plan must outlive the simulation. */
    void setFaultPlan(const FaultPlan *faults);

    /** Install the observability collector (nullptr: off; DESIGN.md
     * §11). Issue slots, stall attribution, and chrome-trace spans
     * report through it. Must outlive the simulation. */
    void setObserver(ObsCollector *obs) { obs_ = obs; }

    /** Occupancy probe for timeline sampling (DESIGN.md §11). */
    struct ObsOccupancy
    {
        int activeWarps = 0; ///< unfinished warps of the resident batch
        int atq = 0;         ///< affine tuple queue entries
        int pwaq = 0;        ///< per-warp address queue entries (total)
        int pwpq = 0;        ///< per-warp predicate queue entries (total)
    };
    ObsOccupancy
    obsOccupancy() const
    {
        ObsOccupancy o;
        o.activeWarps = liveWarps_;
        if (dacEngine_) {
            o.atq = dacEngine_->atqSize();
            o.pwaq = dacEngine_->pwaqTotal();
            o.pwpq = dacEngine_->pwpqTotal();
        }
        return o;
    }

    /** One line per resident warp (pc, masks, blockers) for the
     * watchdog's structured state dump. */
    std::string dumpWarpStates() const;

  private:
    struct Cta
    {
        Idx3 id;
        int liveWarps = 0;
        int barArrived = 0;
        int barPassed = 0;           ///< epoch-counted barriers passed
        bool barEpochCounted = false; ///< flag of the barrier being waited
        std::vector<std::uint8_t> shared;
    };

    struct Warp
    {
        int ctaSlot = 0;
        int warpInCta = 0;
        ThreadMask valid = 0;
        SimtStack stack;
        std::vector<RegVal> regs;       ///< numRegs x warpSize
        std::vector<ThreadMask> preds;  ///< bit-per-lane predicate regs
        std::vector<Cycle> regReady;
        std::vector<Cycle> predReady;
        bool finished = true;
        bool atBarrier = false;
        /** A load whose line transactions were only partially accepted
         * (MSHR pressure); the LD/ST unit replays the rest. */
        std::vector<Addr> replayLines;
        Cycle replayReady = 0;
        int replayDstReg = -1;
        int replayPc = -1;
    };

    // ----- construction-time state -----------------------------------------
    int id_;
    const GpuConfig &gcfg_;
    Technique tech_;
    const DacConfig &dcfg_;
    const CaeConfig &ccfg_;
    MemorySystem &mem_;
    GpuMemory &gmem_;
    RunStats &stats_;

    std::unique_ptr<DacEngine> dacEngine_;
    std::unique_ptr<AffineWarp> affineWarp_;
    std::unique_ptr<MtaPrefetcher> mta_;
    const FaultPlan *faults_ = nullptr;
    ObsCollector *obs_ = nullptr;
    /** The injected affine-warp invalidation fired (fires once). */
    bool affineFaulted_ = false;

    // ----- per-launch state -------------------------------------------------
    LaunchInfo launch_;
    CtaDispatcher *dispatcher_ = nullptr;
    int warpsPerCta_ = 0;
    int maxCtas_ = 0;

    // ----- per-batch state ---------------------------------------------------
    bool batchActive_ = false;
    BatchInfo batch_;
    std::vector<Cta> ctas_;
    mutable std::vector<int> ctaBarScratch_; ///< see ctaBarPassed()
    std::vector<Warp> warps_;
    int liveWarps_ = 0;

    std::array<Cycle, 2> schedBusyUntil_{};
    std::array<int, 2> schedNext_{}; ///< round-robin pointers
    std::uint64_t progress_ = 0;
    /** Current cycle (for audit contexts raised below issue level). */
    Cycle now_ = 0;

    // ----- batch management ----------------------------------------------
    void launchBatch(Cycle now);
    void finishBatchIfDone(Cycle now);
    /** Per-CTA-slot barrier-pass counts for the engine's fetch gate.
     * Refills a member scratch vector (called every DAC cycle; a
     * fresh allocation per call dominated the engine's host cost). */
    const std::vector<int> &ctaBarPassed() const;

    // ----- interpreter helpers ---------------------------------------------
    Idx3 tidOf(const Warp &w, int lane) const;
    RegVal readOperand(const Warp &w, const Operand &op, int lane) const;
    RegVal &regAt(Warp &w, int reg, int lane);
    RegVal regAt(const Warp &w, int reg, int lane) const;
    ThreadMask effectiveMask(const Warp &w, const Instruction &inst) const;

    // ----- issue logic -------------------------------------------------------
    /** Attempt to issue warp @p wi on scheduler @p sched. */
    bool tryIssue(int wi, int sched, Cycle now);
    bool sourcesReady(const Warp &w, const Instruction &inst,
                      Cycle now) const;
    /** Technique: can/should this inst issue on a CAE affine unit? */
    bool caeEligible(const Warp &w, const Instruction &inst,
                     ThreadMask eff) const;

    void execAlu(Warp &w, const Instruction &inst, ThreadMask eff,
                 Cycle now);
    void execSetp(Warp &w, const Instruction &inst, ThreadMask eff,
                  Cycle now);
    void execBranch(Warp &w, const Instruction &inst, ThreadMask eff);
    /** Returns false when the memory inst cannot issue this cycle. */
    bool execMemory(int wi, Warp &w, const Instruction &inst,
                    ThreadMask eff, Cycle now);
    bool execDeq(int wi, Warp &w, const Instruction &inst, ThreadMask eff,
                 Cycle now);
    void execBarrier(int wi, Warp &w, const Instruction &inst);
    void execExit(int wi, Warp &w, ThreadMask eff);
    void releaseBarrier(int cta_slot);
    void warpFinished(int wi);

    void serviceReplays(Cycle now);

    // ----- stall attribution (observability, DESIGN.md §11) ----------------
    /**
     * Why scheduler @p s failed to issue this cycle, read-only, after
     * the issue attempt came up empty. Returns the charged reason and
     * sets @p warp to the candidate it blames (-1: the affine warp).
     * Exactly one reason per idle slot keeps the exclusivity invariant
     * (per-warp, per-SM, and total counts all sum to idle slots).
     */
    StallReason classifyStall(int s, Cycle now, int *warp) const;
    /** The single blocking reason for one unfinished warp candidate. */
    StallReason warpStallReason(int wi, const Warp &w, Cycle now) const;
    /** Read-only mirror of execDeq's structural checks: would this deq
     * instruction block right now? */
    bool deqBlocked(const Warp &w, const Instruction &inst, int wi,
                    Cycle now) const;

    /** Periodic conservation checks (scoreboard, barriers, queues). */
    void audit(Cycle now) const;

    friend class StateIo;
};

} // namespace dacsim

#endif // DACSIM_SIM_SM_H
