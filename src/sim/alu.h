/**
 * @file
 * Scalar ALU semantics, shared by the baseline SIMT interpreter, the
 * CAE affine units, and the DAC affine warp / expansion units, so that
 * every execution path computes bit-identical results.
 */

#ifndef DACSIM_SIM_ALU_H
#define DACSIM_SIM_ALU_H

#include "common/log.h"
#include "common/types.h"
#include "isa/opcode.h"

namespace dacsim
{

/**
 * Remainder with the sign of the divisor (mathematical mod for positive
 * divisors). GPU kernels use mod to fold indices into tables, which
 * requires a non-negative result for non-negative divisors.
 */
inline RegVal
gpuMod(RegVal a, RegVal b)
{
    require(b != 0, "mod by zero");
    RegVal r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        r += b;
    return r;
}

/** Floor division consistent with gpuMod: a == b*div + mod. */
inline RegVal
gpuDiv(RegVal a, RegVal b)
{
    require(b != 0, "division by zero");
    RegVal q = a / b;
    RegVal r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        --q;
    return q;
}

/** Evaluate a comparison. */
inline bool
cmpCompute(CmpOp op, RegVal a, RegVal b)
{
    switch (op) {
      case CmpOp::Eq: return a == b;
      case CmpOp::Ne: return a != b;
      case CmpOp::Lt: return a < b;
      case CmpOp::Le: return a <= b;
      case CmpOp::Gt: return a > b;
      case CmpOp::Ge: return a >= b;
    }
    panic("bad CmpOp");
}

/**
 * Evaluate a (non-memory, non-control) ALU opcode. @p c is the third
 * source for mad, and the selector (0/1) for sel.
 */
inline RegVal
aluCompute(Opcode op, RegVal a, RegVal b = 0, RegVal c = 0)
{
    auto shamt = [](RegVal s) { return static_cast<int>(s & 63); };
    switch (op) {
      case Opcode::Mov: return a;
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::Mad: return a * b + c;
      case Opcode::Shl: return a << shamt(b);
      case Opcode::Shr: return a >> shamt(b);
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Not: return ~a;
      case Opcode::Min: return a < b ? a : b;
      case Opcode::Max: return a > b ? a : b;
      case Opcode::Abs: return a < 0 ? -a : a;
      case Opcode::Div: return gpuDiv(a, b);
      case Opcode::Mod: return gpuMod(a, b);
      case Opcode::Sel: return c ? a : b;
      default: panic("aluCompute: non-ALU opcode ", opcodeName(op));
    }
}

} // namespace dacsim

#endif // DACSIM_SIM_ALU_H
