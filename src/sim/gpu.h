/**
 * @file
 * Top-level GPU model: the SM array plus the shared memory system,
 * with a cycle-stepped run loop, a deadlock watchdog, a rolling
 * state-hash chain, and checkpoint/restore (DESIGN.md §9).
 */

#ifndef DACSIM_SIM_GPU_H
#define DACSIM_SIM_GPU_H

#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "mem/gpu_memory.h"
#include "mem/mem_system.h"
#include "sim/sm.h"

namespace dacsim
{

class ObsCollector;
class StateIo;

class Gpu
{
  public:
    Gpu(const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
        const CaeConfig &ccfg, const MtaConfig &mcfg, GpuMemory &gmem);

    /**
     * Run one kernel launch to completion and return the cumulative
     * statistics so far. Successive launches keep cache state warm
     * (as on real hardware) and accumulate into the same counters.
     * After restoreSnapshot(), the first launch() continues the
     * interrupted launch instead of starting it over.
     */
    const RunStats &launch(const LaunchInfo &launch);

    const RunStats &stats() const { return stats_; }
    Technique technique() const { return tech_; }
    MemorySystem &memorySystem() { return *mem_; }
    const MemorySystem &memorySystem() const { return *mem_; }
    int smCount() const { return static_cast<int>(sms_.size()); }
    const Sm &sm(int i) const
    {
        return *sms_[static_cast<std::size_t>(i)];
    }

    /** Install a fault plan consulted by the memory system and the SMs
     * (empty or nullptr: fault-free). Call before launch(); the plan
     * must outlive the Gpu. */
    void setFaultPlan(const FaultPlan *faults);

    /**
     * Install the observability collector (DESIGN.md §11; nullptr:
     * observability off, the default — every instrumented site then
     * costs one predictable branch). Fans out to the SMs and the
     * memory system; the collector samples timelines from the
     * 4096-cycle audit boundary and, when doing stall attribution,
     * forces per-cycle stepping (fast-forward off, like a fault plan).
     * Call before launch(); the collector must outlive the Gpu.
     */
    void setObserver(ObsCollector *obs);

    /** Per-SM warp states (the watchdog's structured dump). */
    std::string dumpState() const;

    // ----- state-hash chain & checkpointing (DESIGN.md §9) ---------------

    /** Every fold of the rolling state hash so far: one link per
     * 4096-cycle audit boundary plus one per launch end. */
    const std::vector<HashLink> &hashChain() const { return hashChain_; }

    /** Fully completed launch() calls (a snapshot taken mid-launch
     * restores into the same count, so the harness knows where to
     * rejoin its launch loop). */
    std::uint64_t launchesDone() const { return launchesDone_; }

    /**
     * Hook invoked at every 4096-cycle audit boundary, after the
     * memory audit and hash fold but before the watchdog check. The
     * harness uses it to write periodic snapshots and track the last
     * folded hash; a throwing hook aborts the launch (the
     * kill-mid-run test knob).
     */
    using BoundaryHook = std::function<void(Gpu &, Cycle)>;
    void setBoundaryHook(BoundaryHook hook) { hook_ = std::move(hook); }

    /**
     * Serialize the complete architectural + microarchitectural state
     * to a versioned, CRC-protected snapshot. Legal at any audit
     * boundary (i.e. from the boundary hook) or between launches.
     */
    void saveSnapshot(std::ostream &os) const;

    /**
     * Restore a snapshot into this freshly constructed Gpu. The
     * machine configuration must match the snapshot's fingerprint.
     * @p launch_info_for maps a launch index to the LaunchInfo the
     * original run used for it (the harness rebuilds these
     * deterministically); it is invoked once, for the launch the
     * snapshot interrupted. Returns that launch index; the next
     * launch() call resumes it mid-flight.
     */
    std::uint64_t
    restoreSnapshot(std::istream &is,
                    const std::function<LaunchInfo(std::uint64_t)>
                        &launch_info_for);

  private:
    friend class StateIo;

    GpuConfig gcfg_;
    Technique tech_;
    DacConfig dcfg_;
    CaeConfig ccfg_;
    MtaConfig mcfg_;
    RunStats stats_;
    const FaultPlan *faults_ = nullptr;
    ObsCollector *obs_ = nullptr;
    GpuMemory &gmem_;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<Sm>> sms_;
    Cycle cycle_ = 0;

    /** CTA dispatcher of the current launch (members, not locals, so
     * snapshots can capture mid-launch run-loop state). */
    std::optional<CtaDispatcher> dispatcher_;
    std::uint64_t watchdogProgress_ = 0;
    Cycle watchdogCycle_ = 0;

    std::vector<HashLink> hashChain_;
    std::uint64_t launchesDone_ = 0;
    /** restoreSnapshot() succeeded; the next launch() continues the
     * interrupted launch instead of re-dispatching it. */
    bool resumed_ = false;
    BoundaryHook hook_;

    std::uint64_t totalProgress() const;
    /** Digest of architectural state (implemented with StateIo). */
    std::uint64_t digestState() const;
    /** Fold the current state digest into the hash chain. */
    void foldHash();
};

} // namespace dacsim

#endif // DACSIM_SIM_GPU_H
