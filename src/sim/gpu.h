/**
 * @file
 * Top-level GPU model: the SM array plus the shared memory system,
 * with a cycle-stepped run loop and a deadlock watchdog.
 */

#ifndef DACSIM_SIM_GPU_H
#define DACSIM_SIM_GPU_H

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "mem/gpu_memory.h"
#include "mem/mem_system.h"
#include "sim/sm.h"

namespace dacsim
{

class Gpu
{
  public:
    Gpu(const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
        const CaeConfig &ccfg, const MtaConfig &mcfg, GpuMemory &gmem);

    /**
     * Run one kernel launch to completion and return the cumulative
     * statistics so far. Successive launches keep cache state warm
     * (as on real hardware) and accumulate into the same counters.
     */
    const RunStats &launch(const LaunchInfo &launch);

    const RunStats &stats() const { return stats_; }
    Technique technique() const { return tech_; }
    MemorySystem &memorySystem() { return *mem_; }

    /** Install a fault plan consulted by the memory system and the SMs
     * (empty or nullptr: fault-free). Call before launch(); the plan
     * must outlive the Gpu. */
    void setFaultPlan(const FaultPlan *faults);

    /** Per-SM warp states (the watchdog's structured dump). */
    std::string dumpState() const;

  private:
    GpuConfig gcfg_;
    Technique tech_;
    DacConfig dcfg_;
    CaeConfig ccfg_;
    MtaConfig mcfg_;
    RunStats stats_;
    const FaultPlan *faults_ = nullptr;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<std::unique_ptr<Sm>> sms_;
    Cycle cycle_ = 0;

    std::uint64_t totalProgress() const;
};

} // namespace dacsim

#endif // DACSIM_SIM_GPU_H
