/**
 * @file
 * Checkpoint/restore and state digest for the whole GPU model
 * (DESIGN.md §9).
 *
 * StateIo is the one friend class every state-bearing component grants
 * access to; all serialization logic lives here so the field lists
 * stay reviewable in one place. Three operations share those lists:
 *
 *  - save():    full architectural + microarchitectural state to a
 *               CRC-sectioned snapshot (common/snapshot.h).
 *  - restore(): the inverse, into a freshly constructed Gpu with a
 *               matching configuration fingerprint. Host-side memo
 *               caches (MSHR live-count memo, AEU retry parking, ATQ
 *               expansion caches) are deliberately NOT serialized —
 *               they are reset to their cold state, which is
 *               results-transparent by construction.
 *  - digest():  a cheap rolling hash of architectural state folded at
 *               every 4096-cycle audit boundary. Only fast-forward-
 *               invariant state participates, so the chain is
 *               identical with FF on and off.
 */

#include <algorithm>
#include <vector>

#include "common/snapshot.h"
#include "sim/fingerprint.h"
#include "sim/gpu.h"

namespace dacsim
{

class StateIo
{
  public:
    static void save(const Gpu &g, std::ostream &os);
    static std::uint64_t
    restore(Gpu &g, std::istream &is,
            const std::function<LaunchInfo(std::uint64_t)> &li_for);
    static std::uint64_t digest(const Gpu &g);

  private:
    static constexpr std::uint32_t version = 1;

    static std::uint64_t fingerprint(const Gpu &g);

    // ----- small aggregates ------------------------------------------------
    static void putMaskSet(SnapshotWriter &w, const MaskSet &m);
    static MaskSet getMaskSet(SnapshotReader &r);
    static void putAffineValue(SnapshotWriter &w, const AffineValue &v);
    static AffineValue getAffineValue(SnapshotReader &r);
    static void putTagArray(SnapshotWriter &w, const TagArray &t);
    static void getTagArray(SnapshotReader &r, TagArray &t);
    static void putMshrTable(SnapshotWriter &w,
                             const MemorySystem::MshrTable &m);
    static void getMshrTable(SnapshotReader &r, MemorySystem::MshrTable &m);
    static void putAddrRecord(SnapshotWriter &w,
                              const DacEngine::AddrRecord &rec);
    static DacEngine::AddrRecord getAddrRecord(SnapshotReader &r);

    // ----- subsystems ------------------------------------------------------
    static void saveMem(SnapshotWriter &w, const MemorySystem &mem);
    static void restoreMem(SnapshotReader &r, MemorySystem &mem);
    static void saveGmem(SnapshotWriter &w, const GpuMemory &gm);
    static void restoreGmem(SnapshotReader &r, GpuMemory &gm);
    static void saveSm(SnapshotWriter &w, const Sm &sm);
    static void restoreSm(SnapshotReader &r, Sm &sm);
    static void saveEngine(SnapshotWriter &w, const DacEngine &e);
    static void restoreEngine(SnapshotReader &r, DacEngine &e,
                              const BatchInfo *batch);
    static void saveAffine(SnapshotWriter &w, const AffineWarp &a);
    static void restoreAffine(SnapshotReader &r, AffineWarp &a,
                              const Sm &sm);
    static void saveMta(SnapshotWriter &w, const MtaPrefetcher &m);
    static void restoreMta(SnapshotReader &r, MtaPrefetcher &m);
};

// ---------------------------------------------------------------------------
// Configuration fingerprint
// ---------------------------------------------------------------------------

std::uint64_t
StateIo::fingerprint(const Gpu &g)
{
    return configFingerprint(g.tech_, g.gcfg_, g.dcfg_, g.ccfg_, g.mcfg_);
}

std::uint64_t
configFingerprint(Technique tech, const GpuConfig &c, const DacConfig &d,
                  const CaeConfig &ca, const MtaConfig &m)
{
    StateHash h;
    h.fold(static_cast<int>(tech));
    h.fold(c.numSms);
    h.fold(c.maxWarpsPerSm);
    h.fold(c.lanesPerSm);
    h.fold(c.maxCtasPerSm);
    h.fold(c.aluLatency);
    h.fold(c.sharedLatency);
    h.fold(c.nocLatency);
    h.fold(c.sched.schedulersPerSm);
    h.fold(c.sched.warpIssueCycles);
    for (const CacheConfig *cc : {&c.l1, &c.l2}) {
        h.fold(cc->sizeBytes);
        h.fold(cc->ways);
        h.fold(cc->mshrs);
        h.fold(cc->hitLatency);
    }
    h.fold(c.dram.latency);
    h.fold(c.dram.partitions);
    h.fold(c.dram.cyclesPerLine);
    h.fold(c.dram.queueDepth);
    h.fold(c.perfectMemory);
    h.fold(c.watchdogCycles);
    // simCore and hashPerturbCycle are deliberately excluded: both are
    // results-transparent host knobs, so runs differing only in them
    // may exchange snapshots (the bisect harness and the cross-core
    // resume tests depend on it) and share service cache entries.
    h.fold(d.atqEntries);
    h.fold(d.pwaqEntries);
    h.fold(d.pwpqEntries);
    h.fold(d.stackDepth);
    h.fold(d.maxDivergentConditions);
    h.fold(d.expansionsPerCycle);
    h.fold(d.bugPerturbAffineImm);
    h.fold(ca.affineUnits);
    h.fold(ca.affineIssueCycles);
    h.fold(m.bufferBytes);
    h.fold(m.tableEntries);
    h.fold(m.trainThreshold);
    h.fold(m.maxDegree);
    h.fold(m.throttleEvictions);
    h.fold(m.throttleWindow);
    return h.value();
}

std::uint64_t
kernelFingerprint(const Kernel &kernel)
{
    StateHash h;
    auto foldString = [&h](const std::string &s) {
        h.fold(static_cast<std::uint64_t>(s.size()));
        for (unsigned char c : s)
            h.fold(static_cast<std::uint64_t>(c));
    };
    foldString(kernel.name);
    h.fold(kernel.numRegs);
    h.fold(kernel.numPreds);
    h.fold(kernel.sharedBytes);
    h.fold(static_cast<std::uint64_t>(kernel.params.size()));
    for (const std::string &p : kernel.params)
        foldString(p);
    foldString(kernel.disassemble());
    return h.value();
}

// ---------------------------------------------------------------------------
// Small aggregates
// ---------------------------------------------------------------------------

void
StateIo::putMaskSet(SnapshotWriter &w, const MaskSet &m)
{
    w.putU32(static_cast<std::uint32_t>(m.size()));
    for (ThreadMask t : m)
        w.putU32(t);
}

MaskSet
StateIo::getMaskSet(SnapshotReader &r)
{
    MaskSet m(r.getU32());
    for (ThreadMask &t : m)
        t = r.getU32();
    return m;
}

void
StateIo::putAffineValue(SnapshotWriter &w, const AffineValue &v)
{
    w.putU32(static_cast<std::uint32_t>(v.variants_.size()));
    for (const AffineVariant &var : v.variants_) {
        const AffineTuple &t = var.tuple;
        w.putI64(t.base);
        for (int d = 0; d < 3; ++d)
            w.putI64(t.tidOff[static_cast<std::size_t>(d)]);
        for (int d = 0; d < 3; ++d)
            w.putI64(t.ctaOff[static_cast<std::size_t>(d)]);
        w.putBool(t.hasMod);
        w.putI64(t.modScale);
        w.putI64(t.modBase);
        for (int d = 0; d < 3; ++d)
            w.putI64(t.modTidOff[static_cast<std::size_t>(d)]);
        for (int d = 0; d < 3; ++d)
            w.putI64(t.modCtaOff[static_cast<std::size_t>(d)]);
        w.putI64(t.divisor);
        w.putBool(var.cond != nullptr);
        if (var.cond)
            putMaskSet(w, *var.cond);
    }
}

AffineValue
StateIo::getAffineValue(SnapshotReader &r)
{
    AffineValue v;
    v.variants_.clear();
    std::uint32_t n = r.getU32();
    require(n >= 1 && n <= AffineValue::maxVariants,
            "snapshot: affine value with ", n, " variants");
    for (std::uint32_t i = 0; i < n; ++i) {
        AffineVariant var;
        AffineTuple &t = var.tuple;
        t.base = r.getI64();
        for (int d = 0; d < 3; ++d)
            t.tidOff[static_cast<std::size_t>(d)] = r.getI64();
        for (int d = 0; d < 3; ++d)
            t.ctaOff[static_cast<std::size_t>(d)] = r.getI64();
        t.hasMod = r.getBool();
        t.modScale = r.getI64();
        t.modBase = r.getI64();
        for (int d = 0; d < 3; ++d)
            t.modTidOff[static_cast<std::size_t>(d)] = r.getI64();
        for (int d = 0; d < 3; ++d)
            t.modCtaOff[static_cast<std::size_t>(d)] = r.getI64();
        t.divisor = r.getI64();
        if (r.getBool())
            var.cond = std::make_shared<const MaskSet>(getMaskSet(r));
        v.variants_.push_back(std::move(var));
    }
    return v;
}

void
StateIo::putTagArray(SnapshotWriter &w, const TagArray &t)
{
    w.putU32(static_cast<std::uint32_t>(t.ways_));
    w.putU32(static_cast<std::uint32_t>(t.sets_));
    w.putU64(t.tick_);
    for (const TagArray::Line &l : t.lines_) {
        w.putU64(l.addr);
        w.putBool(l.valid);
        w.putU64(l.lastUse);
        w.putI64(l.lockCount);
        w.putBool(l.prefetched);
        w.putBool(l.referenced);
    }
}

void
StateIo::getTagArray(SnapshotReader &r, TagArray &t)
{
    int ways = static_cast<int>(r.getU32());
    int sets = static_cast<int>(r.getU32());
    require(ways == t.ways_ && sets == t.sets_,
            "snapshot: cache geometry mismatch (", ways, "x", sets,
            " saved vs ", t.ways_, "x", t.sets_, " configured)");
    t.tick_ = r.getU64();
    for (TagArray::Line &l : t.lines_) {
        l.addr = r.getU64();
        l.valid = r.getBool();
        l.lastUse = r.getU64();
        l.lockCount = static_cast<int>(r.getI64());
        l.prefetched = r.getBool();
        l.referenced = r.getBool();
    }
}

void
StateIo::putMshrTable(SnapshotWriter &w, const MemorySystem::MshrTable &m)
{
    w.putU32(static_cast<std::uint32_t>(m.slots.size()));
    for (const auto &s : m.slots) {
        w.putU64(s.line);
        w.putU64(s.ready);
    }
}

void
StateIo::getMshrTable(SnapshotReader &r, MemorySystem::MshrTable &m)
{
    std::uint32_t n = r.getU32();
    require(n == m.slots.size(), "snapshot: MSHR count mismatch (", n,
            " saved vs ", m.slots.size(), " configured)");
    for (auto &s : m.slots) {
        s.line = r.getU64();
        s.ready = r.getU64();
    }
    // Host-side live-count memo: cold restart (results-transparent).
    m.cacheFrom = 1;
    m.cacheUntil = 0;
    m.cachedLive = 0;
}

void
StateIo::putAddrRecord(SnapshotWriter &w, const DacEngine::AddrRecord &rec)
{
    for (Addr a : rec.addrs)
        w.putU64(a);
    w.putU32(rec.mask);
    w.putU8(static_cast<std::uint8_t>(rec.width));
    w.putBool(rec.isData);
    w.putBool(rec.earlyFetched);
    w.putU32(static_cast<std::uint32_t>(rec.lines.size()));
    for (Addr l : rec.lines)
        w.putU64(l);
    w.putU64(rec.ready);
}

DacEngine::AddrRecord
StateIo::getAddrRecord(SnapshotReader &r)
{
    DacEngine::AddrRecord rec;
    for (Addr &a : rec.addrs)
        a = r.getU64();
    rec.mask = r.getU32();
    rec.width = static_cast<MemWidth>(r.getU8());
    rec.isData = r.getBool();
    rec.earlyFetched = r.getBool();
    std::uint32_t n = r.getU32();
    for (std::uint32_t i = 0; i < n; ++i)
        rec.lines.insert(r.getU64()); // stored sorted: O(1) appends
    rec.ready = r.getU64();
    return rec;
}

// ---------------------------------------------------------------------------
// Global memory
// ---------------------------------------------------------------------------

void
StateIo::saveGmem(SnapshotWriter &w, const GpuMemory &gm)
{
    w.putU64(gm.brk_);
    std::vector<Addr> keys;
    keys.reserve(gm.pages_.size());
    for (const auto &[page, bytes] : gm.pages_)
        keys.push_back(page);
    std::sort(keys.begin(), keys.end());
    w.putU64(keys.size());
    for (Addr k : keys) {
        w.putU64(k);
        w.putBytes(gm.pages_.at(k).data(), GpuMemory::pageSize);
    }
}

void
StateIo::restoreGmem(SnapshotReader &r, GpuMemory &gm)
{
    gm.brk_ = r.getU64();
    gm.pages_.clear();
    std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr k = r.getU64();
        r.getBytes(gm.pages_[k].data(), GpuMemory::pageSize);
    }
}

// ---------------------------------------------------------------------------
// Memory system
// ---------------------------------------------------------------------------

void
StateIo::saveMem(SnapshotWriter &w, const MemorySystem &mem)
{
    w.putU32(static_cast<std::uint32_t>(mem.sms_.size()));
    for (const auto &s : mem.sms_) {
        putTagArray(w, s.l1);
        putMshrTable(w, s.outstanding);
        w.putBool(s.pfBuffer != nullptr);
        if (s.pfBuffer) {
            putTagArray(w, *s.pfBuffer);
            putMshrTable(w, s.pfOutstanding);
        }
        w.putU64(s.unusedEvictions);
        w.putU64(s.unlockEpoch);
    }
    w.putU32(static_cast<std::uint32_t>(mem.l2_.size()));
    for (const TagArray &t : mem.l2_)
        putTagArray(w, t);
    w.putU32(static_cast<std::uint32_t>(mem.dramNextFree_.size()));
    for (Cycle c : mem.dramNextFree_)
        w.putU64(c);
}

void
StateIo::restoreMem(SnapshotReader &r, MemorySystem &mem)
{
    std::uint32_t nsm = r.getU32();
    require(nsm == mem.sms_.size(), "snapshot: SM count mismatch in "
            "memory system (", nsm, " vs ", mem.sms_.size(), ")");
    for (auto &s : mem.sms_) {
        getTagArray(r, s.l1);
        getMshrTable(r, s.outstanding);
        bool pf = r.getBool();
        require(pf == (s.pfBuffer != nullptr),
                "snapshot: prefetch-buffer presence mismatch");
        if (s.pfBuffer) {
            getTagArray(r, *s.pfBuffer);
            getMshrTable(r, s.pfOutstanding);
        }
        s.unusedEvictions = r.getU64();
        s.unlockEpoch = r.getU64();
    }
    std::uint32_t nl2 = r.getU32();
    require(nl2 == mem.l2_.size(), "snapshot: L2 slice count mismatch");
    for (TagArray &t : mem.l2_)
        getTagArray(r, t);
    std::uint32_t nd = r.getU32();
    require(nd == mem.dramNextFree_.size(),
            "snapshot: DRAM partition count mismatch");
    for (Cycle &c : mem.dramNextFree_)
        c = r.getU64();
}

// ---------------------------------------------------------------------------
// DAC engine + affine warp
// ---------------------------------------------------------------------------

void
StateIo::saveEngine(SnapshotWriter &w, const DacEngine &e)
{
    w.putBool(e.batch_ != nullptr);
    w.putU64(e.lastCycle_);
    w.putI64(e.pwaqCap_);
    w.putI64(e.pwpqCap_);
    w.putU32(static_cast<std::uint32_t>(e.atq_.size()));
    for (const DacEngine::AtqEntry &en : e.atq_) {
        w.putU8(static_cast<std::uint8_t>(en.kind));
        putAffineValue(w, en.value);
        putMaskSet(w, en.bits);
        putMaskSet(w, en.active);
        w.putU8(static_cast<std::uint8_t>(en.width));
        w.putU32(static_cast<std::uint32_t>(en.epochs.size()));
        for (int ep : en.epochs)
            w.putI64(ep);
        w.putU32(static_cast<std::uint32_t>(en.delivered.size()));
        for (bool d : en.delivered)
            w.putBool(d);
        w.putI64(en.undelivered);
        w.putI64(en.nextWarp);
        // expanded/expandedValid: host-side retry caches, rebuilt
        // lazily from immutable entry state — not serialized.
    }
    w.putU32(static_cast<std::uint32_t>(e.pwaq_.size()));
    for (const auto &q : e.pwaq_) {
        w.putU32(static_cast<std::uint32_t>(q.size()));
        for (const DacEngine::AddrRecord &rec : q)
            putAddrRecord(w, rec);
    }
    w.putU32(static_cast<std::uint32_t>(e.pwpq_.size()));
    for (const auto &q : e.pwpq_) {
        w.putU32(static_cast<std::uint32_t>(q.size()));
        for (const DacEngine::PredRecord &rec : q) {
            w.putU32(rec.bits);
            w.putU32(rec.mask);
        }
    }
}

void
StateIo::restoreEngine(SnapshotReader &r, DacEngine &e,
                       const BatchInfo *batch)
{
    bool hadBatch = r.getBool();
    e.batch_ = hadBatch ? batch : nullptr;
    e.lastCycle_ = r.getU64();
    e.pwaqCap_ = static_cast<int>(r.getI64());
    e.pwpqCap_ = static_cast<int>(r.getI64());
    e.atq_.clear();
    std::uint32_t natq = r.getU32();
    for (std::uint32_t i = 0; i < natq; ++i) {
        DacEngine::AtqEntry en;
        en.kind = static_cast<DacEngine::EntryKind>(r.getU8());
        en.value = getAffineValue(r);
        en.bits = getMaskSet(r);
        en.active = getMaskSet(r);
        en.width = static_cast<MemWidth>(r.getU8());
        en.epochs.resize(r.getU32());
        for (int &ep : en.epochs)
            ep = static_cast<int>(r.getI64());
        en.delivered.resize(r.getU32());
        for (std::size_t d = 0; d < en.delivered.size(); ++d)
            en.delivered[d] = r.getBool();
        en.undelivered = static_cast<int>(r.getI64());
        en.nextWarp = static_cast<int>(r.getI64());
        e.atq_.push_back(std::move(en));
    }
    std::uint32_t nw = r.getU32();
    e.pwaq_.assign(nw, {});
    for (auto &q : e.pwaq_) {
        std::uint32_t qs = r.getU32();
        for (std::uint32_t i = 0; i < qs; ++i)
            q.push_back(getAddrRecord(r));
    }
    std::uint32_t np = r.getU32();
    require(np == nw, "snapshot: PWAQ/PWPQ warp count mismatch");
    e.pwpq_.assign(np, {});
    for (auto &q : e.pwpq_) {
        std::uint32_t qs = r.getU32();
        for (std::uint32_t i = 0; i < qs; ++i) {
            DacEngine::PredRecord rec;
            rec.bits = r.getU32();
            rec.mask = r.getU32();
            q.push_back(rec);
        }
    }
    // Host-side retry parking and scan-idle latches restart cold: a
    // skipped-vs-attempted delivery differs only in host work, never
    // in simulated state or stats (see engine.h).
    e.parkedAddr_.assign(nw, false);
    e.parkedPred_.assign(nw, false);
    e.lockWaitEpoch_.assign(nw, ~0ull);
    e.mshrRetryAt_.assign(nw, 0);
    e.scanIdle_ = false;
    e.popCount_ = 0;
    e.scanPops_ = 0;
    e.scanEpoch_ = 0;
    e.scanWake_ = 0;
}

void
StateIo::saveAffine(SnapshotWriter &w, const AffineWarp &a)
{
    w.putBool(a.code_ != nullptr);
    w.putU32(static_cast<std::uint32_t>(a.stack_.entries_.size()));
    for (const AffineStack::Entry &en : a.stack_.entries_) {
        w.putI64(en.pc);
        w.putI64(en.rpc);
        putMaskSet(w, en.mask);
    }
    w.putU64(a.stack_.accesses_.wls);
    w.putU64(a.stack_.accesses_.pws);
    w.putI64(a.stack_.maxDepth_);
    putMaskSet(w, a.valid_);
    w.putU32(static_cast<std::uint32_t>(a.regs_.size()));
    for (const AffineValue &v : a.regs_)
        putAffineValue(w, v);
    for (Cycle c : a.regReady_)
        w.putU64(c);
    w.putU32(static_cast<std::uint32_t>(a.preds_.size()));
    for (const MaskSet &m : a.preds_)
        putMaskSet(w, m);
    for (Cycle c : a.predReady_)
        w.putU64(c);
    w.putU32(static_cast<std::uint32_t>(a.ctaEpochs_.size()));
    for (int ep : a.ctaEpochs_)
        w.putI64(ep);
    w.putBool(a.finished_);
}

void
StateIo::restoreAffine(SnapshotReader &r, AffineWarp &a, const Sm &sm)
{
    bool hadCode = r.getBool();
    a.code_ = hadCode ? sm.launch_.affineKernel : nullptr;
    a.batch_ = hadCode ? &sm.batch_ : nullptr;
    a.params_ = hadCode ? sm.launch_.params : nullptr;
    a.stack_.entries_.resize(r.getU32());
    for (AffineStack::Entry &en : a.stack_.entries_) {
        en.pc = static_cast<int>(r.getI64());
        en.rpc = static_cast<int>(r.getI64());
        en.mask = getMaskSet(r);
    }
    a.stack_.accesses_.wls = r.getU64();
    a.stack_.accesses_.pws = r.getU64();
    a.stack_.maxDepth_ = static_cast<int>(r.getI64());
    a.valid_ = getMaskSet(r);
    a.regs_.assign(r.getU32(), AffineValue{});
    for (AffineValue &v : a.regs_)
        v = getAffineValue(r);
    a.regReady_.assign(a.regs_.size(), 0);
    for (Cycle &c : a.regReady_)
        c = r.getU64();
    a.preds_.assign(r.getU32(), MaskSet{});
    for (MaskSet &m : a.preds_)
        m = getMaskSet(r);
    a.predReady_.assign(a.preds_.size(), 0);
    for (Cycle &c : a.predReady_)
        c = r.getU64();
    a.ctaEpochs_.resize(r.getU32());
    for (int &ep : a.ctaEpochs_)
        ep = static_cast<int>(r.getI64());
    a.finished_ = r.getBool();
    // The restore wrote the scoreboard behind the wake cache's back.
    a.wakeValid_ = false;
}

// ---------------------------------------------------------------------------
// MTA prefetcher
// ---------------------------------------------------------------------------

void
StateIo::saveMta(SnapshotWriter &w, const MtaPrefetcher &m)
{
    auto putEntry = [&](const MtaPrefetcher::StrideEntry &e) {
        w.putU64(e.lastLine);
        w.putI64(e.stride);
        w.putI64(e.confidence);
        w.putBool(e.valid);
    };
    // unordered_map iteration order is host-dependent: emit sorted.
    std::vector<std::uint64_t> intra;
    for (const auto &[k, v] : m.intraWarp_)
        intra.push_back(k);
    std::sort(intra.begin(), intra.end());
    w.putU32(static_cast<std::uint32_t>(intra.size()));
    for (std::uint64_t k : intra) {
        w.putU64(k);
        putEntry(m.intraWarp_.at(k));
    }
    std::vector<int> inter;
    for (const auto &[k, v] : m.interWarp_)
        inter.push_back(k);
    std::sort(inter.begin(), inter.end());
    w.putU32(static_cast<std::uint32_t>(inter.size()));
    for (int k : inter) {
        w.putI64(k);
        putEntry(m.interWarp_.at(k));
    }
    std::vector<int> last;
    for (const auto &[k, v] : m.lastWarp_)
        last.push_back(k);
    std::sort(last.begin(), last.end());
    w.putU32(static_cast<std::uint32_t>(last.size()));
    for (int k : last) {
        w.putI64(k);
        w.putI64(m.lastWarp_.at(k));
    }
    w.putI64(m.degree_);
    w.putI64(m.window_);
}

void
StateIo::restoreMta(SnapshotReader &r, MtaPrefetcher &m)
{
    auto getEntry = [&]() {
        MtaPrefetcher::StrideEntry e;
        e.lastLine = r.getU64();
        e.stride = r.getI64();
        e.confidence = static_cast<int>(r.getI64());
        e.valid = r.getBool();
        return e;
    };
    m.intraWarp_.clear();
    std::uint32_t ni = r.getU32();
    for (std::uint32_t i = 0; i < ni; ++i) {
        std::uint64_t k = r.getU64();
        m.intraWarp_[k] = getEntry();
    }
    m.interWarp_.clear();
    std::uint32_t nx = r.getU32();
    for (std::uint32_t i = 0; i < nx; ++i) {
        int k = static_cast<int>(r.getI64());
        m.interWarp_[k] = getEntry();
    }
    m.lastWarp_.clear();
    std::uint32_t nl = r.getU32();
    for (std::uint32_t i = 0; i < nl; ++i) {
        int k = static_cast<int>(r.getI64());
        m.lastWarp_[k] = static_cast<int>(r.getI64());
    }
    m.degree_ = static_cast<int>(r.getI64());
    m.window_ = static_cast<int>(r.getI64());
}

// ---------------------------------------------------------------------------
// One SM
// ---------------------------------------------------------------------------

void
StateIo::saveSm(SnapshotWriter &w, const Sm &sm)
{
    w.putBool(sm.affineFaulted_);
    w.putBool(sm.batchActive_);
    w.putI64(sm.liveWarps_);
    w.putU64(sm.progress_);
    w.putU64(sm.now_);
    for (Cycle c : sm.schedBusyUntil_)
        w.putU64(c);
    for (int n : sm.schedNext_)
        w.putI64(n);

    w.putI64(sm.batch_.numCtas);
    w.putU32(static_cast<std::uint32_t>(sm.batch_.warps.size()));
    for (const WarpSlot &s : sm.batch_.warps) {
        w.putI64(s.ctaSlot);
        w.putI64(s.ctaId.x);
        w.putI64(s.ctaId.y);
        w.putI64(s.ctaId.z);
        w.putI64(s.warpInCta);
        w.putU32(s.valid);
    }

    w.putU32(static_cast<std::uint32_t>(sm.ctas_.size()));
    for (const Sm::Cta &c : sm.ctas_) {
        w.putI64(c.id.x);
        w.putI64(c.id.y);
        w.putI64(c.id.z);
        w.putI64(c.liveWarps);
        w.putI64(c.barArrived);
        w.putI64(c.barPassed);
        w.putBool(c.barEpochCounted);
        w.putU32(static_cast<std::uint32_t>(c.shared.size()));
        if (!c.shared.empty())
            w.putBytes(c.shared.data(), c.shared.size());
    }

    w.putU32(static_cast<std::uint32_t>(sm.warps_.size()));
    for (const Sm::Warp &wp : sm.warps_) {
        w.putI64(wp.ctaSlot);
        w.putI64(wp.warpInCta);
        w.putU32(wp.valid);
        w.putU32(static_cast<std::uint32_t>(wp.stack.entries_.size()));
        for (const SimtStack::Entry &en : wp.stack.entries_) {
            w.putI64(en.pc);
            w.putI64(en.rpc);
            w.putU32(en.mask);
        }
        w.putU32(static_cast<std::uint32_t>(wp.regs.size()));
        for (RegVal v : wp.regs)
            w.putI64(v);
        w.putU32(static_cast<std::uint32_t>(wp.preds.size()));
        for (ThreadMask p : wp.preds)
            w.putU32(p);
        w.putU32(static_cast<std::uint32_t>(wp.regReady.size()));
        for (Cycle c : wp.regReady)
            w.putU64(c);
        w.putU32(static_cast<std::uint32_t>(wp.predReady.size()));
        for (Cycle c : wp.predReady)
            w.putU64(c);
        w.putBool(wp.finished);
        w.putBool(wp.atBarrier);
        w.putU32(static_cast<std::uint32_t>(wp.replayLines.size()));
        for (Addr a : wp.replayLines)
            w.putU64(a);
        w.putU64(wp.replayReady);
        w.putI64(wp.replayDstReg);
        w.putI64(wp.replayPc);
    }

    w.putBool(sm.dacEngine_ != nullptr);
    if (sm.dacEngine_) {
        saveEngine(w, *sm.dacEngine_);
        saveAffine(w, *sm.affineWarp_);
    }
    w.putBool(sm.mta_ != nullptr);
    if (sm.mta_)
        saveMta(w, *sm.mta_);
}

void
StateIo::restoreSm(SnapshotReader &r, Sm &sm)
{
    sm.affineFaulted_ = r.getBool();
    sm.batchActive_ = r.getBool();
    sm.liveWarps_ = static_cast<int>(r.getI64());
    sm.progress_ = r.getU64();
    sm.now_ = r.getU64();
    for (Cycle &c : sm.schedBusyUntil_)
        c = r.getU64();
    for (int &n : sm.schedNext_)
        n = static_cast<int>(r.getI64());

    sm.batch_ = BatchInfo{};
    sm.batch_.grid = sm.launch_.grid;
    sm.batch_.block = sm.launch_.block;
    sm.batch_.numCtas = static_cast<int>(r.getI64());
    sm.batch_.warps.resize(r.getU32());
    for (WarpSlot &s : sm.batch_.warps) {
        s.ctaSlot = static_cast<int>(r.getI64());
        s.ctaId.x = static_cast<int>(r.getI64());
        s.ctaId.y = static_cast<int>(r.getI64());
        s.ctaId.z = static_cast<int>(r.getI64());
        s.warpInCta = static_cast<int>(r.getI64());
        s.valid = r.getU32();
    }

    sm.ctas_.assign(r.getU32(), Sm::Cta{});
    for (Sm::Cta &c : sm.ctas_) {
        c.id.x = static_cast<int>(r.getI64());
        c.id.y = static_cast<int>(r.getI64());
        c.id.z = static_cast<int>(r.getI64());
        c.liveWarps = static_cast<int>(r.getI64());
        c.barArrived = static_cast<int>(r.getI64());
        c.barPassed = static_cast<int>(r.getI64());
        c.barEpochCounted = r.getBool();
        c.shared.assign(r.getU32(), 0);
        if (!c.shared.empty())
            r.getBytes(c.shared.data(), c.shared.size());
    }

    sm.warps_.assign(r.getU32(), Sm::Warp{});
    for (Sm::Warp &wp : sm.warps_) {
        wp.ctaSlot = static_cast<int>(r.getI64());
        wp.warpInCta = static_cast<int>(r.getI64());
        wp.valid = r.getU32();
        wp.stack.entries_.resize(r.getU32());
        for (SimtStack::Entry &en : wp.stack.entries_) {
            en.pc = static_cast<int>(r.getI64());
            en.rpc = static_cast<int>(r.getI64());
            en.mask = r.getU32();
        }
        wp.regs.assign(r.getU32(), 0);
        for (RegVal &v : wp.regs)
            v = r.getI64();
        wp.preds.assign(r.getU32(), 0);
        for (ThreadMask &p : wp.preds)
            p = r.getU32();
        wp.regReady.assign(r.getU32(), 0);
        for (Cycle &c : wp.regReady)
            c = r.getU64();
        wp.predReady.assign(r.getU32(), 0);
        for (Cycle &c : wp.predReady)
            c = r.getU64();
        wp.finished = r.getBool();
        wp.atBarrier = r.getBool();
        wp.replayLines.assign(r.getU32(), 0);
        for (Addr &a : wp.replayLines)
            a = r.getU64();
        wp.replayReady = r.getU64();
        wp.replayDstReg = static_cast<int>(r.getI64());
        wp.replayPc = static_cast<int>(r.getI64());
    }
    // Host-only wake state is never serialized: the fresh Warp objects
    // above carry invalid per-warp caches; rebuild the replay count
    // and drop the SM-level cache so the event core rescans.
    sm.replayPending_ = 0;
    for (const Sm::Warp &wp : sm.warps_)
        if (!wp.replayLines.empty())
            ++sm.replayPending_;
    sm.wakeValid_ = false;

    bool hasEngine = r.getBool();
    require(hasEngine == (sm.dacEngine_ != nullptr),
            "snapshot: technique mismatch (DAC engine presence)");
    if (sm.dacEngine_) {
        restoreEngine(r, *sm.dacEngine_, &sm.batch_);
        restoreAffine(r, *sm.affineWarp_, sm);
    }
    bool hasMta = r.getBool();
    require(hasMta == (sm.mta_ != nullptr),
            "snapshot: technique mismatch (MTA presence)");
    if (sm.mta_)
        restoreMta(r, *sm.mta_);
}

// ---------------------------------------------------------------------------
// Whole-GPU save / restore
// ---------------------------------------------------------------------------

void
StateIo::save(const Gpu &g, std::ostream &os)
{
    require(!g.sms_.empty(), "snapshot of a GPU with no SMs");
    const LaunchInfo &li = g.sms_.front()->launch_;
    require(li.kernel != nullptr,
            "snapshot before any launch started (nothing to save)");

    SnapshotWriter w;

    w.begin("meta");
    w.putU32(version);
    w.putU64(fingerprint(g));
    w.putString(li.kernel->name);
    w.putU32(static_cast<std::uint32_t>(li.kernel->numInsts()));
    w.putBool(li.affineKernel != nullptr);
    if (li.affineKernel) {
        w.putString(li.affineKernel->name);
        w.putU32(static_cast<std::uint32_t>(li.affineKernel->numInsts()));
    }
    for (int v : {li.grid.x, li.grid.y, li.grid.z, li.block.x, li.block.y,
                  li.block.z})
        w.putI64(v);
    w.putU64(g.launchesDone_);
    w.putU64(g.cycle_);
    w.end();

    w.begin("run");
    visitStats(g.stats_, [&](const char *, const std::uint64_t &v) {
        w.putU64(v);
    });
    w.putU32(static_cast<std::uint32_t>(g.hashChain_.size()));
    for (const HashLink &l : g.hashChain_) {
        w.putU64(l.cycle);
        w.putU64(l.hash);
    }
    w.putU64(g.watchdogProgress_);
    w.putU64(g.watchdogCycle_);
    w.putBool(g.dispatcher_.has_value());
    if (g.dispatcher_) {
        w.putI64(g.dispatcher_->total_);
        w.putI64(g.dispatcher_->next_);
    }
    w.end();

    w.begin("gmem");
    saveGmem(w, g.gmem_);
    w.end();

    w.begin("mem");
    saveMem(w, *g.mem_);
    w.end();

    for (std::size_t i = 0; i < g.sms_.size(); ++i) {
        w.begin("sm" + std::to_string(i));
        saveSm(w, *g.sms_[i]);
        w.end();
    }

    w.finish(os);
}

std::uint64_t
StateIo::restore(Gpu &g, std::istream &is,
                 const std::function<LaunchInfo(std::uint64_t)> &li_for)
{
    SnapshotReader r(is);

    r.section("meta");
    std::uint32_t v = r.getU32();
    require(v == version, "snapshot: version ", v, " (expected ",
            version, ")");
    std::uint64_t fp = r.getU64();
    require(fp == fingerprint(g),
            "snapshot: machine configuration fingerprint mismatch");
    std::string kname = r.getString();
    std::uint32_t kinsts = r.getU32();
    bool hasAffine = r.getBool();
    std::string aname;
    std::uint32_t ainsts = 0;
    if (hasAffine) {
        aname = r.getString();
        ainsts = r.getU32();
    }
    Dim3 grid, block;
    grid.x = static_cast<int>(r.getI64());
    grid.y = static_cast<int>(r.getI64());
    grid.z = static_cast<int>(r.getI64());
    block.x = static_cast<int>(r.getI64());
    block.y = static_cast<int>(r.getI64());
    block.z = static_cast<int>(r.getI64());
    std::uint64_t launchesDone = r.getU64();
    Cycle cycle = r.getU64();
    r.endSection();

    LaunchInfo li = li_for(launchesDone);
    require(li.kernel != nullptr, "snapshot: resolver produced no kernel "
            "for launch ", launchesDone);
    require(li.kernel->name == kname &&
                static_cast<std::uint32_t>(li.kernel->numInsts()) == kinsts,
            "snapshot: kernel mismatch ('", kname, "', ", kinsts,
            " insts saved vs '", li.kernel->name, "', ",
            li.kernel->numInsts(), ")");
    require(hasAffine == (li.affineKernel != nullptr),
            "snapshot: affine stream presence mismatch");
    if (hasAffine) {
        require(li.affineKernel->name == aname &&
                    static_cast<std::uint32_t>(
                        li.affineKernel->numInsts()) == ainsts,
                "snapshot: affine kernel mismatch");
    }
    require(li.grid == grid && li.block == block,
            "snapshot: launch geometry mismatch");

    r.section("run");
    visitStats(g.stats_, [&](const char *, std::uint64_t &sv) {
        sv = r.getU64();
    });
    g.hashChain_.resize(r.getU32());
    for (HashLink &l : g.hashChain_) {
        l.cycle = r.getU64();
        l.hash = r.getU64();
    }
    g.watchdogProgress_ = r.getU64();
    g.watchdogCycle_ = r.getU64();
    bool hasDispatcher = r.getBool();
    require(hasDispatcher, "snapshot: no dispatcher state (snapshot was "
            "not taken during or after a launch)");
    long long total = r.getI64();
    long long next = r.getI64();
    require(total == li.grid.count(), "snapshot: dispatcher total ",
            total, " does not match grid (", li.grid.count(), " CTAs)");
    r.endSection();

    g.dispatcher_.emplace(total, g.gcfg_.numSms);
    g.dispatcher_->next_ = next;

    // beginKernel before restoring raw fields: it installs the
    // launch/dispatcher pointers and per-launch geometry the restored
    // state hangs off, and resets everything it touches to a state the
    // snapshot then overwrites.
    for (auto &sm : g.sms_)
        sm->beginKernel(li, &*g.dispatcher_);

    r.section("gmem");
    restoreGmem(r, g.gmem_);
    r.endSection();

    r.section("mem");
    restoreMem(r, *g.mem_);
    r.endSection();

    for (std::size_t i = 0; i < g.sms_.size(); ++i) {
        r.section("sm" + std::to_string(i));
        restoreSm(r, *g.sms_[i]);
        r.endSection();
    }

    g.cycle_ = cycle;
    g.launchesDone_ = launchesDone;
    g.resumed_ = true;
    return launchesDone;
}

// ---------------------------------------------------------------------------
// Architectural-state digest (the hash-chain link)
// ---------------------------------------------------------------------------

std::uint64_t
StateIo::digest(const Gpu &g)
{
    // Everything folded here must be invariant under the idle-cycle
    // fast-forward (jumped cycles are exact no-ops for all of it) and
    // restored exactly by restore(), so clean, fast-forwarded, and
    // resumed runs produce identical chains. Sm::now_ is deliberately
    // absent: an FF jump lands on a boundary without stepping the SMs,
    // so their last-stepped timestamps differ while all simulated
    // state agrees.
    StateHash h;
    h.fold(g.cycle_);
    visitStats(g.stats_, [&](const char *, const std::uint64_t &v) {
        h.fold(v);
    });
    if (g.dispatcher_)
        h.fold(static_cast<std::int64_t>(g.dispatcher_->next_));

    for (const auto &smp : g.sms_) {
        const Sm &sm = *smp;
        h.fold(sm.batchActive_);
        h.fold(sm.liveWarps_);
        h.fold(sm.progress_);
        for (Cycle c : sm.schedBusyUntil_)
            h.fold(c);
        for (int n : sm.schedNext_)
            h.fold(n);
        for (const Sm::Cta &c : sm.ctas_) {
            h.fold(c.liveWarps);
            h.fold(c.barArrived);
            h.fold(c.barPassed);
            h.fold(c.barEpochCounted);
        }
        for (const Sm::Warp &wp : sm.warps_) {
            h.fold(wp.finished);
            if (wp.finished)
                continue;
            h.fold(static_cast<std::uint64_t>(wp.stack.entries_.size()));
            for (const SimtStack::Entry &en : wp.stack.entries_) {
                h.fold(en.pc);
                h.fold(en.rpc);
                h.fold(en.mask);
            }
            h.fold(wp.atBarrier);
            h.fold(static_cast<std::uint64_t>(wp.replayLines.size()));
            h.fold(wp.replayReady);
            h.fold(wp.replayDstReg);
        }
        if (sm.dacEngine_) {
            const DacEngine &e = *sm.dacEngine_;
            h.fold(static_cast<std::uint64_t>(e.atq_.size()));
            for (const DacEngine::AtqEntry &en : e.atq_) {
                h.fold(en.undelivered);
                h.fold(en.nextWarp);
            }
            for (const auto &q : e.pwaq_)
                h.fold(static_cast<std::uint64_t>(q.size()));
            for (const auto &q : e.pwpq_)
                h.fold(static_cast<std::uint64_t>(q.size()));
            const AffineWarp &a = *sm.affineWarp_;
            h.fold(a.finished_);
            if (!a.finished_ && !a.stack_.entries_.empty())
                h.fold(a.stack_.entries_.back().pc);
            h.fold(static_cast<std::uint64_t>(a.stack_.entries_.size()));
            for (int ep : a.ctaEpochs_)
                h.fold(ep);
        }
    }

    const MemorySystem &mem = *g.mem_;
    for (const auto &s : mem.sms_) {
        h.fold(s.outstanding.live(g.cycle_));
        h.fold(s.unlockEpoch);
        h.fold(s.unusedEvictions);
    }
    for (Cycle c : mem.dramNextFree_)
        h.fold(c);
    return h.value();
}

// ---------------------------------------------------------------------------
// Gpu forwarding methods
// ---------------------------------------------------------------------------

void
Gpu::saveSnapshot(std::ostream &os) const
{
    StateIo::save(*this, os);
}

std::uint64_t
Gpu::restoreSnapshot(std::istream &is,
                     const std::function<LaunchInfo(std::uint64_t)>
                         &launch_info_for)
{
    return StateIo::restore(*this, is, launch_info_for);
}

std::uint64_t
Gpu::digestState() const
{
    return StateIo::digest(*this);
}

} // namespace dacsim
