#include "sim/gpu.h"

#include <sstream>

#include "common/log.h"
#include "common/snapshot.h"
#include "obs/collector.h"
#include "sim/audit.h"

namespace dacsim
{

Gpu::Gpu(const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
         const CaeConfig &ccfg, const MtaConfig &mcfg, GpuMemory &gmem)
    : gcfg_(gcfg), tech_(tech), dcfg_(dcfg), ccfg_(ccfg), mcfg_(mcfg),
      gmem_(gmem)
{
    mem_ = std::make_unique<MemorySystem>(gcfg_, &stats_);
    if (tech_ == Technique::Mta)
        mem_->enablePrefetchBuffer(mcfg_);
    for (int i = 0; i < gcfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<Sm>(i, gcfg_, tech_, dcfg_, ccfg_,
                                            mcfg_, *mem_, gmem, stats_));
    }
}

void
Gpu::setFaultPlan(const FaultPlan *faults)
{
    faults_ = faults != nullptr && !faults->empty() ? faults : nullptr;
    mem_->setFaultPlan(faults_);
    for (auto &sm : sms_)
        sm->setFaultPlan(faults_);
}

void
Gpu::setObserver(ObsCollector *obs)
{
    obs_ = obs;
    mem_->setObserver(obs_);
    for (auto &sm : sms_)
        sm->setObserver(obs_);
}

std::uint64_t
Gpu::totalProgress() const
{
    std::uint64_t p = 0;
    for (const auto &sm : sms_)
        p += sm->progress();
    return p;
}

std::string
Gpu::dumpState() const
{
    std::ostringstream os;
    for (const auto &sm : sms_)
        os << sm->dumpWarpStates();
    return os.str();
}

void
Gpu::foldHash()
{
    std::uint64_t d = digestState();
    if (gcfg_.hashPerturbCycle != 0) {
        // Artificial divergence for bisect testing: corrupt the digest
        // of exactly the interval containing the perturb cycle.
        Cycle lo = hashChain_.empty() ? 0 : hashChain_.back().cycle;
        if (gcfg_.hashPerturbCycle > lo &&
            gcfg_.hashPerturbCycle <= cycle_)
            d ^= 0x5ca1ab1edeadbeefull;
    }
    stats_.stateHash = StateHash::mix(stats_.stateHash, d);
    hashChain_.push_back({cycle_, stats_.stateHash});
}

const RunStats &
Gpu::launch(const LaunchInfo &launch)
{
    require(launch.kernel != nullptr, "launch without a kernel");
    require(launch.params != nullptr, "launch without parameters");
    require(tech_ != Technique::Dac || launch.affineKernel != nullptr,
            "DAC launch without an affine stream");
    require(gcfg_.watchdogCycles > 0, "watchdog window must be positive");

    // A restored launch continues mid-flight: its dispatcher, SM
    // batches, and watchdog state arrived with the snapshot.
    const bool resumed = resumed_;
    resumed_ = false;
    if (!resumed) {
        dispatcher_.emplace(launch.grid.count(), gcfg_.numSms);
        for (auto &sm : sms_)
            sm->beginKernel(launch, &*dispatcher_);
        watchdogProgress_ = totalProgress();
        watchdogCycle_ = cycle_;
    }
    const Cycle watchdogWindow = gcfg_.watchdogCycles;

    // Idle-cycle fast-forward (see DESIGN.md §8). Only legal without a
    // fault plan (fault windows are defined per simulated cycle) and
    // without stall attribution (idle issue slots accrue per cycle,
    // DESIGN.md §11). Timelines and chrome traces compose with
    // fast-forward: skipped cycles issue nothing and request nothing.
    const bool ff = gcfg_.fastForward && faults_ == nullptr &&
                    (obs_ == nullptr || !obs_->perCycle());
    std::uint64_t ffLastProgress = totalProgress();
    constexpr Cycle never = ~static_cast<Cycle>(0);

    // The audit/watchdog block every run executes when the clock
    // reaches a 4096-cycle boundary; fast-forward jumps clamp to the
    // next boundary so this fires at exactly the same cycles as a
    // fully stepped run.
    auto boundaryCheck = [&]() {
        mem_->audit(cycle_);
        foldHash();
        if (obs_)
            obs_->boundary(*this, cycle_);
        if (hook_)
            hook_(*this, cycle_);
        std::uint64_t p = totalProgress();
        if (p != watchdogProgress_) {
            watchdogProgress_ = p;
            watchdogCycle_ = cycle_;
        } else if (cycle_ - watchdogCycle_ >= watchdogWindow) {
            std::ostringstream os;
            os << "panic: deadlock: no instruction issued for "
               << watchdogWindow << " cycles in kernel '"
               << launch.kernel->name << "' (cycle " << cycle_
               << "); per-SM warp states:\n"
               << dumpState();
            throw DeadlockError(cycle_, os.str());
        }
    };

    // A snapshot can land on the exact boundary at which the last warp
    // finished (the loop below was about to exit when it was written).
    // A restored run must then finalize without stepping the idle SMs
    // once more, or it would end one cycle later than the original.
    bool running = !resumed;
    for (auto &sm : sms_)
        running = running || sm->busy();
    while (running) {
        running = false;
        for (auto &sm : sms_) {
            sm->cycle(cycle_);
            running = running || sm->busy();
        }
        ++cycle_;

        if ((cycle_ & 0xfff) == 0)
            boundaryCheck();

        if (ff && running) {
            std::uint64_t p = totalProgress();
            if (p == ffLastProgress) {
                // The cycle just stepped was idle: every SM agrees no
                // state or statistic can change before `next`, so the
                // cycles in between are exact no-ops.
                Cycle next = never;
                for (auto &sm : sms_) {
                    next = std::min(next, sm->nextEventCycle(cycle_ - 1));
                    if (next <= cycle_)
                        break; // no jump possible: skip the remaining SMs
                }
                Cycle boundary = ((cycle_ >> 12) + 1) << 12;
                Cycle target = std::min(next, boundary);
                if (target > cycle_) {
                    cycle_ = target;
                    if ((cycle_ & 0xfff) == 0)
                        boundaryCheck();
                }
            }
            ffLastProgress = p;
        }
    }

    stats_.cycles = cycle_;
    ++launchesDone_;
    // Close the launch's chain so even sub-4096-cycle runs have a
    // comparable link (and end states always get audited by hash).
    foldHash();
    return stats_;
}

} // namespace dacsim
