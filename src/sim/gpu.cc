#include "sim/gpu.h"

#include "common/log.h"

namespace dacsim
{

Gpu::Gpu(const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
         const CaeConfig &ccfg, const MtaConfig &mcfg, GpuMemory &gmem)
    : gcfg_(gcfg), tech_(tech), dcfg_(dcfg), ccfg_(ccfg), mcfg_(mcfg)
{
    mem_ = std::make_unique<MemorySystem>(gcfg_, &stats_);
    if (tech_ == Technique::Mta)
        mem_->enablePrefetchBuffer(mcfg_);
    for (int i = 0; i < gcfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<Sm>(i, gcfg_, tech_, dcfg_, ccfg_,
                                            mcfg_, *mem_, gmem, stats_));
    }
}

std::uint64_t
Gpu::totalProgress() const
{
    std::uint64_t p = 0;
    for (const auto &sm : sms_)
        p += sm->progress();
    return p;
}

const RunStats &
Gpu::launch(const LaunchInfo &launch)
{
    require(launch.kernel != nullptr, "launch without a kernel");
    require(launch.params != nullptr, "launch without parameters");
    require(tech_ != Technique::Dac || launch.affineKernel != nullptr,
            "DAC launch without an affine stream");

    CtaDispatcher dispatcher(launch.grid.count(), gcfg_.numSms);
    for (auto &sm : sms_)
        sm->beginKernel(launch, &dispatcher);

    std::uint64_t lastProgress = totalProgress();
    Cycle lastProgressCycle = cycle_;
    constexpr Cycle watchdogWindow = 1u << 20;

    bool running = true;
    while (running) {
        running = false;
        for (auto &sm : sms_) {
            sm->cycle(cycle_);
            running = running || sm->busy();
        }
        ++cycle_;

        if ((cycle_ & 0xfff) == 0) {
            std::uint64_t p = totalProgress();
            if (p != lastProgress) {
                lastProgress = p;
                lastProgressCycle = cycle_;
            } else {
                ensure(cycle_ - lastProgressCycle < watchdogWindow,
                       "deadlock: no instruction issued for ",
                       watchdogWindow, " cycles in kernel '",
                       launch.kernel->name, "'");
            }
        }
    }

    stats_.cycles = cycle_;
    return stats_;
}

} // namespace dacsim
