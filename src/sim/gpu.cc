#include "sim/gpu.h"

#include <sstream>

#include "common/log.h"
#include "common/snapshot.h"
#include "obs/collector.h"
#include "sim/audit.h"

namespace dacsim
{

Gpu::Gpu(const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
         const CaeConfig &ccfg, const MtaConfig &mcfg, GpuMemory &gmem)
    : gcfg_(gcfg), tech_(tech), dcfg_(dcfg), ccfg_(ccfg), mcfg_(mcfg),
      gmem_(gmem)
{
    mem_ = std::make_unique<MemorySystem>(gcfg_, &stats_);
    if (tech_ == Technique::Mta)
        mem_->enablePrefetchBuffer(mcfg_);
    for (int i = 0; i < gcfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<Sm>(i, gcfg_, tech_, dcfg_, ccfg_,
                                            mcfg_, *mem_, gmem, stats_));
    }
}

void
Gpu::setFaultPlan(const FaultPlan *faults)
{
    faults_ = faults != nullptr && !faults->empty() ? faults : nullptr;
    mem_->setFaultPlan(faults_);
    for (auto &sm : sms_)
        sm->setFaultPlan(faults_);
}

void
Gpu::setObserver(ObsCollector *obs)
{
    obs_ = obs;
    mem_->setObserver(obs_);
    for (auto &sm : sms_)
        sm->setObserver(obs_);
}

std::uint64_t
Gpu::totalProgress() const
{
    std::uint64_t p = 0;
    for (const auto &sm : sms_)
        p += sm->progress();
    return p;
}

std::string
Gpu::dumpState() const
{
    std::ostringstream os;
    for (const auto &sm : sms_)
        os << sm->dumpWarpStates();
    return os.str();
}

void
Gpu::foldHash()
{
    std::uint64_t d = digestState();
    if (gcfg_.hashPerturbCycle != 0) {
        // Artificial divergence for bisect testing: corrupt the digest
        // of exactly the interval containing the perturb cycle.
        Cycle lo = hashChain_.empty() ? 0 : hashChain_.back().cycle;
        if (gcfg_.hashPerturbCycle > lo &&
            gcfg_.hashPerturbCycle <= cycle_)
            d ^= 0x5ca1ab1edeadbeefull;
    }
    stats_.stateHash = StateHash::mix(stats_.stateHash, d);
    hashChain_.push_back({cycle_, stats_.stateHash});
}

const RunStats &
Gpu::launch(const LaunchInfo &launch)
{
    require(launch.kernel != nullptr, "launch without a kernel");
    require(launch.params != nullptr, "launch without parameters");
    require(tech_ != Technique::Dac || launch.affineKernel != nullptr,
            "DAC launch without an affine stream");
    require(gcfg_.watchdogCycles > 0, "watchdog window must be positive");

    // A restored launch continues mid-flight: its dispatcher, SM
    // batches, and watchdog state arrived with the snapshot.
    const bool resumed = resumed_;
    resumed_ = false;
    if (!resumed) {
        dispatcher_.emplace(launch.grid.count(), gcfg_.numSms);
        for (auto &sm : sms_)
            sm->beginKernel(launch, &*dispatcher_);
        watchdogProgress_ = totalProgress();
        watchdogCycle_ = cycle_;
    }
    const Cycle watchdogWindow = gcfg_.watchdogCycles;

    // Simulation-core selection (DESIGN.md §8, §13). Clock jumps are
    // only legal without a fault plan (fault windows are defined per
    // simulated cycle) and without per-cycle observability (idle issue
    // slots accrue per cycle, DESIGN.md §11); either forces the
    // reference stepped loop. Timelines and chrome traces compose with
    // jumps: skipped cycles issue nothing and request nothing.
    const bool perCycle = faults_ != nullptr ||
                          (obs_ != nullptr && obs_->perCycle());
    const SimCore core = perCycle ? SimCore::Stepped : gcfg_.simCore;
    std::uint64_t ffLastProgress = totalProgress();
    constexpr Cycle never = ~static_cast<Cycle>(0);
    // Issue-saturated phases never yield a jump; probing the cross-SM
    // minimum every cycle just taxes the busy loop. After enough
    // consecutive failed probes, probe only on every 16th cycle —
    // purely a host-side heuristic (skipping a probe means
    // conservative stepping, never a behavior change) and a
    // deterministic function of the cycle count, so jump points stay
    // reproducible run to run.
    constexpr int probePatience = 64;
    int failedProbes = 0;

    // The audit/watchdog block every run executes when the clock
    // reaches a 4096-cycle boundary; clock jumps (fast-forward and
    // event core alike) clamp to the next boundary so this fires at
    // exactly the same cycles as a fully stepped run. @p p is the
    // caller's totalProgress() scan — passed in so one scan per cycle
    // serves both this check and the fast-forward idle test.
    auto boundaryCheck = [&](std::uint64_t p) {
        // A sleeping SM may owe closed-form deq-stall counts for its
        // skipped cycles (DESIGN.md §13); settle them before hashing
        // or snapshotting so stepped and jumped chains agree link by
        // link.
        for (auto &sm : sms_)
            sm->catchUpStats(cycle_);
        mem_->audit(cycle_);
        foldHash();
        if (obs_)
            obs_->boundary(*this, cycle_);
        if (hook_)
            hook_(*this, cycle_);
        if (p != watchdogProgress_) {
            watchdogProgress_ = p;
            watchdogCycle_ = cycle_;
        } else if (cycle_ - watchdogCycle_ >= watchdogWindow) {
            std::ostringstream os;
            os << "panic: deadlock: no instruction issued for "
               << watchdogWindow << " cycles in kernel '"
               << launch.kernel->name << "' (cycle " << cycle_
               << "); per-SM warp states:\n"
               << dumpState();
            throw DeadlockError(cycle_, os.str());
        }
    };

    // A snapshot can land on the exact boundary at which the last warp
    // finished (the loop below was about to exit when it was written).
    // A restored run must then finalize without stepping the idle SMs
    // once more, or it would end one cycle later than the original.
    bool running = !resumed;
    for (auto &sm : sms_)
        running = running || sm->busy();
    while (running) {
        // Event core: skip SMs whose cached wake lies in the future —
        // their skipped cycles are no-ops by the nextEventCycle
        // contract (deq-stall counts are reconstructed at wake).
        // Boundary cycles step every SM regardless, so the
        // SM-internal 4096-cycle audits fire at identical cycles to a
        // stepped run (they are const, so bit-identity is unaffected).
        const bool stepAll = core != SimCore::Event ||
                             (cycle_ & 0xfff) == 0;
        running = false;
        for (auto &sm : sms_) {
            if (stepAll || sm->awake(cycle_))
                sm->cycle(cycle_);
            running = running || sm->busy();
        }
        ++cycle_;

        if (core == SimCore::FastForward) {
            // One totalProgress() scan serves the boundary watchdog
            // and the idle test below.
            std::uint64_t p = totalProgress();
            if ((cycle_ & 0xfff) == 0)
                boundaryCheck(p);
            if (running && p == ffLastProgress) {
                // The cycle just stepped was idle: every SM agrees no
                // state can change before `next`, so the cycles in
                // between are no-ops — except deqStallCycles, which
                // each SM reconstructs in closed form on its next step
                // (Sm::accrueSkippedDeqStalls).
                Cycle next = never;
                for (auto &sm : sms_) {
                    next = std::min(next, sm->nextEventCycle(cycle_ - 1));
                    if (next <= cycle_)
                        break; // no jump possible: skip the remaining SMs
                }
                Cycle boundary = ((cycle_ >> 12) + 1) << 12;
                Cycle target = std::min(next, boundary);
                if (target > cycle_) {
                    cycle_ = target;
                    // The jump stepped nothing, so progress is still p.
                    if ((cycle_ & 0xfff) == 0)
                        boundaryCheck(p);
                }
            }
            ffLastProgress = p;
        } else {
            if ((cycle_ & 0xfff) == 0)
                boundaryCheck(totalProgress());

            if (core == SimCore::Event && running &&
                (failedProbes < probePatience || (cycle_ & 0xf) == 0)) {
                // Advance the clock to the earliest cached SM wake.
                // SMs stepped this cycle recompute lazily here; the
                // early break leaves the rest dirty, which only means
                // they are conservatively stepped next cycle.
                Cycle next = never;
                for (auto &sm : sms_) {
                    next = std::min(next, sm->wakeCycle(cycle_ - 1));
                    if (next <= cycle_)
                        break; // an SM is due now: no jump possible
                }
                Cycle boundary = ((cycle_ >> 12) + 1) << 12;
                Cycle target = std::min(next, boundary);
                if (target > cycle_) {
                    failedProbes = 0;
                    cycle_ = target;
                    if ((cycle_ & 0xfff) == 0)
                        boundaryCheck(totalProgress());
                } else {
                    ++failedProbes;
                }
            }
        }
    }

    stats_.cycles = cycle_;
    ++launchesDone_;
    // Close the launch's chain so even sub-4096-cycle runs have a
    // comparable link (and end states always get audited by hash).
    foldHash();
    return stats_;
}

} // namespace dacsim
