#include "sim/gpu.h"

#include <sstream>

#include "common/log.h"
#include "sim/audit.h"

namespace dacsim
{

Gpu::Gpu(const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
         const CaeConfig &ccfg, const MtaConfig &mcfg, GpuMemory &gmem)
    : gcfg_(gcfg), tech_(tech), dcfg_(dcfg), ccfg_(ccfg), mcfg_(mcfg)
{
    mem_ = std::make_unique<MemorySystem>(gcfg_, &stats_);
    if (tech_ == Technique::Mta)
        mem_->enablePrefetchBuffer(mcfg_);
    for (int i = 0; i < gcfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<Sm>(i, gcfg_, tech_, dcfg_, ccfg_,
                                            mcfg_, *mem_, gmem, stats_));
    }
}

void
Gpu::setFaultPlan(const FaultPlan *faults)
{
    faults_ = faults != nullptr && !faults->empty() ? faults : nullptr;
    mem_->setFaultPlan(faults_);
    for (auto &sm : sms_)
        sm->setFaultPlan(faults_);
}

std::uint64_t
Gpu::totalProgress() const
{
    std::uint64_t p = 0;
    for (const auto &sm : sms_)
        p += sm->progress();
    return p;
}

std::string
Gpu::dumpState() const
{
    std::ostringstream os;
    for (const auto &sm : sms_)
        os << sm->dumpWarpStates();
    return os.str();
}

const RunStats &
Gpu::launch(const LaunchInfo &launch)
{
    require(launch.kernel != nullptr, "launch without a kernel");
    require(launch.params != nullptr, "launch without parameters");
    require(tech_ != Technique::Dac || launch.affineKernel != nullptr,
            "DAC launch without an affine stream");
    require(gcfg_.watchdogCycles > 0, "watchdog window must be positive");

    CtaDispatcher dispatcher(launch.grid.count(), gcfg_.numSms);
    for (auto &sm : sms_)
        sm->beginKernel(launch, &dispatcher);

    std::uint64_t lastProgress = totalProgress();
    Cycle lastProgressCycle = cycle_;
    const Cycle watchdogWindow = gcfg_.watchdogCycles;

    // Idle-cycle fast-forward (see DESIGN.md §8). Only legal without a
    // fault plan: fault windows are defined per simulated cycle.
    const bool ff = gcfg_.fastForward && faults_ == nullptr;
    std::uint64_t ffLastProgress = lastProgress;
    constexpr Cycle never = ~static_cast<Cycle>(0);

    // The audit/watchdog block every run executes when the clock
    // reaches a 4096-cycle boundary; fast-forward jumps clamp to the
    // next boundary so this fires at exactly the same cycles as a
    // fully stepped run.
    auto boundaryCheck = [&]() {
        mem_->audit(cycle_);
        std::uint64_t p = totalProgress();
        if (p != lastProgress) {
            lastProgress = p;
            lastProgressCycle = cycle_;
        } else if (cycle_ - lastProgressCycle >= watchdogWindow) {
            std::ostringstream os;
            os << "panic: deadlock: no instruction issued for "
               << watchdogWindow << " cycles in kernel '"
               << launch.kernel->name << "' (cycle " << cycle_
               << "); per-SM warp states:\n"
               << dumpState();
            throw DeadlockError(cycle_, os.str());
        }
    };

    bool running = true;
    while (running) {
        running = false;
        for (auto &sm : sms_) {
            sm->cycle(cycle_);
            running = running || sm->busy();
        }
        ++cycle_;

        if ((cycle_ & 0xfff) == 0)
            boundaryCheck();

        if (ff && running) {
            std::uint64_t p = totalProgress();
            if (p == ffLastProgress) {
                // The cycle just stepped was idle: every SM agrees no
                // state or statistic can change before `next`, so the
                // cycles in between are exact no-ops.
                Cycle next = never;
                for (auto &sm : sms_) {
                    next = std::min(next, sm->nextEventCycle(cycle_ - 1));
                    if (next <= cycle_)
                        break; // no jump possible: skip the remaining SMs
                }
                Cycle boundary = ((cycle_ >> 12) + 1) << 12;
                Cycle target = std::min(next, boundary);
                if (target > cycle_) {
                    cycle_ = target;
                    if ((cycle_ & 0xfff) == 0)
                        boundaryCheck();
                }
            }
            ffLastProgress = p;
        }
    }

    stats_.cycles = cycle_;
    return stats_;
}

} // namespace dacsim
