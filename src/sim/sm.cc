#include "sim/sm.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/log.h"
#include "common/trace.h"
#include "mem/coalescer.h"
#include "obs/collector.h"
#include "sim/alu.h"
#include "sim/audit.h"

namespace dacsim
{

namespace
{

/** Sentinel for "blocked until an event completes it". */
constexpr Cycle farFuture = ~static_cast<Cycle>(0);

int
popcount(ThreadMask m)
{
    return std::popcount(m);
}

} // namespace

Sm::Sm(int id, const GpuConfig &gcfg, Technique tech, const DacConfig &dcfg,
       const CaeConfig &ccfg, const MtaConfig &mcfg, MemorySystem &mem,
       GpuMemory &gmem, RunStats &stats)
    : id_(id), gcfg_(gcfg), tech_(tech), dcfg_(dcfg), ccfg_(ccfg),
      mem_(mem), gmem_(gmem), stats_(stats)
{
    if (tech_ == Technique::Dac) {
        dacEngine_ = std::make_unique<DacEngine>(id_, gcfg_, dcfg_, mem_,
                                                 stats_);
        affineWarp_ = std::make_unique<AffineWarp>(gcfg_, dcfg_,
                                                   *dacEngine_, stats_);
    } else if (tech_ == Technique::Mta) {
        mta_ = std::make_unique<MtaPrefetcher>(id_, mcfg, mem_, stats_);
    }
}

void
Sm::setFaultPlan(const FaultPlan *faults)
{
    faults_ = faults;
    if (dacEngine_)
        dacEngine_->setFaultPlan(faults);
}

std::string
Sm::dumpWarpStates() const
{
    std::ostringstream os;
    os << "  sm" << id_ << ":";
    if (!batchActive_) {
        os << " (no batch resident)\n";
        return os.str();
    }
    os << " liveWarps=" << liveWarps_;
    if (dacEngine_)
        os << " " << dacEngine_->dumpState()
           << (affineWarp_->finished() ? " affine=done" : " affine=live");
    os << "\n";
    for (std::size_t wi = 0; wi < warps_.size(); ++wi) {
        const Warp &w = warps_[wi];
        if (w.finished)
            continue;
        os << "    w" << wi << ": pc=" << w.stack.pc() << " mask=" << std::hex
           << (w.stack.mask() & w.valid) << std::dec
           << " stackDepth=" << w.stack.depth();
        if (w.atBarrier)
            os << " atBarrier";
        if (!w.replayLines.empty())
            os << " replayPending=" << w.replayLines.size();
        os << "\n";
    }
    return os.str();
}

void
Sm::beginKernel(const LaunchInfo &launch, CtaDispatcher *dispatcher)
{
    ensure(launch.kernel != nullptr, "launch without kernel");
    launch_ = launch;
    dispatcher_ = dispatcher;
    warpsPerCta_ = warpsPerCta(launch.block);
    require(warpsPerCta_ <= gcfg_.maxWarpsPerSm, "CTA too large: ",
            launch.block.count(), " threads");
    maxCtas_ = std::min(gcfg_.maxCtasPerSm,
                        gcfg_.maxWarpsPerSm / warpsPerCta_);
    batchActive_ = false;
    schedBusyUntil_ = {0, 0};
    schedNext_ = {0, 0};
    replayPending_ = 0;
    wakeValid_ = false;
    if (mta_)
        mta_->reset();
}

bool
Sm::busy() const
{
    return batchActive_ ||
           (dispatcher_ != nullptr && !dispatcher_->exhausted());
}

const std::vector<int> &
Sm::ctaBarPassed() const
{
    ctaBarScratch_.resize(ctas_.size());
    for (std::size_t i = 0; i < ctas_.size(); ++i)
        ctaBarScratch_[i] = ctas_[i].barPassed;
    return ctaBarScratch_;
}

void
Sm::launchBatch(Cycle now)
{
    auto [first, count] = dispatcher_->take(maxCtas_);
    if (count == 0)
        return;

    batch_ = BatchInfo{};
    batch_.grid = launch_.grid;
    batch_.block = launch_.block;
    batch_.numCtas = count;

    const Kernel &k = *launch_.kernel;
    ctas_.assign(static_cast<std::size_t>(count), Cta{});
    warps_.clear();
    long long threads = launch_.block.count();
    for (int c = 0; c < count; ++c) {
        Cta &cta = ctas_[static_cast<std::size_t>(c)];
        cta.id = unlinearize(first + c, launch_.grid);
        cta.liveWarps = warpsPerCta_;
        cta.shared.assign(static_cast<std::size_t>(k.sharedBytes), 0);
        for (int wc = 0; wc < warpsPerCta_; ++wc) {
            WarpSlot slot;
            slot.ctaSlot = c;
            slot.ctaId = cta.id;
            slot.warpInCta = wc;
            long long lo = static_cast<long long>(wc) * warpSize;
            long long hi = std::min<long long>(lo + warpSize, threads);
            slot.valid = hi <= lo
                             ? 0
                             : (hi - lo >= warpSize
                                    ? fullMask
                                    : (1u << (hi - lo)) - 1);
            batch_.warps.push_back(slot);

            Warp w;
            w.ctaSlot = c;
            w.warpInCta = wc;
            w.valid = slot.valid;
            w.stack.reset(slot.valid);
            w.regs.assign(
                static_cast<std::size_t>(k.numRegs) * warpSize, 0);
            w.preds.assign(static_cast<std::size_t>(k.numPreds), 0);
            w.regReady.assign(static_cast<std::size_t>(k.numRegs), 0);
            w.predReady.assign(static_cast<std::size_t>(k.numPreds), 0);
            w.finished = slot.valid == 0;
            warps_.push_back(std::move(w));
        }
    }
    liveWarps_ = 0;
    for (const Warp &w : warps_)
        if (!w.finished)
            ++liveWarps_;
    replayPending_ = 0; // fresh warps: no LD/ST replays outstanding

    if (tech_ == Technique::Dac) {
        dacEngine_->startBatch(&batch_);
        affineWarp_->startBatch(launch_.affineKernel, &batch_,
                                launch_.params);
        ++stats_.dacBatches;
    }
    batchActive_ = true;
    (void)now;
}

void
Sm::finishBatchIfDone(Cycle now)
{
    if (!batchActive_ || liveWarps_ > 0)
        return;
    if (tech_ == Technique::Dac) {
        if (!affineWarp_->finished())
            return; // let the affine warp run out (it has no consumers
                    // left only if streams matched; checked below)
        // Every decoupled record must have been consumed by now: the
        // affine and non-affine streams describe the same execution.
        AuditContext ctx;
        ctx.structure = "dac-queues";
        ctx.cycle = now;
        ctx.sm = id_;
        auditCheck(dacEngine_->empty(), ctx,
                   "undrained at batch end (", dacEngine_->dumpState(),
                   "): affine and non-affine streams disagreed");
    }
    batchActive_ = false;
}

Idx3
Sm::tidOf(const Warp &w, int lane) const
{
    return unlinearize(
        static_cast<long long>(w.warpInCta) * warpSize + lane,
        launch_.block);
}

RegVal &
Sm::regAt(Warp &w, int reg, int lane)
{
    return w.regs[static_cast<std::size_t>(reg) * warpSize +
                  static_cast<std::size_t>(lane)];
}

RegVal
Sm::regAt(const Warp &w, int reg, int lane) const
{
    return w.regs[static_cast<std::size_t>(reg) * warpSize +
                  static_cast<std::size_t>(lane)];
}

RegVal
Sm::readOperand(const Warp &w, const Operand &op, int lane) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return regAt(w, op.index, lane);
      case Operand::Kind::Pred:
        return (w.preds[static_cast<std::size_t>(op.index)] >> lane) & 1;
      case Operand::Kind::Imm:
        return op.imm;
      case Operand::Kind::Param:
        return launch_.params->at(static_cast<std::size_t>(op.index));
      case Operand::Kind::Special: {
        SpecialReg s = op.sreg;
        int d = specialRegDim(s);
        if (isTidReg(s))
            return tidOf(w, lane).dim(d);
        if (isCtaidReg(s))
            return ctas_[static_cast<std::size_t>(w.ctaSlot)].id.dim(d);
        switch (s) {
          case SpecialReg::NtidX: return launch_.block.x;
          case SpecialReg::NtidY: return launch_.block.y;
          case SpecialReg::NtidZ: return launch_.block.z;
          case SpecialReg::NctaidX: return launch_.grid.x;
          case SpecialReg::NctaidY: return launch_.grid.y;
          case SpecialReg::NctaidZ: return launch_.grid.z;
          default: panic("unexpected special register");
        }
      }
      case Operand::Kind::None:
        panic("reading a None operand");
    }
    panic("bad operand kind");
}

ThreadMask
Sm::effectiveMask(const Warp &w, const Instruction &inst) const
{
    ThreadMask m = w.stack.mask() & w.valid;
    if (inst.guardPred >= 0) {
        ThreadMask p = w.preds[static_cast<std::size_t>(inst.guardPred)];
        m &= inst.guardNeg ? ~p : p;
    }
    return m;
}

Cycle
Sm::operandWake(const Warp &w, const Instruction &inst) const
{
    Cycle t = 0;
    auto consider = [&](const Operand &op) {
        if (op.isReg()) {
            t = std::max(t,
                         w.regReady[static_cast<std::size_t>(op.index)]);
        } else if (op.isPred()) {
            t = std::max(t,
                         w.predReady[static_cast<std::size_t>(op.index)]);
        }
    };
    if (inst.guardPred >= 0) {
        t = std::max(
            t, w.predReady[static_cast<std::size_t>(inst.guardPred)]);
    }
    for (int i = 0; i < numSources(inst.op); ++i)
        consider(inst.src[i]);
    consider(inst.dst);
    return t;
}

bool
Sm::sourcesReady(const Warp &w, const Instruction &inst, Cycle now) const
{
    auto ready = [&](const Operand &op) {
        if (op.isReg())
            return w.regReady[static_cast<std::size_t>(op.index)] <= now;
        if (op.isPred())
            return w.predReady[static_cast<std::size_t>(op.index)] <= now;
        return true;
    };
    if (inst.guardPred >= 0 &&
        w.predReady[static_cast<std::size_t>(inst.guardPred)] > now) {
        return false;
    }
    for (int i = 0; i < numSources(inst.op); ++i)
        if (!ready(inst.src[i]))
            return false;
    if (!ready(inst.dst))
        return false;
    return true;
}

// --------------------------------------------------------------------------
// CAE: dynamic affine-vector detection (Collange et al. / Kim et al.)
// --------------------------------------------------------------------------

namespace
{

/** Values of active lanes form base + lane*stride? */
bool
laneValuesAffine(const std::array<RegVal, warpSize> &vals, ThreadMask mask)
{
    int first = -1, second = -1;
    for (int l = 0; l < warpSize; ++l) {
        if (!(mask >> l & 1))
            continue;
        if (first < 0) {
            first = l;
        } else {
            second = l;
            break;
        }
    }
    if (second < 0)
        return true; // zero or one lane: trivially affine
    RegVal stride = (vals[static_cast<std::size_t>(second)] -
                     vals[static_cast<std::size_t>(first)]) /
                    (second - first);
    for (int l = first; l < warpSize; ++l) {
        if (!(mask >> l & 1))
            continue;
        if (vals[static_cast<std::size_t>(l)] !=
            vals[static_cast<std::size_t>(first)] + stride * (l - first)) {
            return false;
        }
    }
    return true;
}

} // namespace

bool
Sm::caeEligible(const Warp &w, const Instruction &inst,
                ThreadMask eff) const
{
    if (tech_ != Technique::Cae)
        return false;
    if (inst.guardPred >= 0)
        return false;
    if (eff != w.valid || eff == 0)
        return false; // divergence: must expand to vectors
    if (!affineEligibleAlu(inst.op) && inst.op != Opcode::Setp)
        return false;
    for (int i = 0; i < numSources(inst.op); ++i) {
        const Operand &op = inst.src[i];
        if (op.isPred())
            return false; // sel: affine units have no predicate input
        if (op.isImm() || op.isParam())
            continue;
        std::array<RegVal, warpSize> vals{};
        for (int l = 0; l < warpSize; ++l)
            if (eff >> l & 1)
                vals[static_cast<std::size_t>(l)] = readOperand(w, op, l);
        if (!laneValuesAffine(vals, eff))
            return false;
    }
    return true;
}

// --------------------------------------------------------------------------
// Execution
// --------------------------------------------------------------------------

void
Sm::execAlu(Warp &w, const Instruction &inst, ThreadMask eff, Cycle now)
{
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(eff >> lane & 1))
            continue;
        RegVal a = numSources(inst.op) > 0
                       ? readOperand(w, inst.src[0], lane)
                       : 0;
        RegVal b = numSources(inst.op) > 1
                       ? readOperand(w, inst.src[1], lane)
                       : 0;
        RegVal c = numSources(inst.op) > 2
                       ? readOperand(w, inst.src[2], lane)
                       : 0;
        regAt(w, inst.dst.index, lane) = aluCompute(inst.op, a, b, c);
    }
    w.regReady[static_cast<std::size_t>(inst.dst.index)] =
        now + static_cast<Cycle>(gcfg_.aluLatency);
}

void
Sm::execSetp(Warp &w, const Instruction &inst, ThreadMask eff, Cycle now)
{
    ThreadMask bits = 0;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(eff >> lane & 1))
            continue;
        RegVal a = readOperand(w, inst.src[0], lane);
        RegVal b = readOperand(w, inst.src[1], lane);
        if (cmpCompute(inst.cmp, a, b))
            bits |= 1u << lane;
    }
    ThreadMask &p = w.preds[static_cast<std::size_t>(inst.dst.index)];
    p = (p & ~eff) | bits;
    w.predReady[static_cast<std::size_t>(inst.dst.index)] =
        now + static_cast<Cycle>(gcfg_.aluLatency);
}

void
Sm::execBranch(Warp &w, const Instruction &inst, ThreadMask stack_mask)
{
    int pc = w.stack.pc();
    if (inst.guardPred < 0) {
        w.stack.advance(inst.target);
        return;
    }
    ThreadMask p = w.preds[static_cast<std::size_t>(inst.guardPred)];
    if (inst.guardNeg)
        p = ~p;
    ThreadMask taken = stack_mask & p;
    ThreadMask notTaken = stack_mask & ~taken;
    if (notTaken == 0) {
        w.stack.advance(inst.target);
    } else if (taken == 0) {
        w.stack.advance(pc + 1);
    } else {
        w.stack.diverge(inst.target, pc + 1, inst.reconvergePc, taken,
                        notTaken);
    }
}

bool
Sm::execMemory(int wi, Warp &w, const Instruction &inst, ThreadMask eff,
               Cycle now)
{
    if (eff == 0)
        return true; // predicated out: a no-op issue

    // Per-lane byte addresses.
    std::array<Addr, warpSize> addrs{};
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(eff >> lane & 1))
            continue;
        addrs[static_cast<std::size_t>(lane)] = static_cast<Addr>(
            readOperand(w, inst.src[0], lane) + inst.addrOffset);
    }

    if (inst.space == MemSpace::Shared) {
        Cta &cta = ctas_[static_cast<std::size_t>(w.ctaSlot)];
        int bytes = memWidthBytes(inst.width);
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!(eff >> lane & 1))
                continue;
            Addr a = addrs[static_cast<std::size_t>(lane)];
            require(a + bytes <= cta.shared.size(),
                    "shared access out of bounds: ", a, " in ",
                    cta.shared.size(), " bytes");
            if (inst.op == Opcode::Ld) {
                std::uint64_t raw = 0;
                for (int i = 0; i < bytes; ++i)
                    raw |= static_cast<std::uint64_t>(
                               cta.shared[static_cast<std::size_t>(a) + i])
                           << (8 * i);
                if (memWidthSigned(inst.width) && bytes < 8) {
                    std::uint64_t sign = 1ull << (8 * bytes - 1);
                    if (raw & sign)
                        raw |= ~((sign << 1) - 1);
                }
                regAt(w, inst.dst.index, lane) = static_cast<RegVal>(raw);
            } else {
                std::uint64_t v = static_cast<std::uint64_t>(
                    readOperand(w, inst.src[1], lane));
                for (int i = 0; i < bytes; ++i)
                    cta.shared[static_cast<std::size_t>(a) + i] =
                        static_cast<std::uint8_t>(v >> (8 * i));
            }
        }
        ++stats_.sharedAccesses;
        if (inst.op == Opcode::Ld) {
            w.regReady[static_cast<std::size_t>(inst.dst.index)] =
                now + static_cast<Cycle>(gcfg_.sharedLatency);
        }
        return true;
    }

    // Global memory.
    LineSet lines = coalesce(addrs, eff, memWidthBytes(inst.width));

    if (inst.op == Opcode::St) {
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!(eff >> lane & 1))
                continue;
            gmem_.store(addrs[static_cast<std::size_t>(lane)],
                        readOperand(w, inst.src[1], lane), inst.width);
        }
        for (Addr line : lines)
            mem_.store(id_, line, now);
        stats_.storeRequests += lines.size();
        return true;
    }

    // Load: functional read now; timing via the memory system.
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(eff >> lane & 1))
            continue;
        regAt(w, inst.dst.index, lane) =
            gmem_.load(addrs[static_cast<std::size_t>(lane)], inst.width);
    }
    Cycle ready = now;
    std::vector<Addr> rest;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        AccessResult r = mem_.load(id_, lines[i], now, Requester::Demand);
        if (!r.accepted) {
            rest.assign(lines.begin() + static_cast<long>(i), lines.end());
            break;
        }
        ++stats_.loadRequests;
        ready = std::max(ready, r.ready);
        if (mta_)
            mta_->observe(w.stack.pc(), wi, lines[i], now);
    }
    if (!rest.empty()) {
        // MSHR pressure: the LD/ST unit replays the remaining lines.
        w.replayLines = std::move(rest);
        w.replayReady = ready;
        w.replayDstReg = inst.dst.index;
        w.replayPc = w.stack.pc();
        w.regReady[static_cast<std::size_t>(inst.dst.index)] = farFuture;
        ++replayPending_;
    } else {
        w.regReady[static_cast<std::size_t>(inst.dst.index)] = ready;
    }
    return true;
}

bool
Sm::execDeq(int wi, Warp &w, const Instruction &inst, ThreadMask eff,
            Cycle now)
{
    int warpIdx = wi;
    if (inst.op == Opcode::DeqPred) {
        if (eff == 0)
            return true;
        const DacEngine::PredRecord *rec = dacEngine_->frontPred(warpIdx);
        if (!rec) {
            ++stats_.deqStallCycles;
            return false;
        }
        ensure(rec->mask == eff,
               "deq.pred mask mismatch: affine/non-affine divergence skew");
        ThreadMask &p = w.preds[static_cast<std::size_t>(inst.dst.index)];
        p = (p & ~rec->mask) | (rec->bits & rec->mask);
        w.predReady[static_cast<std::size_t>(inst.dst.index)] = now + 1;
        dacEngine_->popPred(warpIdx);
        return true;
    }

    if (eff == 0)
        return true;
    const DacEngine::AddrRecord *rec = dacEngine_->frontAddr(warpIdx);
    if (!rec) {
        ++stats_.deqStallCycles;
        return false;
    }
    if (inst.op == Opcode::LdDeq) {
        ensure(rec->isData, "ld.deq found an address-only record");
        if (rec->earlyFetched && rec->ready > now) {
            ++stats_.deqStallCycles;
            return false; // data still in flight
        }
        ensure(rec->mask == eff,
               "ld.deq mask mismatch: affine/non-affine divergence skew");
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!(eff >> lane & 1))
                continue;
            regAt(w, inst.dst.index, lane) = gmem_.load(
                rec->addrs[static_cast<std::size_t>(lane)], inst.width);
        }
        if (rec->earlyFetched) {
            // Data is locked in L1; consume it and release the locks.
            for (Addr line : rec->lines)
                mem_.unlock(id_, line);
            w.regReady[static_cast<std::size_t>(inst.dst.index)] =
                now + static_cast<Cycle>(gcfg_.l1.hitLatency);
        } else {
            // Poorly-coalesced record: the warp loads on demand, with
            // the LD/ST unit replaying lines the MSHRs cannot take.
            Cycle ready = now;
            std::vector<Addr> rest;
            for (std::size_t i = 0; i < rec->lines.size(); ++i) {
                AccessResult r = mem_.load(id_, rec->lines[i], now,
                                           Requester::Demand);
                if (!r.accepted) {
                    rest.assign(rec->lines.begin() + static_cast<long>(i),
                                rec->lines.end());
                    break;
                }
                ++stats_.loadRequests;
                ready = std::max(ready, r.ready);
            }
            if (!rest.empty()) {
                w.replayLines = std::move(rest);
                w.replayReady = ready;
                w.replayDstReg = inst.dst.index;
                w.replayPc = w.stack.pc();
                w.regReady[static_cast<std::size_t>(inst.dst.index)] =
                    farFuture;
                ++replayPending_;
            } else {
                w.regReady[static_cast<std::size_t>(inst.dst.index)] =
                    ready;
            }
        }
        dacEngine_->popAddr(warpIdx);
        return true;
    }

    // st.deq
    ensure(!rec->isData, "st.deq found a data record");
    ensure(rec->mask == eff,
           "st.deq mask mismatch: affine/non-affine divergence skew");
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(eff >> lane & 1))
            continue;
        gmem_.store(rec->addrs[static_cast<std::size_t>(lane)],
                    readOperand(w, inst.src[0], lane), inst.width);
    }
    for (Addr line : rec->lines)
        mem_.store(id_, line, now);
    stats_.storeRequests += rec->lines.size();
    dacEngine_->popAddr(warpIdx);
    return true;
}

void
Sm::releaseBarrier(int cta_slot)
{
    Cta &cta = ctas_[static_cast<std::size_t>(cta_slot)];
    if (cta.liveWarps == 0 || cta.barArrived < cta.liveWarps)
        return;
    for (Warp &w : warps_) {
        if (w.ctaSlot == cta_slot && w.atBarrier)
            w.atBarrier = false;
    }
    cta.barArrived = 0;
    if (cta.barEpochCounted)
        ++cta.barPassed;
    cta.barEpochCounted = false;
}

void
Sm::execBarrier(int wi, Warp &w, const Instruction &inst)
{
    Cta &cta = ctas_[static_cast<std::size_t>(w.ctaSlot)];
    w.atBarrier = true;
    w.stack.advance(w.stack.pc() + 1);
    ++cta.barArrived;
    cta.barEpochCounted = cta.barEpochCounted || inst.epochCounted;
    releaseBarrier(w.ctaSlot);
    (void)wi;
}

void
Sm::warpFinished(int wi)
{
    Warp &w = warps_[static_cast<std::size_t>(wi)];
    if (w.finished)
        return;
    // SIMT stack balance: a warp only finishes once every divergence
    // path has retired; a leftover entry means push/pop went skew.
    AuditContext ctx;
    ctx.structure = "simt-stack";
    ctx.cycle = now_;
    ctx.sm = id_;
    ctx.warp = wi;
    auditCheck(w.stack.empty(), ctx, "depth ", w.stack.depth(),
               " at warp exit (expected empty)");
    ctx.structure = "ldst-replay";
    auditCheck(w.replayLines.empty(), ctx, w.replayLines.size(),
               " replay lines pending at warp exit");
    w.finished = true;
    --liveWarps_;
    Cta &cta = ctas_[static_cast<std::size_t>(w.ctaSlot)];
    --cta.liveWarps;
    releaseBarrier(w.ctaSlot); // a finishing warp may complete a barrier
}

void
Sm::execExit(int wi, Warp &w, ThreadMask eff)
{
    int pc = w.stack.pc();
    if (w.stack.retire(eff)) {
        warpFinished(wi);
        return;
    }
    if (w.stack.pc() == pc)
        w.stack.advance(pc + 1);
}

// --------------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------------

bool
Sm::tryIssue(int wi, int sched, Cycle now)
{
    Warp &w = warps_[static_cast<std::size_t>(wi)];
    if (w.finished || w.atBarrier || !w.replayLines.empty())
        return false;
    const Kernel &k = *launch_.kernel;
    int pc = w.stack.pc();
    ensure(pc >= 0 && pc < k.numInsts(), "warp PC out of range");
    const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];

    // Scoreboard check through the warp's cached operand-wake cycle
    // (§13): sourcesReady(w, inst, now) ⇔ operandWake(w, inst) <= now,
    // and the wake only moves when this warp issues or a replay drains
    // — both of which invalidate the cache. Audited every 4096 cycles.
    if (!w.opWakeValid) {
        w.opWake = operandWake(w, inst);
        w.opWakeValid = true;
    }
    if (w.opWake > now)
        return false;

    ThreadMask stackMask = w.stack.mask() & w.valid;
    ThreadMask eff = effectiveMask(w, inst);

    // Memory/deq structural checks happen inside exec; on failure the
    // instruction has not issued.
    bool issued = true;
    bool cae = false;
    switch (inst.op) {
      case Opcode::Bra:
        execBranch(w, inst, stackMask);
        break;
      case Opcode::Bar:
        execBarrier(wi, w, inst);
        break;
      case Opcode::Exit:
        execExit(wi, w, eff);
        break;
      case Opcode::Ld:
      case Opcode::St:
        issued = execMemory(wi, w, inst, eff, now);
        if (issued)
            w.stack.advance(pc + 1);
        break;
      case Opcode::LdDeq:
      case Opcode::StDeq:
      case Opcode::DeqPred:
        issued = execDeq(wi, w, inst, eff, now);
        if (issued)
            w.stack.advance(pc + 1);
        break;
      case Opcode::Setp:
        cae = caeEligible(w, inst, eff);
        execSetp(w, inst, eff, now);
        w.stack.advance(pc + 1);
        break;
      case Opcode::EnqData:
      case Opcode::EnqAddr:
      case Opcode::EnqPred:
        panic("enq instruction in the non-affine stream");
      default:
        cae = caeEligible(w, inst, eff);
        execAlu(w, inst, eff, now);
        w.stack.advance(pc + 1);
        break;
    }
    if (!issued)
        return false;
    // Issuing wrote this warp's scoreboard (and advanced its PC).
    w.opWakeValid = false;

    DACSIM_TRACE_LOG("sm%-2d cyc %-8llu w%-3d pc %-3d %s%s", id_,
                     static_cast<unsigned long long>(now), wi, pc,
                     instToString(inst, k.params).c_str(),
                     cae ? "   [affine unit]" : "");

    // ----- accounting ------------------------------------------------------
    ++stats_.warpInsts;
    ++progress_;
    if (cae) {
        ++stats_.caeAffineInsts;
        ++stats_.affineCoveredInsts;
        stats_.laneOps += 2; // base + offset on the affine unit
    } else {
        stats_.laneOps += static_cast<std::uint64_t>(popcount(eff));
        if (launch_.coverageMarks && (*launch_.coverageMarks)[
                static_cast<std::size_t>(pc)]) {
            ++stats_.affineCoveredInsts;
        }
    }
    int regOps = inst.dst.isReg() || inst.dst.isPred() ? 1 : 0;
    for (int i = 0; i < numSources(inst.op); ++i)
        if (inst.src[i].isReg() || inst.src[i].isPred())
            ++regOps;
    stats_.regFileAccesses += static_cast<std::uint64_t>(regOps);

    const Cycle issueCycles = static_cast<Cycle>(
        cae ? ccfg_.affineIssueCycles : gcfg_.sched.warpIssueCycles);
    schedBusyUntil_[static_cast<std::size_t>(sched)] = now + issueCycles;
    if (obs_)
        obs_->warpIssue(id_, sched, wi, pc, opcodeName(inst.op), now,
                        issueCycles);
    finishBatchIfDone(now);
    return true;
}

void
Sm::serviceReplays(Cycle now)
{
    if (replayPending_ == 0)
        return; // nothing in any warp's replay queue: skip the scan
    for (Warp &w : warps_) {
        if (w.replayLines.empty())
            continue;
        // The LD/ST unit replays pending line transactions.
        while (!w.replayLines.empty()) {
            Addr line = w.replayLines.front();
            AccessResult r = mem_.load(id_, line, now, Requester::Demand);
            if (!r.accepted)
                break;
            ++stats_.loadRequests;
            w.replayReady = std::max(w.replayReady, r.ready);
            if (mta_) {
                int widx = static_cast<int>(&w - warps_.data());
                mta_->observe(w.replayPc, widx, line, now);
            }
            w.replayLines.erase(w.replayLines.begin());
            ++progress_;
        }
        if (w.replayLines.empty()) {
            w.regReady[static_cast<std::size_t>(w.replayDstReg)] =
                w.replayReady;
            w.replayDstReg = -1;
            // The drain wrote the warp's scoreboard out-of-issue.
            w.opWakeValid = false;
            --replayPending_;
        }
    }
}

void
Sm::cycle(Cycle now)
{
    const Cycle prev = now_;
    now_ = now;
    // Stepping can change anything; the cached SM wake is stale.
    wakeValid_ = false;
    if (!batchActive_) {
        if (dispatcher_ && !dispatcher_->exhausted())
            launchBatch(now);
        if (!batchActive_)
            return;
    } else if (now > prev + 1) {
        // The fast path skipped (prev, now): reconstruct the deq
        // stalls the stepped schedule would have counted there before
        // this step mutates anything (DESIGN.md §13).
        accrueSkippedDeqStalls(prev, now);
    }

    // Injected affine-warp invalidation: the DAC engine reports an
    // unrecoverable fault; the harness degrades the run to baseline.
    if (tech_ == Technique::Dac && faults_ && !affineFaulted_ &&
        faults_->affineInvalidate(now)) {
        affineFaulted_ = true;
        ++stats_.faultsInjected;
        throw InjectedFaultError(
            FaultKind::AffineInvalidate, now,
            "fault: affine warp invalidated on sm " + std::to_string(id_) +
                " at cycle " + std::to_string(now) +
                " (injected); DAC cannot continue this kernel");
    }

    // Periodic conservation sweep (cheap relative to the 4096-cycle
    // interval; keeps invariant drift from surviving to batch end).
    if ((now & 0xfff) == 0)
        audit(now);

    if (tech_ == Technique::Dac)
        dacEngine_->cycle(now, ctaBarPassed());

    serviceReplays(now);

    const int numWarps = static_cast<int>(warps_.size());
    for (int s = 0; s < gcfg_.sched.schedulersPerSm; ++s) {
        if (schedBusyUntil_[static_cast<std::size_t>(s)] > now)
            continue;
        bool issued = false;

        // The affine warp issues on scheduler 0 with priority: it is
        // one warp serving all others and must run ahead.
        if (s == 0 && tech_ == Technique::Dac &&
            !affineWarp_->finished() && affineWarp_->ready(now)) {
            int pc = 0;
            if (obs_)
                pc = affineWarp_->pc();
            affineWarp_->step(now);
            ++progress_;
            schedBusyUntil_[0] =
                now + static_cast<Cycle>(gcfg_.sched.warpIssueCycles);
            if (obs_) {
                obs_->affineStep(
                    id_, pc,
                    opcodeName(launch_.affineKernel
                                   ->insts[static_cast<std::size_t>(pc)]
                                   .op),
                    now, static_cast<Cycle>(gcfg_.sched.warpIssueCycles),
                    dacEngine_->atqSize() + dacEngine_->pwaqTotal() +
                        dacEngine_->pwpqTotal());
            }
            finishBatchIfDone(now);
            continue;
        }

        // Greedy round-robin over this scheduler's warps (warp wi is
        // handled by scheduler wi % schedulersPerSm). Greedy: stay on
        // the same warp until it stalls, then move on — a stand-in for
        // the two-level active scheduler [20].
        const int nsched = gcfg_.sched.schedulersPerSm;
        const int count = s < numWarps ? (numWarps - s + nsched - 1) / nsched
                                       : 0;
        for (int t = 0; t < count; ++t) {
            int k = (schedNext_[static_cast<std::size_t>(s)] + t) % count;
            int wi = k * nsched + s;
            // Cheap pre-filter: skip warps tryIssue would reject before
            // reaching any side effect — finished, parked, replaying,
            // or (via the cached operand wake) scoreboard-blocked. Deq
            // back-pressure is NOT filtered: a deq-blocked warp with
            // ready operands must still attempt (it counts a stall).
            const Warp &cand = warps_[static_cast<std::size_t>(wi)];
            if (cand.finished || cand.atBarrier ||
                !cand.replayLines.empty() ||
                (cand.opWakeValid && cand.opWake > now))
                continue;
            if (tryIssue(wi, s, now)) {
                schedNext_[static_cast<std::size_t>(s)] = k;
                issued = true;
                break;
            }
        }

        // Stall attribution (DESIGN.md §11): the slot was free but
        // nothing issued — charge exactly one reason to one candidate.
        if (!issued && obs_ && obs_->stallsOn() && batchActive_) {
            int warp = -1;
            StallReason r = classifyStall(s, now, &warp);
            obs_->chargeStall(id_, warp, r);
        }
    }

    finishBatchIfDone(now);
}

// --------------------------------------------------------------------------
// Stall attribution (observability, DESIGN.md §11)
// --------------------------------------------------------------------------

bool
Sm::deqBlocked(const Warp &w, const Instruction &inst, int wi,
               Cycle now) const
{
    // Mirrors execDeq's structural checks without touching any state:
    // which deq would return false (not issue) right now?
    if (inst.op != Opcode::LdDeq && inst.op != Opcode::StDeq &&
        inst.op != Opcode::DeqPred)
        return false;
    ThreadMask eff = effectiveMask(w, inst);
    if (eff == 0)
        return false; // predicated out: issues as a no-op
    if (inst.op == Opcode::DeqPred)
        return dacEngine_->frontPred(wi) == nullptr;
    const DacEngine::AddrRecord *rec = dacEngine_->frontAddr(wi);
    if (rec == nullptr)
        return true;
    // ld.deq additionally waits for early-fetched data in flight.
    return inst.op == Opcode::LdDeq && rec->earlyFetched &&
           rec->ready > now;
}

Cycle
Sm::deqAttemptWake(int wi, const Warp &w, const Instruction &inst,
                   Cycle now, Cycle ready) const
{
    ThreadMask eff = effectiveMask(w, inst);
    if (eff == 0)
        return ready; // predicated out: issues as a no-op
    if (inst.op == Opcode::DeqPred)
        return dacEngine_->frontPred(wi) != nullptr ? ready : farFuture;
    const DacEngine::AddrRecord *rec = dacEngine_->frontAddr(wi);
    if (rec == nullptr)
        return farFuture;
    if (inst.op == Opcode::LdDeq && rec->earlyFetched &&
        rec->ready > now)
        return std::max(ready, rec->ready);
    return ready;
}

void
Sm::catchUpStats(Cycle now)
{
    if (!batchActive_ || now <= now_ + 1)
        return;
    accrueSkippedDeqStalls(now_, now);
    // The SM now looks exactly as a stepped run's would after its
    // now-1 step, so the subsequent cycle() call accrues nothing
    // twice and boundary snapshots of now_ agree between cores.
    now_ = now - 1;
}

void
Sm::accrueSkippedDeqStalls(Cycle prev, Cycle now)
{
    // The SM slept over (prev, now): no warp issued, no replay
    // drained, and the DAC queues did not move (nextEventCycle's
    // contract), so a warp parked at a deq was attempted — and counted
    // exactly one deqStallCycle — on every skipped cycle its operands
    // were ready and its scheduler slot free. Blocked-ness is constant
    // across the gap (state is frozen and the wake bound ends the gap
    // no later than rec->ready), so evaluating it once at the last
    // skipped cycle stands for all of them.
    if (tech_ != Technique::Dac)
        return;
    const Kernel &k = *launch_.kernel;
    const int nsched = gcfg_.sched.schedulersPerSm;
    for (std::size_t wi = 0; wi < warps_.size(); ++wi) {
        const Warp &w = warps_[wi];
        if (w.finished || w.atBarrier || !w.replayLines.empty())
            continue;
        const Instruction &inst =
            k.insts[static_cast<std::size_t>(w.stack.pc())];
        if (!inst.isDeq() ||
            !deqBlocked(w, inst, static_cast<int>(wi), now - 1))
            continue;
        if (!w.opWakeValid) {
            w.opWake = operandWake(w, inst);
            w.opWakeValid = true;
        }
        Cycle start = std::max(
            {prev + 1, w.opWake,
             schedBusyUntil_[static_cast<std::size_t>(
                 static_cast<int>(wi) % nsched)]});
        if (start < now)
            stats_.deqStallCycles += now - start;
    }
}

StallReason
Sm::warpStallReason(int wi, const Warp &w, Cycle now) const
{
    if (w.atBarrier)
        return StallReason::Barrier;
    if (!w.replayLines.empty())
        return StallReason::MshrFull;
    const Instruction &inst = launch_.kernel->insts[
        static_cast<std::size_t>(w.stack.pc())];
    if (!sourcesReady(w, inst, now))
        return StallReason::Scoreboard;
    if (deqBlocked(w, inst, wi, now))
        return StallReason::DacQueueEmpty;
    // A fully ready candidate would have issued; this fallback covers
    // only cases the model cannot express more precisely.
    return StallReason::Structural;
}

StallReason
Sm::classifyStall(int s, Cycle now, int *warp) const
{
    // Charge the most specific back-pressure reason any candidate of
    // this scheduler is blocked on; ties go to the scan-order winner,
    // so attribution is deterministic. Sync and Icache never win here:
    // the model folds SIMT synchronization into barriers and has no
    // fetch stage (documented as reserved reasons).
    static constexpr StallReason precedence[] = {
        StallReason::MshrFull,     StallReason::DacQueueEmpty,
        StallReason::DacQueueFull, StallReason::Barrier,
        StallReason::Scoreboard,   StallReason::Sync,
        StallReason::Icache,       StallReason::Structural,
    };
    auto rank = [](StallReason r) {
        for (int i = 0; i < numStallReasons; ++i)
            if (precedence[i] == r)
                return i;
        return numStallReasons;
    };

    int best = numStallReasons;
    int bestWarp = -1;
    // The affine warp is a scheduler-0 candidate whenever it is live.
    if (s == 0 && tech_ == Technique::Dac && !affineWarp_->finished() &&
        !affineWarp_->ready(now)) {
        best = rank(affineWarp_->stallReason(now));
        bestWarp = -1;
    }
    const int nsched = gcfg_.sched.schedulersPerSm;
    const int numWarps = static_cast<int>(warps_.size());
    const int count = s < numWarps ? (numWarps - s + nsched - 1) / nsched
                                   : 0;
    for (int t = 0; t < count; ++t) {
        int k = (schedNext_[static_cast<std::size_t>(s)] + t) % count;
        int wi = k * nsched + s;
        const Warp &w = warps_[static_cast<std::size_t>(wi)];
        if (w.finished)
            continue;
        int r = rank(warpStallReason(wi, w, now));
        if (r < best) {
            best = r;
            bestWarp = wi;
        }
    }
    *warp = bestWarp;
    return best < numStallReasons ? precedence[best]
                                  : StallReason::Structural;
}

Cycle
Sm::nextEventCycle(Cycle now) const
{
    // A batch boundary (next launchBatch) is an event one cycle away.
    if (!batchActive_)
        return busy() ? now + 1 : farFuture;
    // Fault windows are evaluated per cycle; never skip under a plan.
    if (faults_)
        return now + 1;

    Cycle next = farFuture;

    // The DAC queues own their wake bound (DacEngine::nextWakeCycle):
    // an unparked ATQ head may deliver records / fetch lines on any
    // cycle; a scan-idle-latched one sleeps until its parked MSHR
    // retry (its other wake sources are this SM's own issues).
    if (dacEngine_) {
        next = std::min(next, dacEngine_->nextWakeCycle(now));
        if (next <= now + 1)
            return now + 1;
    }

    // The affine warp issues on scheduler 0 with priority. When it is
    // enq-blocked on ATQ back-pressure it has no self-wake: only the
    // engine retiring its head frees a slot, and that cycle is already
    // in the minimum through the engine bound above.
    if (affineWarp_ && !affineWarp_->finished() &&
        !affineWarp_->enqBlocked()) {
        next = std::min(next, std::max(affineWarp_->nextReadyCycle(),
                                       schedBusyUntil_[0]));
        if (next <= now + 1)
            return now + 1;
    }

    const Kernel &k = *launch_.kernel;
    const int nsched = gcfg_.sched.schedulersPerSm;
    // One MSHR-release query serves every replaying warp of this call
    // (the table is per-SM, so the answer cannot differ between warps).
    Cycle mshrWake = 0;
    bool haveMshr = false;
    for (std::size_t wi = 0; wi < warps_.size(); ++wi) {
        const Warp &w = warps_[wi];
        if (w.finished || w.atBarrier)
            continue;
        if (!w.replayLines.empty()) {
            // Replays retry as soon as an in-flight miss frees a MSHR.
            if (!haveMshr) {
                mshrWake = mem_.nextMshrRelease(id_, now);
                haveMshr = true;
            }
            next = std::min(next, mshrWake);
        } else {
            // First cycle the warp's scoreboard dependences clear and
            // its scheduler slot is free. From then on the scheduler
            // attempts it every free cycle. The per-warp wake is
            // cached: it only moves when the warp issues or a replay
            // drains, both of which invalidate it.
            const Instruction &inst =
                k.insts[static_cast<std::size_t>(w.stack.pc())];
            if (!w.opWakeValid) {
                w.opWake = operandWake(w, inst);
                w.opWakeValid = true;
            }
            Cycle ready = std::max(
                w.opWake, schedBusyUntil_[static_cast<std::size_t>(
                              static_cast<int>(wi) % nsched)]);
            // A failed deq attempt mutates nothing but deqStallCycles,
            // which accrueSkippedDeqStalls reconstructs in closed form
            // at wake — so a parked deq is not an event; the cycle it
            // could actually pop is.
            if (inst.isDeq())
                next = std::min(next,
                                deqAttemptWake(static_cast<int>(wi), w,
                                               inst, now, ready));
            else
                next = std::min(next, ready);
        }
        if (next <= now + 1)
            return now + 1; // a warp attempts next cycle: no skip
    }
    return std::max(next, now + 1);
}

void
Sm::audit(Cycle now) const
{
    if (!batchActive_)
        return;
    AuditContext ctx;
    ctx.cycle = now;
    ctx.sm = id_;

    // Barrier conservation per CTA: arrivals never exceed live warps,
    // and live-warp counts stay within the CTA's warp allotment.
    for (std::size_t c = 0; c < ctas_.size(); ++c) {
        const Cta &cta = ctas_[c];
        ctx.structure = "barrier";
        auditCheck(cta.barArrived <= cta.liveWarps, ctx, "cta slot ", c,
                   ": ", cta.barArrived, " arrivals but only ",
                   cta.liveWarps, " live warps");
        auditCheck(cta.liveWarps >= 0 && cta.liveWarps <= warpsPerCta_,
                   ctx, "cta slot ", c, ": liveWarps ", cta.liveWarps,
                   " outside [0, ", warpsPerCta_, "]");
    }

    // Scoreboard drain: a blocked-forever destination register is only
    // legal while its LD/ST replay is pending; anything else means the
    // writeback that should clear it was lost.
    int live = 0;
    for (std::size_t wi = 0; wi < warps_.size(); ++wi) {
        const Warp &w = warps_[wi];
        if (w.finished)
            continue;
        ++live;
        ctx.warp = static_cast<int>(wi);
        ctx.structure = "scoreboard";
        for (std::size_t r = 0; r < w.regReady.size(); ++r) {
            auditCheck(w.regReady[r] != farFuture ||
                           !w.replayLines.empty(),
                       ctx, "r", r,
                       " blocked forever with no replay pending");
        }
        ctx.structure = "simt-stack";
        auditCheck(!w.stack.empty(), ctx,
                   "live warp with an empty SIMT stack");
        auditCheck(w.stack.depth() <= 2 * warpSize, ctx,
                   "stack depth ", w.stack.depth(),
                   " exceeds any legal divergence nesting");
        // Wake-cache coherence (§13): whenever a warp's cached operand
        // wake claims validity it must agree with a fresh scoreboard
        // scan of the instruction at the current PC — a stale cache
        // would silently reorder issue under the event core.
        if (w.opWakeValid && !w.stack.empty()) {
            ctx.structure = "wake-cache";
            const Instruction &inst = launch_.kernel->insts[
                static_cast<std::size_t>(w.stack.pc())];
            auditCheck(w.opWake == operandWake(w, inst), ctx,
                       "cached operand wake ", w.opWake,
                       " but scoreboard says ", operandWake(w, inst));
        }
    }
    ctx.warp = -1;
    ctx.structure = "warp-accounting";
    auditCheck(live == liveWarps_, ctx, "counted ", live,
               " unfinished warps but liveWarps_=", liveWarps_);

    if (dacEngine_)
        dacEngine_->audit(now);
}

} // namespace dacsim
