/**
 * @file
 * Per-warp SIMT reconvergence stack (the baseline GPU's divergence
 * mechanism; paper Section 4.5 background).
 *
 * The stack's top entry holds the warp's current PC and active mask.
 * On a divergent branch the entry is replaced by a reconvergence entry
 * plus one entry per path; entries pop when execution reaches their
 * reconvergence PC.
 */

#ifndef DACSIM_SIM_SIMT_STACK_H
#define DACSIM_SIM_SIMT_STACK_H

#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace dacsim
{

class StateIo;

class SimtStack
{
  public:
    struct Entry
    {
        int pc = 0;
        /** PC where this entry's threads reconverge with its parent;
         * -1 when they only reconverge at kernel exit. */
        int rpc = -1;
        ThreadMask mask = 0;
    };

    /** Initialize with all of @p initial active at PC 0. */
    void
    reset(ThreadMask initial)
    {
        entries_.clear();
        entries_.push_back({0, -1, initial});
    }

    bool empty() const { return entries_.empty(); }
    int depth() const { return static_cast<int>(entries_.size()); }
    int pc() const { return top().pc; }
    ThreadMask mask() const { return top().mask; }

    /**
     * Move the current entry to @p next_pc. Reaching the entry's
     * reconvergence PC pops exactly that entry: execution resumes at
     * the next pending path's own PC (not at next_pc).
     * Call with pc+1 after straight-line instructions, or with the
     * chosen target after a uniform branch.
     */
    void
    advance(int next_pc)
    {
        ensure(!empty(), "advance on empty SIMT stack");
        if (next_pc == top().rpc) {
            entries_.pop_back();
            normalize();
            return;
        }
        entries_.back().pc = next_pc;
    }

    /**
     * Apply a divergent branch: current entry's threads split between
     * @p target (taken) and @p fallthrough. @p rpc is the branch's
     * reconvergence PC (-1: reconverge only at exit).
     */
    void
    diverge(int target, int fallthrough, int rpc, ThreadMask taken,
            ThreadMask not_taken)
    {
        ensure(!empty(), "diverge on empty SIMT stack");
        ensure((taken & not_taken) == 0, "overlapping divergence masks");
        ensure(taken != 0 && not_taken != 0, "non-divergent split");
        Entry parent = top();
        entries_.pop_back();
        if (rpc >= 0)
            entries_.push_back({rpc, parent.rpc, parent.mask});
        entries_.push_back({fallthrough, rpc, not_taken});
        entries_.push_back({target, rpc, taken});
        normalize();
    }

    /**
     * Retire @p exited threads (they executed `exit`). Removes them
     * from every entry and pops entries left empty.
     * @return true when the whole warp has finished.
     */
    bool
    retire(ThreadMask exited)
    {
        for (Entry &e : entries_)
            e.mask &= ~exited;
        while (!entries_.empty() && entries_.back().mask == 0)
            entries_.pop_back();
        // Inner empty entries (can happen when a whole path exits) are
        // removed as well so depth reflects live divergence.
        std::erase_if(entries_, [](const Entry &e) { return e.mask == 0; });
        return entries_.empty();
    }

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    friend class StateIo;

    std::vector<Entry> entries_;

    const Entry &
    top() const
    {
        ensure(!entries_.empty(), "empty SIMT stack");
        return entries_.back();
    }

    /** Pop path entries born already at their reconvergence PC (a
     * branch whose target or fall-through IS the join point). */
    void
    normalize()
    {
        while (!entries_.empty() &&
               entries_.back().pc == entries_.back().rpc) {
            entries_.pop_back();
        }
    }
};

} // namespace dacsim

#endif // DACSIM_SIM_SIMT_STACK_H
