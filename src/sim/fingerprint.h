/**
 * @file
 * Public fingerprints of the two identities a simulation result
 * depends on (DESIGN.md §9, §14): the machine configuration and the
 * kernel being run. Both are computed by the checkpoint layer
 * (sim/checkpoint.cc) — the snapshot header has always carried the
 * configuration fingerprint so incompatible runs never exchange
 * snapshots; the service's content-addressed result cache keys on the
 * pair, so a cached result can never be served to a request it does
 * not answer.
 */

#ifndef DACSIM_SIM_FINGERPRINT_H
#define DACSIM_SIM_FINGERPRINT_H

#include <cstdint>

#include "common/config.h"
#include "isa/instruction.h"

namespace dacsim
{

/**
 * FNV-1a digest of every configuration field that changes simulated
 * results for @p tech. Identical to the fingerprint stored in snapshot
 * headers; results-transparent host knobs (simCore, hashPerturbCycle)
 * are deliberately excluded, so runs differing only in them share
 * snapshots and cache entries.
 */
std::uint64_t configFingerprint(Technique tech, const GpuConfig &gpu,
                                const DacConfig &dac, const CaeConfig &cae,
                                const MtaConfig &mta);

/** FNV-1a digest of a kernel's complete contents: name, register and
 * shared-memory requirements, parameter slots, and the disassembly of
 * every instruction. */
std::uint64_t kernelFingerprint(const Kernel &kernel);

} // namespace dacsim

#endif // DACSIM_SIM_FINGERPRINT_H
