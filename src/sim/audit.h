/**
 * @file
 * Invariant auditors: structured internal-consistency checks.
 *
 * Where ensure()/panic() produce a bare message, an audit failure
 * carries the machine state needed to localize the bug — cycle, SM,
 * warp, and the offending structure — both as typed fields (for the
 * harness's RunError) and formatted into what().
 *
 * The simulator calls auditCheck() from its periodic conservation
 * sweeps: scoreboard entries drain, SIMT stacks balance at kernel
 * exit, MSHR/queue credits conserve, and every decoupled record is
 * eventually consumed.
 */

#ifndef DACSIM_SIM_AUDIT_H
#define DACSIM_SIM_AUDIT_H

#include <sstream>
#include <string>

#include "common/log.h"
#include "common/types.h"

namespace dacsim
{

/** Where an invariant violation was observed. */
struct AuditContext
{
    /** The offending structure ("scoreboard", "simt-stack", "mshr",
     * "atq", "pwaq", "barrier", ...). */
    const char *structure = "?";
    Cycle cycle = 0;
    int sm = -1;
    int warp = -1;
};

/** An invariant violation with a structured state dump. */
class AuditError : public PanicError
{
  public:
    AuditError(const AuditContext &ctx, const std::string &details)
        : PanicError(format(ctx, details)), ctx_(ctx)
    {
    }

    const AuditContext &context() const { return ctx_; }

  private:
    AuditContext ctx_;

    static std::string
    format(const AuditContext &ctx, const std::string &details)
    {
        std::ostringstream os;
        os << "audit: " << ctx.structure << " invariant violated [cycle="
           << ctx.cycle;
        if (ctx.sm >= 0)
            os << " sm=" << ctx.sm;
        if (ctx.warp >= 0)
            os << " warp=" << ctx.warp;
        os << "]: " << details;
        return os.str();
    }
};

/** The deadlock watchdog fired; what() carries per-SM warp states. */
class DeadlockError : public PanicError
{
  public:
    DeadlockError(Cycle cycle, const std::string &msg)
        : PanicError(msg), cycle_(cycle)
    {
    }

    Cycle cycle() const { return cycle_; }

  private:
    Cycle cycle_;
};

/** Fail an audit: throw an AuditError carrying @p ctx. */
template <typename... Args>
[[noreturn]] void
auditFail(const AuditContext &ctx, const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw AuditError(ctx, os.str());
}

/** Assert an audited invariant, or auditFail() with the details. */
template <typename... Args>
void
auditCheck(bool cond, const AuditContext &ctx, const Args &...args)
{
    if (!cond)
        auditFail(ctx, args...);
}

} // namespace dacsim

#endif // DACSIM_SIM_AUDIT_H
