/**
 * @file
 * Textual assembler for the dacsim ISA.
 *
 * The accepted syntax mirrors the paper's pseudo-assembly (Figure 4b):
 *
 * @code
 * .kernel saxpy
 * .param A B n
 * .shared 0
 *     mul r0, ctaid.x, ntid.x;
 *     add r1, tid.x, r0;        // global thread id
 *     shl r2, r1, 2;
 *     add r3, $A, r2;
 * LOOP:
 *     ld.global.u32 r4, [r3];
 *     add r4, r4, 1;
 *     st.global.u32 [r3], r4;
 *     setp.lt p0, r1, $n;
 *     @p0 bra LOOP;
 *     exit;
 * @endcode
 *
 * Comments run from "//" to end of line; the trailing ';' is optional.
 * Register counts are inferred from the highest register index used.
 */

#ifndef DACSIM_ISA_ASSEMBLER_H
#define DACSIM_ISA_ASSEMBLER_H

#include <string>

#include "isa/instruction.h"

namespace dacsim
{

/**
 * Assemble one kernel from source text.
 *
 * @param source the kernel text, including directives.
 * @return the assembled kernel with labels resolved.
 * @throws FatalError on any syntax or semantic error, with a line number.
 */
Kernel assemble(const std::string &source);

} // namespace dacsim

#endif // DACSIM_ISA_ASSEMBLER_H
