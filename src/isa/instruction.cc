#include "isa/instruction.h"

#include <sstream>

namespace dacsim
{

namespace
{

std::string
opnd(const Operand &o, const std::vector<std::string> &params)
{
    if (o.isParam() && o.index < static_cast<int>(params.size()))
        return operandToString(o, params[o.index]);
    return operandToString(o);
}

std::string
memOperand(const Operand &addr, RegVal disp,
           const std::vector<std::string> &params)
{
    std::ostringstream os;
    os << "[" << opnd(addr, params);
    if (disp != 0)
        os << "+" << disp;
    os << "]";
    return os.str();
}

} // namespace

std::string
instToString(const Instruction &inst, const std::vector<std::string> &params)
{
    std::ostringstream os;
    if (inst.guardPred >= 0)
        os << "@" << (inst.guardNeg ? "!" : "") << "p" << inst.guardPred
           << " ";
    switch (inst.op) {
      case Opcode::Setp:
        os << "setp." << cmpOpName(inst.cmp) << " " << opnd(inst.dst, params)
           << ", " << opnd(inst.src[0], params) << ", "
           << opnd(inst.src[1], params);
        break;
      case Opcode::Bra:
        os << "bra " << inst.target;
        break;
      case Opcode::Bar:
        os << "bar";
        break;
      case Opcode::Exit:
        os << "exit";
        break;
      case Opcode::Ld:
        os << "ld." << memSpaceName(inst.space) << "."
           << memWidthName(inst.width) << " " << opnd(inst.dst, params)
           << ", " << memOperand(inst.src[0], inst.addrOffset, params);
        break;
      case Opcode::St:
        os << "st." << memSpaceName(inst.space) << "."
           << memWidthName(inst.width) << " "
           << memOperand(inst.src[0], inst.addrOffset, params) << ", "
           << opnd(inst.src[1], params);
        break;
      case Opcode::EnqData:
      case Opcode::EnqAddr:
        os << opcodeName(inst.op) << "." << memWidthName(inst.width) << " "
           << memOperand(inst.src[0], inst.addrOffset, params);
        break;
      case Opcode::EnqPred:
        os << "enq.pred " << opnd(inst.src[0], params);
        break;
      case Opcode::LdDeq:
        os << "ld.deq." << memWidthName(inst.width) << " "
           << opnd(inst.dst, params);
        break;
      case Opcode::StDeq:
        os << "st.deq." << memWidthName(inst.width) << " "
           << opnd(inst.src[0], params);
        break;
      case Opcode::DeqPred:
        os << "deq.pred " << opnd(inst.dst, params);
        break;
      default: {
        os << opcodeName(inst.op) << " " << opnd(inst.dst, params);
        for (int i = 0; i < numSources(inst.op); ++i)
            os << ", " << opnd(inst.src[i], params);
        break;
      }
    }
    return os.str();
}

std::string
Kernel::disassemble() const
{
    std::ostringstream os;
    os << ".kernel " << name << "  (regs=" << numRegs
       << " preds=" << numPreds << " shared=" << sharedBytes << ")\n";
    for (int pc = 0; pc < numInsts(); ++pc) {
        for (const auto &[label, at] : labels)
            if (at == pc)
                os << label << ":\n";
        os << "  " << pc << ": " << instToString(insts[pc], params) << "\n";
    }
    return os.str();
}

} // namespace dacsim
