/**
 * @file
 * Instruction operands.
 */

#ifndef DACSIM_ISA_OPERAND_H
#define DACSIM_ISA_OPERAND_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace dacsim
{

/** The built-in read-only special registers (CUDA %tid etc.). */
enum class SpecialReg
{
    TidX, TidY, TidZ,          ///< threadIdx
    NtidX, NtidY, NtidZ,       ///< blockDim
    CtaidX, CtaidY, CtaidZ,    ///< blockIdx
    NctaidX, NctaidY, NctaidZ, ///< gridDim
};

/** Dimension index (0=x, 1=y, 2=z) of a special register. */
int specialRegDim(SpecialReg s);

/** True for threadIdx.* registers. */
bool isTidReg(SpecialReg s);

/** True for blockIdx.* registers. */
bool isCtaidReg(SpecialReg s);

/** True for blockDim.* / gridDim.* registers (scalar across the grid). */
bool isScalarSpecial(SpecialReg s);

const std::string &specialRegName(SpecialReg s);

/**
 * One source or destination operand.
 *
 * A small tagged value type; cheap to copy.
 */
struct Operand
{
    enum class Kind
    {
        None,      ///< unused slot
        Reg,       ///< general-purpose register r<index>
        Pred,      ///< predicate register p<index>
        Imm,       ///< integer immediate
        Special,   ///< tid/ntid/ctaid/nctaid
        Param,     ///< kernel parameter (scalar), by parameter slot
    };

    Kind kind = Kind::None;
    int index = 0;        ///< register / predicate / param slot
    RegVal imm = 0;       ///< immediate value
    SpecialReg sreg = SpecialReg::TidX;

    Operand() = default;

    static Operand reg(int r) { return {Kind::Reg, r, 0, {}}; }
    static Operand pred(int p) { return {Kind::Pred, p, 0, {}}; }
    static Operand imm64(RegVal v) { return {Kind::Imm, 0, v, {}}; }
    static Operand special(SpecialReg s) { return {Kind::Special, 0, 0, s}; }
    static Operand param(int slot) { return {Kind::Param, slot, 0, {}}; }

    bool isReg() const { return kind == Kind::Reg; }
    bool isPred() const { return kind == Kind::Pred; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isSpecial() const { return kind == Kind::Special; }
    bool isParam() const { return kind == Kind::Param; }
    bool isNone() const { return kind == Kind::None; }

    bool
    operator==(const Operand &o) const
    {
        if (kind != o.kind)
            return false;
        switch (kind) {
          case Kind::None: return true;
          case Kind::Reg:
          case Kind::Pred:
          case Kind::Param: return index == o.index;
          case Kind::Imm: return imm == o.imm;
          case Kind::Special: return sreg == o.sreg;
        }
        return false;
    }

  private:
    Operand(Kind k, int idx, RegVal v, SpecialReg s)
        : kind(k), index(idx), imm(v), sreg(s)
    {}
};

/** Render an operand in assembler syntax ("r3", "p0", "tid.x", "$A", 42). */
std::string operandToString(const Operand &op,
                            const std::string &paramName = "");

} // namespace dacsim

#endif // DACSIM_ISA_OPERAND_H
