#include "isa/operand.h"

#include <array>

#include "common/log.h"

namespace dacsim
{

int
specialRegDim(SpecialReg s)
{
    return static_cast<int>(s) % 3;
}

bool
isTidReg(SpecialReg s)
{
    return s == SpecialReg::TidX || s == SpecialReg::TidY ||
           s == SpecialReg::TidZ;
}

bool
isCtaidReg(SpecialReg s)
{
    return s == SpecialReg::CtaidX || s == SpecialReg::CtaidY ||
           s == SpecialReg::CtaidZ;
}

bool
isScalarSpecial(SpecialReg s)
{
    return !isTidReg(s) && !isCtaidReg(s);
}

const std::string &
specialRegName(SpecialReg s)
{
    static const std::array<std::string, 12> names = {
        "tid.x", "tid.y", "tid.z",
        "ntid.x", "ntid.y", "ntid.z",
        "ctaid.x", "ctaid.y", "ctaid.z",
        "nctaid.x", "nctaid.y", "nctaid.z",
    };
    return names.at(static_cast<std::size_t>(s));
}

std::string
operandToString(const Operand &op, const std::string &param_name)
{
    switch (op.kind) {
      case Operand::Kind::None:
        return "<none>";
      case Operand::Kind::Reg:
        return "r" + std::to_string(op.index);
      case Operand::Kind::Pred:
        return "p" + std::to_string(op.index);
      case Operand::Kind::Imm:
        return std::to_string(op.imm);
      case Operand::Kind::Special:
        return specialRegName(op.sreg);
      case Operand::Kind::Param:
        if (!param_name.empty())
            return "$" + param_name;
        return "$param" + std::to_string(op.index);
    }
    panic("bad operand kind");
}

} // namespace dacsim
