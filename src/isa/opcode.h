/**
 * @file
 * Opcode and related enumerations for the dacsim ISA.
 *
 * The ISA is a small PTX-like virtual instruction set, close to the
 * pseudo-assembly the paper uses in Figures 4 and 7. It is rich enough
 * to express the paper's 29 benchmark kernels and the decoupled
 * affine / non-affine streams (enq.* / deq.* forms).
 */

#ifndef DACSIM_ISA_OPCODE_H
#define DACSIM_ISA_OPCODE_H

#include <string>

namespace dacsim
{

enum class Opcode
{
    // ALU
    Mov,
    Add,
    Sub,
    Mul,
    Mad,    ///< d = a * b + c
    Shl,
    Shr,    ///< arithmetic shift right
    And,
    Or,
    Xor,
    Not,
    Min,
    Max,
    Abs,
    Div,    ///< signed integer division (trapping divide-by-zero)
    Mod,    ///< signed remainder; affine-eligible with scalar divisor
    Setp,   ///< set predicate register from a comparison
    Sel,    ///< d = p ? a : b
    // Control
    Bra,
    Bar,    ///< CTA-wide barrier (syncthreads)
    Exit,
    // Memory
    Ld,
    St,
    // DAC affine-stream instructions (emitted by the decoupler)
    EnqData,  ///< enqueue a load-address tuple; AEU also fetches the data
    EnqAddr,  ///< enqueue a store-address tuple (no data fetch)
    EnqPred,  ///< enqueue a predicate bit-vector tuple
    // DAC non-affine-stream instructions
    LdDeq,    ///< load using a dequeued warp address record
    StDeq,    ///< store using a dequeued warp address record
    DeqPred,  ///< set a predicate register from a dequeued bit vector
};

enum class CmpOp
{
    Eq, Ne, Lt, Le, Gt, Ge,
};

enum class MemSpace
{
    Global,   ///< device memory through L1/L2/DRAM
    Shared,   ///< per-CTA scratchpad
};

/** Memory access granularity, in bytes, with signedness for extension. */
enum class MemWidth
{
    U8, U16, U32, U64,
    S8, S16, S32,
};

/** Size in bytes of a memory access width. */
int memWidthBytes(MemWidth w);

/** Whether loads of this width sign-extend. */
bool memWidthSigned(MemWidth w);

/** Number of register source operands an opcode consumes. */
int numSources(Opcode op);

/** True for opcodes whose destination is a predicate register. */
bool writesPredicate(Opcode op);

/** True for ALU opcodes the affine datapath supports on tuples
 * (paper Sections 3, 4.4 and 4.6: add/sub/shl/mul-by-scalar/mad/mov,
 * plus the extended mod/min/max/abs/sel support). */
bool affineEligibleAlu(Opcode op);

const std::string &opcodeName(Opcode op);
const std::string &cmpOpName(CmpOp c);
const std::string &memSpaceName(MemSpace s);
const std::string &memWidthName(MemWidth w);

} // namespace dacsim

#endif // DACSIM_ISA_OPCODE_H
