/**
 * @file
 * Opcode and related enumerations for the dacsim ISA.
 *
 * The ISA is a small PTX-like virtual instruction set, close to the
 * pseudo-assembly the paper uses in Figures 4 and 7. It is rich enough
 * to express the paper's 29 benchmark kernels and the decoupled
 * affine / non-affine streams (enq.* / deq.* forms).
 */

#ifndef DACSIM_ISA_OPCODE_H
#define DACSIM_ISA_OPCODE_H

#include <string>

#include "common/log.h"

namespace dacsim
{

enum class Opcode
{
    // ALU
    Mov,
    Add,
    Sub,
    Mul,
    Mad,    ///< d = a * b + c
    Shl,
    Shr,    ///< arithmetic shift right
    And,
    Or,
    Xor,
    Not,
    Min,
    Max,
    Abs,
    Div,    ///< signed integer division (trapping divide-by-zero)
    Mod,    ///< signed remainder; affine-eligible with scalar divisor
    Setp,   ///< set predicate register from a comparison
    Sel,    ///< d = p ? a : b
    // Control
    Bra,
    Bar,    ///< CTA-wide barrier (syncthreads)
    Exit,
    // Memory
    Ld,
    St,
    // DAC affine-stream instructions (emitted by the decoupler)
    EnqData,  ///< enqueue a load-address tuple; AEU also fetches the data
    EnqAddr,  ///< enqueue a store-address tuple (no data fetch)
    EnqPred,  ///< enqueue a predicate bit-vector tuple
    // DAC non-affine-stream instructions
    LdDeq,    ///< load using a dequeued warp address record
    StDeq,    ///< store using a dequeued warp address record
    DeqPred,  ///< set a predicate register from a dequeued bit vector
};

enum class CmpOp
{
    Eq, Ne, Lt, Le, Gt, Ge,
};

enum class MemSpace
{
    Global,   ///< device memory through L1/L2/DRAM
    Shared,   ///< per-CTA scratchpad
};

/** Memory access granularity, in bytes, with signedness for extension. */
enum class MemWidth
{
    U8, U16, U32, U64,
    S8, S16, S32,
};

// The helpers below sit on the simulator's per-instruction hot path
// (billions of calls across a sweep), so they are defined inline here.

/** Size in bytes of a memory access width. */
inline int
memWidthBytes(MemWidth w)
{
    switch (w) {
      case MemWidth::U8: case MemWidth::S8: return 1;
      case MemWidth::U16: case MemWidth::S16: return 2;
      case MemWidth::U32: case MemWidth::S32: return 4;
      case MemWidth::U64: return 8;
    }
    panic("bad MemWidth");
}

/** Whether loads of this width sign-extend. */
inline bool
memWidthSigned(MemWidth w)
{
    switch (w) {
      case MemWidth::S8: case MemWidth::S16: case MemWidth::S32:
        return true;
      default:
        return false;
    }
}

/** Number of register source operands an opcode consumes. */
inline int
numSources(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::Abs:
        return 1;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::Setp:
        return 2;
      case Opcode::Mad:
      case Opcode::Sel:
        return 3;
      case Opcode::Bra:
      case Opcode::Bar:
      case Opcode::Exit:
        return 0;
      case Opcode::Ld:
        return 1;   // address
      case Opcode::St:
        return 2;   // address, value
      case Opcode::EnqData:
      case Opcode::EnqAddr:
        return 1;   // address tuple
      case Opcode::EnqPred:
        return 1;   // predicate register
      case Opcode::LdDeq:
      case Opcode::DeqPred:
        return 0;
      case Opcode::StDeq:
        return 1;   // value
    }
    panic("bad Opcode");
}

/** True for opcodes whose destination is a predicate register. */
inline bool
writesPredicate(Opcode op)
{
    return op == Opcode::Setp || op == Opcode::DeqPred;
}

/** True for ALU opcodes the affine datapath supports on tuples
 * (paper Sections 3, 4.4 and 4.6: add/sub/shl/mul-by-scalar/mad/mov,
 * plus the extended mod/min/max/abs/sel support). */
inline bool
affineEligibleAlu(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Mad:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Mod:
      case Opcode::Div:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Abs:
      case Opcode::Sel:
        return true;
      default:
        return false;
    }
}

const std::string &opcodeName(Opcode op);
const std::string &cmpOpName(CmpOp c);
const std::string &memSpaceName(MemSpace s);
const std::string &memWidthName(MemWidth w);

} // namespace dacsim

#endif // DACSIM_ISA_OPCODE_H
