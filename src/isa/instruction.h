/**
 * @file
 * The Instruction record and the Kernel container.
 */

#ifndef DACSIM_ISA_INSTRUCTION_H
#define DACSIM_ISA_INSTRUCTION_H

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/opcode.h"
#include "isa/operand.h"

namespace dacsim
{

/**
 * One decoded instruction.
 *
 * Instructions are stored in a flat vector inside a Kernel; branch
 * targets and reconvergence points are instruction indices into that
 * vector ("PCs").
 */
struct Instruction
{
    Opcode op = Opcode::Exit;
    CmpOp cmp = CmpOp::Eq;            ///< for setp
    MemSpace space = MemSpace::Global; ///< for ld/st/enq/deq
    MemWidth width = MemWidth::U32;    ///< for ld/st/enq/deq

    Operand dst;
    std::array<Operand, 3> src;

    /** Guard predicate register (-1 = unguarded), e.g. "@p0 bra". */
    int guardPred = -1;
    /** Guard is negated ("@!p0"). */
    bool guardNeg = false;

    /** Branch target PC (instruction index). */
    int target = -1;
    /** Immediate byte displacement for memory operands "[rN+imm]". */
    RegVal addrOffset = 0;

    /**
     * Reconvergence PC for divergent branches: the first instruction of
     * the branch block's immediate post-dominator. Filled in by
     * analyzeControlFlow; -1 until analysed (or for non-branches).
     */
    int reconvergePc = -1;

    /**
     * 1-based source line this instruction was assembled from (0 when
     * synthesized — decoupler-emitted affine stream, tests building IR
     * by hand). Diagnostics print it so a finding on generated fuzz
     * source points at the offending line, not just a PC.
     */
    int srcLine = 0;

    /**
     * For Bar under DAC: true when this barrier is replicated in both
     * streams and therefore advances the per-CTA barrier epoch used to
     * gate early memory fetches (Section 4.2). Set by the decoupler.
     */
    bool epochCounted = false;

    bool isBranch() const { return op == Opcode::Bra; }
    bool isBarrier() const { return op == Opcode::Bar; }
    bool isExit() const { return op == Opcode::Exit; }
    bool isLoad() const { return op == Opcode::Ld || op == Opcode::LdDeq; }
    bool isStore() const { return op == Opcode::St || op == Opcode::StDeq; }
    bool isMemory() const { return isLoad() || isStore(); }

    bool
    isEnq() const
    {
        return op == Opcode::EnqData || op == Opcode::EnqAddr ||
               op == Opcode::EnqPred;
    }

    bool
    isDeq() const
    {
        return op == Opcode::LdDeq || op == Opcode::StDeq ||
               op == Opcode::DeqPred;
    }

    /** True when control can fall through to pc+1 after this inst.
     * A guarded exit falls through for the threads failing its guard;
     * an unguarded bra or exit never falls through. */
    bool
    fallsThrough() const
    {
        if (isExit())
            return guardPred >= 0;
        return !(isBranch() && guardPred < 0);
    }
};

/** Render one instruction in assembler syntax (for tests / debugging). */
std::string instToString(const Instruction &inst,
                         const std::vector<std::string> &param_names = {});

/**
 * A complete kernel: code plus register/parameter/shared-memory
 * requirements. This is what the assembler produces, the compiler
 * transforms, and the simulator executes.
 */
struct Kernel
{
    std::string name;
    std::vector<Instruction> insts;
    int numRegs = 0;
    int numPreds = 0;
    /** Parameter names, in slot order; parameters are 64-bit scalars. */
    std::vector<std::string> params;
    /** Per-CTA shared-memory bytes. */
    int sharedBytes = 0;
    /** Label name -> instruction index (kept for diagnostics). */
    std::map<std::string, int> labels;
    /**
     * Static-analysis suppressions: instruction index -> rule IDs
     * allowed there, from `// lint:allow(RULE)` source pragmas
     * (DESIGN.md §10). Consulted by the DiagnosticEngine only; the
     * simulator ignores it.
     */
    std::map<int, std::vector<std::string>> lintAllows;

    int numInsts() const { return static_cast<int>(insts.size()); }

    /** Find a parameter slot by name; -1 if absent. */
    int
    paramSlot(const std::string &n) const
    {
        for (std::size_t i = 0; i < params.size(); ++i)
            if (params[i] == n)
                return static_cast<int>(i);
        return -1;
    }

    /** Full disassembly (one instruction per line, with PCs). */
    std::string disassemble() const;
};

} // namespace dacsim

#endif // DACSIM_ISA_INSTRUCTION_H
