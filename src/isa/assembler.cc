#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/log.h"

namespace dacsim
{

namespace
{

/** Split a string on a delimiter character. */
std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Assembler state while scanning one kernel. */
class Parser
{
  public:
    explicit Parser(const std::string &source) : source_(source) {}

    Kernel run();

  private:
    const std::string &source_;
    Kernel kernel_;
    int line_ = 0;
    /** bra instructions awaiting label resolution: pc -> label. */
    std::vector<std::pair<int, std::string>> fixups_;
    /** Rules from a standalone `// lint:allow(...)` pragma line,
     * waiting to attach to the next instruction. */
    std::vector<std::string> carryAllows_;

    /** Extract `lint:allow(A, B)` rule names from a comment. */
    static std::vector<std::string> parseAllowPragma(
        const std::string &comment);

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("asm line ", line_, ": ", msg);
    }

    void parseLine(std::string text);
    void parseDirective(const std::string &text);
    void parseInstruction(const std::string &text);
    Operand parseOperand(const std::string &tok);
    /** Parse "[base]" / "[base+disp]" into operand + displacement. */
    std::pair<Operand, RegVal> parseMemOperand(const std::string &tok);
    std::optional<RegVal> parseInt(const std::string &tok) const;
    std::optional<SpecialReg> parseSpecial(const std::string &tok) const;
    MemWidth parseWidth(const std::string &suffix) const;
    CmpOp parseCmp(const std::string &suffix) const;
    void noteReg(const Operand &op);
    void finish();
};

std::optional<RegVal>
Parser::parseInt(const std::string &tok) const
{
    if (tok.empty())
        return std::nullopt;
    std::size_t i = 0;
    bool neg = false;
    if (tok[0] == '-' || tok[0] == '+') {
        neg = tok[0] == '-';
        i = 1;
    }
    if (i >= tok.size())
        return std::nullopt;
    int base = 10;
    if (tok.size() > i + 2 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        base = 16;
        i += 2;
    }
    RegVal v = 0;
    for (; i < tok.size(); ++i) {
        char c = static_cast<char>(std::tolower(tok[i]));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return std::nullopt;
        v = v * base + digit;
    }
    return neg ? -v : v;
}

std::optional<SpecialReg>
Parser::parseSpecial(const std::string &tok) const
{
    static const std::map<std::string, SpecialReg> table = {
        {"tid.x", SpecialReg::TidX}, {"tid.y", SpecialReg::TidY},
        {"tid.z", SpecialReg::TidZ},
        {"ntid.x", SpecialReg::NtidX}, {"ntid.y", SpecialReg::NtidY},
        {"ntid.z", SpecialReg::NtidZ},
        {"ctaid.x", SpecialReg::CtaidX}, {"ctaid.y", SpecialReg::CtaidY},
        {"ctaid.z", SpecialReg::CtaidZ},
        {"nctaid.x", SpecialReg::NctaidX}, {"nctaid.y", SpecialReg::NctaidY},
        {"nctaid.z", SpecialReg::NctaidZ},
    };
    auto it = table.find(tok);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

MemWidth
Parser::parseWidth(const std::string &suffix) const
{
    static const std::map<std::string, MemWidth> table = {
        {"u8", MemWidth::U8}, {"u16", MemWidth::U16},
        {"u32", MemWidth::U32}, {"u64", MemWidth::U64},
        {"s8", MemWidth::S8}, {"s16", MemWidth::S16},
        {"s32", MemWidth::S32}, {"s64", MemWidth::U64},
    };
    auto it = table.find(suffix);
    if (it == table.end())
        err("bad memory width '." + suffix + "'");
    return it->second;
}

CmpOp
Parser::parseCmp(const std::string &suffix) const
{
    static const std::map<std::string, CmpOp> table = {
        {"eq", CmpOp::Eq}, {"ne", CmpOp::Ne}, {"lt", CmpOp::Lt},
        {"le", CmpOp::Le}, {"gt", CmpOp::Gt}, {"ge", CmpOp::Ge},
    };
    auto it = table.find(suffix);
    if (it == table.end())
        err("bad comparison '." + suffix + "'");
    return it->second;
}

void
Parser::noteReg(const Operand &op)
{
    if (op.isReg())
        kernel_.numRegs = std::max(kernel_.numRegs, op.index + 1);
    else if (op.isPred())
        kernel_.numPreds = std::max(kernel_.numPreds, op.index + 1);
}

Operand
Parser::parseOperand(const std::string &raw)
{
    std::string tok = trim(raw);
    if (tok.empty())
        err("empty operand");
    if (tok[0] == '$') {
        std::string name = tok.substr(1);
        int slot = kernel_.paramSlot(name);
        if (slot < 0)
            err("undeclared parameter '$" + name + "'");
        return Operand::param(slot);
    }
    if (auto s = parseSpecial(tok))
        return Operand::special(*s);
    if ((tok[0] == 'r' || tok[0] == 'p') && tok.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        auto idx = parseInt(tok.substr(1));
        if (idx && *idx >= 0) {
            Operand op = tok[0] == 'r'
                             ? Operand::reg(static_cast<int>(*idx))
                             : Operand::pred(static_cast<int>(*idx));
            noteReg(op);
            return op;
        }
    }
    if (auto v = parseInt(tok))
        return Operand::imm64(*v);
    err("bad operand '" + tok + "'");
}

std::pair<Operand, RegVal>
Parser::parseMemOperand(const std::string &raw)
{
    std::string tok = trim(raw);
    if (tok.size() < 3 || tok.front() != '[' || tok.back() != ']')
        err("expected memory operand '[...]', got '" + tok + "'");
    std::string inner = trim(tok.substr(1, tok.size() - 2));
    // Find a +/- displacement, skipping a possible leading sign.
    std::size_t pos = std::string::npos;
    for (std::size_t i = 1; i < inner.size(); ++i) {
        if (inner[i] == '+' || inner[i] == '-') {
            pos = i;
            break;
        }
    }
    RegVal disp = 0;
    std::string base = inner;
    if (pos != std::string::npos) {
        base = trim(inner.substr(0, pos));
        std::string dstr = trim(inner.substr(pos));
        auto v = parseInt(dstr);
        if (!v)
            err("bad displacement '" + dstr + "'");
        disp = *v;
    }
    return {parseOperand(base), disp};
}

void
Parser::parseDirective(const std::string &text)
{
    std::istringstream is(text);
    std::string word;
    is >> word;
    if (word == ".kernel") {
        if (!kernel_.name.empty())
            err("duplicate .kernel directive (one kernel per source)");
        is >> kernel_.name;
        if (kernel_.name.empty())
            err(".kernel needs a name");
    } else if (word == ".param") {
        if (kernel_.name.empty())
            err(".param before .kernel");
        std::string p;
        while (is >> p) {
            if (kernel_.paramSlot(p) >= 0)
                err("duplicate parameter '" + p + "'");
            kernel_.params.push_back(p);
        }
    } else if (word == ".shared") {
        if (kernel_.name.empty())
            err(".shared before .kernel");
        int bytes = -1;
        if (!(is >> bytes) || bytes < 0)
            err(".shared needs a byte count");
        kernel_.sharedBytes = bytes;
    } else {
        err("unknown directive '" + word + "'");
    }
}

void
Parser::parseInstruction(const std::string &text)
{
    Instruction inst;
    std::string rest = text;

    // Optional guard "@p0 " / "@!p0 ".
    if (!rest.empty() && rest[0] == '@') {
        std::size_t sp = rest.find_first_of(" \t");
        if (sp == std::string::npos)
            err("guard without instruction");
        std::string g = rest.substr(1, sp - 1);
        rest = trim(rest.substr(sp));
        if (!g.empty() && g[0] == '!') {
            inst.guardNeg = true;
            g = g.substr(1);
        }
        Operand p = parseOperand(g);
        if (!p.isPred())
            err("guard must be a predicate register");
        inst.guardPred = p.index;
    }

    // Mnemonic token.
    std::size_t sp = rest.find_first_of(" \t");
    std::string mnem = sp == std::string::npos ? rest : rest.substr(0, sp);
    std::string args = sp == std::string::npos ? "" : trim(rest.substr(sp));
    std::vector<std::string> parts = split(mnem, '.');

    static const std::map<std::string, Opcode> simpleAlu = {
        {"mov", Opcode::Mov}, {"add", Opcode::Add}, {"sub", Opcode::Sub},
        {"mul", Opcode::Mul}, {"mad", Opcode::Mad}, {"shl", Opcode::Shl},
        {"shr", Opcode::Shr}, {"and", Opcode::And}, {"or", Opcode::Or},
        {"xor", Opcode::Xor}, {"not", Opcode::Not}, {"min", Opcode::Min},
        {"max", Opcode::Max}, {"abs", Opcode::Abs}, {"div", Opcode::Div},
        {"mod", Opcode::Mod}, {"sel", Opcode::Sel},
    };

    const std::string &base = parts[0];
    std::vector<std::string> argv;
    if (!args.empty())
        for (auto &a : split(args, ','))
            argv.push_back(trim(a));

    auto expectArgs = [&](std::size_t n) {
        if (argv.size() != n)
            err("'" + mnem + "' expects " + std::to_string(n) +
                " operands, got " + std::to_string(argv.size()));
    };

    if (auto it = simpleAlu.find(base);
        it != simpleAlu.end() && parts.size() == 1) {
        inst.op = it->second;
        int nsrc = numSources(inst.op);
        expectArgs(static_cast<std::size_t>(nsrc) + 1);
        inst.dst = parseOperand(argv[0]);
        if (!inst.dst.isReg())
            err("ALU destination must be a register");
        for (int i = 0; i < nsrc; ++i)
            inst.src[i] = parseOperand(argv[i + 1]);
        if (inst.op == Opcode::Sel && !inst.src[2].isPred())
            err("sel selector must be a predicate register");
    } else if (base == "setp") {
        if (parts.size() != 2)
            err("setp needs a comparison suffix, e.g. setp.lt");
        inst.op = Opcode::Setp;
        inst.cmp = parseCmp(parts[1]);
        expectArgs(3);
        inst.dst = parseOperand(argv[0]);
        if (!inst.dst.isPred())
            err("setp destination must be a predicate register");
        inst.src[0] = parseOperand(argv[1]);
        inst.src[1] = parseOperand(argv[2]);
    } else if (base == "bra") {
        inst.op = Opcode::Bra;
        expectArgs(1);
        fixups_.emplace_back(kernel_.numInsts(), argv[0]);
    } else if (base == "bar") {
        inst.op = Opcode::Bar;
        expectArgs(0);
    } else if (base == "exit") {
        inst.op = Opcode::Exit;
        expectArgs(0);
    } else if (base == "ld" && parts.size() >= 2 && parts[1] == "deq") {
        inst.op = Opcode::LdDeq;
        inst.width = parts.size() > 2 ? parseWidth(parts[2]) : MemWidth::U32;
        expectArgs(1);
        inst.dst = parseOperand(argv[0]);
        if (!inst.dst.isReg())
            err("ld.deq destination must be a register");
    } else if (base == "st" && parts.size() >= 2 && parts[1] == "deq") {
        inst.op = Opcode::StDeq;
        inst.width = parts.size() > 2 ? parseWidth(parts[2]) : MemWidth::U32;
        expectArgs(1);
        inst.src[0] = parseOperand(argv[0]);
    } else if (base == "ld" || base == "st") {
        inst.op = base == "ld" ? Opcode::Ld : Opcode::St;
        if (parts.size() < 2)
            err("ld/st need a space suffix, e.g. ld.global.u32");
        if (parts[1] == "global")
            inst.space = MemSpace::Global;
        else if (parts[1] == "shared")
            inst.space = MemSpace::Shared;
        else if (parts[1] == "local")
            inst.space = MemSpace::Global;  // local == global in our model
        else
            err("bad memory space '." + parts[1] + "'");
        inst.width = parts.size() > 2 ? parseWidth(parts[2]) : MemWidth::U32;
        expectArgs(2);
        if (inst.op == Opcode::Ld) {
            inst.dst = parseOperand(argv[0]);
            if (!inst.dst.isReg())
                err("ld destination must be a register");
            std::tie(inst.src[0], inst.addrOffset) = parseMemOperand(argv[1]);
        } else {
            std::tie(inst.src[0], inst.addrOffset) = parseMemOperand(argv[0]);
            inst.src[1] = parseOperand(argv[1]);
        }
    } else if (base == "enq") {
        if (parts.size() < 2)
            err("enq needs a kind suffix: enq.data / enq.addr / enq.pred");
        if (parts[1] == "pred") {
            inst.op = Opcode::EnqPred;
            expectArgs(1);
            inst.src[0] = parseOperand(argv[0]);
            if (!inst.src[0].isPred())
                err("enq.pred source must be a predicate register");
        } else {
            inst.op = parts[1] == "data" ? Opcode::EnqData
                      : parts[1] == "addr"
                          ? Opcode::EnqAddr
                          : (err("bad enq kind '." + parts[1] + "'"),
                             Opcode::EnqData);
            inst.width =
                parts.size() > 2 ? parseWidth(parts[2]) : MemWidth::U32;
            expectArgs(1);
            std::tie(inst.src[0], inst.addrOffset) = parseMemOperand(argv[0]);
        }
    } else if (base == "deq") {
        if (parts.size() != 2 || parts[1] != "pred")
            err("only deq.pred is a standalone deq instruction");
        inst.op = Opcode::DeqPred;
        expectArgs(1);
        inst.dst = parseOperand(argv[0]);
        if (!inst.dst.isPred())
            err("deq.pred destination must be a predicate register");
    } else {
        err("unknown instruction '" + mnem + "'");
    }

    kernel_.insts.push_back(inst);
}

std::vector<std::string>
Parser::parseAllowPragma(const std::string &comment)
{
    std::vector<std::string> rules;
    std::size_t at = comment.find("lint:allow(");
    if (at == std::string::npos)
        return rules;
    std::size_t open = at + std::string("lint:allow(").size() - 1;
    std::size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return rules;
    for (const std::string &part :
         split(comment.substr(open + 1, close - open - 1), ',')) {
        std::string r = trim(part);
        if (!r.empty())
            rules.push_back(r);
    }
    return rules;
}

void
Parser::parseLine(std::string text)
{
    // Strip comments, harvesting any lint:allow(...) pragma first.
    std::vector<std::string> allows;
    if (auto pos = text.find("//"); pos != std::string::npos) {
        allows = parseAllowPragma(text.substr(pos));
        text = text.substr(0, pos);
    }
    const int firstPc = kernel_.numInsts();
    // Rules attach to every instruction on this line, or — from a
    // standalone pragma line — to the next instruction parsed.
    if (!allows.empty())
        carryAllows_.insert(carryAllows_.end(), allows.begin(),
                            allows.end());
    auto attachAllows = [&] {
        if (carryAllows_.empty())
            return;
        for (int pc = firstPc; pc < kernel_.numInsts(); ++pc) {
            auto &dst = kernel_.lintAllows[pc];
            dst.insert(dst.end(), carryAllows_.begin(),
                       carryAllows_.end());
        }
        if (kernel_.numInsts() > firstPc)
            carryAllows_.clear();
    };
    text = trim(text);
    if (text.empty()) {
        attachAllows();
        return;
    }

    if (text[0] == '.') {
        parseDirective(text);
        return;
    }

    // Peel leading labels ("NAME:"), possibly several per line.
    while (true) {
        std::size_t colon = text.find(':');
        if (colon == std::string::npos)
            break;
        std::string head = trim(text.substr(0, colon));
        // A label must be a bare identifier (no spaces or commas).
        if (head.empty() ||
            head.find_first_of(" \t,@[") != std::string::npos) {
            break;
        }
        if (kernel_.labels.count(head))
            err("duplicate label '" + head + "'");
        kernel_.labels[head] = kernel_.numInsts();
        text = trim(text.substr(colon + 1));
        if (text.empty())
            return;
    }

    // Every statement must be ';'-terminated: anything after the last
    // ';' is a truncated or unterminated instruction, not a statement.
    if (kernel_.name.empty())
        err("instruction before .kernel");
    if (text.back() != ';')
        err("missing ';' after '" + text + "'");

    // Split on ';' — multiple statements per line are allowed.
    for (auto &stmt : split(text, ';')) {
        std::string s = trim(stmt);
        if (!s.empty())
            parseInstruction(s);
    }
    for (int pc = firstPc; pc < kernel_.numInsts(); ++pc)
        kernel_.insts[pc].srcLine = line_;
    attachAllows();
}

void
Parser::finish()
{
    for (auto &[pc, label] : fixups_) {
        auto it = kernel_.labels.find(label);
        if (it == kernel_.labels.end())
            fatal("asm line ", kernel_.insts[pc].srcLine,
                  ": undefined label '", label, "'");
        kernel_.insts[pc].target = it->second;
    }
    for (auto &[label, at] : kernel_.labels) {
        require(at <= kernel_.numInsts(), "label '", label,
                "' out of range");
    }
    require(!kernel_.insts.empty(), "asm: kernel '", kernel_.name,
            "' has no instructions");
    require(kernel_.insts.back().isExit() || kernel_.insts.back().isBranch(),
            "asm: kernel '", kernel_.name,
            "' must end with exit or an unconditional branch");
}

Kernel
Parser::run()
{
    std::istringstream is(source_);
    std::string text;
    while (std::getline(is, text)) {
        ++line_;
        parseLine(text);
    }
    finish();
    return std::move(kernel_);
}

} // namespace

Kernel
assemble(const std::string &source)
{
    return Parser(source).run();
}

} // namespace dacsim
