#include "isa/opcode.h"

#include <array>

#include "common/log.h"

namespace dacsim
{

const std::string &
opcodeName(Opcode op)
{
    static const std::array<std::string, 29> names = {
        "mov", "add", "sub", "mul", "mad", "shl", "shr", "and", "or",
        "xor", "not", "min", "max", "abs", "div", "mod", "setp", "sel",
        "bra", "bar", "exit", "ld", "st",
        "enq.data", "enq.addr", "enq.pred",
        "ld.deq", "st.deq", "deq.pred",
    };
    return names.at(static_cast<std::size_t>(op));
}

const std::string &
cmpOpName(CmpOp c)
{
    static const std::array<std::string, 6> names = {
        "eq", "ne", "lt", "le", "gt", "ge",
    };
    return names.at(static_cast<std::size_t>(c));
}

const std::string &
memSpaceName(MemSpace s)
{
    static const std::array<std::string, 2> names = {"global", "shared"};
    return names.at(static_cast<std::size_t>(s));
}

const std::string &
memWidthName(MemWidth w)
{
    static const std::array<std::string, 7> names = {
        "u8", "u16", "u32", "u64", "s8", "s16", "s32",
    };
    return names.at(static_cast<std::size_t>(w));
}

} // namespace dacsim
