#include "isa/opcode.h"

#include <array>

#include "common/log.h"

namespace dacsim
{

int
memWidthBytes(MemWidth w)
{
    switch (w) {
      case MemWidth::U8: case MemWidth::S8: return 1;
      case MemWidth::U16: case MemWidth::S16: return 2;
      case MemWidth::U32: case MemWidth::S32: return 4;
      case MemWidth::U64: return 8;
    }
    panic("bad MemWidth");
}

bool
memWidthSigned(MemWidth w)
{
    switch (w) {
      case MemWidth::S8: case MemWidth::S16: case MemWidth::S32:
        return true;
      default:
        return false;
    }
}

int
numSources(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::Abs:
        return 1;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::Setp:
        return 2;
      case Opcode::Mad:
      case Opcode::Sel:
        return 3;
      case Opcode::Bra:
      case Opcode::Bar:
      case Opcode::Exit:
        return 0;
      case Opcode::Ld:
        return 1;   // address
      case Opcode::St:
        return 2;   // address, value
      case Opcode::EnqData:
      case Opcode::EnqAddr:
        return 1;   // address tuple
      case Opcode::EnqPred:
        return 1;   // predicate register
      case Opcode::LdDeq:
      case Opcode::DeqPred:
        return 0;
      case Opcode::StDeq:
        return 1;   // value
    }
    panic("bad Opcode");
}

bool
writesPredicate(Opcode op)
{
    return op == Opcode::Setp || op == Opcode::DeqPred;
}

bool
affineEligibleAlu(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Mad:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Mod:
      case Opcode::Div:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Abs:
      case Opcode::Sel:
        return true;
      default:
        return false;
    }
}

const std::string &
opcodeName(Opcode op)
{
    static const std::array<std::string, 29> names = {
        "mov", "add", "sub", "mul", "mad", "shl", "shr", "and", "or",
        "xor", "not", "min", "max", "abs", "div", "mod", "setp", "sel",
        "bra", "bar", "exit", "ld", "st",
        "enq.data", "enq.addr", "enq.pred",
        "ld.deq", "st.deq", "deq.pred",
    };
    return names.at(static_cast<std::size_t>(op));
}

const std::string &
cmpOpName(CmpOp c)
{
    static const std::array<std::string, 6> names = {
        "eq", "ne", "lt", "le", "gt", "ge",
    };
    return names.at(static_cast<std::size_t>(c));
}

const std::string &
memSpaceName(MemSpace s)
{
    static const std::array<std::string, 2> names = {"global", "shared"};
    return names.at(static_cast<std::size_t>(s));
}

const std::string &
memWidthName(MemWidth w)
{
    static const std::array<std::string, 7> names = {
        "u8", "u16", "u32", "u64", "s8", "s16", "s32",
    };
    return names.at(static_cast<std::size_t>(w));
}

} // namespace dacsim
