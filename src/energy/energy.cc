#include "energy/energy.h"

namespace dacsim
{

EnergyBreakdown
computeEnergy(const RunStats &s, const EnergyParams &p)
{
    EnergyBreakdown e;
    e.alu = static_cast<double>(s.laneOps) * p.aluPj;
    e.reg = static_cast<double>(s.regFileAccesses) * p.regPj;
    e.otherDynamic =
        static_cast<double>(s.l1Hits + s.l1Misses) * p.l1Pj +
        static_cast<double>(s.l2Hits + s.l2Misses) * p.l2Pj +
        static_cast<double>(s.dramAccesses) * p.dramPj +
        static_cast<double>(s.sharedAccesses) * p.sharedPj +
        static_cast<double>(s.prefetchesIssued) * p.l1Pj;
    e.dacOverhead =
        static_cast<double>(s.atqAccesses) * p.atqPj +
        static_cast<double>(s.pwaqAccesses) * p.pwaqPj +
        static_cast<double>(s.pwpqAccesses) * p.pwpqPj +
        static_cast<double>(s.affineStackAccesses) * p.pwsPj +
        static_cast<double>(s.expansionAluOps) * p.aluPj;
    e.staticEnergy = static_cast<double>(s.cycles) * p.staticPjPerCycle;
    return e;
}

} // namespace dacsim
