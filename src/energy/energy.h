/**
 * @file
 * GPUWattch-style event-count energy model (paper Section 5.6).
 *
 * Dynamic energy is per-event costs times event counts from RunStats;
 * static energy is leakage power times run time. DAC's added
 * structures use the per-access energies the paper reports in Table 1
 * (ATQ 5.3 pJ, PWAQ 3.4 pJ, PWPQ 1.5 pJ, PWS 2.7 pJ per access).
 *
 * Absolute joules are not meaningful (the substrate is a model, not
 * CACTI on a placed design); all figures report energy normalized to
 * the baseline GPU, which this event model reproduces structurally.
 */

#ifndef DACSIM_ENERGY_ENERGY_H
#define DACSIM_ENERGY_ENERGY_H

#include "common/stats.h"

namespace dacsim
{

struct EnergyParams
{
    // Dynamic, in pJ per event.
    double aluPj = 10.0;        ///< per lane ALU operation
    double regPj = 40.0;        ///< per warp-wide register file access
    double l1Pj = 60.0;
    double l2Pj = 120.0;
    double dramPj = 2000.0;     ///< per 128B line transfer
    double sharedPj = 45.0;
    // DAC structures (paper Table 1).
    double atqPj = 5.3;
    double pwaqPj = 3.4;
    double pwpqPj = 1.5;
    double pwsPj = 2.7;
    // Leakage for the whole GPU, per cycle.
    double staticPjPerCycle = 2600.0;
};

/** Energy breakdown matching the Fig 21 stack. */
struct EnergyBreakdown
{
    double dacOverhead = 0; ///< expansion units + DAC SRAM structures
    double alu = 0;
    double reg = 0;
    double otherDynamic = 0; ///< caches, DRAM, shared memory
    double staticEnergy = 0;

    double
    total() const
    {
        return dacOverhead + alu + reg + otherDynamic + staticEnergy;
    }

    double dynamic() const { return total() - staticEnergy; }
};

/** Evaluate the model over one run's counters. */
EnergyBreakdown computeEnergy(const RunStats &s,
                              const EnergyParams &p = EnergyParams{});

} // namespace dacsim

#endif // DACSIM_ENERGY_ENERGY_H
