/**
 * @file
 * Opt-in execution tracing, in the spirit of gem5's DPRINTF.
 *
 * Set DACSIM_TRACE=1 (common/env.h registry) to stream one line per
 * issued warp instruction (and per affine-warp step) to stderr. This
 * is the deep-debug path — for anything structured, prefer the
 * --chrome-trace Perfetto export (DESIGN.md §11). Zero cost when
 * disabled beyond one predictable branch per call site.
 */

#ifndef DACSIM_COMMON_TRACE_H
#define DACSIM_COMMON_TRACE_H

#include <cstdio>

#include "common/env.h"

namespace dacsim
{

/** Whether DACSIM_TRACE is set (cached on first use). */
inline bool
traceEnabled()
{
    static const bool enabled = env().trace;
    return enabled;
}

} // namespace dacsim

/** Emit a trace line when tracing is on (printf-style). */
#define DACSIM_TRACE_LOG(...)                                              \
    do {                                                                    \
        if (::dacsim::traceEnabled()) {                                     \
            std::fprintf(stderr, __VA_ARGS__);                              \
            std::fputc('\n', stderr);                                       \
        }                                                                   \
    } while (0)

#endif // DACSIM_COMMON_TRACE_H
