#include "common/env.h"

#include <cstdio>
#include <cstring>

extern char **environ;

namespace dacsim
{

const std::vector<EnvKnob> &
envRegistry()
{
    static const std::vector<EnvKnob> knobs = {
        {"DACSIM_TRACE", "bool", "0",
         "stream one stderr line per issued instruction (deep debug; "
         "prefer --chrome-trace)"},
        {"DACSIM_LINT", "bool", "0",
         "audit every run's decoupling with rule DAC-E007 before "
         "simulating"},
        {"DACSIM_UPDATE_GOLDEN", "bool", "0",
         "rewrite golden fixtures instead of comparing (tests only)"},
        {"DACSIM_SIM_CORE", "string", "",
         "simulation core override: stepped, fast-forward, or event "
         "(empty: config default)"},
        {"DACSIM_JOBS", "int", "0",
         "sweep worker threads (0: hardware concurrency)"},
        {"DACSIM_SWEEP_ABORT_AFTER", "int", "0",
         "kill the process after n fresh sweep points (0: off; "
         "kill/restart testing)"},
        {"DACSIM_FAULTS", "string", "",
         "deterministic fault-plan spec (FaultPlan::parse) applied to "
         "runs"},
        {"DACSIM_FAULT_BENCHES", "string", "",
         "comma-separated benchmarks DACSIM_FAULTS applies to (empty: "
         "all)"},
        {"DACSIM_CHECKPOINT_DIR", "string", "",
         "snapshot/journal directory for resumable sweeps (empty: "
         "off)"},
        {"DACSIM_FUZZ_SEEDS", "int", "1000",
         "default dacsim-fuzz campaign size (seeds per campaign)"},
        {"DACSIM_FUZZ_JOBS", "int", "0",
         "concurrent fuzz cases (0: DACSIM_JOBS, then hardware "
         "concurrency)"},
        {"DACSIM_FUZZ_DIR", "string", "",
         "dacsim-fuzz journal/repro directory (empty: ephemeral, no "
         "resume)"},
        {"DACSIM_FUZZ_TIMEOUT_MS", "int", "20000",
         "per-fuzz-case watchdog deadline before the child is killed"},
        {"DACSIM_SERVICE_SOCKET", "string", "",
         "dacsimd unix-socket path; non-empty routes bench sweeps "
         "through the service"},
        {"DACSIM_SERVICE_DIR", "string", "",
         "dacsimd state directory (result cache + durable queue "
         "journal)"},
        {"DACSIM_SERVICE_WORKERS", "int", "0",
         "dacsimd worker pool size (0: hardware concurrency)"},
        {"DACSIM_SERVICE_TIMEOUT_MS", "int", "60000",
         "per-service-job watchdog deadline before the child is "
         "killed"},
        {"DACSIM_SERVICE_RETRIES", "int", "2",
         "dacsimd retries after host-side flake (crashed or hung "
         "child)"},
        {"DACSIM_SERVICE_CHAOS", "string", "",
         "dacsimd injected-failure spec, e.g. "
         "crash=0.2,timeout=0.05,seed=7 (empty: off)"},
        {"DACSIM_SERVICE_SHARDS", "string", "",
         "comma-separated dacsimd socket paths: the client-side shard "
         "map (empty: single DACSIM_SERVICE_SOCKET)"},
        {"DACSIM_SERVICE_CLIENT", "string", "",
         "fair-share client identity stamped on submitted jobs "
         "(empty: the default client)"},
        {"DACSIM_SERVICE_WEIGHT", "int", "1",
         "fair-share weight for this process's jobs (clamped to "
         "[1, 1024])"},
        {"DACSIM_SERVICE_QUEUE_DEPTH", "int", "256",
         "dacsimd per-client admission bound on queued + running jobs "
         "(0: unbounded)"},
    };
    return knobs;
}

namespace
{

bool
parseBool(const std::string &v)
{
    return !v.empty() && v[0] != '0';
}

/** Strict integer parse; false on any non-numeric trailing text. */
bool
parseLong(const std::string &v, long *out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    long n = std::strtol(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    *out = n;
    return true;
}

void
warn(std::vector<std::string> *warnings, std::string msg)
{
    if (warnings)
        warnings->push_back(std::move(msg));
}

} // namespace

Env
parseEnv(const std::vector<std::pair<std::string, std::string>> &vars,
         std::vector<std::string> *warnings)
{
    Env env;
    for (const auto &[name, value] : vars) {
        if (name.rfind("DACSIM_", 0) != 0)
            continue;
        const EnvKnob *knob = nullptr;
        for (const EnvKnob &k : envRegistry())
            if (name == k.name) {
                knob = &k;
                break;
            }
        if (knob == nullptr) {
            warn(warnings, "unknown environment variable " + name +
                               " (see --help for the DACSIM_* registry)");
            continue;
        }
        long n = 0;
        if (std::strcmp(knob->type, "int") == 0 &&
            !parseLong(value, &n)) {
            warn(warnings, "malformed " + name + "=" + value +
                               " (expected an integer); using default " +
                               knob->defl);
            continue;
        }
        if (name == "DACSIM_TRACE")
            env.trace = parseBool(value);
        else if (name == "DACSIM_LINT")
            env.lint = parseBool(value);
        else if (name == "DACSIM_UPDATE_GOLDEN")
            env.updateGolden = parseBool(value);
        else if (name == "DACSIM_SIM_CORE") {
            if (value.empty() || value == "stepped" ||
                value == "fast-forward" || value == "event") {
                env.simCore = value;
            } else {
                warn(warnings,
                     "malformed " + name + "=" + value +
                         " (expected stepped, fast-forward, or event); "
                         "using the config default");
            }
        } else if (name == "DACSIM_JOBS")
            env.jobs = n > 0 ? static_cast<int>(n) : 0;
        else if (name == "DACSIM_SWEEP_ABORT_AFTER")
            env.sweepAbortAfter = n > 0 ? n : 0;
        else if (name == "DACSIM_FAULTS")
            env.faults = value;
        else if (name == "DACSIM_FAULT_BENCHES")
            env.faultBenches = value;
        else if (name == "DACSIM_CHECKPOINT_DIR")
            env.checkpointDir = value;
        else if (name == "DACSIM_FUZZ_SEEDS")
            env.fuzzSeeds = n > 0 ? static_cast<int>(n) : 0;
        else if (name == "DACSIM_FUZZ_JOBS")
            env.fuzzJobs = n > 0 ? static_cast<int>(n) : 0;
        else if (name == "DACSIM_FUZZ_DIR")
            env.fuzzDir = value;
        else if (name == "DACSIM_FUZZ_TIMEOUT_MS")
            env.fuzzTimeoutMs = n > 0 ? static_cast<int>(n) : 20000;
        else if (name == "DACSIM_SERVICE_SOCKET")
            env.serviceSocket = value;
        else if (name == "DACSIM_SERVICE_DIR")
            env.serviceDir = value;
        else if (name == "DACSIM_SERVICE_WORKERS")
            env.serviceWorkers = n > 0 ? static_cast<int>(n) : 0;
        else if (name == "DACSIM_SERVICE_TIMEOUT_MS")
            env.serviceTimeoutMs = n > 0 ? static_cast<int>(n) : 60000;
        else if (name == "DACSIM_SERVICE_RETRIES")
            env.serviceRetries = n >= 0 ? static_cast<int>(n) : 2;
        else if (name == "DACSIM_SERVICE_CHAOS")
            env.serviceChaos = value;
        else if (name == "DACSIM_SERVICE_SHARDS")
            env.serviceShards = value;
        else if (name == "DACSIM_SERVICE_CLIENT")
            env.serviceClient = value;
        else if (name == "DACSIM_SERVICE_WEIGHT")
            env.serviceWeight = n > 0 ? static_cast<int>(n) : 1;
        else if (name == "DACSIM_SERVICE_QUEUE_DEPTH")
            env.serviceQueueDepth = n >= 0 ? static_cast<int>(n) : 256;
    }
    return env;
}

const Env &
env()
{
    static const Env parsed = [] {
        std::vector<std::pair<std::string, std::string>> vars;
        for (char **e = environ; e != nullptr && *e != nullptr; ++e) {
            const char *eq = std::strchr(*e, '=');
            if (eq == nullptr)
                continue;
            vars.emplace_back(
                std::string(*e, static_cast<std::size_t>(eq - *e)),
                std::string(eq + 1));
        }
        std::vector<std::string> warnings;
        Env env = parseEnv(vars, &warnings);
        for (const std::string &w : warnings)
            std::fprintf(stderr, "dacsim: warning: %s\n", w.c_str());
        return env;
    }();
    return parsed;
}

std::string
envHelpText()
{
    std::string out = "Environment knobs (DACSIM_* registry):\n";
    for (const EnvKnob &k : envRegistry()) {
        char line[96];
        std::snprintf(line, sizeof line, "  %-26s %-7s [%s]\n", k.name,
                      k.type, k.defl);
        out += line;
        out += "      ";
        out += k.help;
        out += "\n";
    }
    return out;
}

} // namespace dacsim
