/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad kernel assembly, bad configuration):
 * the simulation cannot continue but the simulator itself is fine.
 * panic() is for internal invariant violations: a dacsim bug.
 */

#ifndef DACSIM_COMMON_LOG_H
#define DACSIM_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dacsim
{

/** Exception thrown for user-level errors (bad input, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (simulator bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

} // namespace detail

/** Abort the simulation with a user-level error message. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::appendAll(os, args...);
    throw FatalError(os.str());
}

/** Abort the simulation due to an internal invariant violation. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::appendAll(os, args...);
    throw PanicError(os.str());
}

/** Require a user-level condition, or fatal() with the message. */
template <typename... Args>
void
require(bool cond, const Args &...args)
{
    if (!cond)
        fatal(args...);
}

/** Assert an internal invariant, or panic() with the message. */
template <typename... Args>
void
ensure(bool cond, const Args &...args)
{
    if (!cond)
        panic(args...);
}

} // namespace dacsim

#endif // DACSIM_COMMON_LOG_H
