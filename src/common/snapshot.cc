#include "common/snapshot.h"

#include <array>
#include <cstring>

namespace dacsim
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// ----- SnapshotWriter -----------------------------------------------------

void
SnapshotWriter::begin(const std::string &name)
{
    ensure(!open_, "snapshot section '", curName_, "' still open");
    curName_ = name;
    buf_.clear();
    open_ = true;
}

void
SnapshotWriter::end()
{
    ensure(open_, "snapshot end() without begin()");
    sections_.push_back({curName_, buf_});
    buf_.clear();
    open_ = false;
}

void
SnapshotWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SnapshotWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SnapshotWriter::putString(const std::string &s)
{
    putU32(static_cast<std::uint32_t>(s.size()));
    putBytes(s.data(), s.size());
}

void
SnapshotWriter::putBytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
SnapshotWriter::finish(std::ostream &os)
{
    ensure(!open_, "snapshot finish() with section '", curName_, "' open");
    auto writeU32 = [&](std::uint32_t v) {
        char b[4];
        for (int i = 0; i < 4; ++i)
            b[i] = static_cast<char>(v >> (8 * i));
        os.write(b, 4);
    };
    auto writeU64 = [&](std::uint64_t v) {
        char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<char>(v >> (8 * i));
        os.write(b, 8);
    };
    os.write(magic, 8);
    writeU32(static_cast<std::uint32_t>(sections_.size()));
    for (const Section &s : sections_) {
        writeU32(static_cast<std::uint32_t>(s.name.size()));
        os.write(s.name.data(),
                 static_cast<std::streamsize>(s.name.size()));
        writeU64(s.payload.size());
        writeU32(crc32(s.payload.data(), s.payload.size()));
        os.write(reinterpret_cast<const char *>(s.payload.data()),
                 static_cast<std::streamsize>(s.payload.size()));
    }
    require(os.good(), "snapshot write failed (stream error)");
}

// ----- SnapshotReader -----------------------------------------------------

SnapshotReader::SnapshotReader(std::istream &is)
{
    auto readExact = [&](void *dst, std::size_t n) {
        is.read(static_cast<char *>(dst), static_cast<std::streamsize>(n));
        require(static_cast<std::size_t>(is.gcount()) == n,
                "snapshot truncated");
    };
    auto readU32 = [&]() {
        std::uint8_t b[4];
        readExact(b, 4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return v;
    };
    auto readU64 = [&]() {
        std::uint8_t b[8];
        readExact(b, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    };

    char m[8];
    readExact(m, 8);
    require(std::memcmp(m, SnapshotWriter::magic, 8) == 0,
            "not a dacsim snapshot (bad magic)");
    std::uint32_t count = readU32();
    require(count < 100000, "snapshot section count implausible: ", count);
    sections_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        std::uint32_t nameLen = readU32();
        require(nameLen < 256, "snapshot section name too long");
        s.name.resize(nameLen);
        readExact(s.name.data(), nameLen);
        std::uint64_t payloadLen = readU64();
        std::uint32_t crc = readU32();
        s.payload.resize(payloadLen);
        readExact(s.payload.data(), payloadLen);
        require(crc32(s.payload.data(), s.payload.size()) == crc,
                "snapshot section '", s.name, "' failed its CRC check");
        sections_.push_back(std::move(s));
    }
}

void
SnapshotReader::section(const std::string &name)
{
    ensure(cur_ == nullptr, "snapshot section still open");
    require(next_ < sections_.size(), "snapshot missing section '", name,
            "'");
    require(sections_[next_].name == name, "snapshot section order: "
            "expected '", name, "', found '", sections_[next_].name, "'");
    cur_ = &sections_[next_++];
    pos_ = 0;
}

void
SnapshotReader::need(std::size_t n) const
{
    ensure(cur_ != nullptr, "snapshot read outside a section");
    require(pos_ + n <= cur_->payload.size(), "snapshot section '",
            cur_->name, "' underruns (corrupt or version-skewed)");
}

std::uint8_t
SnapshotReader::getU8()
{
    need(1);
    return cur_->payload[pos_++];
}

std::uint32_t
SnapshotReader::getU32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(cur_->payload[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
SnapshotReader::getU64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(cur_->payload[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

std::string
SnapshotReader::getString()
{
    std::uint32_t len = getU32();
    need(len);
    std::string s(reinterpret_cast<const char *>(&cur_->payload[pos_]),
                  len);
    pos_ += len;
    return s;
}

void
SnapshotReader::getBytes(void *data, std::size_t len)
{
    need(len);
    std::memcpy(data, &cur_->payload[pos_], len);
    pos_ += len;
}

void
SnapshotReader::endSection()
{
    ensure(cur_ != nullptr, "endSection() outside a section");
    require(pos_ == cur_->payload.size(), "snapshot section '", cur_->name,
            "' has ", cur_->payload.size() - pos_, " trailing bytes");
    cur_ = nullptr;
}

} // namespace dacsim
