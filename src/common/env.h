/**
 * @file
 * The DACSIM_* environment-knob registry.
 *
 * Every runtime knob the simulator reads from the environment is
 * declared exactly once in the table in env.cc — name, type, default,
 * and help text — and parsed exactly once into an immutable Env
 * aggregate. Call sites consult dacsim::env() instead of scattering
 * std::getenv() strings; --help output and the DESIGN.md knob table
 * are generated from the same registry, so documentation cannot drift
 * from the code. Unknown DACSIM_* variables in the environment produce
 * a warning on first use instead of being silently ignored.
 */

#ifndef DACSIM_COMMON_ENV_H
#define DACSIM_COMMON_ENV_H

#include <string>
#include <utility>
#include <vector>

namespace dacsim
{

/** One registered knob (static metadata; see the table in env.cc). */
struct EnvKnob
{
    const char *name;  ///< full variable name ("DACSIM_...")
    const char *type;  ///< "bool", "int", or "string"
    const char *defl;  ///< rendered default value
    const char *help;  ///< one-line description
};

/** The registry, in documentation order. */
const std::vector<EnvKnob> &envRegistry();

/** Parsed values of every registered knob. */
struct Env
{
    /** DACSIM_TRACE: stream one stderr line per issued instruction. */
    bool trace = false;
    /** DACSIM_LINT: audit every run's decoupling (rule DAC-E007). */
    bool lint = false;
    /** DACSIM_UPDATE_GOLDEN: rewrite golden fixtures instead of
     * comparing against them (tests only). */
    bool updateGolden = false;
    /** DACSIM_SIM_CORE: simulation-core override ("stepped",
     * "fast-forward", or "event"; "": keep the config default). */
    std::string simCore;
    /** DACSIM_JOBS: sweep worker threads (0: hardware concurrency). */
    int jobs = 0;
    /** DACSIM_SWEEP_ABORT_AFTER: _Exit(3) after n fresh sweep points
     * (0: off) — the deterministic kill -9 stand-in. */
    long sweepAbortAfter = 0;
    /** DACSIM_FAULTS: FaultPlan::parse() spec ("": fault-free). */
    std::string faults;
    /** DACSIM_FAULT_BENCHES: comma-separated benchmark abbreviations
     * DACSIM_FAULTS applies to ("": all benchmarks). */
    std::string faultBenches;
    /** DACSIM_CHECKPOINT_DIR: sweep snapshot/journal directory
     * ("": checkpointing off). */
    std::string checkpointDir;
    /** DACSIM_FUZZ_SEEDS: default dacsim-fuzz campaign size. */
    int fuzzSeeds = 1000;
    /** DACSIM_FUZZ_JOBS: concurrent fuzz cases (0: DACSIM_JOBS, then
     * hardware concurrency). */
    int fuzzJobs = 0;
    /** DACSIM_FUZZ_DIR: campaign journal/repro directory
     * ("": ephemeral campaign, no resume). */
    std::string fuzzDir;
    /** DACSIM_FUZZ_TIMEOUT_MS: per-case watchdog deadline. */
    int fuzzTimeoutMs = 20000;
    /** DACSIM_SERVICE_SOCKET: dacsimd unix-socket path. For the
     * daemon: where to listen. For bench drivers: set non-empty to
     * route sweep runs through the service (client mode). */
    std::string serviceSocket;
    /** DACSIM_SERVICE_DIR: daemon state directory (result cache +
     * durable queue journal). */
    std::string serviceDir;
    /** DACSIM_SERVICE_WORKERS: daemon worker pool size (0: hardware
     * concurrency). */
    int serviceWorkers = 0;
    /** DACSIM_SERVICE_TIMEOUT_MS: per-job watchdog deadline. */
    int serviceTimeoutMs = 60000;
    /** DACSIM_SERVICE_RETRIES: daemon retries after host-side flake. */
    int serviceRetries = 2;
    /** DACSIM_SERVICE_CHAOS: injected-failure spec for the daemon,
     * e.g. "crash=0.2,timeout=0.05,seed=7" ("": chaos off). */
    std::string serviceChaos;
    /** DACSIM_SERVICE_SHARDS: comma-separated daemon socket paths —
     * the client-side shard map. Non-empty routes sweeps through the
     * shard router instead of the single DACSIM_SERVICE_SOCKET. */
    std::string serviceShards;
    /** DACSIM_SERVICE_CLIENT: fair-share identity bench drivers stamp
     * on their JobSpecs ("": the default client). */
    std::string serviceClient;
    /** DACSIM_SERVICE_WEIGHT: fair-share weight for this process's
     * jobs (clamped to [1, 1024] by the codec). */
    int serviceWeight = 1;
    /** DACSIM_SERVICE_QUEUE_DEPTH: daemon admission bound on one
     * client's queued + running jobs (0: unbounded). */
    int serviceQueueDepth = 256;
};

/**
 * Parse @p vars (full (name, value) environment slice) against the
 * registry. Malformed values and unknown DACSIM_* names append one
 * message each to @p warnings (when non-null) and fall back to the
 * knob's default. Exposed separately from env() so tests can drive
 * synthetic environments without mutating the process environment.
 */
Env parseEnv(const std::vector<std::pair<std::string, std::string>> &vars,
             std::vector<std::string> *warnings);

/**
 * The process environment parsed once (first call); warnings are
 * printed to stderr at that point. Later setenv() calls are invisible
 * by design — knobs are read at most once, like trace.h always did.
 */
const Env &env();

/** Formatted registry table (the body of every driver's --help). */
std::string envHelpText();

} // namespace dacsim

#endif // DACSIM_COMMON_ENV_H
