/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultPlan is a seeded list of fault events that microarchitectural
 * hooks (memory system, DAC engine, SM) consult during simulation.
 * Every decision is a pure function of (seed, event list, query
 * arguments), so a stress scenario is exactly reproducible: the same
 * plan on the same workload produces bit-identical statistics.
 *
 * Supported fault kinds model the structural hazards DAC's evaluation
 * cares about: MSHR exhaustion, DRAM latency jitter, L1 tag-lock
 * contention, affine-queue back-pressure, and a forced affine-warp
 * invalidation that exercises the DAC-to-baseline degradation path.
 */

#ifndef DACSIM_COMMON_FAULT_H
#define DACSIM_COMMON_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace dacsim
{

enum class FaultKind
{
    /** Steal `magnitude` L1 MSHR entries while active. */
    MshrSteal,
    /** Add hash-derived extra DRAM latency in [0, magnitude]. */
    DramJitter,
    /** Report every L1 set as lock-saturated to the AEU. */
    TagLockBlock,
    /** Report the ATQ as full to the affine warp (enq back-pressure). */
    AffineBackpressure,
    /** Invalidate the affine warp once the window opens: the DAC
     * engine raises an unrecoverable fault and the run degrades to
     * baseline execution (harness fallback). */
    AffineInvalidate,
};

/** One injected fault, active over the half-open window [begin, end). */
struct FaultEvent
{
    FaultKind kind = FaultKind::DramJitter;
    Cycle begin = 0;
    Cycle end = ~static_cast<Cycle>(0);
    /** Kind-specific intensity (entries stolen, max extra cycles). */
    std::uint64_t magnitude = 0;
    /** Restrict to one SM (-1: all SMs). */
    int sm = -1;
};

/** Thrown by a hook when an injected fault is unrecoverable by design
 * (currently only AffineInvalidate). */
class InjectedFaultError : public PanicError
{
  public:
    InjectedFaultError(FaultKind kind, Cycle cycle, const std::string &msg)
        : PanicError(msg), kind_(kind), cycle_(cycle)
    {
    }

    FaultKind kind() const { return kind_; }
    Cycle cycle() const { return cycle_; }

  private:
    FaultKind kind_;
    Cycle cycle_;
};

class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    void add(const FaultEvent &e) { events_.push_back(e); }
    bool empty() const { return events_.empty(); }
    std::uint64_t seed() const { return seed_; }
    void setSeed(std::uint64_t s) { seed_ = s; }
    const std::vector<FaultEvent> &events() const { return events_; }

    // ----- hook queries ---------------------------------------------------

    /** L1 MSHR entries stolen from SM @p sm at @p now. */
    int stolenMshrs(int sm, Cycle now) const;

    /** Deterministic extra DRAM latency for @p line at @p now. */
    Cycle dramJitter(Addr line, Cycle now) const;

    /** AEU may not lock any line on SM @p sm this cycle. */
    bool tagLockBlocked(int sm, Cycle now) const;

    /** ATQ reports full to SM @p sm's affine warp this cycle. */
    bool affineBackpressure(int sm, Cycle now) const;

    /** The affine warp must be invalidated at (or after) @p now. */
    bool affineInvalidate(Cycle now) const;

    // ----- construction from a textual spec -------------------------------

    /**
     * Parse a plan from a spec string, e.g.
     *   "seed=42;mshr@0-200000:30;jitter@0:400;invalidate@5000"
     * Items are ';'-separated. Each fault item is
     *   kind '@' begin [ '-' end ] [ ':' magnitude ] [ '/' sm ]
     * with kinds mshr, jitter, taglock, backpressure, invalidate.
     * Throws FatalError on malformed input.
     */
    static FaultPlan parse(const std::string &spec);

    static const char *kindName(FaultKind k);

  private:
    std::uint64_t seed_ = 0x9e3779b97f4a7c15ull;
    std::vector<FaultEvent> events_;

    bool active(const FaultEvent &e, int sm, Cycle now) const
    {
        return now >= e.begin && now < e.end && (e.sm < 0 || e.sm == sm);
    }
};

} // namespace dacsim

#endif // DACSIM_COMMON_FAULT_H
