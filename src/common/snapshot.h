/**
 * @file
 * Versioned binary snapshot container (DESIGN.md §9).
 *
 * A snapshot is a sequence of named sections, each protected by a
 * CRC32 over its payload. Integers are encoded explicitly
 * little-endian, so a snapshot written on one host restores on any
 * other. Sections are written and read strictly in order; a name or
 * CRC mismatch raises FatalError (a snapshot is user input — it may
 * be truncated by a kill — never a simulator bug).
 *
 * The same file also provides StateHash, the FNV-1a folder behind the
 * rolling state-hash chain: a cheap digest of architectural state the
 * run loop folds every audit cadence so two runs can be compared
 * interval-by-interval instead of only at end of run.
 */

#ifndef DACSIM_COMMON_SNAPSHOT_H
#define DACSIM_COMMON_SNAPSHOT_H

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/log.h"

namespace dacsim
{

/** CRC32 (IEEE polynomial, bit-reflected) of a byte buffer. */
std::uint32_t crc32(const void *data, std::size_t len);

/** Incremental FNV-1a digest of 64-bit words. */
class StateHash
{
  public:
    void
    fold(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 1099511628211ull;
        }
    }

    void fold(std::int64_t v) { fold(static_cast<std::uint64_t>(v)); }
    void fold(std::uint32_t v) { fold(static_cast<std::uint64_t>(v)); }
    void fold(int v) { fold(static_cast<std::uint64_t>(v)); }
    void fold(bool v) { fold(static_cast<std::uint64_t>(v)); }

    std::uint64_t value() const { return h_; }

    /** Chain @p link onto a running hash (order-sensitive mix). */
    static std::uint64_t
    mix(std::uint64_t chain, std::uint64_t link)
    {
        StateHash h;
        h.h_ = chain;
        h.fold(link);
        return h.value();
    }

  private:
    std::uint64_t h_ = 1469598103934665603ull;
};

/**
 * Writes a sectioned snapshot. Sections are buffered and emitted on
 * finish(), preceded by the 8-byte magic and a section count, so a
 * crash while writing never leaves a header claiming more data than
 * exists (the harness additionally writes to a temp file and renames).
 */
class SnapshotWriter
{
  public:
    static constexpr char magic[9] = "DACSNP01";

    /** Open a new section; subsequent put*() calls append to it. */
    void begin(const std::string &name);
    /** Close the current section (computes its CRC). */
    void end();

    void putU8(std::uint8_t v) { buf_.push_back(v); }
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v) { putU64(static_cast<std::uint64_t>(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putString(const std::string &s);
    void putBytes(const void *data, std::size_t len);

    /** Emit magic, section count, and every section to @p os. */
    void finish(std::ostream &os);

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> sections_;
    std::string curName_;
    std::vector<std::uint8_t> buf_;
    bool open_ = false;
};

/**
 * Reads a sectioned snapshot written by SnapshotWriter. The stream is
 * consumed eagerly in the constructor so truncation is detected up
 * front; section() then hands out payloads strictly in written order.
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(std::istream &is);

    /** Enter the next section; fatal if its name is not @p name. */
    void section(const std::string &name);

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64() { return static_cast<std::int64_t>(getU64()); }
    bool getBool() { return getU8() != 0; }
    std::string getString();
    void getBytes(void *data, std::size_t len);

    /** Fatal unless the current section was consumed exactly. */
    void endSection();

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> sections_;
    std::size_t next_ = 0;      ///< next section index
    const Section *cur_ = nullptr;
    std::size_t pos_ = 0;       ///< read offset within cur_

    void need(std::size_t n) const;
};

} // namespace dacsim

#endif // DACSIM_COMMON_SNAPSHOT_H
