/**
 * @file
 * Simulation configuration structures.
 *
 * Defaults model the paper's baseline: an NVIDIA Fermi GTX 480
 * (Table 1 of the paper), plus the provisioning of the two baseline
 * techniques (CAE, MTA) and of DAC's added hardware structures.
 */

#ifndef DACSIM_COMMON_CONFIG_H
#define DACSIM_COMMON_CONFIG_H

#include <cstdint>

#include "common/types.h"

namespace dacsim
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    int sizeBytes = 0;
    int ways = 1;
    int mshrs = 32;
    /** Access (hit) latency in cycles. */
    int hitLatency = 1;

    int numLines() const { return sizeBytes / lineSizeBytes; }
    int numSets() const { return numLines() / ways; }
};

/** Configuration of the DRAM model: fixed latency plus bandwidth. */
struct DramConfig
{
    /** Round-trip latency added to every DRAM access, in cycles.
     * Models row activation plus controller queueing (GPGPU-sim's
     * effective GTX480 DRAM latency lands in the 400-600 range). */
    int latency = 440;
    /** Number of memory partitions (each owns an L2 slice + DRAM channel). */
    int partitions = 6;
    /**
     * Minimum cycles between successive 128B line transfers on one
     * partition; models pin bandwidth (smaller = more bandwidth).
     */
    int cyclesPerLine = 4;
    /** Per-partition request queue capacity. */
    int queueDepth = 64;
};

/**
 * Which inner loop Gpu::launch runs. A pure host-side choice: all
 * three cores produce bit-identical simulated results, statistics,
 * and state-hash chains (DESIGN.md §8, §13); they differ only in how
 * much host work they spend per simulated cycle.
 */
enum class SimCore
{
    Stepped,     ///< tick every SM every cycle (the reference loop)
    FastForward, ///< stepped, plus whole-GPU idle-cycle jumps (§8)
    Event,       ///< per-SM cached-wake scheduler with clock jumps (§13)
};

/** Canonical name ("stepped", "fast-forward", "event"). */
const char *simCoreName(SimCore m);

/** Parse a canonical name; false (and *out untouched) on anything else. */
bool simCoreFromName(const char *name, SimCore *out);

/** The two-level-active warp scheduler stand-in (see DESIGN.md). */
struct SchedulerConfig
{
    int schedulersPerSm = 2;
    /** Cycles one scheduler is busy issuing a 32-thread warp inst. */
    int warpIssueCycles = 2;
};

/** Top-level GPU model parameters (defaults: GTX 480 per Table 1). */
struct GpuConfig
{
    int numSms = 15;
    int maxWarpsPerSm = 48;
    int lanesPerSm = 32;
    /** Max CTAs resident per SM (Fermi limit). */
    int maxCtasPerSm = 8;
    /** Default ALU result latency (cycles from issue to scoreboard clear). */
    int aluLatency = 8;
    /** Shared-memory access latency. */
    int sharedLatency = 24;
    /** Interconnect latency SM <-> L2, each direction. */
    int nocLatency = 16;

    SchedulerConfig sched;
    /** 48 KB, 64 sets x 6 ways (Fermi geometry); Table 1 lists 4 ways,
     * but 48 KB with 128B lines and 4 ways is not realizable with a
     * power-of-two set count — we keep the GTX 480's real 6-way shape
     * and its 32 MSHRs. */
    CacheConfig l1{48 * 1024, 6, 32, 2};
    CacheConfig l2{768 * 1024, 8, 64, 8};
    DramConfig dram;

    /** When true, the simulated memory system services every access with
     * L1-hit latency and unlimited bandwidth; used to classify benchmarks
     * as memory- vs compute-intensive (paper Section 5.1.2). */
    bool perfectMemory = false;

    /** Deadlock watchdog: abort a launch after this many cycles without
     * any instruction issuing anywhere, dumping per-SM warp states. */
    std::uint64_t watchdogCycles = 1u << 20;

    /**
     * The simulation core driving the launch loop. Stepped ticks every
     * SM each cycle; FastForward adds whole-GPU idle-cycle jumps
     * (DESIGN.md §8); Event (the default) steps each SM only when its
     * cached wake bound is due and jumps the clock to the global
     * minimum wake cycle (DESIGN.md §13). Never changes simulated
     * behaviour or statistics: skipped cycles are exact no-ops, and
     * clock jumps are clamped to the 4096-cycle audit/watchdog
     * boundaries. Per-cycle stepping is forced while a fault plan or
     * per-cycle observability (stall attribution) is active. Host-only,
     * so deliberately excluded from the snapshot config fingerprint.
     */
    SimCore simCore = SimCore::Event;

    /**
     * Divergence-localization test knob (0: off): XOR a constant into
     * the state digest of the one 4096-cycle interval containing this
     * cycle. The perturbation corrupts only the hash chain — never the
     * simulation — giving `dacsim-bisect` and the checkpoint tests a
     * run whose first divergent interval is known exactly. Not part of
     * the snapshot config fingerprint, so a perturbed run may resume a
     * clean run's snapshot.
     */
    Cycle hashPerturbCycle = 0;
};

/** DAC hardware provisioning (paper Table 1 / Section 4.8). */
struct DacConfig
{
    /** Affine Tuple Queue entries per SM. */
    int atqEntries = 24;
    /** Per-Warp Address Queue entries per SM (partitioned among warps). */
    int pwaqEntries = 192;
    /** Per-Warp Predicate Queue entries per SM (partitioned among warps). */
    int pwpqEntries = 192;
    /** Affine SIMT stack depth. */
    int stackDepth = 8;
    /** Maximum divergent affine conditions per decoupled operand. */
    int maxDivergentConditions = 2;
    /** Records the expansion units can deliver per cycle (the design
     * adds two ALUs per SM: one in the AEU, one in the PEU). */
    int expansionsPerCycle = 2;
    /**
     * Test knob (fuzz oracle, DESIGN.md §12): deliberately corrupt the
     * decoupler's output by adding one to the first immediate operand
     * of the emitted affine stream. Exists so campaigns can prove the
     * differential oracle catches a real decoupler bug end to end
     * (catch → shrink → report); folded into the snapshot config
     * fingerprint so buggy and clean runs never exchange snapshots.
     */
    bool bugPerturbAffineImm = false;

    int pwaqPerWarp(int warps) const { return pwaqEntries / warps; }
    int pwpqPerWarp(int warps) const { return pwpqEntries / warps; }
};

/** CAE baseline provisioning (paper Section 5.1.1). */
struct CaeConfig
{
    /** Affine functional units per SM (paper gives CAE two, one per
     * scheduler, so affine insts issue in a single cycle). */
    int affineUnits = 2;
    /** Cycles one scheduler is busy issuing an affine warp inst. */
    int affineIssueCycles = 1;
};

/** MTA prefetcher provisioning (paper Section 5.1.1). */
struct MtaConfig
{
    /** Dedicated per-SM prefetch buffer size (in addition to L1). */
    int bufferBytes = 16 * 1024;
    /** Stride table entries (per-PC). */
    int tableEntries = 64;
    /** Confirmations required before a stride is trusted. */
    int trainThreshold = 2;
    /** Maximum prefetch degree (lines ahead) when fully open. */
    int maxDegree = 4;
    /** Throttle: unused-evictions per window that halve the degree. */
    int throttleEvictions = 8;
    /** Throttle evaluation window in buffer insertions. */
    int throttleWindow = 64;
};

/** Which machine variant a run models. */
enum class Technique
{
    Baseline,   ///< Stock GTX 480 model.
    Cae,        ///< Baseline + compact affine execution units.
    Mta,        ///< Baseline + many-thread-aware prefetcher.
    Dac,        ///< Decoupled affine computation (the paper's design).
};

/** Human-readable name of a technique. */
const char *techniqueName(Technique t);

} // namespace dacsim

#endif // DACSIM_COMMON_CONFIG_H
