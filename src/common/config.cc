#include "common/config.h"

#include <cstring>

#include "common/log.h"

namespace dacsim
{

const char *
simCoreName(SimCore m)
{
    switch (m) {
      case SimCore::Stepped: return "stepped";
      case SimCore::FastForward: return "fast-forward";
      case SimCore::Event: return "event";
    }
    panic("unknown simulation core");
}

bool
simCoreFromName(const char *name, SimCore *out)
{
    for (SimCore m :
         {SimCore::Stepped, SimCore::FastForward, SimCore::Event}) {
        if (std::strcmp(name, simCoreName(m)) == 0) {
            *out = m;
            return true;
        }
    }
    return false;
}

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::Baseline: return "baseline";
      case Technique::Cae: return "CAE";
      case Technique::Mta: return "MTA";
      case Technique::Dac: return "DAC";
    }
    panic("unknown technique");
}

} // namespace dacsim
