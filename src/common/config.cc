#include "common/config.h"

#include "common/log.h"

namespace dacsim
{

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::Baseline: return "baseline";
      case Technique::Cae: return "CAE";
      case Technique::Mta: return "MTA";
      case Technique::Dac: return "DAC";
    }
    panic("unknown technique");
}

} // namespace dacsim
