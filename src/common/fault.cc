#include "common/fault.h"

#include <algorithm>
#include <cstdlib>

namespace dacsim
{

namespace
{

/** splitmix64: a cheap, high-quality deterministic mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

int
FaultPlan::stolenMshrs(int sm, Cycle now) const
{
    std::uint64_t stolen = 0;
    for (const FaultEvent &e : events_)
        if (e.kind == FaultKind::MshrSteal && active(e, sm, now))
            stolen = std::max(stolen, e.magnitude);
    return static_cast<int>(stolen);
}

Cycle
FaultPlan::dramJitter(Addr line, Cycle now) const
{
    Cycle extra = 0;
    for (const FaultEvent &e : events_) {
        if (e.kind != FaultKind::DramJitter || e.magnitude == 0 ||
            !active(e, /*sm=*/-1, now)) {
            continue;
        }
        std::uint64_t h = mix64(seed_ ^ mix64(line) ^ mix64(now));
        extra = std::max<Cycle>(extra, h % (e.magnitude + 1));
    }
    return extra;
}

bool
FaultPlan::tagLockBlocked(int sm, Cycle now) const
{
    for (const FaultEvent &e : events_)
        if (e.kind == FaultKind::TagLockBlock && active(e, sm, now))
            return true;
    return false;
}

bool
FaultPlan::affineBackpressure(int sm, Cycle now) const
{
    for (const FaultEvent &e : events_)
        if (e.kind == FaultKind::AffineBackpressure && active(e, sm, now))
            return true;
    return false;
}

bool
FaultPlan::affineInvalidate(Cycle now) const
{
    for (const FaultEvent &e : events_)
        if (e.kind == FaultKind::AffineInvalidate && now >= e.begin &&
            now < e.end) {
            return true;
        }
    return false;
}

const char *
FaultPlan::kindName(FaultKind k)
{
    switch (k) {
      case FaultKind::MshrSteal: return "mshr";
      case FaultKind::DramJitter: return "jitter";
      case FaultKind::TagLockBlock: return "taglock";
      case FaultKind::AffineBackpressure: return "backpressure";
      case FaultKind::AffineInvalidate: return "invalidate";
    }
    return "?";
}

namespace
{

FaultKind
kindFromName(const std::string &s)
{
    for (FaultKind k :
         {FaultKind::MshrSteal, FaultKind::DramJitter,
          FaultKind::TagLockBlock, FaultKind::AffineBackpressure,
          FaultKind::AffineInvalidate}) {
        if (s == FaultPlan::kindName(k))
            return k;
    }
    fatal("unknown fault kind '", s, "'");
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    require(!s.empty(), "fault spec: empty ", what);
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
    require(end != nullptr && *end == '\0', "fault spec: bad ", what, " '",
            s, "'");
    return v;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t sep = spec.find(';', pos);
        if (sep == std::string::npos)
            sep = spec.size();
        std::string item = spec.substr(pos, sep - pos);
        pos = sep + 1;
        if (item.empty())
            continue;

        if (item.rfind("seed=", 0) == 0) {
            plan.setSeed(parseU64(item.substr(5), "seed"));
            continue;
        }

        std::size_t at = item.find('@');
        require(at != std::string::npos, "fault spec: item '", item,
                "' has no '@window'");
        FaultEvent e;
        e.kind = kindFromName(item.substr(0, at));
        std::string rest = item.substr(at + 1);

        std::size_t slash = rest.find('/');
        if (slash != std::string::npos) {
            e.sm = static_cast<int>(
                parseU64(rest.substr(slash + 1), "sm id"));
            rest = rest.substr(0, slash);
        }
        std::size_t colon = rest.find(':');
        if (colon != std::string::npos) {
            e.magnitude = parseU64(rest.substr(colon + 1), "magnitude");
            rest = rest.substr(0, colon);
        }
        std::size_t dash = rest.find('-');
        if (dash != std::string::npos) {
            e.begin = parseU64(rest.substr(0, dash), "window begin");
            e.end = parseU64(rest.substr(dash + 1), "window end");
            require(e.begin < e.end, "fault spec: empty window in '", item,
                    "'");
        } else {
            e.begin = parseU64(rest, "window begin");
        }
        plan.add(e);
    }
    return plan;
}

} // namespace dacsim
