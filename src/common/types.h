/**
 * @file
 * Fundamental type aliases shared across the simulator.
 */

#ifndef DACSIM_COMMON_TYPES_H
#define DACSIM_COMMON_TYPES_H

#include <cstdint>

namespace dacsim
{

/** A byte address in the simulated GPU's global/local address space. */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** The value held by one architectural register of one thread.
 *
 * All general-purpose registers are modelled as 64-bit signed integers,
 * wide enough to hold both data values and pointers. Narrower loads
 * sign/zero-extend into the full register.
 */
using RegVal = std::int64_t;

/** Number of threads in a warp (fixed, as on NVIDIA Fermi). */
inline constexpr int warpSize = 32;

/** A per-warp thread activity mask; bit i is thread i of the warp. */
using ThreadMask = std::uint32_t;

/** Mask with all @ref warpSize thread bits set. */
inline constexpr ThreadMask fullMask = 0xffffffffu;

/** Cache line / memory transaction size in bytes (Fermi: 128B). */
inline constexpr int lineSizeBytes = 128;

/** Align an address down to its cache line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineSizeBytes - 1);
}

} // namespace dacsim

#endif // DACSIM_COMMON_TYPES_H
