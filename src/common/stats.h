/**
 * @file
 * Run statistics collected by the simulator.
 *
 * A single flat struct (rather than a dynamic registry) keeps collection
 * zero-cost in the hot loop and makes the figure-generation code explicit
 * about which counter feeds which plot.
 */

#ifndef DACSIM_COMMON_STATS_H
#define DACSIM_COMMON_STATS_H

#include <array>
#include <cstdint>

#include "common/types.h"

namespace dacsim
{

/**
 * The exclusive reason an SM issue slot failed to issue on one cycle
 * (stall attribution, DESIGN.md §11). Every idle slot is charged to
 * exactly one reason, so the per-reason counts sum to the idle-slot
 * total. Sync and Icache are reserved for model parity with hardware
 * taxonomies: dacsim's ISA has no instruction fetch stage and folds
 * SIMT-stack synchronization into barriers/branches, so both stay 0.
 */
enum class StallReason : int
{
    Scoreboard,     ///< a candidate warp waits on operand scoreboards
    Sync,           ///< reserved: SIMT-stack sync (not modelled)
    Barrier,        ///< candidate warps wait at a CTA barrier
    MshrFull,       ///< a warp replays line transactions (MSHR pressure)
    DacQueueEmpty,  ///< a deq instruction found its PWAQ/PWPQ empty
    DacQueueFull,   ///< the affine warp is blocked on ATQ space
    Icache,         ///< reserved: instruction fetch (not modelled)
    Structural,     ///< no candidate warp exists for the free slot
};

inline constexpr int numStallReasons = 8;

inline const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::Scoreboard: return "scoreboard";
      case StallReason::Sync: return "sync";
      case StallReason::Barrier: return "barrier";
      case StallReason::MshrFull: return "mshr_full";
      case StallReason::DacQueueEmpty: return "dac_queue_empty";
      case StallReason::DacQueueFull: return "dac_queue_full";
      case StallReason::Icache: return "icache";
      case StallReason::Structural: return "structural";
    }
    return "?";
}

/**
 * Per-reason idle-issue-slot counters. Deliberately NOT part of
 * visitStats(): these are host-side diagnostics (populated only when
 * ObsOptions::stalls is on), excluded from golden-stats fixtures, the
 * state digest, and snapshot serialization so enabling observability
 * never perturbs hash chains or golden bytes. Zero when attribution
 * is off.
 */
struct StallStats
{
    std::array<std::uint64_t, numStallReasons> reasons{};
    /** Total issue slots that were free but issued nothing. Invariant:
     * equals the sum over reasons (each idle slot is charged once). */
    std::uint64_t idleSlots = 0;

    std::uint64_t &
    operator[](StallReason r)
    {
        return reasons[static_cast<std::size_t>(r)];
    }
    std::uint64_t
    operator[](StallReason r) const
    {
        return reasons[static_cast<std::size_t>(r)];
    }

    std::uint64_t
    reasonSum() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t r : reasons)
            s += r;
        return s;
    }

    bool operator==(const StallStats &) const = default;

    void
    add(const StallStats &o)
    {
        for (int i = 0; i < numStallReasons; ++i)
            reasons[static_cast<std::size_t>(i)] +=
                o.reasons[static_cast<std::size_t>(i)];
        idleSlots += o.idleSlots;
    }
};

/** Counters accumulated over one kernel run on one machine variant. */
struct RunStats
{
    Cycle cycles = 0;

    // ----- instruction counts -------------------------------------------
    /** Dynamic warp instructions issued by ordinary (non-affine) warps. */
    std::uint64_t warpInsts = 0;
    /** Dynamic warp instructions issued by the DAC affine warp. */
    std::uint64_t affineWarpInsts = 0;
    /** Warp instructions executed on CAE affine units. */
    std::uint64_t caeAffineInsts = 0;
    /** Dynamic baseline warp instructions whose static instruction is
     * covered by affine execution (coverage numerator for Fig 18). */
    std::uint64_t affineCoveredInsts = 0;
    /** Per-thread operations executed on SIMT lanes (for energy). */
    std::uint64_t laneOps = 0;
    /** Register file accesses, in 32-wide register granularity. */
    std::uint64_t regFileAccesses = 0;

    // ----- memory -------------------------------------------------------
    /** Global/local load requests (coalesced line transactions). */
    std::uint64_t loadRequests = 0;
    /** Of those, issued early by the DAC affine warp / AEU (Fig 19). */
    std::uint64_t affineLoadRequests = 0;
    std::uint64_t storeRequests = 0;
    std::uint64_t sharedAccesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramAccesses = 0;

    // ----- MTA prefetcher -----------------------------------------------
    std::uint64_t prefetchesIssued = 0;
    /** Demand accesses that hit in the prefetch buffer. */
    std::uint64_t prefetchHits = 0;
    /** Prefetched lines evicted without being referenced. */
    std::uint64_t prefetchUnused = 0;
    /** L2+DRAM accesses covered by prefetches (Fig 20 numerator). */
    std::uint64_t prefetchCovered = 0;

    // ----- DAC structures -------------------------------------------------
    std::uint64_t atqAccesses = 0;
    std::uint64_t pwaqAccesses = 0;
    std::uint64_t pwpqAccesses = 0;
    std::uint64_t affineStackAccesses = 0;
    /** ALU operations performed by the expansion units (AEU + PEU). */
    std::uint64_t expansionAluOps = 0;
    /** Cycles a warp wanted to issue enq/deq but was blocked on queues. */
    std::uint64_t enqStallCycles = 0;
    std::uint64_t deqStallCycles = 0;
    /** CTA batches executed (the affine warp runs once per batch). */
    std::uint64_t dacBatches = 0;

    // ----- robustness -----------------------------------------------------
    /** Times an injected fault altered a microarchitectural decision
     * (MSHRs withheld, DRAM latency inflated, locks refused, ...). */
    std::uint64_t faultsInjected = 0;
    /** Rolling state-hash chain head: a digest of architectural state
     * folded in every audit cadence (4096 cycles) and at each launch
     * end. Two runs that agree here executed identically interval by
     * interval, not just in their final counters (DESIGN.md §9). */
    std::uint64_t stateHash = 0;

    // ----- observability (DESIGN.md §11) ----------------------------------
    /** Stall attribution totals. Diagnostic state outside visitStats()
     * (see StallStats): not in goldens, digests, or snapshots, so a
     * resumed run only counts its post-restore interval. */
    StallStats stalls{};

    /** Total dynamic warp instructions across both streams. */
    std::uint64_t totalWarpInsts() const
    {
        return warpInsts + affineWarpInsts;
    }

    /** Field-wise equality: used to prove host-side optimizations
     * (fast-forward, parallel sweeps) leave simulated results
     * bit-identical. */
    bool operator==(const RunStats &) const = default;

    /** Merge counters of another run (e.g. across kernel launches). */
    void
    add(const RunStats &o)
    {
        cycles += o.cycles;
        warpInsts += o.warpInsts;
        affineWarpInsts += o.affineWarpInsts;
        caeAffineInsts += o.caeAffineInsts;
        affineCoveredInsts += o.affineCoveredInsts;
        laneOps += o.laneOps;
        regFileAccesses += o.regFileAccesses;
        loadRequests += o.loadRequests;
        affineLoadRequests += o.affineLoadRequests;
        storeRequests += o.storeRequests;
        sharedAccesses += o.sharedAccesses;
        l1Hits += o.l1Hits;
        l1Misses += o.l1Misses;
        l2Hits += o.l2Hits;
        l2Misses += o.l2Misses;
        dramAccesses += o.dramAccesses;
        prefetchesIssued += o.prefetchesIssued;
        prefetchHits += o.prefetchHits;
        prefetchUnused += o.prefetchUnused;
        prefetchCovered += o.prefetchCovered;
        atqAccesses += o.atqAccesses;
        pwaqAccesses += o.pwaqAccesses;
        pwpqAccesses += o.pwpqAccesses;
        affineStackAccesses += o.affineStackAccesses;
        expansionAluOps += o.expansionAluOps;
        enqStallCycles += o.enqStallCycles;
        deqStallCycles += o.deqStallCycles;
        dacBatches += o.dacBatches;
        faultsInjected += o.faultsInjected;
        // Hash chains don't sum; combining runs re-chains the heads.
        stateHash = stateHash * 1099511628211ull ^ o.stateHash;
        stalls.add(o.stalls);
    }
};

/** One link of the state-hash chain: the chain head after the fold at
 * @ref cycle. Runs are compared link by link; the first differing link
 * names the 4096-cycle interval where they diverged. */
struct HashLink
{
    Cycle cycle = 0;
    std::uint64_t hash = 0;

    bool operator==(const HashLink &) const = default;
};

/**
 * Visit every RunStats counter as (name, field) pairs, in declaration
 * order. The single authoritative field list behind snapshot
 * serialization, sweep-journal encoding, golden-stats fixtures, and
 * the state digest — adding a counter here keeps all four in sync.
 */
template <typename Stats, typename Fn>
void
visitStats(Stats &s, Fn &&fn)
{
    fn("cycles", s.cycles);
    fn("warpInsts", s.warpInsts);
    fn("affineWarpInsts", s.affineWarpInsts);
    fn("caeAffineInsts", s.caeAffineInsts);
    fn("affineCoveredInsts", s.affineCoveredInsts);
    fn("laneOps", s.laneOps);
    fn("regFileAccesses", s.regFileAccesses);
    fn("loadRequests", s.loadRequests);
    fn("affineLoadRequests", s.affineLoadRequests);
    fn("storeRequests", s.storeRequests);
    fn("sharedAccesses", s.sharedAccesses);
    fn("l1Hits", s.l1Hits);
    fn("l1Misses", s.l1Misses);
    fn("l2Hits", s.l2Hits);
    fn("l2Misses", s.l2Misses);
    fn("dramAccesses", s.dramAccesses);
    fn("prefetchesIssued", s.prefetchesIssued);
    fn("prefetchHits", s.prefetchHits);
    fn("prefetchUnused", s.prefetchUnused);
    fn("prefetchCovered", s.prefetchCovered);
    fn("atqAccesses", s.atqAccesses);
    fn("pwaqAccesses", s.pwaqAccesses);
    fn("pwpqAccesses", s.pwpqAccesses);
    fn("affineStackAccesses", s.affineStackAccesses);
    fn("expansionAluOps", s.expansionAluOps);
    fn("enqStallCycles", s.enqStallCycles);
    fn("deqStallCycles", s.deqStallCycles);
    fn("dacBatches", s.dacBatches);
    fn("faultsInjected", s.faultsInjected);
    fn("stateHash", s.stateHash);
}

} // namespace dacsim

#endif // DACSIM_COMMON_STATS_H
