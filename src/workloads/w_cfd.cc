/**
 * @file
 * CFD — cfd solver (Rodinia). Unstructured-mesh Euler flux update:
 * each thread owns a cell, loads its four neighbour indices from the
 * connectivity array (affine, decoupled), gathers the neighbours'
 * conserved variables (indirect, non-affine), and accumulates the
 * flux — the half-affine / half-gather mix the paper reports for
 * CFD. Memory-intensive.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel cfd
.param neigh rho out n
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // cell
    shl r2, r1, 2;
    add r3, $rho, r2;
    ld.global.u32 r4, [r3];      // own density (affine)
    shl r5, r1, 4;               // 4 neighbours * 4B
    add r5, $neigh, r5;
    mov r6, 0;                   // face
    mov r7, 0;                   // flux accum
FACE:
    ld.global.u32 r8, [r5];      // neighbour index (affine)
    shl r9, r8, 2;
    add r9, $rho, r9;
    ld.global.u32 r10, [r9];     // neighbour density (gather)
    sub r11, r10, r4;
    mul r12, r11, 3;
    shr r12, r12, 2;
    add r7, r7, r12;
    add r5, r5, 4;
    add r6, r6, 1;
    setp.lt p0, r6, 4;
    @p0 bra FACE;
    add r13, r4, r7;
    add r14, $out, r2;
    st.global.u32 [r14], r13;
    exit;
)";

} // namespace

Workload
makeCFD()
{
    Workload w;
    w.name = "CFD";
    w.fullName = "cfd solver";
    w.suite = 'C';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(262);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const long long n = static_cast<long long>(ctas) * block;

        Addr neigh = allocI32(m, static_cast<std::size_t>(n) * 4,
                              [&](std::size_t) {
                                  return rng.range(
                                      0, static_cast<std::int32_t>(n));
                              });
        Addr rho = allocRandomI32(m, rng, static_cast<std::size_t>(n), 1,
                                  1 << 16);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(neigh), static_cast<RegVal>(rho),
                    static_cast<RegVal>(out), static_cast<RegVal>(n)};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        p.launches = 2;
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
