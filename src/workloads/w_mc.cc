/**
 * @file
 * MC — monte carlo option pricing (CUDA SDK). Low-occupancy path
 * simulation: each thread walks a long path, consuming one
 * pre-generated random number per step from a maturity-major table
 * (affine, decoupled) with only two or three ALU ops in between.
 * With 2 CTAs of 2 warps per SM, the baseline's in-order warps
 * expose nearly the full memory latency each step — the regime where
 * DAC's run-ahead affine warp shines (paper: MC is DAC's biggest
 * win, ~3x).
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel mc
.param rnd out steps paths
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // path id
    shl r2, r1, 2;
    add r3, $rnd, r2;            // &rnd[0][path]
    mul r4, $paths, 4;           // step stride
    mov r5, 0;                   // step
    mov r6, 1000;                // price
STEP:
    ld.global.u32 r7, [r3];      // random increment (affine)
    mul r8, r6, r7;
    shr r8, r8, 16;
    add r6, r6, r8;              // geometric walk surrogate
    add r3, r3, r4;
    add r5, r5, 1;
    setp.lt p0, r5, $steps;
    @p0 bra STEP;
    add r9, $out, r2;
    st.global.u32 [r9], r6;
    exit;
)";

} // namespace

Workload
makeMC()
{
    Workload w;
    w.name = "MC";
    w.fullName = "monte carlo";
    w.suite = 'P';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(272);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const int steps = 64;
        const long long paths = static_cast<long long>(ctas) * block;

        Addr rnd = allocRandomI32(
            m, rng, static_cast<std::size_t>(paths) * steps, 0, 1 << 12);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(paths));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(rnd), static_cast<RegVal>(out),
                    steps, static_cast<RegVal>(paths)};
        p.outputs = {{out, static_cast<std::uint64_t>(paths * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
