/**
 * @file
 * SP — scalar product (CUDA SDK). Grid-stride dot product: each
 * thread accumulates a*b over elements `totalThreads` apart, with
 * two loads per three ALU ops and low occupancy (64-thread blocks) —
 * latency-bound, a large DAC win in the paper (~2x).
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel sp
.param A B C iters stride
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // global thread id
    shl r2, r1, 2;
    add r3, $A, r2;
    add r4, $B, r2;
    mul r5, $stride, 4;
    mov r6, 0;                   // acc
    mov r7, 0;                   // i
DOT:
    ld.global.s32 r8, [r3];
    ld.global.s32 r9, [r4];
    mad r6, r8, r9, r6;
    add r3, r3, r5;
    add r4, r4, r5;
    add r7, r7, 1;
    setp.lt p0, r7, $iters;
    @p0 bra DOT;
    add r10, $C, r2;
    st.global.u32 [r10], r6;
    exit;
)";

} // namespace

Workload
makeSP()
{
    Workload w;
    w.name = "SP";
    w.fullName = "scalar product";
    w.suite = 'P';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(292);
        const int ctas = static_cast<int>(scaled(120, scale, 15));
        const int block = 64;
        const int iters = 48;
        const long long threads = static_cast<long long>(ctas) * block;
        const long long n = threads * iters;

        Addr a = allocRandomI32(m, rng, static_cast<std::size_t>(n), -128,
                                128);
        Addr b = allocRandomI32(m, rng, static_cast<std::size_t>(n), -128,
                                128);
        Addr c = allocZeroI32(m, static_cast<std::size_t>(threads));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(a), static_cast<RegVal>(b),
                    static_cast<RegVal>(c), iters,
                    static_cast<RegVal>(threads)};
        p.outputs = {{c, static_cast<std::uint64_t>(threads * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
