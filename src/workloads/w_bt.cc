/**
 * @file
 * BT — b+tree (Rodinia). Key lookups over a 4-ary index tree stored
 * as an explicit child-pointer array: every level's node address
 * depends on the pointer loaded at the previous level, so the chase
 * is inherently non-affine — only the initial key load and the final
 * result store decouple, and DAC sees little benefit (paper
 * Section 5.5's BT discussion).
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel bt
.param tree keys out levels
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $keys, r2;
    ld.global.u32 r4, [r3];      // search key (affine address)
    mov r5, 0;                   // node index
    mov r6, 0;                   // level
DESCEND:
    // fanout slot from the key bits at this level (data-dependent).
    shl r7, r6, 1;
    shr r8, r4, r7;
    and r8, r8, 3;
    shl r9, r5, 2;               // node*4 children
    add r9, r9, r8;
    shl r9, r9, 2;
    add r9, $tree, r9;
    ld.global.u32 r5, [r9];      // next node (pointer chase)
    add r6, r6, 1;
    setp.lt p0, r6, $levels;
    @p0 bra DESCEND;
    add r10, $out, r2;
    st.global.u32 [r10], r5;
    exit;
)";

} // namespace

Workload
makeBT()
{
    Workload w;
    w.name = "BT";
    w.fullName = "b+tree";
    w.suite = 'C';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(191);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const int levels = 6;
        const long long n = static_cast<long long>(ctas) * block;

        // Complete 4-ary tree in index form: node i's children are
        // 4i+1 .. 4i+4 while interior, scrambled leaf payloads after.
        long long interior = 0, width = 1;
        for (int l = 0; l < levels; ++l) {
            interior += width;
            width *= 4;
        }
        long long treeNodes = interior + width;
        Addr tree = allocI32(
            m, static_cast<std::size_t>(treeNodes * 4),
            [&](std::size_t slot) {
                long long node = static_cast<long long>(slot) / 4;
                long long child = 4 * node + 1 +
                                  static_cast<long long>(slot % 4);
                if (child < treeNodes)
                    return static_cast<std::int32_t>(child);
                return rng.range(0, 1 << 20); // leaf payload
            });
        Addr keys = allocRandomI32(m, rng, static_cast<std::size_t>(n), 0,
                                   1 << 30);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(tree), static_cast<RegVal>(keys),
                    static_cast<RegVal>(out), levels};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
