/**
 * @file
 * CS — convolution separable (CUDA SDK), the column pass: each thread
 * produces one output pixel by combining the `taps` pixels directly
 * below it, so every tap reads a *different image row* — a fresh
 * cache line per iteration, streaming the whole image `taps` times
 * (with cross-CTA row reuse in L2). One mad per load: memory-
 * intensive and, per the paper, one of DAC's largest wins.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel cs
.param in coef out taps rowStride
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // column x
    mov r2, ctaid.y;             // output row y
    mul r3, r2, $rowStride;
    add r3, r3, r1;
    shl r3, r3, 2;               // byte offset of (y, x)
    add r4, $in, r3;             // window cursor (walks down rows)
    mul r5, $rowStride, 64;      // dilated taps: 16 rows apart
    mov r6, $coef;
    mov r7, 0;                   // tap
    mov r8, 0;                   // acc
TAP:
    ld.global.u32 r9, [r4];      // in[y+tap][x] (fresh row each tap)
    ld.global.s32 r10, [r6];     // coefficient (uniform)
    mul r11, r9, r10;
    shr r11, r11, 6;
    add r8, r8, r11;
    add r4, r4, r5;
    add r6, r6, 4;
    add r7, r7, 1;
    setp.lt p1, r7, $taps;
    @p1 bra TAP;
    add r12, $out, r3;
    st.global.u32 [r12], r8;
    exit;
)";

} // namespace

Workload
makeCS()
{
    Workload w;
    w.name = "CS";
    w.fullName = "convolution separable";
    w.suite = 'P';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(302);
        const int ctasX = 30;
        const int block = 128;
        const int taps = 9;
        const int rows = static_cast<int>(scaled(30, scale, 8));
        const long long rowStride =
            static_cast<long long>(ctasX) * block;
        const long long elems = rowStride * (rows + taps * 16);

        Addr in = allocRandomI32(m, rng, static_cast<std::size_t>(elems),
                                 0, 4096);
        Addr coef = allocRandomI32(m, rng, static_cast<std::size_t>(taps),
                                   -64, 64);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(elems));

        p.kernel = assemble(src);
        p.grid = {ctasX, rows, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(in), static_cast<RegVal>(coef),
                    static_cast<RegVal>(out), taps,
                    static_cast<RegVal>(rowStride)};
        p.outputs = {{out, static_cast<std::uint64_t>(elems * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
