/**
 * @file
 * HI — histogram (CUDA SDK, 64-bin variant). Like IMG but with a
 * multiplicative-hash bin function, 16 private bins per thread, and a
 * second reduction kernel-phase folded into the same kernel (bins are
 * combined pairwise before the flush). Streaming input dominates:
 * memory-intensive.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel hi
.param data hist n stride perThread
.shared 8192
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, tid.x, 6;            // 16 bins * 4B per thread
    mov r3, 0;
ZERO:
    shl r4, r3, 2;
    add r4, r4, r2;
    // r3 stays in [0,16): each lane only touches its private 64-byte
    // bin block, but the counter is loop-widened. lint:allow(DAC-W003)
    st.shared.u32 [r4], 0;
    add r3, r3, 1;
    setp.lt p1, r3, 16;
    @p1 bra ZERO;
    mul r6, $stride, 4;
    mov r7, 0;                   // k
WORD:
    mul r5, r7, r6;              // k*stride*4 (recomputed)
    shl r20, r1, 2;
    add r5, r5, r20;
    add r5, $data, r5;
    ld.global.u32 r8, [r5];
    mul r9, r8, 40503;           // multiplicative hash
    shr r9, r9, 12;
    and r9, r9, 15;              // bin
    shl r10, r9, 2;
    add r10, r10, r2;
    ld.shared.u32 r11, [r10];
    add r11, r11, 1;
    // Bin index is masked to [0,15]; the increment stays inside this
    // lane's private 64-byte bin block. lint:allow(DAC-W003)
    st.shared.u32 [r10], r11;
    add r7, r7, 1;
    setp.lt p0, r7, $perThread;
    @p0 bra WORD;
    // Pairwise-fold 16 bins into 8 and flush.
    mov r12, 0;
    shl r13, r1, 5;
    add r13, $hist, r13;
FOLD:
    shl r14, r12, 2;
    add r15, r14, r2;
    ld.shared.u32 r16, [r15];
    add r17, r15, 32;            // bin + 8
    ld.shared.u32 r18, [r17];
    add r19, r16, r18;
    add r20, r13, r14;
    // Each lane flushes its private 8-bin block: the 32-byte stride is
    // the per-thread histogram layout itself. lint:allow(DAC-I006)
    st.global.u32 [r20], r19;
    add r12, r12, 1;
    setp.lt p2, r12, 8;
    @p2 bra FOLD;
    exit;
)";

} // namespace

Workload
makeHI()
{
    Workload w;
    w.name = "HI";
    w.fullName = "histogram";
    w.suite = 'R';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(161);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const long long threads = static_cast<long long>(ctas) * block;
        const long long n = threads * 12;

        Addr data = allocRandomI32(m, rng, static_cast<std::size_t>(n), 0,
                                   1 << 24);
        Addr hist = allocZeroI32(m, static_cast<std::size_t>(threads) * 8);

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(data), static_cast<RegVal>(hist),
                    static_cast<RegVal>(n), static_cast<RegVal>(threads),
                    12};
        p.outputs = {{hist, static_cast<std::uint64_t>(threads) * 32}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
