/**
 * @file
 * Forward declarations of the 29 benchmark constructors (Table 2).
 */

#ifndef DACSIM_WORKLOADS_REGISTRY_H
#define DACSIM_WORKLOADS_REGISTRY_H

#include "workloads/workload.h"

namespace dacsim::workloads
{

// Compute intensive (11).
Workload makeCP();   ///< coulombic potential
Workload makeSTO();  ///< storeGPU
Workload makeAES();  ///< AES encryption
Workload makeMQ();   ///< mri-q
Workload makeTP();   ///< tpacf
Workload makeFFT();  ///< fast Fourier transform
Workload makeBP();   ///< backprop
Workload makeSR1();  ///< srad v1
Workload makeHS();   ///< hotspot
Workload makePF();   ///< pathfinder
Workload makeBS();   ///< blackscholes

// Memory intensive (18).
Workload makeLIB();  ///< libor
Workload makeSG();   ///< sgemm
Workload makeST();   ///< stencil
Workload makeIMG();  ///< imghisto
Workload makeHI();   ///< histogram
Workload makeLBM();  ///< lattice-Boltzmann
Workload makeSPV();  ///< spmv
Workload makeBT();   ///< b+tree
Workload makeLUD();  ///< LU decomposition
Workload makeSR2();  ///< srad v2
Workload makeSC();   ///< streamcluster
Workload makeKM();   ///< kmeans
Workload makeBFS();  ///< breadth-first search
Workload makeCFD();  ///< cfd solver
Workload makeMC();   ///< monte carlo
Workload makeMT();   ///< mersenne twister
Workload makeSP();   ///< scalar product
Workload makeCS();   ///< convolution separable

} // namespace dacsim::workloads

#endif // DACSIM_WORKLOADS_REGISTRY_H
