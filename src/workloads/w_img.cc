/**
 * @file
 * IMG — imghisto (GPGPU-sim suite). Image histogram: threads stream
 * pixels with a grid-stride loop (affine, decoupled) and bin them
 * into per-thread sub-histograms kept in shared memory — the bin
 * index is data-dependent, so the shared-memory updates stay on the
 * non-affine warps. Each thread flushes its private bins at the end
 * (race-free by construction). Streaming a large image: memory-
 * intensive.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel img
.param pixels hist n stride bins perThread
.shared 4096
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // global thread id
    // Zero this thread's 8 shared bins.
    shl r2, tid.x, 5;            // tid*8 bins*4B
    mov r3, 0;
ZERO:
    shl r4, r3, 2;
    add r4, r4, r2;
    // r3 stays in [0,8): each lane only touches its private 32-byte
    // bin block, but the counter is loop-widened. lint:allow(DAC-W003)
    st.shared.u32 [r4], 0;
    add r3, r3, 1;
    setp.lt p1, r3, 8;
    @p1 bra ZERO;
    // Counted loop over this thread's 16 strided pixels.
    mul r6, $stride, 4;
    mov r7, 0;                   // k
PIXEL:
    mul r5, r7, r6;              // k*stride*4 (recomputed)
    shl r20, r1, 2;
    add r5, r5, r20;
    add r5, $pixels, r5;         // &pixels[gtid + k*stride]
    ld.global.u32 r8, [r5];      // pixel (affine address)
    shr r9, r8, 9;
    and r9, r9, 7;               // bin (data-dependent)
    shl r10, r9, 2;
    add r10, r10, r2;
    ld.shared.u32 r11, [r10];
    add r11, r11, 1;
    // Bin index is masked to [0,7]; the increment stays inside this
    // lane's private 32-byte bin block. lint:allow(DAC-W003)
    st.shared.u32 [r10], r11;    // private bin++
    add r7, r7, 1;
    setp.lt p0, r7, $perThread;
    @p0 bra PIXEL;
    // Flush private bins to the global per-thread histogram slab.
    mov r12, 0;
    shl r13, r1, 5;
    add r13, $hist, r13;
FLUSH:
    shl r14, r12, 2;
    add r15, r14, r2;
    ld.shared.u32 r16, [r15];
    add r17, r13, r14;
    // Each lane flushes its private 8-bin slab: the 32-byte stride is
    // the per-thread histogram layout itself. lint:allow(DAC-I006)
    st.global.u32 [r17], r16;
    add r12, r12, 1;
    setp.lt p2, r12, 8;
    @p2 bra FLUSH;
    exit;
)";

} // namespace

Workload
makeIMG()
{
    Workload w;
    w.name = "IMG";
    w.fullName = "imghisto";
    w.suite = 'G';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(151);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const long long threads = static_cast<long long>(ctas) * block;
        const long long n = threads * 16; // 16 pixels per thread

        Addr pixels = allocRandomI32(m, rng, static_cast<std::size_t>(n),
                                     0, 1 << 16);
        Addr hist = allocZeroI32(m, static_cast<std::size_t>(threads) * 8);

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(pixels), static_cast<RegVal>(hist),
                    static_cast<RegVal>(n), static_cast<RegVal>(threads),
                    8, 16};
        p.outputs = {{hist, static_cast<std::uint64_t>(threads) * 32}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
