/**
 * @file
 * MQ — mri-q (GPGPU-sim / Parboil). Each thread owns one voxel and
 * loops over the k-space sample list (uniform-address scalar loads of
 * kx/ky/phi), accumulating a trigonometric sum — here an integer
 * phase-rotation surrogate with the same operation count. Long
 * arithmetic per sample plus L1-resident sample data: compute-bound,
 * with all loop/addressing work affine.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel mq
.param samples outRe outIm numSamples
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;          // voxel index (also its coordinate)
    mov r2, 0;                  // accRe
    mov r3, 0;                  // accIm
    mov r4, 0;                  // j
SAMPLE:
    shl r20, r4, 3;             // j*8 (recomputed per iteration)
    add r5, $samples, r20;
    ld.global.u32 r6, [r5];     // kx
    ld.global.u32 r7, [r5+4];   // phi magnitude
    mul r8, r6, r1;             // phase = kx * x   (data * affine)
    and r8, r8, 1023;           // wrap phase
    mul r9, r8, r8;             // cos surrogate: quadratic in phase
    shr r9, r9, 5;
    sub r10, 1024, r9;          // "cos"
    mul r11, r8, 3;             // "sin" surrogate
    sub r11, r11, r9;
    mul r12, r7, r10;
    shr r12, r12, 6;
    add r2, r2, r12;            // accRe += phi*cos
    mul r13, r7, r11;
    shr r13, r13, 6;
    add r3, r3, r13;            // accIm += phi*sin
    add r4, r4, 1;
    setp.lt p0, r4, $numSamples;
    @p0 bra SAMPLE;
    shl r14, r1, 2;
    add r15, $outRe, r14;
    st.global.u32 [r15], r2;
    add r16, $outIm, r14;
    st.global.u32 [r16], r3;
    exit;
)";

} // namespace

Workload
makeMQ()
{
    Workload w;
    w.name = "MQ";
    w.fullName = "mri-q";
    w.suite = 'G';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(404);
        const int ctas = static_cast<int>(scaled(96, scale, 15));
        const int block = 128;
        const int samples = 64;
        const long long n = static_cast<long long>(ctas) * block;

        Addr smp = allocRandomI32(m, rng, 2ull * samples, 1, 2048);
        Addr outRe = allocZeroI32(m, static_cast<std::size_t>(n));
        Addr outIm = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(smp), static_cast<RegVal>(outRe),
                    static_cast<RegVal>(outIm), samples};
        p.outputs = {{outRe, static_cast<std::uint64_t>(n * 4)},
                     {outIm, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
