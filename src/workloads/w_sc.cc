/**
 * @file
 * SC — streamcluster (Rodinia). Every thread evaluates its point
 * against each cluster centre: the point's coordinates stream from
 * SoA arrays (affine, decoupled), the centres are uniform scalar
 * loads, and the running minimum is a data-dependent select that
 * stays on the non-affine warps. Light arithmetic over a large point
 * set: memory-intensive.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel sc
.param pts ctr assign numPts dims centers
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // point id
    mov r2, 2147483647;          // best distance (INT_MAX)
    mov r3, 0;                   // best centre
    mov r4, 0;                   // k
    mov r5, $ctr;                // centre cursor (uniform)
CENTER:
    mov r6, 0;                   // d
    mov r7, 0;                   // dist accum
    shl r8, r1, 2;
    add r8, $pts, r8;            // &pts[0][i]
    mul r9, $numPts, 4;          // dimension stride
DIM:
    ld.global.s32 r10, [r8];     // point coord (affine)
    ld.global.s32 r11, [r5];     // centre coord (uniform)
    sub r12, r10, r11;
    abs r13, r12;
    add r7, r7, r13;
    add r8, r8, r9;
    add r5, r5, 4;
    add r6, r6, 1;
    setp.lt p1, r6, $dims;
    @p1 bra DIM;
    // Track the running minimum (data-dependent select).
    setp.lt p2, r7, r2;
    sel r2, r7, r2, p2;
    sel r3, r4, r3, p2;
    add r4, r4, 1;
    setp.lt p0, r4, $centers;
    @p0 bra CENTER;
    shl r14, r1, 2;
    add r15, $assign, r14;
    st.global.u32 [r15], r3;
    exit;
)";

} // namespace

Workload
makeSC()
{
    Workload w;
    w.name = "SC";
    w.fullName = "streamcluster";
    w.suite = 'C';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(232);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const int dims = 8;
        const int centers = 4;
        const long long n = static_cast<long long>(ctas) * block;

        Addr pts = allocRandomI32(
            m, rng, static_cast<std::size_t>(n) * dims, -512, 512);
        Addr ctr = allocRandomI32(
            m, rng, static_cast<std::size_t>(dims) * centers, -512, 512);
        Addr assign = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(pts), static_cast<RegVal>(ctr),
                    static_cast<RegVal>(assign), static_cast<RegVal>(n),
                    dims, centers};
        p.outputs = {{assign, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
