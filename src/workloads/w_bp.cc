/**
 * @file
 * BP — backprop (Rodinia). Forward pass of one layer with the
 * original's 16x16 thread blocks over a 2-D neuron grid: neuron
 * n = y*W + x with row width W much larger than the 16-wide block.
 * A warp covers two 16-element row fragments, so its addresses are
 * NOT a single per-lane stride — the case the paper notes defeats
 * CAE's one-offset affine unit for BP (Section 5.4) — while DAC's
 * per-dimension tuple offsets (tid.x and tid.y each have their own)
 * still cover it. Weights are stored [k][n] so accesses stay
 * coalesced (two lines per warp); the input activations are uniform
 * scalar loads.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel bp
.param weights input out w n k
    mul r0, ctaid.x, 16;
    add r1, tid.x, r0;          // x
    mul r2, ctaid.y, 16;
    add r2, r2, tid.y;          // y
    mul r3, r2, $w;
    add r3, r3, r1;             // neuron id = y*W + x
    mov r4, 0;                  // kk
    mov r5, 0;                  // acc
    shl r6, r3, 2;
    add r6, $weights, r6;       // &weights[0][neuron]
    mov r9, $input;
    mul r7, $n, 4;              // weight row stride (N neurons)
NEURON:
    ld.global.s32 r11, [r6];    // weights[kk][neuron] (2-D affine)
    ld.global.s32 r12, [r9];    // input[kk] (uniform address)
    mul r13, r11, r12;
    shr r13, r13, 4;
    mul r17, r13, r13;
    shr r17, r17, 9;
    sub r18, r13, r17;
    mul r18, r18, 27;
    shr r18, r18, 5;
    mul r19, r18, r18;
    shr r19, r19, 11;
    add r20, r18, r19;
    mul r20, r20, 53;
    shr r20, r20, 6;
    add r5, r5, r20;
    add r6, r6, r7;
    add r9, r9, 4;
    add r4, r4, 1;
    setp.lt p0, r4, $k;
    @p0 bra NEURON;
    shl r15, r3, 2;
    add r16, $out, r15;
    st.global.u32 [r16], r5;
    exit;
)";

} // namespace

Workload
makeBP()
{
    Workload w;
    w.name = "BP";
    w.fullName = "backprop";
    w.suite = 'C';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(707);
        const int gx = 16;   // 256-wide rows
        const int gy = static_cast<int>(scaled(6, scale, 3));
        const int k = 24;
        const int width = gx * 16;
        const long long neurons =
            static_cast<long long>(width) * gy * 16;

        Addr weights = allocRandomI32(
            m, rng, static_cast<std::size_t>(neurons * k), -64, 64);
        Addr input = allocRandomI32(m, rng, static_cast<std::size_t>(k),
                                    -64, 64);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(neurons));

        p.kernel = assemble(src);
        p.grid = {gx, gy, 1};
        p.block = {16, 16, 1};
        p.params = {static_cast<RegVal>(weights),
                    static_cast<RegVal>(input), static_cast<RegVal>(out),
                    width, static_cast<RegVal>(neurons), k};
        p.outputs = {{out, static_cast<std::uint64_t>(neurons * 4)}};
        p.launches = 3;
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
