/**
 * @file
 * PF — pathfinder (Rodinia). Dynamic programming over a cost grid:
 * each CTA owns a tile of columns kept in shared memory and iterates
 * the DP recurrence row by row, synchronizing with barriers each
 * step. The per-row wall costs stream from global memory through
 * affine addresses — DAC's early fetches for them must respect the
 * CTA barriers (Section 4.2's barrier/epoch mechanism), which this
 * workload exercises heavily.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel pf
.param wall src out width steps
.shared 1056
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;          // column
    shl r2, tid.x, 2;           // shared offset: cur[tid]
    add r3, r2, 528;            // shared offset: next[tid]
    // Load the source row into shared.
    shl r4, r1, 2;
    add r5, $src, r4;
    ld.global.u32 r6, [r5];
    st.shared.u32 [r2], r6;
    mov r7, 0;                  // t
    mov r8, $wall;
    add r8, r8, r4;             // &wall[0*width + col]
STEP:
    bar;
    // Neighbours within the tile (clamped to the CTA).
    sub r9, tid.x, 1;
    max r9, r9, 0;
    shl r9, r9, 2;
    ld.shared.u32 r10, [r9];    // left
    add r11, tid.x, 1;
    min r11, r11, 131;
    shl r11, r11, 2;
    ld.shared.u32 r13, [r11];   // right  (tile is 132 wide w/ halo)
    ld.shared.u32 r14, [r2];    // mid
    min r15, r10, r13;
    min r15, r15, r14;          // best of three (data min)
    // Cost-smoothing transform (pathfinder's weight computation).
    mul r21, r15, 241;
    shr r21, r21, 8;
    mul r22, r21, 3;
    shr r22, r22, 2;
    add r23, r21, r22;
    shr r23, r23, 1;
    mov r28, 0;                 // smoothing iterations
SMOOTH:
    mul r24, r23, r23;
    shr r24, r24, 10;
    sub r23, r23, r24;
    mul r25, r23, 37;
    shr r25, r25, 5;
    add r23, r23, r25;
    mul r26, r23, 11;
    shr r26, r26, 4;
    sub r23, r23, r26;
    mul r27, r23, 197;
    shr r27, r27, 8;
    add r23, r23, r27;
    shr r23, r23, 1;
    add r28, r28, 1;
    setp.lt p2, r28, 4;
    @p2 bra SMOOTH;
    ld.global.u32 r16, [r8];    // wall cost (affine; epoch-gated)
    add r17, r23, r16;
    // The next[] half (528..) never overlaps the cur[] half the
    // neighbour loads read (0..527); the clamped left/right indices
    // are beyond the address analysis. lint:allow(DAC-W003)
    st.shared.u32 [r3], r17;
    bar;
    ld.shared.u32 r18, [r3];
    st.shared.u32 [r2], r18;    // copy next -> cur
    mul r19, $width, 4;
    add r8, r8, r19;
    add r7, r7, 1;
    setp.lt p0, r7, $steps;
    @p0 bra STEP;
    bar;
    add r20, $out, r4;
    st.global.u32 [r20], r18;
    exit;
)";

} // namespace

Workload
makePF()
{
    Workload w;
    w.name = "PF";
    w.fullName = "pathfinder";
    w.suite = 'C';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(1010);
        const int ctas = static_cast<int>(scaled(120, scale, 15));
        const int block = 128;
        const int steps = 20;
        const int width = ctas * block;

        Addr wall = allocRandomI32(
            m, rng, static_cast<std::size_t>(width) * steps, 0, 100);
        Addr srcRow = allocRandomI32(m, rng,
                                     static_cast<std::size_t>(width), 0,
                                     100);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(width));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(wall), static_cast<RegVal>(srcRow),
                    static_cast<RegVal>(out), width, steps};
        p.outputs = {{out, static_cast<std::uint64_t>(width) * 4}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
