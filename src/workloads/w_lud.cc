/**
 * @file
 * LUD — LU decomposition (Rodinia). The trailing-submatrix update as
 * rank-1 Gaussian elimination steps: every thread owns one element
 * and applies A[r][c] -= L[r]*U[c], re-streaming the whole submatrix
 * each step (read + write per element against two panel loads that
 * cache well): four memory operations per handful of ALU ops, so the
 * pass is memory-intensive. Several elimination steps run as separate
 * launches.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel lud
.param L U A n half
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // column c
    mov r2, ctaid.y;             // row r
    shl r3, r2, 2;
    add r3, $L, r3;
    ld.global.s32 r4, [r3];      // L[r] (uniform in the warp)
    shl r5, r1, 2;
    add r6, $U, r5;
    ld.global.s32 r7, [r6];      // U[c] (coalesced)
    mul r8, r2, $n;
    add r8, r8, r1;
    shl r8, r8, 2;
    add r9, $A, r8;
    ld.global.s32 r10, [r9];     // A[r][c] (stream)
    mul r11, r4, r7;
    shr r11, r11, 5;
    sub r12, r10, r11;
    st.global.u32 [r9], r12;     // in-place update (stream)
    add r13, r9, $half;          // second half of the submatrix
    ld.global.s32 r14, [r13];
    sub r15, r14, r11;
    st.global.u32 [r13], r15;
    exit;
)";

} // namespace

Workload
makeLUD()
{
    Workload w;
    w.name = "LUD";
    w.fullName = "LU decomposition";
    w.suite = 'C';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(212);
        const int n = 512;
        const int rows = static_cast<int>(scaled(72, scale, 8));
        const long long half =
            static_cast<long long>(rows) * n * 4; // second panel below

        Addr l = allocRandomI32(m, rng, static_cast<std::size_t>(rows),
                                -64, 64);
        Addr u = allocRandomI32(m, rng, static_cast<std::size_t>(n), -64,
                                64);
        Addr a = allocRandomI32(
            m, rng, 2 * static_cast<std::size_t>(rows) * n, -4096, 4096);

        p.kernel = assemble(src);
        p.grid = {n / 128, rows, 1};
        p.block = {128, 1, 1};
        p.params = {static_cast<RegVal>(l), static_cast<RegVal>(u),
                    static_cast<RegVal>(a), n, static_cast<RegVal>(half)};
        p.outputs = {{a, 2ull * static_cast<std::uint64_t>(rows) * n * 4}};
        p.launches = 3; // successive elimination steps
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
