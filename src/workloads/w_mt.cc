/**
 * @file
 * MT — mersenne twister (CUDA SDK). State-array update: each thread
 * owns a twister lane and, per step, combines its state word with
 * the word `shift` positions ahead *modulo the ring size* — a
 * mod-type affine address (Section 4.4) — then tempers and stores.
 * Streaming state update with light mixing: memory-intensive.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel mt
.param state out rounds ring
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // lane id
    mov r2, 0;                   // round
    mov r3, 0;                   // accumulated output
ROUND:
    // Partner index: (lane + 397*round ... ) mod ring  (mod-type tuple)
    mul r4, r2, 3989;
    mul r20, r4, 128;
    add r5, r1, r20;
    mod r6, r5, $ring;
    shl r7, r6, 2;
    add r7, $state, r7;
    ld.global.u32 r8, [r7];      // partner state word
    // Tempering (on loaded data).
    shr r9, r8, 11;
    xor r10, r8, r9;
    shl r11, r10, 7;
    and r11, r11, 1636928640;
    xor r10, r10, r11;
    add r3, r3, r10;
    add r2, r2, 1;
    setp.lt p0, r2, $rounds;
    @p0 bra ROUND;
    shl r12, r1, 2;
    add r13, $out, r12;
    st.global.u32 [r13], r3;
    exit;
)";

} // namespace

Workload
makeMT()
{
    Workload w;
    w.name = "MT";
    w.fullName = "mersenne twister";
    w.suite = 'P';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(282);
        const int ctas = static_cast<int>(scaled(60, scale, 15));
        const int block = 128;
        const int rounds = 16;
        const long long n = static_cast<long long>(ctas) * block;
        const long long ring = n * 24; // state ring far larger than L2

        Addr state = allocRandomI32(m, rng, static_cast<std::size_t>(ring),
                                    0, 1 << 30);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(state), static_cast<RegVal>(out),
                    rounds, static_cast<RegVal>(ring)};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
