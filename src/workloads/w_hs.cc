/**
 * @file
 * HS — hotspot (Rodinia). Thermal simulation: a 5-point stencil over
 * temperature with clamped borders (affine min/max, divergent
 * tuples), followed by a large per-cell update expression combining
 * the power map — arithmetic-dominated, hence compute-bound.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel hs
.param temp power out width height
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;          // x
    mov r2, ctaid.y;            // y
    // Clamped neighbours.
    sub r3, r1, 1;
    max r3, r3, 0;              // xl
    add r4, r1, 1;
    sub r5, $width, 1;
    min r4, r4, r5;             // xr
    sub r6, r2, 1;
    max r6, r6, 0;              // yu
    add r7, r2, 1;
    sub r8, $height, 1;
    min r7, r7, r8;             // yd
    // Loads.
    mul r9, r2, $width;
    add r10, r9, r1;
    shl r10, r10, 2;
    add r11, $temp, r10;
    ld.global.u32 r12, [r11];   // centre temperature
    add r13, r9, r3;
    shl r13, r13, 2;
    add r13, $temp, r13;
    ld.global.u32 r14, [r13];   // west
    add r15, r9, r4;
    shl r15, r15, 2;
    add r15, $temp, r15;
    ld.global.u32 r16, [r15];   // east
    mul r17, r6, $width;
    add r17, r17, r1;
    shl r17, r17, 2;
    add r17, $temp, r17;
    ld.global.u32 r18, [r17];   // north
    mul r19, r7, $width;
    add r19, r19, r1;
    shl r19, r19, 2;
    add r19, $temp, r19;
    ld.global.u32 r20, [r19];   // south
    add r21, $power, r10;
    ld.global.u32 r22, [r21];   // power
    // Update expression (hotspot's weighted combination).
    add r23, r14, r16;
    add r24, r18, r20;
    shl r25, r12, 2;
    sub r26, r23, r25;
    add r26, r26, r24;          // laplacian
    mul r27, r26, 29;
    shr r27, r27, 7;            // * Rx surrogate
    mul r28, r22, 13;
    shr r28, r28, 5;            // * Cap surrogate
    add r29, r27, r28;
    add r30, r12, r29;
    mul r31, r30, 121;
    shr r31, r31, 7;            // amb drift
    add r33, $out, r10;
    st.global.u32 [r33], r31;
    exit;
)";

} // namespace

Workload
makeHS()
{
    Workload w;
    w.name = "HS";
    w.fullName = "hotspot";
    w.suite = 'C';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(909);
        const int width = 512;
        const int rows = static_cast<int>(scaled(36, scale, 8));
        const long long n = static_cast<long long>(width) * rows;

        Addr temp = allocRandomI32(m, rng, static_cast<std::size_t>(n), 1,
                                   4096);
        Addr power = allocRandomI32(m, rng, static_cast<std::size_t>(n), 0,
                                    512);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {width / 128, rows, 1};
        p.block = {128, 1, 1};
        p.params = {static_cast<RegVal>(temp), static_cast<RegVal>(power),
                    static_cast<RegVal>(out), width, rows};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        p.launches = 2;
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
