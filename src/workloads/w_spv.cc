/**
 * @file
 * SPV — spmv (Rodinia), ELLPACK layout. One row per thread; the
 * column-index and value arrays are read at affine addresses
 * (row + k*numRows) and decouple, while the x-vector gather
 * x[col[k]] is data-dependent and stays on the non-affine warps —
 * the "partially affine" mix the paper reports for SPV.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel spv
.param cols vals x y numRows nnz
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // row
    mov r2, 0;                   // acc
    mov r3, 0;                   // k
    shl r4, r1, 2;
    add r5, $cols, r4;           // &cols[row]
    add r6, $vals, r4;           // &vals[row]
    mul r7, $numRows, 4;         // column stride in bytes
NNZ:
    ld.global.u32 r8, [r5];      // col (affine address)
    ld.global.u32 r9, [r6];      // val (affine address)
    shl r10, r8, 2;
    add r10, $x, r10;
    ld.global.u32 r11, [r10];    // x[col] (gather: non-affine)
    mul r12, r9, r11;
    shr r12, r12, 4;
    add r2, r2, r12;
    add r5, r5, r7;
    add r6, r6, r7;
    add r3, r3, 1;
    setp.lt p0, r3, $nnz;
    @p0 bra NNZ;
    add r13, $y, r4;
    st.global.u32 [r13], r2;
    exit;
)";

} // namespace

Workload
makeSPV()
{
    Workload w;
    w.name = "SPV";
    w.fullName = "spmv (ELL)";
    w.suite = 'R';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(181);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const int nnz = 12;
        const long long rows = static_cast<long long>(ctas) * block;

        Addr cols = allocI32(m, static_cast<std::size_t>(rows * nnz),
                             [&](std::size_t) {
                                 return rng.range(
                                     0, static_cast<std::int32_t>(rows));
                             });
        Addr vals = allocRandomI32(
            m, rng, static_cast<std::size_t>(rows * nnz), -256, 256);
        Addr x = allocRandomI32(m, rng, static_cast<std::size_t>(rows),
                                -256, 256);
        Addr y = allocZeroI32(m, static_cast<std::size_t>(rows));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(cols), static_cast<RegVal>(vals),
                    static_cast<RegVal>(x), static_cast<RegVal>(y),
                    static_cast<RegVal>(rows), nnz};
        p.outputs = {{y, static_cast<std::uint64_t>(rows * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
