/**
 * @file
 * AES — AES encryption (GPGPU-sim suite). Round loop over a state
 * word: each round performs T-box substitutions through
 * data-dependent table lookups (byte-extract -> gather), then mixes
 * with xor. The lookup addresses are non-affine (they depend on the
 * loaded state), so DAC decouples only the streaming input/output and
 * round-key accesses — matching the paper's limited AES coverage.
 * The 1 KB table stays L1-resident: compute-bound.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel aes
.param in out tbox rkey rounds
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $in, r2;
    ld.global.u32 r4, [r3];    // state word
    mov r5, 0;                 // round
    mov r12, $rkey;            // round key pointer (uniform)
ROUND:
    // T-box substitution on two bytes of the state (data-dependent).
    and r6, r4, 255;
    shl r7, r6, 2;
    add r7, $tbox, r7;
    ld.global.u32 r8, [r7];    // tbox[state & 0xff]
    shr r9, r4, 8;
    and r9, r9, 255;
    shl r10, r9, 2;
    add r10, $tbox, r10;
    ld.global.u32 r11, [r10];  // tbox[(state >> 8) & 0xff]
    // Mix columns surrogate + round key.
    shl r13, r8, 1;
    xor r13, r13, r11;
    ld.global.u32 r14, [r12];  // round key word (uniform address)
    xor r4, r13, r14;
    add r12, r12, 4;
    add r5, r5, 1;
    setp.lt p0, r5, $rounds;
    @p0 bra ROUND;
    add r15, $out, r2;
    st.global.u32 [r15], r4;
    exit;
)";

} // namespace

Workload
makeAES()
{
    Workload w;
    w.name = "AES";
    w.fullName = "AES encryption";
    w.suite = 'G';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(303);
        const int ctas = static_cast<int>(scaled(120, scale, 15));
        const int block = 128;
        const int rounds = 10;
        const long long n = static_cast<long long>(ctas) * block;

        Addr in = allocRandomI32(m, rng, static_cast<std::size_t>(n), 0,
                                 1 << 30);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));
        Addr tbox = allocRandomI32(m, rng, 256, 0, 1 << 30);
        Addr rkey = allocRandomI32(m, rng, static_cast<std::size_t>(rounds),
                                   0, 1 << 30);

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(in), static_cast<RegVal>(out),
                    static_cast<RegVal>(tbox), static_cast<RegVal>(rkey),
                    rounds};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
