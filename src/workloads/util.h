/**
 * @file
 * Shared helpers for workload construction: deterministic data
 * generation and sizing.
 */

#ifndef DACSIM_WORKLOADS_UTIL_H
#define DACSIM_WORKLOADS_UTIL_H

#include <cstdint>
#include <vector>

#include "mem/gpu_memory.h"
#include "workloads/workload.h"

namespace dacsim::workloads
{

/** Deterministic xorshift64* generator for input data. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : s_(seed) {}

    std::uint64_t
    next()
    {
        s_ ^= s_ >> 12;
        s_ ^= s_ << 25;
        s_ ^= s_ >> 27;
        return s_ * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [lo, hi). */
    std::int32_t
    range(std::int32_t lo, std::int32_t hi)
    {
        return lo + static_cast<std::int32_t>(
                        next() % static_cast<std::uint64_t>(hi - lo));
    }

  private:
    std::uint64_t s_;
};

/** Scale a count (CTAs, rows, ...), keeping it at least @p min_value. */
inline long long
scaled(long long base, double scale, long long min_value = 1)
{
    long long v = static_cast<long long>(static_cast<double>(base) * scale);
    return std::max(v, min_value);
}

/** Allocate and fill an i32 device array with random values. */
inline Addr
allocRandomI32(GpuMemory &m, Rng &rng, std::size_t count,
               std::int32_t lo = -1000, std::int32_t hi = 1000)
{
    Addr base = m.alloc(count * 4);
    std::vector<std::int32_t> vals(count);
    for (auto &v : vals)
        v = rng.range(lo, hi);
    m.writeI32Array(base, vals);
    return base;
}

/** Allocate a zero-filled i32 device array. */
inline Addr
allocZeroI32(GpuMemory &m, std::size_t count)
{
    return m.alloc(count * 4);
}

/** Allocate and fill with a function of the index. */
template <typename F>
Addr
allocI32(GpuMemory &m, std::size_t count, F f)
{
    Addr base = m.alloc(count * 4);
    std::vector<std::int32_t> vals(count);
    for (std::size_t i = 0; i < count; ++i)
        vals[i] = f(i);
    m.writeI32Array(base, vals);
    return base;
}

} // namespace dacsim::workloads

#endif // DACSIM_WORKLOADS_UTIL_H
