/**
 * @file
 * BFS — breadth-first search (Rodinia). Level-synchronous bottom-up
 * traversal: each launch processes one frontier level; a thread owns
 * one vertex, and if the vertex is unvisited it scans its incoming
 * edges (data-dependent bounds and gather addresses) looking for a
 * frontier neighbour. Nearly every load is indirect and the edge
 * loop is data-dependent, so DAC can decouple almost nothing — the
 * paper's canonical low-coverage benchmark (Section 5.5).
 *
 * Determinism: within one launch, threads write only their own
 * dist[v] with level+1; concurrent reads of a neighbour's dist can
 * observe old (unvisited) or new (level+1) values, and neither
 * triggers a visit this level, so the result is schedule-independent.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel bfs
.param rowPtr adj dist n level
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // vertex v
    shl r2, r1, 2;
    add r3, $dist, r2;
    ld.global.s32 r4, [r3];      // dist[v]
    setp.ge p1, r4, 0;
    @p1 bra DONE;                // already visited
    add r5, $rowPtr, r2;
    ld.global.u32 r6, [r5];      // edge begin (data-dependent bound)
    ld.global.u32 r7, [r5+4];    // edge end
    mov r8, 0;                   // found
EDGE:
    setp.ge p2, r6, r7;
    @p2 bra CHECK;
    shl r9, r6, 2;
    add r9, $adj, r9;
    ld.global.u32 r10, [r9];     // neighbour u (indirect)
    shl r11, r10, 2;
    add r11, $dist, r11;
    ld.global.s32 r12, [r11];    // dist[u] (gather)
    setp.eq p3, r12, $level;
    @!p3 bra SKIP;
    mov r8, 1;
SKIP:
    add r6, r6, 1;
    bra EDGE;
CHECK:
    setp.eq p4, r8, 0;
    @p4 bra DONE;
    add r13, $level, 1;
    st.global.u32 [r3], r13;     // claim v at level+1
DONE:
    exit;
)";

} // namespace

Workload
makeBFS()
{
    Workload w;
    w.name = "BFS";
    w.fullName = "breadth-first search";
    w.suite = 'C';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(252);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const long long n = static_cast<long long>(ctas) * block;
        const int degree = 6;
        const int levels = 5;

        // Random regular-ish graph in CSR (incoming edges).
        Addr rowPtr = allocI32(m, static_cast<std::size_t>(n + 1),
                               [&](std::size_t i) {
                                   return static_cast<std::int32_t>(
                                       i * degree);
                               });
        Addr adj = allocI32(m, static_cast<std::size_t>(n) * degree,
                            [&](std::size_t) {
                                return rng.range(
                                    0, static_cast<std::int32_t>(n));
                            });
        // dist: -1 everywhere except a handful of sources at level 0.
        Addr dist = allocI32(m, static_cast<std::size_t>(n),
                             [&](std::size_t i) {
                                 return i % 577 == 0 ? 0 : -1;
                             });

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        for (int l = 0; l < levels; ++l) {
            p.launchParams.push_back(
                {static_cast<RegVal>(rowPtr), static_cast<RegVal>(adj),
                 static_cast<RegVal>(dist), static_cast<RegVal>(n), l});
        }
        p.outputs = {{dist, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
