/**
 * @file
 * CP — coulombic potential (GPGPU-sim suite). Each thread owns one
 * grid point and loops over the atom list, accumulating a distance-
 * weighted charge. The atom array is read through scalar (uniform)
 * addresses that hit in L1, so the kernel is compute-bound; the loop
 * control and atom addressing are affine and decouple under DAC.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel cp
.param atoms out numAtoms
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;         // grid point index
    mov r2, 0;                 // energy accumulator
    mov r3, 0;                 // j
LOOP:
    shl r20, r3, 3;            // j*8 (recomputed per iteration)
    add r4, $atoms, r20;       // &atoms[j]
    ld.global.u32 r5, [r4];    // atom position (uniform address)
    ld.global.u32 r6, [r4+4];  // atom charge
    sub r7, r1, r5;            // dx (depends on loaded data)
    mul r8, r7, r7;            // dx^2
    add r8, r8, 1;
    mul r9, r6, r8;            // charge * (dx^2+1): integer surrogate
    shr r9, r9, 3;
    add r2, r2, r9;
    add r3, r3, 1;
    setp.lt p0, r3, $numAtoms;
    @p0 bra LOOP;
    shl r10, r1, 2;
    add r11, $out, r10;
    st.global.u32 [r11], r2;
    exit;
)";

} // namespace

Workload
makeCP()
{
    Workload w;
    w.name = "CP";
    w.fullName = "coulombic potential";
    w.suite = 'G';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(101);
        const int ctas = static_cast<int>(scaled(120, scale, 15));
        const int block = 128;
        const int atoms = 96;
        const long long points = static_cast<long long>(ctas) * block;

        Addr atomArr = allocRandomI32(m, rng, 2ull * atoms, 0, 4096);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(points));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(atomArr), static_cast<RegVal>(out),
                    atoms};
        p.outputs = {{out, static_cast<std::uint64_t>(points * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
