/**
 * @file
 * LIB — libor market model (GPGPU-sim suite). Each thread sweeps its
 * own forward-rate vector (a private row of a large matrix),
 * updating each maturity with a short drift computation and storing
 * it back. Two memory operations per ~6 ALU ops over a multi-MB
 * footprint: memory-latency bound, with fully affine addressing —
 * one of the paper's big DAC winners.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel lib
.param rates out maturities paths
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // path id
    shl r2, r1, 2;
    add r3, $rates, r2;          // &L[0][path] (maturity-major layout)
    add r4, $out, r2;
    mul r10, $paths, 4;          // row stride in bytes
    mov r5, 0;                   // i
    mov r6, 1024;                // accumulated drift state
LOOP:
    ld.global.u32 r7, [r3];      // L_i
    mul r8, r7, r6;
    shr r8, r8, 10;              // L_i * drift
    add r9, r7, r8;
    add r6, r6, 3;               // drift evolves
    st.global.u32 [r4], r9;
    add r3, r3, r10;
    add r4, r4, r10;
    add r5, r5, 1;
    setp.lt p0, r5, $maturities;
    @p0 bra LOOP;
    exit;
)";

} // namespace

Workload
makeLIB()
{
    Workload w;
    w.name = "LIB";
    w.fullName = "libor market model";
    w.suite = 'G';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(121);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const int maturities = 40;
        const long long paths = static_cast<long long>(ctas) * block;
        const long long elems = paths * maturities;

        Addr rates = allocRandomI32(m, rng,
                                    static_cast<std::size_t>(elems), 1,
                                    1 << 16);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(elems));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(rates), static_cast<RegVal>(out),
                    maturities, static_cast<RegVal>(paths)};
        p.outputs = {{out, static_cast<std::uint64_t>(elems * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
