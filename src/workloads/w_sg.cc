/**
 * @file
 * SG — sgemm (Parboil). The benchmark's straightforward kernel: each
 * thread computes one C element with a K-loop reading A row-wise
 * (uniform per warp row) and B column-wise (coalesced, streaming
 * fresh lines every iteration). Two global loads per four ALU ops
 * over matrices far larger than L2: memory-intensive, fully affine.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel sg
.param A B C n k
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // col
    mov r2, ctaid.y;             // row
    mov r3, 0;                   // kk
    mov r4, 0;                   // acc
    mul r5, r2, $k;
    shl r5, r5, 2;
    add r5, $A, r5;              // &A[row][0]
    shl r6, r1, 2;
    add r6, $B, r6;              // &B[0][col]
    mul r7, $n, 4;               // B row stride
K:
    ld.global.s32 r8, [r5];      // A[row][kk] (uniform in the warp)
    ld.global.s32 r9, [r6];      // B[kk][col] (coalesced stream)
    mul r10, r8, r9;
    shr r10, r10, 6;
    add r4, r4, r10;
    add r5, r5, 4;
    add r6, r6, r7;
    add r3, r3, 1;
    setp.lt p0, r3, $k;
    @p0 bra K;
    mul r11, r2, $n;
    add r11, r11, r1;
    shl r11, r11, 2;
    add r12, $C, r11;
    st.global.u32 [r12], r4;
    exit;
)";

} // namespace

Workload
makeSG()
{
    Workload w;
    w.name = "SG";
    w.fullName = "sgemm";
    w.suite = 'R';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(131);
        const int n = 2048;       // columns (16 CTAs of 128 per row)
        const int rows = static_cast<int>(scaled(16, scale, 4));
        const int k = 96;

        Addr a = allocRandomI32(
            m, rng, static_cast<std::size_t>(rows) * k, -128, 128);
        Addr b = allocRandomI32(
            m, rng, static_cast<std::size_t>(k) * n, -128, 128);
        Addr c = allocZeroI32(m, static_cast<std::size_t>(rows) * n);

        p.kernel = assemble(src);
        p.grid = {n / 128, rows, 1};
        p.block = {128, 1, 1};
        p.params = {static_cast<RegVal>(a), static_cast<RegVal>(b),
                    static_cast<RegVal>(c), n, k};
        p.outputs = {{c, static_cast<std::uint64_t>(rows) * n * 4}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
