/**
 * @file
 * FFT — fast Fourier transform (GPGPU-sim suite). Each thread walks
 * the butterfly stages: in stage s it pairs with the element `span`
 * away, where its role (upper/lower) is `tid mod 2*span < span` — a
 * mod-type affine tuple feeding a divergent affine condition, the
 * combination Sections 4.4/4.6 are built for. Partner loads are
 * affine (with one divergent condition); the twiddle arithmetic runs
 * on loaded data. Compute-bound at this size.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel fft
.param data out stages
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;          // element index
    shl r2, r1, 2;
    add r3, $data, r2;
    ld.global.u32 r4, [r3];     // v = own element
    mov r5, 0;                  // stage s
    mov r6, 1;                  // span = 1 << s
STAGE:
    shl r7, r6, 1;              // 2*span
    mod r8, r1, r7;             // pos = tid mod 2*span   (mod-type tuple)
    setp.lt p1, r8, r6;         // upper half?             (affine pred)
    add r9, r1, r6;             // partner if upper
    sub r10, r1, r6;            // partner if lower
    sel r11, r9, r10, p1;       // divergent affine tuple
    shl r12, r11, 2;
    add r13, $data, r12;
    ld.global.u32 r14, [r13];   // partner element (decoupled)
    // Butterfly with integer twiddle surrogate.
    mul r15, r14, 37;
    shr r15, r15, 2;
    xor r16, r4, r15;
    add r17, r4, r14;
    sel r4, r17, r16, p1;       // upper adds, lower twiddles
    add r5, r5, 1;
    shl r6, r6, 1;
    setp.lt p0, r5, $stages;
    @p0 bra STAGE;
    add r18, $out, r2;
    st.global.u32 [r18], r4;
    exit;
)";

} // namespace

Workload
makeFFT()
{
    Workload w;
    w.name = "FFT";
    w.fullName = "fast Fourier transform";
    w.suite = 'G';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(606);
        const int ctas = static_cast<int>(scaled(96, scale, 15));
        const int block = 128;
        const int stages = 6; // spans stay within one CTA's elements
        const long long n = static_cast<long long>(ctas) * block;

        Addr data = allocRandomI32(m, rng, static_cast<std::size_t>(n), 0,
                                   1 << 24);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(data), static_cast<RegVal>(out),
                    stages};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
