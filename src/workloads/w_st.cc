/**
 * @file
 * ST — stencil (Parboil). 7-point 3-D Jacobi stencil: threads own an
 * (x, y) column and march through z, loading six neighbours plus the
 * centre and storing the relaxed value. Streaming through a
 * multi-MB volume with ~1.2 ALU ops per memory op: bandwidth-heavy
 * memory-intensive, fully affine addressing.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel st
.param in out width planeElems depth
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // x
    mov r2, ctaid.y;             // y
    mul r3, r2, $width;
    add r3, r3, r1;              // base cell in plane 0
    shl r3, r3, 2;
    mov r4, 1;                   // z (interior planes only)
    mul r5, $planeElems, 4;      // plane stride in bytes
    add r6, r3, r5;              // &in[cell at z=1]
    add r6, $in, r6;
    add r7, r3, r5;
    add r7, $out, r7;
Z:
    ld.global.u32 r8, [r6];      // centre
    ld.global.u32 r9, [r6+4];    // +x
    ld.global.u32 r10, [r6-4];   // -x
    mul r11, $width, 4;
    add r12, r6, r11;
    ld.global.u32 r13, [r12];    // +y
    sub r14, r6, r11;
    ld.global.u32 r15, [r14];    // -y
    add r16, r6, r5;
    ld.global.u32 r17, [r16];    // +z
    sub r18, r6, r5;
    ld.global.u32 r19, [r18];    // -z
    add r20, r9, r10;
    add r20, r20, r13;
    add r20, r20, r15;
    add r20, r20, r17;
    add r20, r20, r19;
    mul r21, r8, 6;
    sub r22, r20, r21;
    shr r22, r22, 2;
    add r22, r22, r8;
    st.global.u32 [r7], r22;
    add r6, r6, r5;
    add r7, r7, r5;
    add r4, r4, 1;
    sub r23, $depth, 1;
    setp.lt p0, r4, r23;
    @p0 bra Z;
    exit;
)";

} // namespace

Workload
makeST()
{
    Workload w;
    w.name = "ST";
    w.fullName = "stencil";
    w.suite = 'R';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(141);
        const int width = 256;           // interior x covered by 2 CTAs
        const int rowsY = static_cast<int>(scaled(48, scale, 8));
        const int depth = 18;
        const long long plane = static_cast<long long>(width) * (rowsY + 2);
        const long long vol = plane * depth;

        Addr in = allocRandomI32(m, rng, static_cast<std::size_t>(vol), 0,
                                 4096);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(vol));

        p.kernel = assemble(src);
        p.grid = {width / 128, rowsY, 1};
        p.block = {128, 1, 1};
        p.params = {static_cast<RegVal>(in + 4 + 4 * width),
                    static_cast<RegVal>(out + 4 + 4 * width),
                    width, static_cast<RegVal>(plane), depth};
        p.outputs = {{out, static_cast<std::uint64_t>(vol * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
