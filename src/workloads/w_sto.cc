/**
 * @file
 * STO — storeGPU (GPGPU-sim suite). Threads read one word each and
 * run a long register-resident mixing pipeline (shift/xor/multiply
 * rounds, an integer hash) before storing. Arithmetic dominates the
 * single load/store pair, making the kernel firmly compute-bound with
 * only its addressing affine.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel sto
.param in out rounds
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $in, r2;
    ld.global.u32 r4, [r3];    // v
    mov r5, 0;                 // round counter
MIX:
    // One mixing round: v = (v ^ (v >> 7)) * 2654435761 + round
    shr r6, r4, 7;
    xor r4, r4, r6;
    mul r4, r4, 40503;         // 16-bit golden-ratio multiplier
    add r4, r4, r5;
    shl r7, r4, 3;
    xor r4, r4, r7;
    mul r4, r4, 31;
    add r4, r4, 17;
    add r5, r5, 1;
    setp.lt p0, r5, $rounds;
    @p0 bra MIX;
    add r8, $out, r2;
    st.global.u32 [r8], r4;
    exit;
)";

} // namespace

Workload
makeSTO()
{
    Workload w;
    w.name = "STO";
    w.fullName = "storeGPU";
    w.suite = 'G';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(202);
        const int ctas = static_cast<int>(scaled(120, scale, 15));
        const int block = 128;
        const int rounds = 24;
        const long long n = static_cast<long long>(ctas) * block;

        Addr in = allocRandomI32(m, rng, static_cast<std::size_t>(n), 0,
                                 1 << 30);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(in), static_cast<RegVal>(out),
                    rounds};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
