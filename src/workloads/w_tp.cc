/**
 * @file
 * TP — tpacf, the two-point angular correlation function (Parboil /
 * GPGPU-sim). Each thread holds one observation and loops over the
 * sample catalogue (uniform scalar loads), computing a dot-product
 * surrogate and binning it with a data-dependent comparison chain —
 * the classic tpacf structure of regular outer loop + divergent
 * histogram binning. The binning branches are data-dependent, so
 * only the catalogue addressing and loop control decouple.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel tp
.param cat out numCat bins
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    mov r2, 0;                 // bin0
    mov r3, 0;                 // bin1
    mov r4, 0;                 // bin2
    mov r5, 0;                 // j
POINT:
    shl r20, r5, 2;            // j*4 (recomputed per iteration)
    add r6, $cat, r20;
    ld.global.u32 r7, [r6];    // catalogue entry (uniform address)
    mul r8, r7, r1;            // dot surrogate
    and r8, r8, 4095;
    // Data-dependent binning chain (divergent, not decoupleable).
    setp.lt p1, r8, 1024;
    @p1 bra BIN0;
    setp.lt p2, r8, 2048;
    @p2 bra BIN1;
    add r4, r4, 1;
    bra NEXT;
BIN1:
    add r3, r3, 1;
    bra NEXT;
BIN0:
    add r2, r2, 1;
NEXT:
    add r5, r5, 1;
    setp.lt p0, r5, $numCat;
    @p0 bra POINT;
    mul r9, r1, 12;            // 3 bins per thread
    add r10, $out, r9;
    st.global.u32 [r10], r2;
    st.global.u32 [r10+4], r3;
    st.global.u32 [r10+8], r4;
    exit;
)";

} // namespace

Workload
makeTP()
{
    Workload w;
    w.name = "TP";
    w.fullName = "tpacf";
    w.suite = 'G';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(505);
        const int ctas = static_cast<int>(scaled(96, scale, 15));
        const int block = 128;
        const int numCat = 80;
        const long long n = static_cast<long long>(ctas) * block;

        Addr cat = allocRandomI32(m, rng, static_cast<std::size_t>(numCat),
                                  1, 1 << 20);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n) * 3);

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(cat), static_cast<RegVal>(out),
                    numCat, 3};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 12)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
