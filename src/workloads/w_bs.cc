/**
 * @file
 * BS — blackscholes (Parboil/CUDA SDK). One option per thread: load
 * price and strike, evaluate a long rational-polynomial approximation
 * (the CND surrogate, ~30 integer ops), store call and put values.
 * The arithmetic chain dwarfs the streaming accesses: compute-bound.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel bs
.param price strike call put n
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $price, r2;
    ld.global.u32 r4, [r3];      // S
    add r5, $strike, r2;
    ld.global.u32 r6, [r5];      // X
    // d = (S - X) scaled; polynomial CND surrogate.
    sub r7, r4, r6;
    mul r8, r7, r7;
    shr r8, r8, 6;               // d^2
    mul r9, r8, r7;
    shr r9, r9, 8;               // d^3
    mul r10, r9, r7;
    shr r10, r10, 10;            // d^4
    mul r11, r7, 319;
    shr r11, r11, 8;
    mul r12, r8, 221;
    shr r12, r12, 9;
    mul r13, r9, 127;
    shr r13, r13, 10;
    mul r14, r10, 33;
    shr r14, r14, 11;
    add r15, r11, r12;
    sub r15, r15, r13;
    add r15, r15, r14;           // cnd(d) surrogate
    abs r16, r15;
    add r16, r16, 1;
    mul r17, r4, r15;
    div r18, r17, r16;           // S * cnd / |cnd|+1
    mul r19, r6, 243;
    shr r19, r19, 8;             // X * exp(-rT) surrogate
    mul r20, r19, r15;
    div r21, r20, r16;
    sub r22, r18, r21;           // call
    mul r27, r22, r22;
    shr r27, r27, 7;
    add r28, r22, r27;
    mul r28, r28, 61;
    shr r28, r28, 6;
    mul r29, r28, r28;
    shr r29, r29, 9;
    sub r22, r28, r29;           // refined call
    sub r23, r19, r4;
    add r24, r23, r22;           // put via parity
    add r25, $call, r2;
    st.global.u32 [r25], r22;
    add r26, $put, r2;
    st.global.u32 [r26], r24;
    exit;
)";

} // namespace

Workload
makeBS()
{
    Workload w;
    w.name = "BS";
    w.fullName = "blackscholes";
    w.suite = 'P';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(111);
        const int ctas = static_cast<int>(scaled(120, scale, 15));
        const int block = 128;
        const long long n = static_cast<long long>(ctas) * block;

        Addr price = allocRandomI32(m, rng, static_cast<std::size_t>(n), 1,
                                    1 << 16);
        Addr strike = allocRandomI32(m, rng, static_cast<std::size_t>(n),
                                     1, 1 << 16);
        Addr call = allocZeroI32(m, static_cast<std::size_t>(n));
        Addr put = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(price), static_cast<RegVal>(strike),
                    static_cast<RegVal>(call), static_cast<RegVal>(put),
                    static_cast<RegVal>(n)};
        p.outputs = {{call, static_cast<std::uint64_t>(n * 4)},
                     {put, static_cast<std::uint64_t>(n * 4)}};
        // Several launches: the SDK benchmark iterates pricing.
        p.launches = 2;
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
