/**
 * @file
 * The benchmark workload registry (paper Table 2).
 *
 * Each of the paper's 29 benchmarks is represented by a kernel written
 * in dacsim assembly that reproduces the original program's
 * kernel-level structure: its memory access pattern, arithmetic
 * intensity, divergence behaviour, and use of thread/block indices for
 * addressing (see DESIGN.md, "Substitutions").
 */

#ifndef DACSIM_WORKLOADS_WORKLOAD_H
#define DACSIM_WORKLOADS_WORKLOAD_H

#include <functional>
#include <string>
#include <vector>

#include "analysis/predict.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "mem/gpu_memory.h"
#include "sim/dim3.h"

namespace dacsim
{

/** A workload instantiated into device memory, ready to launch. */
struct PreparedWorkload
{
    Kernel kernel;   ///< original (un-decoupled) kernel, not yet analysed
    Dim3 grid;
    Dim3 block;
    std::vector<RegVal> params;
    /** Number of back-to-back launches (iterative apps re-launch). */
    int launches = 1;
    /**
     * Optional per-launch parameter sets (e.g. the BFS level counter);
     * when non-empty it overrides `params` and `launches`.
     */
    std::vector<std::vector<RegVal>> launchParams;
    /** Output ranges checksummed to compare machine variants. */
    std::vector<std::pair<Addr, std::uint64_t>> outputs;
};

struct Workload
{
    std::string name;       ///< paper abbreviation, e.g. "LIB"
    std::string fullName;   ///< e.g. "libor market model"
    char suite = 'G';       ///< G / R / C / P per Table 2
    /** Table 2 category (paper: >=1.5x speedup under perfect memory). */
    bool memoryIntensive = false;

    /**
     * Build the workload at @p scale (1.0 = full size; tests use
     * smaller scales). Allocates and initializes device buffers.
     */
    std::function<PreparedWorkload(GpuMemory &, double scale)> prepare;
};

/** All 29 benchmarks, in Table 2 order (compute first, then memory). */
const std::vector<Workload> &allWorkloads();

/** Look up one benchmark by abbreviation; fatals when unknown. */
const Workload &findWorkload(const std::string &name);

/** The launch sequence @p prep describes, in static-predictor form:
 * per-launch parameter sets when present, else `launches` repeats of
 * the single parameter vector. */
std::vector<PredictLaunch> predictLaunches(const PreparedWorkload &prep);

} // namespace dacsim

#endif // DACSIM_WORKLOADS_WORKLOAD_H
