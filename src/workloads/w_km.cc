/**
 * @file
 * KM — kmeans (Rodinia). The assignment step over transposed (SoA)
 * 64-bit feature vectors, as the tuned CUDA kernel lays them out:
 * each dimension's load is coalesced (two lines per warp) and fresh —
 * the per-cluster re-walk re-streams the whole feature matrix, whose
 * resident working set far exceeds L2. One distance op per 8 bytes
 * loaded: memory-intensive, fully affine addressing.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel km
.param pts ctr member n dims k
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // point id
    shl r2, r1, 3;
    add r2, $pts, r2;            // &pts[0][i] (SoA, 64-bit features)
    mul r16, $n, 8;              // dimension stride
    mov r3, 2147483647;          // best
    mov r4, 0;                   // best k
    mov r5, 0;                   // cluster
    mov r6, $ctr;
CLUSTER:
    mov r7, 0;                   // d
    mov r8, 0;                   // dist
    mov r9, r2;
FEATURE:
    ld.global.u64 r10, [r9];     // feature (coalesced stream)
    ld.global.u64 r11, [r6];     // centroid feature (uniform)
    sub r12, r10, r11;
    and r12, r12, 65535;
    mul r13, r12, r12;
    add r8, r8, r13;
    add r9, r9, r16;
    add r6, r6, 8;
    add r7, r7, 1;
    setp.lt p1, r7, $dims;
    @p1 bra FEATURE;
    setp.lt p2, r8, r3;
    sel r3, r8, r3, p2;
    sel r4, r5, r4, p2;
    add r5, r5, 1;
    setp.lt p0, r5, $k;
    @p0 bra CLUSTER;
    shl r14, r1, 2;
    add r15, $member, r14;
    st.global.u32 [r15], r4;
    exit;
)";

} // namespace

Workload
makeKM()
{
    Workload w;
    w.name = "KM";
    w.fullName = "kmeans";
    w.suite = 'C';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(242);
        const int ctas = static_cast<int>(scaled(90, scale, 15));
        const int block = 128;
        const int dims = 24;
        const int k = 3;
        const long long n = static_cast<long long>(ctas) * block;

        Addr pts = allocRandomI32(
            m, rng, 2 * static_cast<std::size_t>(n) * dims, -1024, 1024);
        Addr ctr = allocRandomI32(m, rng,
                                  2 * static_cast<std::size_t>(dims) * k,
                                  -1024, 1024);
        Addr member = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        p.params = {static_cast<RegVal>(pts), static_cast<RegVal>(ctr),
                    static_cast<RegVal>(member), static_cast<RegVal>(n),
                    dims, k};
        p.outputs = {{member, static_cast<std::uint64_t>(n * 4)}};
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
