/**
 * @file
 * SR1 — srad v1 (Rodinia). Speckle-reducing anisotropic diffusion:
 * a horizontal-neighbour stencil whose boundary indices are clamped
 * with min/max — affine min/max producing divergent tuples
 * (Section 4.6) — followed by a heavy diffusion-coefficient
 * computation per pixel. The grid is 2-D (rows on blockIdx.y), as in
 * the CUDA original. Compute-bound at this arithmetic intensity.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel sr1
.param img out width
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;          // x
    mov r2, ctaid.y;            // y (one block row per CTA row)
    // Clamped neighbour coordinates (divergent affine tuples).
    sub r4, r1, 1;
    max r4, r4, 0;              // xl
    add r5, r1, 1;
    sub r6, $width, 1;
    min r5, r5, r6;             // xr
    // Row base in elements.
    mul r7, r2, $width;
    add r8, r7, r4;
    shl r8, r8, 2;
    add r8, $img, r8;
    ld.global.u32 r9, [r8];     // left
    add r10, r7, r5;
    shl r10, r10, 2;
    add r10, $img, r10;
    ld.global.u32 r11, [r10];   // right
    add r12, r7, r1;
    shl r12, r12, 2;
    add r12, $img, r12;
    ld.global.u32 r13, [r12];   // centre
    // Diffusion coefficient surrogate (compute-heavy).
    sub r14, r9, r13;           // dL
    sub r15, r11, r13;          // dR
    mul r16, r14, r14;
    mul r17, r15, r15;
    add r18, r16, r17;          // G2
    mul r19, r13, r13;
    add r19, r19, 1;
    div r20, r18, r19;          // normalized gradient
    mul r21, r20, r20;
    add r22, r20, 4;
    mul r23, r21, 3;
    add r24, r23, r22;
    div r25, r18, r24;          // diffusion coefficient
    max r25, r25, 0;
    add r26, r13, r25;
    mul r27, r2, $width;
    add r27, r27, r1;
    shl r27, r27, 2;
    add r28, $out, r27;
    st.global.u32 [r28], r26;
    exit;
)";

} // namespace

Workload
makeSR1()
{
    Workload w;
    w.name = "SR1";
    w.fullName = "srad v1";
    w.suite = 'C';
    w.memoryIntensive = false;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(808);
        const int width = 512;              // 4 CTAs of 128 per row
        const int rows = static_cast<int>(scaled(40, scale, 8));
        const long long n = static_cast<long long>(width) * rows;

        Addr img = allocRandomI32(m, rng, static_cast<std::size_t>(n), 1,
                                  4096);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {width / 128, rows, 1};
        p.block = {128, 1, 1};
        p.params = {static_cast<RegVal>(img), static_cast<RegVal>(out),
                    width};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        // Run the diffusion pass a few times (iterative application).
        p.launches = 2;
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
