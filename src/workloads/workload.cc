#include "workloads/workload.h"

#include <algorithm>

#include "common/log.h"
#include "workloads/registry.h"

namespace dacsim
{

const std::vector<Workload> &
allWorkloads()
{
    using namespace workloads;
    static const std::vector<Workload> all = {
        // Compute intensive (Table 2, left column).
        makeCP(), makeSTO(), makeAES(), makeMQ(), makeTP(), makeFFT(),
        makeBP(), makeSR1(), makeHS(), makePF(), makeBS(),
        // Memory intensive (Table 2, right column).
        makeLIB(), makeSG(), makeST(), makeIMG(), makeHI(), makeLBM(),
        makeSPV(), makeBT(), makeLUD(), makeSR2(), makeSC(), makeKM(),
        makeBFS(), makeCFD(), makeMC(), makeMT(), makeSP(), makeCS(),
    };
    return all;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '", name, "'");
}

std::vector<PredictLaunch>
predictLaunches(const PreparedWorkload &prep)
{
    std::vector<PredictLaunch> launches;
    if (!prep.launchParams.empty()) {
        for (const std::vector<RegVal> &p : prep.launchParams)
            launches.push_back({prep.grid, prep.block, p});
    } else {
        for (int i = 0; i < std::max(1, prep.launches); ++i)
            launches.push_back({prep.grid, prep.block, prep.params});
    }
    return launches;
}

} // namespace dacsim
