#include "workloads/workload.h"

#include "common/log.h"
#include "workloads/registry.h"

namespace dacsim
{

const std::vector<Workload> &
allWorkloads()
{
    using namespace workloads;
    static const std::vector<Workload> all = {
        // Compute intensive (Table 2, left column).
        makeCP(), makeSTO(), makeAES(), makeMQ(), makeTP(), makeFFT(),
        makeBP(), makeSR1(), makeHS(), makePF(), makeBS(),
        // Memory intensive (Table 2, right column).
        makeLIB(), makeSG(), makeST(), makeIMG(), makeHI(), makeLBM(),
        makeSPV(), makeBT(), makeLUD(), makeSR2(), makeSC(), makeKM(),
        makeBFS(), makeCFD(), makeMC(), makeMT(), makeSP(), makeCS(),
    };
    return all;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '", name, "'");
}

} // namespace dacsim
