/**
 * @file
 * LBM — lattice-Boltzmann method (Parboil/GPGPU-sim). D2Q5 surrogate:
 * per cell, load five distribution functions from separate streaming
 * arrays (SoA layout), run the collision update, store five results.
 * Ten 128B transactions per warp per cell against ~14 ALU ops: DRAM
 * bandwidth saturates at full occupancy, so despite near-100% affine
 * load coverage the paper (and this model) sees little DAC speedup —
 * the signature LBM behaviour.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel lbm
.param f0 f1 f2 f3 f4 g0 g1 g2 g3 g4
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;
    shl r2, r1, 2;
    add r3, $f0, r2;
    ld.global.u32 r4, [r3];
    add r5, $f1, r2;
    ld.global.u32 r6, [r5];
    add r7, $f2, r2;
    ld.global.u32 r8, [r7];
    add r9, $f3, r2;
    ld.global.u32 r10, [r9];
    add r11, $f4, r2;
    ld.global.u32 r12, [r11];
    // Collision: relax toward the mean.
    add r13, r4, r6;
    add r13, r13, r8;
    add r13, r13, r10;
    add r13, r13, r12;           // rho
    div r14, r13, 5;             // mean
    sub r15, r14, r4;
    shr r15, r15, 1;
    add r16, r4, r15;
    sub r17, r14, r6;
    shr r17, r17, 1;
    add r18, r6, r17;
    sub r19, r14, r8;
    shr r19, r19, 1;
    add r20, r8, r19;
    sub r21, r14, r10;
    shr r21, r21, 1;
    add r22, r10, r21;
    sub r23, r14, r12;
    shr r23, r23, 1;
    add r24, r12, r23;
    add r25, $g0, r2;
    st.global.u32 [r25], r16;
    add r26, $g1, r2;
    st.global.u32 [r26], r18;
    add r27, $g2, r2;
    st.global.u32 [r27], r20;
    add r28, $g3, r2;
    st.global.u32 [r28], r22;
    add r29, $g4, r2;
    st.global.u32 [r29], r24;
    exit;
)";

} // namespace

Workload
makeLBM()
{
    Workload w;
    w.name = "LBM";
    w.fullName = "lattice-Boltzmann";
    w.suite = 'R';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(171);
        const int ctas = static_cast<int>(scaled(240, scale, 15));
        const int block = 256;
        const long long n = static_cast<long long>(ctas) * block;

        p.params.clear();
        for (int d = 0; d < 5; ++d) {
            p.params.push_back(static_cast<RegVal>(allocRandomI32(
                m, rng, static_cast<std::size_t>(n), 1, 1 << 20)));
        }
        std::vector<Addr> outs;
        for (int d = 0; d < 5; ++d) {
            Addr g = allocZeroI32(m, static_cast<std::size_t>(n));
            outs.push_back(g);
            p.params.push_back(static_cast<RegVal>(g));
        }

        p.kernel = assemble(src);
        p.grid = {ctas, 1, 1};
        p.block = {block, 1, 1};
        for (Addr g : outs)
            p.outputs.push_back({g, static_cast<std::uint64_t>(n * 4)});
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
