/**
 * @file
 * SR2 — srad v2 (Rodinia). The diffusion-application pass: a 4-point
 * stencil over the coefficient field with clamped borders and a
 * short update — roughly one ALU op per memory op, so unlike SR1
 * this pass is memory-intensive.
 */

#include "isa/assembler.h"
#include "workloads/registry.h"
#include "workloads/util.h"

namespace dacsim::workloads
{

namespace
{

const char *src = R"(
.kernel sr2
.param img coef out width height
    mul r0, ctaid.x, ntid.x;
    add r1, tid.x, r0;           // x
    mov r2, ctaid.y;             // y
    add r3, r1, 1;
    sub r4, $width, 1;
    min r3, r3, r4;              // xr clamped
    add r5, r2, 1;
    sub r6, $height, 1;
    min r5, r5, r6;              // yd clamped
    mul r7, r2, $width;
    add r8, r7, r1;
    shl r8, r8, 2;               // centre offset
    add r9, $img, r8;
    ld.global.u32 r10, [r9];     // img centre
    add r11, r7, r3;
    shl r11, r11, 2;
    add r12, $coef, r11;
    ld.global.u32 r13, [r12];    // coef east
    mul r14, r5, $width;
    add r14, r14, r1;
    shl r14, r14, 2;
    add r15, $coef, r14;
    ld.global.u32 r16, [r15];    // coef south
    add r17, $coef, r8;
    ld.global.u32 r18, [r17];    // coef centre
    add r19, r13, r16;
    add r19, r19, r18;
    add r21, r10, r19;
    add r22, $out, r8;
    st.global.u32 [r22], r21;
    exit;
)";

} // namespace

Workload
makeSR2()
{
    Workload w;
    w.name = "SR2";
    w.fullName = "srad v2";
    w.suite = 'C';
    w.memoryIntensive = true;
    w.prepare = [](GpuMemory &m, double scale) {
        PreparedWorkload p;
        Rng rng(222);
        const int width = 512;
        const int rows = static_cast<int>(scaled(64, scale, 8));
        const long long n = static_cast<long long>(width) * rows;

        Addr img = allocRandomI32(m, rng, static_cast<std::size_t>(n), 1,
                                  4096);
        Addr coef = allocRandomI32(m, rng, static_cast<std::size_t>(n), 0,
                                   256);
        Addr out = allocZeroI32(m, static_cast<std::size_t>(n));

        p.kernel = assemble(src);
        p.grid = {width / 128, rows, 1};
        p.block = {128, 1, 1};
        p.params = {static_cast<RegVal>(img), static_cast<RegVal>(coef),
                    static_cast<RegVal>(out), width, rows};
        p.outputs = {{out, static_cast<std::uint64_t>(n * 4)}};
        p.launches = 2;
        return p;
    };
    return w;
}

} // namespace dacsim::workloads
