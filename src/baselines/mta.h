/**
 * @file
 * Many-Thread-Aware GPU prefetcher (Lee et al., MICRO 2010), the
 * paper's memory-side baseline (Section 5.1.1).
 *
 * MTA trains per-PC stride detectors on demand global loads along two
 * axes — intra-warp (successive accesses of a PC by the same warp,
 * e.g. a load in a loop) and inter-warp (successive warps touching a
 * PC at a constant offset) — and, once a stride is confirmed,
 * speculatively prefetches ahead into a dedicated per-SM prefetch
 * buffer. A throttling mechanism halves the prefetch degree when too
 * many prefetched lines are evicted unused.
 */

#ifndef DACSIM_BASELINES_MTA_H
#define DACSIM_BASELINES_MTA_H

#include <cstdint>
#include <unordered_map>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "mem/mem_system.h"

namespace dacsim
{

class StateIo;

class MtaPrefetcher
{
  public:
    MtaPrefetcher(int sm_id, const MtaConfig &cfg, MemorySystem &mem,
                  RunStats &stats);

    /**
     * Observe one demand load line transaction from warp @p warp at
     * static instruction @p pc, and issue prefetches when trained.
     */
    void observe(int pc, int warp, Addr line_addr, Cycle now);

    /** Reset training state (start of a kernel). */
    void reset();

    int currentDegree() const { return degree_; }

  private:
    struct StrideEntry
    {
        Addr lastLine = 0;
        std::int64_t stride = 0;
        int confidence = 0;
        bool valid = false;
    };

    int smId_;
    const MtaConfig &cfg_;
    MemorySystem &mem_;
    RunStats &stats_;

    /** Intra-warp tables keyed by (pc, warp). */
    std::unordered_map<std::uint64_t, StrideEntry> intraWarp_;
    /** Inter-warp tables keyed by pc (stream of first-lines per warp). */
    std::unordered_map<int, StrideEntry> interWarp_;
    /** Last warp seen per pc (to detect warp changes). */
    std::unordered_map<int, int> lastWarp_;

    int degree_;
    int window_ = 0;

    void train(StrideEntry &e, Addr line, Cycle now);
    void throttle();

    friend class StateIo;
};

} // namespace dacsim

#endif // DACSIM_BASELINES_MTA_H
