#include "baselines/mta.h"

#include <algorithm>

namespace dacsim
{

MtaPrefetcher::MtaPrefetcher(int sm_id, const MtaConfig &cfg,
                             MemorySystem &mem, RunStats &stats)
    : smId_(sm_id), cfg_(cfg), mem_(mem), stats_(stats),
      degree_(cfg.maxDegree)
{
}

void
MtaPrefetcher::reset()
{
    intraWarp_.clear();
    interWarp_.clear();
    lastWarp_.clear();
    degree_ = cfg_.maxDegree;
    window_ = 0;
}

void
MtaPrefetcher::train(StrideEntry &e, Addr line, Cycle now)
{
    if (e.valid) {
        std::int64_t delta = static_cast<std::int64_t>(line) -
                             static_cast<std::int64_t>(e.lastLine);
        if (delta == e.stride && delta != 0) {
            e.confidence = std::min(e.confidence + 1, 8);
        } else {
            e.stride = delta;
            e.confidence = 1;
        }
    } else {
        e.valid = true;
        e.confidence = 0;
    }
    e.lastLine = line;

    if (e.confidence >= cfg_.trainThreshold && e.stride != 0) {
        for (int k = 1; k <= degree_; ++k) {
            Addr target = static_cast<Addr>(
                static_cast<std::int64_t>(line) + e.stride * k);
            mem_.prefetch(smId_, lineAlign(target), now);
            if (++window_ >= cfg_.throttleWindow)
                throttle();
        }
    }
}

void
MtaPrefetcher::throttle()
{
    window_ = 0;
    std::uint64_t unused = mem_.takeUnusedEvictions(smId_);
    if (unused > static_cast<std::uint64_t>(cfg_.throttleEvictions))
        degree_ = std::max(1, degree_ / 2);
    else
        degree_ = std::min(cfg_.maxDegree, degree_ + 1);
}

void
MtaPrefetcher::observe(int pc, int warp, Addr line_addr, Cycle now)
{
    // Intra-warp stride stream.
    std::uint64_t key = (static_cast<std::uint64_t>(pc) << 20) |
                        static_cast<std::uint64_t>(warp & 0xfffff);
    if (static_cast<int>(intraWarp_.size()) < cfg_.tableEntries ||
        intraWarp_.count(key)) {
        train(intraWarp_[key], line_addr, now);
    }

    // Inter-warp stream: first access per warp-visit of this pc.
    auto [it, fresh] = lastWarp_.try_emplace(pc, warp);
    if (fresh || it->second != warp) {
        it->second = warp;
        train(interWarp_[pc], line_addr, now);
    }
}

} // namespace dacsim
