/**
 * @file
 * Process-level crash isolation primitives (DESIGN.md §12.3, §14).
 *
 * One unit of work runs in a fork()ed child that reports back over a
 * pipe; the parent reads with a poll deadline and SIGKILLs the child
 * when the watchdog expires. The child's exit status and pipe output
 * are returned raw so callers classify failures in their own
 * vocabulary (the fuzz campaign's CaseStatus, the service daemon's
 * verdict taxonomy) while sharing one proven fork/pipe/watchdog
 * implementation. retryWithBackoff() is the matching bounded-retry
 * policy: host-side flake (a crashed or hung child) is worth retrying,
 * deterministic simulation verdicts are not — that decision also stays
 * with the caller, via the attempt callback's return value.
 */

#ifndef DACSIM_HARNESS_ISOLATION_H
#define DACSIM_HARNESS_ISOLATION_H

#include <functional>
#include <string>

namespace dacsim
{

/** Host-side outcome of one fork-isolated child run. */
enum class ChildOutcome
{
    Finished, ///< the child exited (cleanly or not) before the deadline
    Timeout,  ///< the watchdog SIGKILLed the child at the deadline
    HostFail, ///< fork()/pipe() itself failed (see ChildResult::error)
};

/** What the parent observed of one fork-isolated child. */
struct ChildResult
{
    ChildOutcome outcome = ChildOutcome::Finished;
    /** Everything the child wrote to its pipe before exiting. */
    std::string output;
    /** Parent-side failure description (HostFail only). */
    std::string error;
    bool exited = false;   ///< WIFEXITED
    int exitStatus = 0;    ///< WEXITSTATUS when exited
    bool signaled = false; ///< WIFSIGNALED
    int termSignal = 0;    ///< WTERMSIG when signaled

    /** The child finished with _Exit(0). */
    bool
    cleanExit() const
    {
        return outcome == ChildOutcome::Finished && exited &&
               exitStatus == 0;
    }

    /** One-sentence description of how the child ended ("child killed
     * by signal 11", "child exited with status 127", ...). */
    std::string exitDetail() const;
};

struct IsolationOptions
{
    /** Watchdog deadline; the child is SIGKILLed when it expires. */
    int timeoutMs = 20000;
    /** Noun used in watchdogDetail() ("case" for fuzz cases, "job"
     * for service jobs). */
    std::string subject = "case";
    /**
     * Streaming hook: invoked on the parent's reading thread with
     * every chunk the child's pipe delivers, as it arrives — in
     * addition to the chunk being appended to ChildResult::output.
     * The service daemon uses it to forward a streaming child's
     * framed progress messages while the job is still running; empty
     * (the default) keeps the original accumulate-until-EOF
     * behaviour byte-for-byte.
     */
    std::function<void(const char *data, std::size_t n)> onData;
};

/** The watchdog's diagnostic sentence for @p opt ("watchdog killed
 * the case after 20000 ms"). */
std::string watchdogDetail(const IsolationOptions &opt);

/**
 * Fork and run @p child with the pipe's write end. The child callback
 * must never return control to the caller's stack: it ends in _Exit /
 * _exit (or exec), so no parent-side state — journals, stdio buffers,
 * test frameworks — is ever flushed twice. The parent reads the pipe
 * until EOF or the watchdog deadline, reaps the child, and returns
 * what it saw.
 */
ChildResult runForkIsolated(const std::function<void(int writeFd)> &child,
                            const IsolationOptions &opt);

/** Bounded retry with exponential backoff (delays of baseDelayMs << n
 * between attempts). */
struct RetryPolicy
{
    /** Retries after the first attempt (0: single attempt). */
    int maxRetries = 2;
    int baseDelayMs = 50;
};

/**
 * Invoke @p attempt until it returns true (done — success, or a
 * deterministic failure not worth repeating) or the retries are
 * exhausted. Returns the number of attempts consumed.
 */
int retryWithBackoff(const RetryPolicy &policy,
                     const std::function<bool()> &attempt);

/** Append-loop write() that survives EINTR and short writes. */
void writeAll(int fd, const std::string &s);

/**
 * Poll-deadline read loop: append everything @p fd delivers to @p buf
 * until EOF or a hard read error (true), or the deadline expires first
 * (false). @p onData, when set, additionally receives each chunk as
 * it arrives (see IsolationOptions::onData).
 */
bool readWithDeadline(
    int fd, int timeoutMs, std::string *buf,
    const std::function<void(const char *, std::size_t)> &onData = {});

} // namespace dacsim

#endif // DACSIM_HARNESS_ISOLATION_H
