#include "harness/runner.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "analysis/soundness.h"
#include "common/env.h"
#include "common/log.h"
#include "compiler/cfg.h"
#include "obs/collector.h"
#include "sim/audit.h"
#include "sim/gpu.h"

namespace dacsim
{

const char *
runErrorKindName(RunErrorKind k)
{
    switch (k) {
      case RunErrorKind::None: return "none";
      case RunErrorKind::Fatal: return "fatal";
      case RunErrorKind::Panic: return "panic";
      case RunErrorKind::Audit: return "audit";
      case RunErrorKind::Deadlock: return "deadlock";
      case RunErrorKind::FaultInjected: return "fault-injected";
      case RunErrorKind::Halted: return "halted";
    }
    return "?";
}

namespace
{

/** Diagnostics runOnce() keeps updated as it goes, so they survive an
 * exception and reach the per-run error report (bench_util). */
struct RunDiag
{
    std::string checkpointId;
    std::uint64_t lastHash = 0;
    bool resumed = false;
};

/** Write a snapshot atomically: temp file + rename, so a kill mid-write
 * never leaves a corrupt file under the final snapshot name. */
void
writeSnapshot(const Gpu &gpu, const std::string &path)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        require(os.good(), "cannot open snapshot file ", tmp);
        gpu.saveSnapshot(os);
        require(os.good(), "snapshot write to ", tmp, " failed");
    }
    require(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot rename snapshot into place: ", path);
}

/** One uninstrumented run on the machine variant @p tech. */
RunOutcome
runOnce(const Workload &wl, const RunOptions &opt, Technique tech,
        RunDiag *diag)
{
    GpuMemory gmem;
    PreparedWorkload prep = wl.prepare(gmem, opt.scale);
    analyzeControlFlow(prep.kernel);

    // Decouple unconditionally: DAC needs the streams; baseline runs
    // use the coverage marks to measure Fig 18's coverage metric.
    DecoupledKernel dec = decouple(prep.kernel, opt.dac);

    // With lintAudit (DACSIM_LINT via fromEnv), audit the decoupling
    // (rule DAC-E007, DESIGN.md §10) before simulating on top of it.
    if (opt.lintAudit) {
        AnalysisContext ctx(prep.kernel, opt.dac,
                            {true, prep.block});
        DiagnosticEngine eng(ctx.kernel());
        auditDecoupling(ctx, dec, eng);
        LintReport rep = eng.finish();
        if (!rep.clean())
            fatal("decoupler soundness audit failed for ", prep.kernel.name,
                  ":\n", rep.renderText());
    }

    GpuConfig gcfg = opt.gpu;
    gcfg.perfectMemory = opt.perfectMemory;

    Gpu gpu(gcfg, tech, opt.dac, opt.cae, opt.mta, gmem);
    if (!opt.faults.empty())
        gpu.setFaultPlan(&opt.faults);

    // Observability (DESIGN.md §11): one collector per run, torn down
    // with it; nullptr (the default) keeps every hot-path hook to a
    // single predictable branch.
    std::unique_ptr<ObsCollector> obs;
    if (opt.obs.enabled()) {
        obs = std::make_unique<ObsCollector>(opt.obs, gcfg.numSms,
                                             gcfg.maxWarpsPerSm,
                                             gcfg.sched.schedulersPerSm);
        gpu.setObserver(obs.get());
    }

    const std::uint64_t numLaunches =
        prep.launchParams.empty()
            ? static_cast<std::uint64_t>(prep.launches)
            : prep.launchParams.size();
    auto makeLi = [&](std::uint64_t i) {
        require(i < numLaunches, "snapshot refers to launch ", i,
                " of a run with only ", numLaunches);
        LaunchInfo li;
        li.grid = prep.grid;
        li.block = prep.block;
        li.params = prep.launchParams.empty() ? &prep.params
                                              : &prep.launchParams[i];
        if (tech == Technique::Dac) {
            li.kernel = &dec.nonAffine;
            li.affineKernel = &dec.affine;
        } else {
            li.kernel = &prep.kernel;
            if (tech == Technique::Baseline)
                li.coverageMarks = &dec.coveredByDac;
        }
        return li;
    };

    // ----- checkpoint/resume (DESIGN.md §9) ---------------------------
    const CheckpointOptions &ck = opt.checkpoint;
    const std::string snapPath =
        ck.dir.empty() ? "" : ck.dir + "/" + ck.tag + ".snap";
    std::uint64_t firstLaunch = 0;
    bool resumed = false;
    if (ck.resume && !snapPath.empty()) {
        std::ifstream in(snapPath, std::ios::binary);
        if (in.good()) {
            firstLaunch = gpu.restoreSnapshot(in, makeLi);
            resumed = true;
            if (diag) {
                diag->checkpointId = snapPath;
                diag->resumed = true;
            }
        }
    }

    if (!snapPath.empty() || (ck.haltAtCycle != 0 && !resumed)) {
        Cycle every = std::max<Cycle>(ck.everyCycles, 1);
        Cycle nextSnap =
            snapPath.empty() ? ~static_cast<Cycle>(0) : every;
        if (resumed) {
            // Resume past already-written snapshots: next one is due
            // at the first period boundary after the restore point.
            const auto &chain = gpu.hashChain();
            Cycle at = chain.empty() ? 0 : chain.back().cycle;
            nextSnap = (at / every + 1) * every;
        }
        const Cycle halt = resumed ? 0 : ck.haltAtCycle;
        gpu.setBoundaryHook([diag, snapPath, every, nextSnap,
                             halt](Gpu &g, Cycle now) mutable {
            if (diag)
                diag->lastHash = g.stats().stateHash;
            if (!snapPath.empty() && now >= nextSnap) {
                writeSnapshot(g, snapPath);
                nextSnap = (now / every + 1) * every;
                if (diag)
                    diag->checkpointId = snapPath;
            }
            if (halt != 0 && now >= halt) {
                std::ostringstream os;
                os << "run halted at cycle " << now
                   << " (checkpoint kill knob, haltAtCycle=" << halt
                   << ")";
                throw HaltError(now, os.str());
            }
        });
    }

    for (std::uint64_t i = firstLaunch; i < numLaunches; ++i) {
        LaunchInfo li = makeLi(i);
        gpu.launch(li);
        if (diag)
            diag->lastHash = gpu.stats().stateHash;
    }

    RunOutcome out;
    out.stats = gpu.stats();
    if (obs) {
        obs->finalize(gpu, wl.name, techniqueName(tech), opt.scale,
                      out.stats);
        out.obs = obs->report();
    }
    out.anyDecoupled = dec.anyDecoupled;
    out.numDecoupledLoads = dec.numDecoupledLoads;
    out.numDecoupledStores = dec.numDecoupledStores;
    out.numDecoupledPreds = dec.numDecoupledPreds;
    for (auto [base, bytes] : prep.outputs)
        out.checksums.push_back(gmem.checksum(base, bytes));
    out.hashChain = gpu.hashChain();
    out.lastStateHash = out.stats.stateHash;
    out.faultSeed = opt.faults.empty() ? 0 : opt.faults.seed();
    out.resumed = resumed;
    if (diag)
        out.checkpointId = diag->checkpointId;
    else if (resumed)
        out.checkpointId = snapPath;
    return out;
}

/** Map a caught simulator exception to a structured RunError. */
RunError
classify(const std::exception &e)
{
    RunError err;
    err.what = e.what();
    if (auto *h = dynamic_cast<const HaltError *>(&e)) {
        err.kind = RunErrorKind::Halted;
        err.cycle = h->cycle();
    } else if (auto *f = dynamic_cast<const InjectedFaultError *>(&e)) {
        err.kind = RunErrorKind::FaultInjected;
        err.cycle = f->cycle();
    } else if (auto *a = dynamic_cast<const AuditError *>(&e)) {
        err.kind = RunErrorKind::Audit;
        err.cycle = a->context().cycle;
    } else if (auto *d = dynamic_cast<const DeadlockError *>(&e)) {
        err.kind = RunErrorKind::Deadlock;
        err.cycle = d->cycle();
    } else if (dynamic_cast<const FatalError *>(&e) != nullptr) {
        err.kind = RunErrorKind::Fatal;
    } else {
        err.kind = RunErrorKind::Panic;
    }
    return err;
}

/** Copy the surviving diagnostics into a failed outcome. */
void
annotate(RunOutcome &out, const RunDiag &diag, const RunOptions &opt)
{
    out.lastStateHash = diag.lastHash;
    out.checkpointId = diag.checkpointId;
    out.resumed = diag.resumed;
    out.faultSeed = opt.faults.empty() ? 0 : opt.faults.seed();
}

/** A snapshot file the failed run left behind, if any. */
bool
snapshotExists(const CheckpointOptions &ck)
{
    if (ck.dir.empty())
        return false;
    std::ifstream in(ck.dir + "/" + ck.tag + ".snap", std::ios::binary);
    return in.good();
}

} // namespace

RunOptions
RunOptions::fromEnv()
{
    RunOptions opt;
    opt.lintAudit = env().lint;
    if (!env().faults.empty())
        opt.faults = FaultPlan::parse(env().faults);
    if (!env().simCore.empty()) {
        // parseEnv validated the value; anything else fell back to "".
        SimCore core;
        if (simCoreFromName(env().simCore.c_str(), &core))
            opt.gpu.simCore = core;
    }
    return opt;
}

RunOptions
RunOptions::fromEnv(const std::string &bench)
{
    RunOptions opt = fromEnv();
    // DACSIM_FAULT_BENCHES: comma-separated benchmark abbreviations
    // the plan applies to (empty: all).
    const std::string &only = env().faultBenches;
    if (opt.faults.empty() || only.empty())
        return opt;
    bool match = false;
    std::size_t pos = 0;
    while (pos <= only.size()) {
        std::size_t sep = only.find(',', pos);
        if (sep == std::string::npos)
            sep = only.size();
        if (only.substr(pos, sep - pos) == bench) {
            match = true;
            break;
        }
        pos = sep + 1;
    }
    if (!match)
        opt.faults = FaultPlan{};
    return opt;
}

RunOutcome
runWorkload(const Workload &wl, const RunOptions &opt)
{
    RunDiag diag;
    if (!opt.trapErrors)
        return runOnce(wl, opt, opt.tech, &diag);

    RunError err;
    try {
        return runOnce(wl, opt, opt.tech, &diag);
    } catch (const std::exception &e) {
        err = classify(e);
    }

    // Crash recovery: when the failed run has a snapshot on disk,
    // retry once from it before giving up. Fatal errors are config/
    // input problems a retry cannot fix; everything else (a kill, a
    // panic from environmental stress, an injected fault) may be
    // transient relative to the last checkpoint.
    if (err.kind != RunErrorKind::Fatal && !opt.checkpoint.resume &&
        snapshotExists(opt.checkpoint)) {
        RunOptions retry = opt;
        retry.checkpoint.resume = true;
        RunDiag rdiag;
        try {
            return runOnce(wl, retry, opt.tech, &rdiag);
        } catch (const std::exception &e) {
            err = classify(e);
            diag = rdiag;
        }
    }

    // Graceful degradation: under an active fault plan, a DAC run
    // whose affine engine hit an unrecoverable fault re-executes on
    // the baseline machine (mirroring the paper's "not all kernels
    // decouple" path). Clean-run panics stay visible as errors —
    // they are simulator bugs, not environmental stress.
    if (opt.tech == Technique::Dac && !opt.faults.empty() &&
        err.kind != RunErrorKind::Fatal &&
        err.kind != RunErrorKind::Halted) {
        try {
            RunOptions fbOpt = opt;
            fbOpt.checkpoint = CheckpointOptions{}; // fresh machine
            RunDiag fdiag;
            RunOutcome fb = runOnce(wl, fbOpt, Technique::Baseline,
                                    &fdiag);
            fb.error = err;
            fb.fellBack = true;
            return fb;
        } catch (const std::exception &) {
            // The baseline run failed under the same fault plan;
            // report the original DAC error below.
        }
    }
    RunOutcome out;
    out.error = err;
    annotate(out, diag, opt);
    return out;
}

RunOutcome
runWorkload(const std::string &name, const RunOptions &opt)
{
    if (!opt.trapErrors)
        return runWorkload(findWorkload(name), opt);
    try {
        return runWorkload(findWorkload(name), opt);
    } catch (const std::exception &e) {
        // findWorkload itself fatals on unknown names.
        RunOutcome out;
        out.error = classify(e);
        return out;
    }
}

} // namespace dacsim
