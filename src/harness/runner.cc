#include "harness/runner.h"

#include "common/log.h"
#include "compiler/cfg.h"
#include "sim/gpu.h"

namespace dacsim
{

RunOutcome
runWorkload(const Workload &wl, const RunOptions &opt)
{
    GpuMemory gmem;
    PreparedWorkload prep = wl.prepare(gmem, opt.scale);
    analyzeControlFlow(prep.kernel);

    // Decouple unconditionally: DAC needs the streams; baseline runs
    // use the coverage marks to measure Fig 18's coverage metric.
    DecoupledKernel dec = decouple(prep.kernel, opt.dac);

    GpuConfig gcfg = opt.gpu;
    gcfg.perfectMemory = opt.perfectMemory;

    Gpu gpu(gcfg, opt.tech, opt.dac, opt.cae, opt.mta, gmem);

    LaunchInfo li;
    li.grid = prep.grid;
    li.block = prep.block;
    li.params = &prep.params;
    if (opt.tech == Technique::Dac) {
        li.kernel = &dec.nonAffine;
        li.affineKernel = &dec.affine;
    } else {
        li.kernel = &prep.kernel;
        if (opt.tech == Technique::Baseline)
            li.coverageMarks = &dec.coveredByDac;
    }

    if (!prep.launchParams.empty()) {
        for (const auto &params : prep.launchParams) {
            li.params = &params;
            gpu.launch(li);
        }
    } else {
        for (int i = 0; i < prep.launches; ++i)
            gpu.launch(li);
    }

    RunOutcome out;
    out.stats = gpu.stats();
    out.anyDecoupled = dec.anyDecoupled;
    out.numDecoupledLoads = dec.numDecoupledLoads;
    out.numDecoupledStores = dec.numDecoupledStores;
    out.numDecoupledPreds = dec.numDecoupledPreds;
    for (auto [base, bytes] : prep.outputs)
        out.checksums.push_back(gmem.checksum(base, bytes));
    return out;
}

RunOutcome
runWorkload(const std::string &name, const RunOptions &opt)
{
    return runWorkload(findWorkload(name), opt);
}

} // namespace dacsim
