#include "harness/runner.h"

#include "common/log.h"
#include "compiler/cfg.h"
#include "sim/audit.h"
#include "sim/gpu.h"

namespace dacsim
{

const char *
runErrorKindName(RunErrorKind k)
{
    switch (k) {
      case RunErrorKind::None: return "none";
      case RunErrorKind::Fatal: return "fatal";
      case RunErrorKind::Panic: return "panic";
      case RunErrorKind::Audit: return "audit";
      case RunErrorKind::Deadlock: return "deadlock";
      case RunErrorKind::FaultInjected: return "fault-injected";
    }
    return "?";
}

namespace
{

/** One uninstrumented run on the machine variant @p tech. */
RunOutcome
runOnce(const Workload &wl, const RunOptions &opt, Technique tech)
{
    GpuMemory gmem;
    PreparedWorkload prep = wl.prepare(gmem, opt.scale);
    analyzeControlFlow(prep.kernel);

    // Decouple unconditionally: DAC needs the streams; baseline runs
    // use the coverage marks to measure Fig 18's coverage metric.
    DecoupledKernel dec = decouple(prep.kernel, opt.dac);

    GpuConfig gcfg = opt.gpu;
    gcfg.perfectMemory = opt.perfectMemory;

    Gpu gpu(gcfg, tech, opt.dac, opt.cae, opt.mta, gmem);
    if (!opt.faults.empty())
        gpu.setFaultPlan(&opt.faults);

    LaunchInfo li;
    li.grid = prep.grid;
    li.block = prep.block;
    li.params = &prep.params;
    if (tech == Technique::Dac) {
        li.kernel = &dec.nonAffine;
        li.affineKernel = &dec.affine;
    } else {
        li.kernel = &prep.kernel;
        if (tech == Technique::Baseline)
            li.coverageMarks = &dec.coveredByDac;
    }

    if (!prep.launchParams.empty()) {
        for (const auto &params : prep.launchParams) {
            li.params = &params;
            gpu.launch(li);
        }
    } else {
        for (int i = 0; i < prep.launches; ++i)
            gpu.launch(li);
    }

    RunOutcome out;
    out.stats = gpu.stats();
    out.anyDecoupled = dec.anyDecoupled;
    out.numDecoupledLoads = dec.numDecoupledLoads;
    out.numDecoupledStores = dec.numDecoupledStores;
    out.numDecoupledPreds = dec.numDecoupledPreds;
    for (auto [base, bytes] : prep.outputs)
        out.checksums.push_back(gmem.checksum(base, bytes));
    return out;
}

/** Map a caught simulator exception to a structured RunError. */
RunError
classify(const std::exception &e)
{
    RunError err;
    err.what = e.what();
    if (auto *f = dynamic_cast<const InjectedFaultError *>(&e)) {
        err.kind = RunErrorKind::FaultInjected;
        err.cycle = f->cycle();
    } else if (auto *a = dynamic_cast<const AuditError *>(&e)) {
        err.kind = RunErrorKind::Audit;
        err.cycle = a->context().cycle;
    } else if (auto *d = dynamic_cast<const DeadlockError *>(&e)) {
        err.kind = RunErrorKind::Deadlock;
        err.cycle = d->cycle();
    } else if (dynamic_cast<const FatalError *>(&e) != nullptr) {
        err.kind = RunErrorKind::Fatal;
    } else {
        err.kind = RunErrorKind::Panic;
    }
    return err;
}

} // namespace

RunOutcome
runWorkload(const Workload &wl, const RunOptions &opt)
{
    if (!opt.trapErrors)
        return runOnce(wl, opt, opt.tech);

    try {
        return runOnce(wl, opt, opt.tech);
    } catch (const std::exception &e) {
        RunError err = classify(e);
        // Graceful degradation: under an active fault plan, a DAC run
        // whose affine engine hit an unrecoverable fault re-executes on
        // the baseline machine (mirroring the paper's "not all kernels
        // decouple" path). Clean-run panics stay visible as errors —
        // they are simulator bugs, not environmental stress.
        if (opt.tech == Technique::Dac && !opt.faults.empty() &&
            err.kind != RunErrorKind::Fatal) {
            try {
                RunOutcome fb = runOnce(wl, opt, Technique::Baseline);
                fb.error = err;
                fb.fellBack = true;
                return fb;
            } catch (const std::exception &) {
                // The baseline run failed under the same fault plan;
                // report the original DAC error below.
            }
        }
        RunOutcome out;
        out.error = err;
        return out;
    }
}

RunOutcome
runWorkload(const std::string &name, const RunOptions &opt)
{
    if (!opt.trapErrors)
        return runWorkload(findWorkload(name), opt);
    try {
        return runWorkload(findWorkload(name), opt);
    } catch (const std::exception &e) {
        // findWorkload itself fatals on unknown names.
        RunOutcome out;
        out.error = classify(e);
        return out;
    }
}

} // namespace dacsim
