/**
 * @file
 * Experiment harness: run one workload on one machine variant and
 * collect statistics plus output checksums.
 */

#ifndef DACSIM_HARNESS_RUNNER_H
#define DACSIM_HARNESS_RUNNER_H

#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "compiler/decoupler.h"
#include "workloads/workload.h"

namespace dacsim
{

struct RunOptions
{
    Technique tech = Technique::Baseline;
    /** Idealized memory (used only to classify benchmarks, Table 2). */
    bool perfectMemory = false;
    /** Workload size multiplier (1.0 = paper-scale default). */
    double scale = 1.0;
    GpuConfig gpu{};
    DacConfig dac{};
    CaeConfig cae{};
    MtaConfig mta{};
};

struct RunOutcome
{
    RunStats stats;
    /** One checksum per declared output range. */
    std::vector<std::uint64_t> checksums;
    /** Decoupling summary of the workload's kernel. */
    bool anyDecoupled = false;
    int numDecoupledLoads = 0;
    int numDecoupledStores = 0;
    int numDecoupledPreds = 0;
};

/** Run @p wl under @p opt to completion. */
RunOutcome runWorkload(const Workload &wl, const RunOptions &opt);

/** Shorthand: run by benchmark abbreviation. */
RunOutcome runWorkload(const std::string &name, const RunOptions &opt);

} // namespace dacsim

#endif // DACSIM_HARNESS_RUNNER_H
