/**
 * @file
 * Experiment harness: run one workload on one machine variant and
 * collect statistics plus output checksums.
 *
 * runWorkload() is crash-isolated: simulator errors (bad input, panics,
 * audit failures, watchdog deadlocks, injected faults) are caught and
 * returned as a structured RunError instead of propagating, so a batch
 * sweep survives any single run. When a fault plan is active and the
 * DAC engine reports an unrecoverable fault, the run degrades to
 * baseline execution (the paper's own "not all kernels decouple" path)
 * and is marked fellBack.
 */

#ifndef DACSIM_HARNESS_RUNNER_H
#define DACSIM_HARNESS_RUNNER_H

#include <string>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "compiler/decoupler.h"
#include "workloads/workload.h"

namespace dacsim
{

struct RunOptions
{
    Technique tech = Technique::Baseline;
    /** Idealized memory (used only to classify benchmarks, Table 2). */
    bool perfectMemory = false;
    /** Workload size multiplier (1.0 = paper-scale default). */
    double scale = 1.0;
    GpuConfig gpu{};
    DacConfig dac{};
    CaeConfig cae{};
    MtaConfig mta{};
    /** Deterministic fault plan applied to the run (empty: fault-free). */
    FaultPlan faults{};
    /** When false, simulator errors propagate as exceptions instead of
     * being recorded in RunOutcome::error (tests drive this). */
    bool trapErrors = true;
};

/** How a run failed (None: it completed). */
enum class RunErrorKind
{
    None,
    Fatal,          ///< user error: bad input or configuration
    Panic,          ///< internal invariant violation (simulator bug)
    Audit,          ///< structured invariant-auditor failure
    Deadlock,       ///< the watchdog fired (liveness lost)
    FaultInjected,  ///< an injected fault was unrecoverable by design
};

const char *runErrorKindName(RunErrorKind k);

/** Structured record of a failed (or degraded) run. */
struct RunError
{
    RunErrorKind kind = RunErrorKind::None;
    std::string what;
    /** Cycle of the failure when known (0 otherwise). */
    Cycle cycle = 0;

    bool ok() const { return kind == RunErrorKind::None; }
};

struct RunOutcome
{
    RunStats stats;
    /** One checksum per declared output range. */
    std::vector<std::uint64_t> checksums;
    /** Decoupling summary of the workload's kernel. */
    bool anyDecoupled = false;
    int numDecoupledLoads = 0;
    int numDecoupledStores = 0;
    int numDecoupledPreds = 0;
    /** Why the run failed; kind None when it completed. A fallback run
     * completed on the baseline machine but records the DAC error. */
    RunError error;
    /** The DAC run hit an unrecoverable fault and was re-executed on
     * the baseline machine (stats/checksums are the baseline's). */
    bool fellBack = false;

    /** The run produced usable stats/checksums (clean or fallback). */
    bool ok() const { return error.ok() || fellBack; }
};

/** Run @p wl under @p opt to completion. */
RunOutcome runWorkload(const Workload &wl, const RunOptions &opt);

/** Shorthand: run by benchmark abbreviation. */
RunOutcome runWorkload(const std::string &name, const RunOptions &opt);

} // namespace dacsim

#endif // DACSIM_HARNESS_RUNNER_H
