/**
 * @file
 * Experiment harness: run one workload on one machine variant and
 * collect statistics plus output checksums.
 *
 * runWorkload() is crash-isolated: simulator errors (bad input, panics,
 * audit failures, watchdog deadlocks, injected faults) are caught and
 * returned as a structured RunError instead of propagating, so a batch
 * sweep survives any single run. When a fault plan is active and the
 * DAC engine reports an unrecoverable fault, the run degrades to
 * baseline execution (the paper's own "not all kernels decouple" path)
 * and is marked fellBack.
 */

#ifndef DACSIM_HARNESS_RUNNER_H
#define DACSIM_HARNESS_RUNNER_H

#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "compiler/decoupler.h"
#include "obs/obs.h"
#include "workloads/workload.h"

namespace dacsim
{

/** Where and how often runWorkload() checkpoints (DESIGN.md §9). */
struct CheckpointOptions
{
    /** Directory snapshots are written to; empty disables them. */
    std::string dir;
    /** Snapshot file stem: snapshots land at `<dir>/<tag>.snap`
     * (written to a temp file and renamed, so a kill mid-write never
     * leaves a corrupt snapshot under the final name). */
    std::string tag = "run";
    /** Snapshot period in simulated cycles; effective cadence is the
     * first 4096-cycle audit boundary at or after each multiple. */
    Cycle everyCycles = 1u << 16;
    /** Restore `<dir>/<tag>.snap` before running when it exists. */
    bool resume = false;
    /**
     * Test knob (0: off): abort the run with HaltError at the first
     * audit boundary at or past this cycle — a deterministic stand-in
     * for a mid-run kill. Ignored when a snapshot was restored, so an
     * auto-retried run completes.
     */
    Cycle haltAtCycle = 0;
};

/** Thrown by CheckpointOptions::haltAtCycle (the simulated kill). */
class HaltError : public std::runtime_error
{
  public:
    HaltError(Cycle cycle, const std::string &msg)
        : std::runtime_error(msg), cycle_(cycle)
    {
    }
    Cycle cycle() const { return cycle_; }

  private:
    Cycle cycle_;
};

/**
 * The complete configuration of one run: machine variant, workload
 * scaling, and every cross-cutting policy (faults, checkpointing,
 * lint auditing, observability). Every layer that used to read its
 * own DACSIM_* variable now takes its switch from here; fromEnv()
 * folds the process environment (common/env.h registry) into the
 * defaults in one documented place.
 */
struct RunOptions
{
    Technique tech = Technique::Baseline;
    /** Idealized memory (used only to classify benchmarks, Table 2). */
    bool perfectMemory = false;
    /** Workload size multiplier (1.0 = paper-scale default). */
    double scale = 1.0;
    GpuConfig gpu{};
    DacConfig dac{};
    CaeConfig cae{};
    MtaConfig mta{};
    /** Deterministic fault plan applied to the run (empty: fault-free). */
    FaultPlan faults{};
    /** When false, simulator errors propagate as exceptions instead of
     * being recorded in RunOutcome::error (tests drive this). */
    bool trapErrors = true;
    /** Checkpoint/resume policy (disabled by default). */
    CheckpointOptions checkpoint{};
    /** Audit the kernel's decoupling (rule DAC-E007, DESIGN.md §10)
     * before simulating; a dirty report aborts the run. */
    bool lintAudit = false;
    /** Observability: stall attribution, counter timelines, Chrome
     * trace (DESIGN.md §11; all off by default). */
    ObsOptions obs{};

    /**
     * Defaults overridden by the process environment: lintAudit from
     * DACSIM_LINT, faults from DACSIM_FAULTS (filtered by
     * DACSIM_FAULT_BENCHES when @p bench is given), gpu.simCore from
     * DACSIM_SIM_CORE. Checkpointing is
     * deliberately NOT taken from the environment here: the snapshot
     * tag must be chosen per sweep point (parallel jobs sharing one
     * DACSIM_CHECKPOINT_DIR tag would corrupt each other), so
     * bench_util's sweep layer owns that knob.
     */
    static RunOptions fromEnv();
    static RunOptions fromEnv(const std::string &bench);
};

/** How a run failed (None: it completed). */
enum class RunErrorKind
{
    None,
    Fatal,          ///< user error: bad input or configuration
    Panic,          ///< internal invariant violation (simulator bug)
    Audit,          ///< structured invariant-auditor failure
    Deadlock,       ///< the watchdog fired (liveness lost)
    FaultInjected,  ///< an injected fault was unrecoverable by design
    Halted,         ///< the haltAtCycle knob fired (simulated kill)
};

const char *runErrorKindName(RunErrorKind k);

/** Structured record of a failed (or degraded) run. */
struct RunError
{
    RunErrorKind kind = RunErrorKind::None;
    std::string what;
    /** Cycle of the failure when known (0 otherwise). */
    Cycle cycle = 0;

    bool ok() const { return kind == RunErrorKind::None; }
};

struct RunOutcome
{
    RunStats stats;
    /** One checksum per declared output range. */
    std::vector<std::uint64_t> checksums;
    /** Decoupling summary of the workload's kernel. */
    bool anyDecoupled = false;
    int numDecoupledLoads = 0;
    int numDecoupledStores = 0;
    int numDecoupledPreds = 0;
    /** Why the run failed; kind None when it completed. A fallback run
     * completed on the baseline machine but records the DAC error. */
    RunError error;
    /** The DAC run hit an unrecoverable fault and was re-executed on
     * the baseline machine (stats/checksums are the baseline's). */
    bool fellBack = false;

    // ----- checkpoint / hash-chain diagnostics (DESIGN.md §9) -----------
    /** The full state-hash chain of the run (empty on early failure). */
    std::vector<HashLink> hashChain;
    /** Last folded state hash (the chain head; 0 before the first fold).
     * Valid even when the run failed — it names the last interval the
     * run completed, for the per-run error report. */
    std::uint64_t lastStateHash = 0;
    /** Path of the last snapshot written or restored ("" when none). */
    std::string checkpointId;
    /** Seed of the fault plan the run executed under (0: fault-free). */
    std::uint64_t faultSeed = 0;
    /** The run restored a snapshot instead of starting from cycle 0. */
    bool resumed = false;

    /** Observability report (stall attribution, timeline, trace-event
     * count); empty unless RunOptions::obs enabled something. Journal
     * replay does not reconstruct it (diagnostics, not results). */
    ObsReport obs;

    /** The run produced usable stats/checksums (clean or fallback). */
    bool ok() const { return error.ok() || fellBack; }
};

/** Run @p wl under @p opt to completion. */
RunOutcome runWorkload(const Workload &wl, const RunOptions &opt);

/** Shorthand: run by benchmark abbreviation. */
RunOutcome runWorkload(const std::string &name, const RunOptions &opt);

} // namespace dacsim

#endif // DACSIM_HARNESS_RUNNER_H
