#include "harness/isolation.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

namespace dacsim
{

std::string
ChildResult::exitDetail() const
{
    std::ostringstream os;
    if (signaled)
        os << "child killed by signal " << termSignal;
    else if (exited)
        os << "child exited with status " << exitStatus;
    else
        os << "child ended abnormally";
    return os.str();
}

std::string
watchdogDetail(const IsolationOptions &opt)
{
    std::ostringstream os;
    os << "watchdog killed the " << opt.subject << " after "
       << opt.timeoutMs << " ms";
    return os.str();
}

void
writeAll(int fd, const std::string &s)
{
    std::size_t off = 0;
    while (off < s.size()) {
        const ssize_t n = ::write(fd, s.data() + off, s.size() - off);
        if (n > 0)
            off += static_cast<std::size_t>(n);
        else if (errno != EINTR)
            break;
    }
}

bool
readWithDeadline(int fd, int timeoutMs, std::string *buf,
                 const std::function<void(const char *, std::size_t)> &onData)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    char tmp[4096];
    for (;;) {
        const long remain =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (remain <= 0)
            return false;
        struct pollfd pfd = {fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1,
                              static_cast<int>(remain > 200 ? 200 : remain));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return true;
        }
        if (pr == 0)
            continue;
        const ssize_t n = ::read(fd, tmp, sizeof tmp);
        if (n > 0) {
            buf->append(tmp, static_cast<std::size_t>(n));
            if (onData)
                onData(tmp, static_cast<std::size_t>(n));
        } else if (n == 0) {
            return true; // EOF: the child closed its end (exited)
        } else if (errno != EINTR && errno != EAGAIN) {
            return true;
        }
    }
}

ChildResult
runForkIsolated(const std::function<void(int writeFd)> &child,
                const IsolationOptions &opt)
{
    ChildResult r;

    int fds[2];
    if (::pipe(fds) != 0) {
        r.outcome = ChildOutcome::HostFail;
        r.error = std::string("pipe: ") + std::strerror(errno);
        return r;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        r.outcome = ChildOutcome::HostFail;
        r.error = std::string("fork: ") + std::strerror(errno);
        return r;
    }

    if (pid == 0) {
        // Child. The callback owns the rest of this process image and
        // must end in _Exit/_exit/exec; as a backstop, a callback that
        // does return (or throw) becomes a non-zero exit, classified
        // by the caller like any other crash.
        ::close(fds[0]);
        try {
            child(fds[1]);
        } catch (...) {
        }
        std::_Exit(125);
    }

    // Parent.
    ::close(fds[1]);
    const bool finished =
        readWithDeadline(fds[0], opt.timeoutMs, &r.output, opt.onData);
    ::close(fds[0]);
    if (!finished)
        ::kill(pid, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }

    if (!finished) {
        r.outcome = ChildOutcome::Timeout;
        return r;
    }
    r.outcome = ChildOutcome::Finished;
    r.exited = WIFEXITED(wstatus);
    if (r.exited)
        r.exitStatus = WEXITSTATUS(wstatus);
    r.signaled = WIFSIGNALED(wstatus);
    if (r.signaled)
        r.termSignal = WTERMSIG(wstatus);
    return r;
}

int
retryWithBackoff(const RetryPolicy &policy,
                 const std::function<bool()> &attempt)
{
    for (int a = 0;; ++a) {
        if (attempt() || a >= policy.maxRetries)
            return a + 1;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(
                static_cast<long>(policy.baseDelayMs) << a));
    }
}

} // namespace dacsim
