/**
 * @file
 * Parallel sweep execution for independent simulation runs.
 *
 * Figure/table reproductions run many independent (workload,
 * technique) pairs; runWorkload() is shared-nothing (each run builds
 * its own GpuMemory, Gpu, MemorySystem, and RunStats), so the pairs
 * can execute concurrently. parallelFor() provides the thread pool;
 * results are deterministic because each task writes only its own
 * index's slot and all reporting/printing stays on the calling thread.
 *
 * Thread-safety contract (see DESIGN.md §8): tasks must not touch
 * stdout/stderr or any shared mutable state; the one process-wide
 * mutable structure, the workload registry, is built eagerly before
 * workers start.
 */

#ifndef DACSIM_HARNESS_SWEEP_H
#define DACSIM_HARNESS_SWEEP_H

#include <cstddef>
#include <functional>

namespace dacsim
{

/**
 * Worker threads a sweep uses: the setSweepJobsOverride() value when
 * set (the --jobs CLI flag), else the DACSIM_JOBS environment variable
 * (common/env.h registry), else the hardware concurrency.
 */
int sweepJobs();

/** Override sweepJobs() (n <= 0: clear the override). Called by the
 * shared bench CLI before any sweep starts; not thread-safe against
 * running sweeps. */
void setSweepJobsOverride(int n);

/**
 * Run body(0) .. body(n-1) on up to @p jobs worker threads (0: use
 * sweepJobs()). Blocks until every task finished. Tasks are claimed
 * in index order from a shared counter; any task's exception is
 * rethrown on the calling thread (the lowest-index one wins, so a
 * failing sweep fails deterministically). With jobs <= 1 the bodies
 * run inline on the calling thread.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
                 int jobs = 0);

} // namespace dacsim

#endif // DACSIM_HARNESS_SWEEP_H
