/**
 * @file
 * Resumable-sweep journal (DESIGN.md §9).
 *
 * A sweep journal records one CRC-protected text line per completed
 * sweep point, keyed by the job's identity, so a killed sweep restarts
 * from the journal: already-recorded points are served from disk
 * (byte-identical to the original outcome — the encoding is exact for
 * every field reporting consumes) and only the missing points re-run.
 *
 * The format is append-only and self-verifying: a line whose CRC does
 * not match (e.g. a torn final line from a kill mid-write) is ignored,
 * as is anything else unparsable; later records for the same key win.
 */

#ifndef DACSIM_HARNESS_JOURNAL_H
#define DACSIM_HARNESS_JOURNAL_H

#include <map>
#include <mutex>
#include <string>

#include "harness/runner.h"

namespace dacsim
{

/** Encode a run outcome as a single journal payload line (no \n). The
 * hash chain itself is not journalled — only its head survives (in
 * lastStateHash); sweeps compare chains via golden fixtures instead. */
std::string encodeOutcome(const RunOutcome &out);

/** Inverse of encodeOutcome(); false when @p payload is malformed. */
bool decodeOutcome(const std::string &payload, RunOutcome *out);

class SweepJournal
{
  public:
    /** Open (and load) the journal at @p path, creating it if absent. */
    explicit SweepJournal(const std::string &path);

    /** Completed outcome for @p key, if one was journalled. */
    bool lookup(const std::string &key, RunOutcome *out) const;

    /** Journal @p out as the completed result for @p key (thread-safe;
     * flushed per record so a kill loses at most the torn last line). */
    void record(const std::string &key, const RunOutcome &out);

    /** Number of completed points loaded or recorded. */
    std::size_t size() const { return done_.size(); }

  private:
    std::string path_;
    bool unterminated_ = false;
    mutable std::mutex mu_;
    std::map<std::string, RunOutcome> done_;
};

} // namespace dacsim

#endif // DACSIM_HARNESS_JOURNAL_H
