/**
 * @file
 * Resumable-run journals (DESIGN.md §9, §12.3).
 *
 * A journal records one CRC-protected text line per completed unit of
 * work, keyed by the unit's identity, so a killed run restarts from
 * the journal: already-recorded units are served from disk
 * (byte-identical to the original outcome — encodings are exact for
 * every field reporting consumes) and only the missing units re-run.
 *
 * The format is append-only and self-verifying: a line whose CRC does
 * not match (e.g. a torn final line from a kill mid-write) is ignored,
 * as is anything else unparsable; later records for the same key win.
 *
 * LineJournal is the generic layer (key → payload string); the sweep
 * layer (SweepJournal, payload = encoded RunOutcome) and the fuzzing
 * campaign engine (payload = encoded OracleVerdict) both build on it.
 */

#ifndef DACSIM_HARNESS_JOURNAL_H
#define DACSIM_HARNESS_JOURNAL_H

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "harness/runner.h"

namespace dacsim
{

/** Percent-encode so a journal field never contains a space, '%', or
 * newline (the line format's separators). */
std::string journalEscape(const std::string &s);

/** Inverse of journalEscape(). */
std::string journalUnescape(const std::string &s);

/**
 * Generic CRC-journalled key→payload map backed by one append-only
 * file. @p tag versions the line format ("J1" for sweeps, "F1" for
 * fuzz campaigns, "Q1" for the service queue); lines with a different
 * tag are ignored, so a journal file is self-describing.
 *
 * Truncation recovery: a kill mid-write leaves at most one torn final
 * line (partial bytes, failing its CRC). Opening the journal drops
 * exactly that tail — every fully written record before it is kept —
 * and truncates the file back to the last complete line, so the torn
 * bytes never survive into later readers. When the file cannot be
 * truncated (read-only journal), the next record() starts on a fresh
 * line instead, which is equivalent for every reader.
 */
class LineJournal
{
  public:
    /** Open (and load) the journal at @p path, creating it if absent. */
    LineJournal(const std::string &path, const std::string &tag);

    /** Completed payload for @p key, if one was journalled. */
    bool lookup(const std::string &key, std::string *payload) const;

    /** Journal @p payload as the completed result for @p key
     * (thread-safe; flushed per record so a kill loses at most the
     * torn last line). @p payload must not contain newlines. */
    void record(const std::string &key, const std::string &payload);

    /** Number of completed keys loaded or recorded. */
    std::size_t size() const;

    /** Visit every (key, payload) pair, in key order, under the lock.
     * The service's durable queue enumerates its backlog with this. */
    void forEach(const std::function<void(const std::string &key,
                                          const std::string &payload)> &fn)
        const;

  private:
    std::string path_;
    std::string tag_;
    bool unterminated_ = false;
    mutable std::mutex mu_;
    std::map<std::string, std::string> done_;
};

/** Encode a run outcome as a single journal payload line (no \n). The
 * hash chain itself is not journalled — only its head survives (in
 * lastStateHash); sweeps compare chains via golden fixtures instead. */
std::string encodeOutcome(const RunOutcome &out);

/** Inverse of encodeOutcome(); false when @p payload is malformed. */
bool decodeOutcome(const std::string &payload, RunOutcome *out);

class SweepJournal
{
  public:
    /** Open (and load) the journal at @p path, creating it if absent. */
    explicit SweepJournal(const std::string &path);

    /** Completed outcome for @p key, if one was journalled. */
    bool lookup(const std::string &key, RunOutcome *out) const;

    /** Journal @p out as the completed result for @p key (thread-safe;
     * flushed per record so a kill loses at most the torn last line). */
    void record(const std::string &key, const RunOutcome &out);

    /** Number of completed points loaded or recorded. */
    std::size_t size() const { return lines_.size(); }

  private:
    LineJournal lines_;
};

} // namespace dacsim

#endif // DACSIM_HARNESS_JOURNAL_H
