#include "harness/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "workloads/workload.h"

namespace dacsim
{

namespace
{
/** The --jobs CLI override (0: none); beats DACSIM_JOBS. */
int jobsOverride = 0;
} // namespace

void
setSweepJobsOverride(int n)
{
    jobsOverride = n > 0 ? n : 0;
}

int
sweepJobs()
{
    if (jobsOverride > 0)
        return jobsOverride;
    if (env().jobs > 0)
        return env().jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            int jobs)
{
    if (n == 0)
        return;
    if (jobs <= 0)
        jobs = sweepJobs();
    // Materialize the workload registry before any worker can race to
    // build it lazily (it is the only lazily-initialized process-wide
    // structure the runner touches).
    allWorkloads();

    if (jobs == 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex errLock;
    std::exception_ptr firstError;
    std::size_t firstErrorIndex = n;

    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(errLock);
                if (i < firstErrorIndex) {
                    firstErrorIndex = i;
                    firstError = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    std::size_t count = std::min(static_cast<std::size_t>(jobs), n);
    pool.reserve(count);
    for (std::size_t t = 0; t < count; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace dacsim
