#include "harness/journal.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/snapshot.h"

namespace dacsim
{

std::string
journalEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == ' ' || c == '%' || c == '\n' || c == '\r' || c < 0x20) {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

std::string
journalUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            out += static_cast<char>(
                std::stoi(s.substr(i + 1, 2), nullptr, 16));
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

// ----- LineJournal --------------------------------------------------------

namespace
{

/** Parse one journal line ("<tag> <crc32-hex> <key> <payload...>");
 * true when it verified against @p wantTag and its CRC. */
bool
parseJournalLine(const std::string &line, const std::string &wantTag,
                 std::string *key, std::string *payload)
{
    std::istringstream is(line);
    std::string tag, crcHex, parsedKey;
    if (!(is >> tag >> crcHex >> parsedKey) || tag != wantTag)
        return false;
    // The key starts after the tag and CRC tokens; searching from that
    // offset keeps a key that happens to repeat bytes of the tag or
    // CRC from being found too early (which would shift the CRC'd body
    // and reject a perfectly good line).
    std::size_t body =
        line.find(parsedKey, tag.size() + 1 + crcHex.size());
    if (body == std::string::npos)
        return false;
    std::uint32_t want = 0;
    try {
        want = static_cast<std::uint32_t>(std::stoul(crcHex, nullptr, 16));
    } catch (const std::exception &) {
        return false;
    }
    std::string rest = line.substr(body);
    if (crc32(rest.data(), rest.size()) != want)
        return false; // torn or corrupt line
    *payload = rest.substr(rest.size() > parsedKey.size()
                               ? parsedKey.size() + 1
                               : parsedKey.size());
    *key = journalUnescape(parsedKey);
    return true;
}

} // namespace

LineJournal::LineJournal(const std::string &path, const std::string &tag)
    : path_(path), tag_(tag)
{
    std::string data;
    {
        std::ifstream in(path_, std::ios::binary);
        if (in.good()) {
            std::ostringstream ss;
            ss << in.rdbuf();
            data = ss.str();
        }
    }
    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const std::string line =
            data.substr(pos, (terminated ? nl : data.size()) - pos);
        std::string key, payload;
        const bool valid = parseJournalLine(line, tag_, &key, &payload);
        if (valid)
            done_[key] = std::move(payload);
        if (terminated) {
            pos = nl + 1;
            continue;
        }
        // The file ends mid-line: a kill tore the final write. If the
        // record is complete up to its missing newline (CRC verifies),
        // keep it and let the next record() supply the terminator.
        // Otherwise drop exactly the torn tail: truncate the file back
        // to the last complete line so the garbage bytes never survive
        // into later readers (fall back to terminate-on-next-record
        // when the file cannot be truncated, e.g. read-only).
        if (valid || ::truncate(path_.c_str(),
                                static_cast<off_t>(pos)) != 0)
            unterminated_ = true;
        break;
    }
}

bool
LineJournal::lookup(const std::string &key, std::string *payload) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = done_.find(key);
    if (it == done_.end())
        return false;
    *payload = it->second;
    return true;
}

void
LineJournal::record(const std::string &key, const std::string &payload)
{
    std::string rest = journalEscape(key) + " " + payload;
    char crcHex[16];
    std::snprintf(crcHex, sizeof crcHex, "%08x",
                  crc32(rest.data(), rest.size()));
    std::lock_guard<std::mutex> lock(mu_);
    std::ofstream os(path_, std::ios::app);
    if (unterminated_) {
        os << '\n'; // terminate a torn tail left by a killed writer
        unterminated_ = false;
    }
    os << tag_ << ' ' << crcHex << ' ' << rest << '\n';
    os.flush();
    done_[key] = payload;
}

std::size_t
LineJournal::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return done_.size();
}

void
LineJournal::forEach(
    const std::function<void(const std::string &, const std::string &)>
        &fn) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[key, payload] : done_)
        fn(key, payload);
}

// ----- RunOutcome encoding (sweep layer) ----------------------------------

std::string
encodeOutcome(const RunOutcome &out)
{
    std::ostringstream os;
    os << "o1";
    visitStats(out.stats, [&](const char *name, const std::uint64_t &v) {
        os << ' ' << name << '=' << v;
    });
    os << " cksums=";
    for (std::size_t i = 0; i < out.checksums.size(); ++i)
        os << (i ? "," : "") << out.checksums[i];
    os << " dec=" << (out.anyDecoupled ? 1 : 0)
       << " dl=" << out.numDecoupledLoads
       << " ds=" << out.numDecoupledStores
       << " dp=" << out.numDecoupledPreds
       << " err=" << static_cast<int>(out.error.kind)
       << " ecyc=" << out.error.cycle
       << " ewhat=" << journalEscape(out.error.what)
       << " fb=" << (out.fellBack ? 1 : 0)
       << " lhash=" << out.lastStateHash
       << " ckid=" << journalEscape(out.checkpointId)
       << " fseed=" << out.faultSeed
       << " res=" << (out.resumed ? 1 : 0);
    return os.str();
}

bool
decodeOutcome(const std::string &payload, RunOutcome *out)
{
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || tag != "o1")
        return false;
    RunOutcome o;
    // Stats fields must appear in visitStats order: collect pointers
    // first, then match the stream's key=value tokens against them.
    std::vector<std::pair<std::string, std::uint64_t *>> statFields;
    visitStats(o.stats, [&](const char *name, std::uint64_t &v) {
        statFields.emplace_back(name, &v);
    });
    std::size_t nextStat = 0;
    std::string tok;
    while (is >> tok) {
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            return false;
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        try {
            if (nextStat < statFields.size() &&
                key == statFields[nextStat].first) {
                *statFields[nextStat].second = std::stoull(val);
                ++nextStat;
            } else if (key == "cksums") {
                std::size_t pos = 0;
                while (pos < val.size()) {
                    std::size_t sep = val.find(',', pos);
                    if (sep == std::string::npos)
                        sep = val.size();
                    o.checksums.push_back(
                        std::stoull(val.substr(pos, sep - pos)));
                    pos = sep + 1;
                }
            } else if (key == "dec") {
                o.anyDecoupled = val == "1";
            } else if (key == "dl") {
                o.numDecoupledLoads = std::stoi(val);
            } else if (key == "ds") {
                o.numDecoupledStores = std::stoi(val);
            } else if (key == "dp") {
                o.numDecoupledPreds = std::stoi(val);
            } else if (key == "err") {
                o.error.kind = static_cast<RunErrorKind>(std::stoi(val));
            } else if (key == "ecyc") {
                o.error.cycle = std::stoull(val);
            } else if (key == "ewhat") {
                o.error.what = journalUnescape(val);
            } else if (key == "fb") {
                o.fellBack = val == "1";
            } else if (key == "lhash") {
                o.lastStateHash = std::stoull(val);
            } else if (key == "ckid") {
                o.checkpointId = journalUnescape(val);
            } else if (key == "fseed") {
                o.faultSeed = std::stoull(val);
            } else if (key == "res") {
                o.resumed = val == "1";
            } else {
                return false; // unknown key: different format version
            }
        } catch (const std::exception &) {
            return false; // non-numeric value where one was required
        }
    }
    if (nextStat != statFields.size())
        return false; // stats incomplete: torn or older-layout line
    *out = std::move(o);
    return true;
}

// ----- SweepJournal -------------------------------------------------------

SweepJournal::SweepJournal(const std::string &path) : lines_(path, "J1") {}

bool
SweepJournal::lookup(const std::string &key, RunOutcome *out) const
{
    std::string payload;
    if (!lines_.lookup(key, &payload))
        return false;
    return decodeOutcome(payload, out);
}

void
SweepJournal::record(const std::string &key, const RunOutcome &out)
{
    lines_.record(key, encodeOutcome(out));
}

} // namespace dacsim
