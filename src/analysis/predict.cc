#include "analysis/predict.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/addr_expr.h"
#include "analysis/dominators.h"
#include "common/log.h"
#include "compiler/affine_types.h"
#include "compiler/cfg.h"
#include "compiler/decoupler.h"
#include "compiler/reaching_defs.h"
#include "dac/engine.h"

namespace dacsim
{

namespace
{

/** Saturation ceiling for bound arithmetic: far above any simulatable
 * cycle count, far below overflow under further addition. */
constexpr unsigned long long kSat = 1ull << 62;

unsigned long long
satAdd(unsigned long long a, unsigned long long b)
{
    unsigned long long s = a + b;
    return (s < a || s > kSat) ? kSat : s;
}

unsigned long long
satMul(unsigned long long a, unsigned long long b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > kSat / b)
        return kSat;
    return a * b;
}

/**
 * Maximum value an AddrExpr can take under one concrete launch:
 * tid.d in [0, block.d-1], ctaid.d in [0, grid.d-1], ntid/nctaid
 * exact, parameters by slot value. False when the expression is
 * unknown, unbounded, or references a missing parameter slot.
 */
bool
evalExprMax(const AddrExpr &e, const PredictLaunch &l, long long *out)
{
    if (!e.known || !e.bounded)
        return false;
    long long maxv = e.hi;
    auto addRange = [&](long long c, long long lo, long long hi) {
        maxv += std::max(c * lo, c * hi);
    };
    const long long blockDim[3] = {l.block.x, l.block.y, l.block.z};
    const long long gridDim[3] = {l.grid.x, l.grid.y, l.grid.z};
    for (int d = 0; d < 3; ++d)
        if (e.tid[d] != 0)
            addRange(e.tid[d], 0, std::max<long long>(0, blockDim[d] - 1));
    for (const auto &[k, c] : e.sym) {
        if (k >= symCtaidNtidBase)
            addRange(c, 0,
                     std::max<long long>(0,
                                         gridDim[k - symCtaidNtidBase] -
                                             1) *
                         blockDim[k - symCtaidNtidBase]);
        else if (k >= symNctaidBase)
            addRange(c, gridDim[k - symNctaidBase],
                     gridDim[k - symNctaidBase]);
        else if (k >= symNtidBase)
            addRange(c, blockDim[k - symNtidBase],
                     blockDim[k - symNtidBase]);
        else if (k >= symCtaidBase)
            addRange(c, 0,
                     std::max<long long>(0, gridDim[k - symCtaidBase] - 1));
        else if (k >= 0 && k < static_cast<int>(l.params.size()))
            addRange(c, l.params[static_cast<std::size_t>(k)],
                     l.params[static_cast<std::size_t>(k)]);
        else
            return false;
    }
    *out = maxv;
    return true;
}

/** Every IR-level analysis the predictor needs, over one stream. */
struct StreamAnalysis
{
    Kernel k; ///< analysed private copy (reconvergence PCs set)
    Cfg cfg;
    ReachingDefs rd;
    AffineAnalysis aa;
    DomTree dom;
    AddrExprAnalysis addr;
    std::vector<LoopInfo> loops;

    StreamAnalysis(const Kernel &orig, int maxConds)
        : k(orig), cfg(analyzeControlFlow(k)), rd(k, cfg),
          aa(k, cfg, rd, maxConds), dom(cfg), addr(k, cfg, rd),
          loops(findLoops(k, cfg, dom, rd, addr))
    {
    }
};

/**
 * Worst-case DRAM lines one warp's access at @p pc can touch. Derived
 * from the symbolic address: the intra-warp byte span is the tid.x
 * stride times the warp's tid.x range, plus the residual interval's
 * spread (lanes may sit anywhere in it). An unbounded residual is
 * warp-uniform exactly when the address value is affine (uniform base
 * plus linear tid terms); otherwise the warp may touch warpSize
 * distinct lines.
 */
int
predictTx(const StreamAnalysis &sa, int pc, const Dim3 &block)
{
    const Instruction &inst = sa.k.insts[static_cast<std::size_t>(pc)];
    const int bytes = memWidthBytes(inst.width);
    AddrExpr e = sa.addr.addrOf(pc);
    if (!e.known)
        return warpSize;
    const bool yzUniform = block.x > 0 && block.x % warpSize == 0;
    if ((e.tid[1] != 0 || e.tid[2] != 0) && !yzUniform)
        return warpSize;
    long long spread = 0;
    if (e.bounded) {
        spread = e.hi - e.lo;
    } else {
        if (sa.aa.srcType(pc, inst.src[0]).isNonAffine())
            return warpSize;
    }
    const long long c = std::llabs(e.tid[0]);
    const long long xRange =
        std::min<long long>(warpSize, std::max(1, block.x)) - 1;
    const long long span = c * xRange + spread + bytes;
    const long long tx = (span + lineSizeBytes - 1) / lineSizeBytes;
    return static_cast<int>(std::min<long long>(tx, warpSize));
}

/** Evaluate every loop's per-entry trip bound for one launch. */
void
evalTrips(const std::vector<LoopInfo> &loops, const PredictLaunch &l,
          std::vector<unsigned long long> *trips, std::vector<bool> *bounded)
{
    trips->clear();
    bounded->clear();
    for (const LoopInfo &li : loops) {
        long long spanHi = 0;
        if (li.patternMatched && evalExprMax(li.span, l, &spanHi)) {
            long long n = spanHi <= 0
                              ? 0
                              : (spanHi + li.step - 1) / li.step;
            n += (li.inclusive ? 1 : 0) + li.extraTrip;
            if (n < 1)
                n = 1; // a bottom-test body runs at least once
            trips->push_back(static_cast<unsigned long long>(n));
            bounded->push_back(true);
        } else {
            trips->push_back(predictTripCap);
            bounded->push_back(false);
        }
    }
}

/**
 * Map a decoupled stream's loops onto the original kernel's trip
 * bounds via the back-edge branch's provenance (control flow is
 * replicated, so both streams iterate exactly as the original does).
 * Falls back to the stream's own induction match, then to the cap.
 */
void
mapStreamTrips(const StreamAnalysis &stream, const std::vector<int> &origPc,
               const StreamAnalysis &orig,
               const std::vector<unsigned long long> &origTrips,
               const std::vector<bool> &origBounded, const PredictLaunch &l,
               std::vector<unsigned long long> *trips,
               std::vector<bool> *bounded)
{
    std::map<int, std::size_t> byBranch;
    for (std::size_t i = 0; i < orig.loops.size(); ++i)
        byBranch[orig.loops[i].branchPc] = i;
    trips->clear();
    bounded->clear();
    for (const LoopInfo &li : stream.loops) {
        int obp = li.branchPc >= 0 &&
                          li.branchPc < static_cast<int>(origPc.size())
                      ? origPc[static_cast<std::size_t>(li.branchPc)]
                      : -1;
        auto it = obp >= 0 ? byBranch.find(obp) : byBranch.end();
        if (it != byBranch.end()) {
            trips->push_back(origTrips[it->second]);
            bounded->push_back(origBounded[it->second]);
            continue;
        }
        long long spanHi = 0;
        if (li.patternMatched && evalExprMax(li.span, l, &spanHi)) {
            long long n = spanHi <= 0
                              ? 0
                              : (spanHi + li.step - 1) / li.step;
            n += (li.inclusive ? 1 : 0) + li.extraTrip;
            if (n < 1)
                n = 1;
            trips->push_back(static_cast<unsigned long long>(n));
            bounded->push_back(true);
        } else {
            trips->push_back(predictTripCap);
            bounded->push_back(false);
        }
    }
}

/** Derived cost constants of one GpuConfig. */
struct CostCtx
{
    int issue;     ///< scheduler occupancy per warp instruction
    int memChain;  ///< queue-free global round trip (L1+NoC+L2+DRAM)
    int perLine;   ///< per-DRAM-line occupancy charge (with slack)
    int expansion; ///< DAC expansion-unit charge per delivered record

    CostCtx(const GpuConfig &gpu, const DacConfig &dac)
        : issue(gpu.sched.warpIssueCycles),
          memChain(gpu.l1.hitLatency + 2 * gpu.nocLatency +
                   gpu.l2.hitLatency + gpu.dram.latency),
          perLine(gpu.dram.cyclesPerLine + 8),
          expansion(dacExpansionCyclesPerRecord(dac))
    {
    }
};

/** Per-execution-unit totals of one stream for one launch. */
struct StreamTotals
{
    unsigned long long bound = 0; ///< serialized cost (saturating)
    unsigned long long linesBound = 0; ///< DRAM lines (bound)
    double issue = 0;  ///< scheduler-occupancy cycles (estimate)
    double lat = 0;    ///< serial dependence-chain cycles (estimate)
    double lines = 0;  ///< DRAM lines (estimate)
    double deqs = 0;   ///< DAC records consumed (LdDeq/StDeq/DeqPred)
};

/**
 * Walk one stream, weighting every instruction by its loop-trip
 * multiplier, and accumulate the sound per-warp serialized cost plus
 * the roofline estimate terms. @p origSa/@p origPc (non-null for the
 * decoupled non-affine stream) recover a StDeq's address expression
 * from its original store.
 */
StreamTotals
walkStream(const StreamAnalysis &sa,
           const std::vector<unsigned long long> &trips,
           const PredictLaunch &l, const GpuConfig &gpu, const CostCtx &cc,
           const StreamAnalysis *origSa, const std::vector<int> *origPc)
{
    const int nb = sa.cfg.numBlocks();
    std::vector<unsigned long long> mult(static_cast<std::size_t>(nb), 1);
    for (int b = 0; b < nb; ++b)
        if (!sa.dom.reachable(b))
            mult[static_cast<std::size_t>(b)] = 0;
    for (std::size_t i = 0; i < sa.loops.size(); ++i)
        for (int b : sa.loops[i].blocks)
            mult[static_cast<std::size_t>(b)] =
                satMul(mult[static_cast<std::size_t>(b)], trips[i]);

    StreamTotals t;
    for (int pc = 0; pc < sa.k.numInsts(); ++pc) {
        const unsigned long long m =
            mult[static_cast<std::size_t>(sa.cfg.blockOf(pc))];
        if (m == 0)
            continue;
        const Instruction &inst = sa.k.insts[static_cast<std::size_t>(pc)];
        unsigned long long cost = static_cast<unsigned long long>(cc.issue);
        int estLat = gpu.aluLatency;
        int tx = 0;
        switch (inst.op) {
          case Opcode::Ld:
          case Opcode::St:
            if (inst.space == MemSpace::Global) {
                tx = predictTx(sa, pc, l.block);
                cost += static_cast<unsigned long long>(cc.memChain) +
                        static_cast<unsigned long long>(tx) * cc.perLine;
                estLat = inst.op == Opcode::Ld ? cc.memChain
                                               : gpu.aluLatency;
            } else {
                cost += static_cast<unsigned long long>(gpu.sharedLatency);
                estLat = gpu.sharedLatency;
            }
            break;
          case Opcode::Bar:
            cost += static_cast<unsigned long long>(gpu.sharedLatency);
            estLat = gpu.sharedLatency;
            break;
          case Opcode::EnqData:
            tx = predictTx(sa, pc, l.block);
            cost += static_cast<unsigned long long>(gpu.aluLatency) +
                    static_cast<unsigned long long>(cc.memChain) +
                    static_cast<unsigned long long>(tx) * cc.perLine;
            estLat = cc.memChain;
            break;
          case Opcode::EnqAddr:
          case Opcode::EnqPred:
            cost += static_cast<unsigned long long>(gpu.aluLatency);
            break;
          case Opcode::LdDeq:
            cost += static_cast<unsigned long long>(cc.memChain) +
                    static_cast<unsigned long long>(cc.expansion);
            break;
          case Opcode::StDeq: {
            if (origSa != nullptr && origPc != nullptr && pc >= 0 &&
                pc < static_cast<int>(origPc->size())) {
                int opc = (*origPc)[static_cast<std::size_t>(pc)];
                if (opc >= 0)
                    tx = predictTx(*origSa, opc, l.block);
            }
            if (tx == 0)
                tx = warpSize;
            cost += static_cast<unsigned long long>(cc.memChain) +
                    static_cast<unsigned long long>(cc.expansion) +
                    static_cast<unsigned long long>(tx) * cc.perLine;
            break;
          }
          case Opcode::DeqPred:
            cost += static_cast<unsigned long long>(gpu.aluLatency) +
                    static_cast<unsigned long long>(cc.expansion);
            break;
          default:
            cost += static_cast<unsigned long long>(gpu.aluLatency);
            break;
        }
        t.bound = satAdd(t.bound, satMul(m, cost));
        t.linesBound = satAdd(t.linesBound,
                              satMul(m, static_cast<unsigned long long>(tx)));
        const double md = static_cast<double>(m);
        t.issue += md * cc.issue;
        t.lat += md * (cc.issue + estLat);
        t.lines += md * tx;
        if (inst.op == Opcode::LdDeq || inst.op == Opcode::StDeq ||
            inst.op == Opcode::DeqPred)
            t.deqs += md;
    }
    return t;
}

/** Launch geometry derived from grid/block and the GPU shape. */
struct Geom
{
    unsigned long long ctas = 0;
    int wpc = 0; ///< warps per CTA
    unsigned long long warps = 0;
    int residentCtas = 1;
    int activeSms = 1;
    unsigned long long waves = 1;
};

Geom
geomOf(const PredictLaunch &l, const GpuConfig &gpu)
{
    Geom g;
    g.ctas = static_cast<unsigned long long>(
        std::max<long long>(1, l.grid.count()));
    g.wpc = std::max(1, warpsPerCta(l.block));
    g.warps = g.ctas * static_cast<unsigned long long>(g.wpc);
    const int byWarps = std::max(1, gpu.maxWarpsPerSm / g.wpc);
    g.residentCtas = std::max(1, std::min(gpu.maxCtasPerSm, byWarps));
    g.activeSms = static_cast<int>(std::min<unsigned long long>(
        static_cast<unsigned long long>(std::max(1, gpu.numSms)), g.ctas));
    const unsigned long long perWave =
        static_cast<unsigned long long>(std::max(1, gpu.numSms)) *
        static_cast<unsigned long long>(g.residentCtas);
    g.waves = (g.ctas + perWave - 1) / perWave;
    return g;
}

/** The roofline estimate's terms for one launch. */
struct EstTerms
{
    double issue = 0; ///< scheduler-occupancy throughput floor
    double dram = 0;  ///< DRAM line-transfer throughput floor
    double lat = 0;   ///< per-warp dependence-chain latency
    double exp = 0;   ///< DAC expansion-unit throughput floor
};

EstTerms
rooflineTerms(const Geom &g, const GpuConfig &gpu, const DacConfig &dac,
              const StreamTotals &perWarp, const StreamTotals *affPerCta)
{
    const double warps = static_cast<double>(g.warps);
    const double ctas = static_cast<double>(g.ctas);
    double issueTotal = perWarp.issue * warps;
    double linesTotal = perWarp.lines * warps;
    if (affPerCta != nullptr) {
        issueTotal += affPerCta->issue * ctas;
        linesTotal += affPerCta->lines * ctas;
    }
    EstTerms t;
    t.issue = issueTotal / (std::max(1, gpu.sched.schedulersPerSm) *
                            std::max(1, g.activeSms));
    t.dram = linesTotal * gpu.dram.cyclesPerLine /
             std::max(1, gpu.dram.partitions);
    // A warp cannot finish faster than its own dependence chain, and
    // CTA waves run back-to-back.
    t.lat = static_cast<double>(g.waves) * perWarp.lat;
    if (affPerCta != nullptr) {
        // Expansion units deliver expansionsPerCycle records per SM
        // cycle; every non-affine dequeue consumes one record. The
        // affine warp is one warp serving every resident CTA in turn,
        // so its chain scales with CTAs per SM.
        t.exp = perWarp.deqs * warps /
                (std::max(1, dac.expansionsPerCycle) *
                 std::max(1, g.activeSms));
        t.lat = std::max(t.lat, affPerCta->lat * ctas /
                                    std::max(1, g.activeSms));
    }
    return t;
}

/** Combine the terms into the tracked cycle estimate. Calibrated
 * against the fig16 sweep (see BENCH_predict.json, which exports the
 * individual terms): the issue term ranks simulated cycles best — the
 * in-order SMs sustain roughly a third of peak issue once latency
 * stalls and replays are charged — with a small dependence-chain tail
 * covering occupancy-starved launches. The dram and exp terms rank
 * poorly as predictors on this suite and stay diagnostic-only. */
unsigned long long
combineEstimate(const EstTerms &t, const CostCtx &cc)
{
    const double est = 3.0 * t.issue + 0.05 * t.lat + cc.memChain + 64.0;
    return static_cast<unsigned long long>(
        std::min(est, static_cast<double>(kSat)));
}

// ---------------------------------------------------------------------------
// Independent re-derivation of the decoupling decision (coverage
// prediction). Mirrors compiler/decoupler.cc phase by phase, but runs
// purely on the analysis framework — the decoupler's actual split
// (dac/engine.h, dacActualSplit) is the reference it is validated
// against, not an input.
// ---------------------------------------------------------------------------

enum class CKind
{
    No,
    Load,
    Store,
    Pred,
};

struct Coverage
{
    bool anyDecoupled = false;
    std::vector<bool> covered;
    int count = 0;
};

class CoverageDeriver
{
  public:
    CoverageDeriver(const StreamAnalysis &sa, const DacConfig &dcfg)
        : sa_(sa), dcfg_(dcfg)
    {
    }

    Coverage run();

  private:
    const StreamAnalysis &sa_;
    const DacConfig &dcfg_;
    std::vector<bool> resident_;
    std::vector<bool> keepBranch_;
    std::vector<CKind> cand_;
    std::vector<bool> slice_;

    int maxConds() const { return dcfg_.maxDivergentConditions; }

    bool exitsDecoupleable() const;
    void refineResidency();
    void findCandidates();
    std::optional<std::vector<int>> backwardSlice(
        int pc, const std::vector<Operand> &seeds) const;
    std::vector<Operand> seedsOf(int pc, CKind kind) const;
};

bool
CoverageDeriver::exitsDecoupleable() const
{
    for (int pc = 0; pc < sa_.k.numInsts(); ++pc) {
        const Instruction &inst = sa_.k.insts[static_cast<std::size_t>(pc)];
        if (!inst.isExit())
            continue;
        if (!sa_.aa.blockAffineResident(sa_.cfg.blockOf(pc)))
            return false;
        if (inst.guardPred >= 0 &&
            !sa_.aa.guardType(pc).affineOk(maxConds()))
            return false;
    }
    return true;
}

std::vector<Operand>
CoverageDeriver::seedsOf(int pc, CKind kind) const
{
    const Instruction &inst = sa_.k.insts[static_cast<std::size_t>(pc)];
    std::vector<Operand> seeds;
    switch (kind) {
      case CKind::Load:
      case CKind::Store:
        seeds.push_back(inst.src[0]); // the address
        break;
      case CKind::Pred:
        seeds.push_back(inst.src[0]);
        seeds.push_back(inst.src[1]);
        break;
      case CKind::No:
        break;
    }
    if (inst.guardPred >= 0)
        seeds.push_back(Operand::pred(inst.guardPred));
    return seeds;
}

std::optional<std::vector<int>>
CoverageDeriver::backwardSlice(int pc,
                               const std::vector<Operand> &seeds) const
{
    std::set<int> inSlice;
    std::vector<std::pair<int, Operand>> work;
    for (const Operand &s : seeds)
        work.emplace_back(pc, s);

    while (!work.empty()) {
        auto [usePc, op] = work.back();
        work.pop_back();
        std::vector<int> defs;
        if (op.isReg())
            defs = sa_.rd.reachingRegDefs(usePc, op.index);
        else if (op.isPred())
            defs = sa_.rd.reachingPredDefs(usePc, op.index);
        else
            continue;
        for (int d : defs) {
            if (sa_.rd.isEntryDef(d))
                continue;
            if (inSlice.count(d))
                continue;
            const Instruction &di =
                sa_.k.insts[static_cast<std::size_t>(d)];
            // The slice must be computable by the affine warp.
            if (di.isLoad() || di.op == Opcode::DeqPred)
                return std::nullopt;
            if (sa_.aa.defType(d).isNonAffine())
                return std::nullopt;
            if (!resident_[static_cast<std::size_t>(sa_.cfg.blockOf(d))])
                return std::nullopt;
            if (!affineEligibleAlu(di.op) && di.op != Opcode::Setp &&
                !(di.op == Opcode::And || di.op == Opcode::Or ||
                  di.op == Opcode::Xor || di.op == Opcode::Not ||
                  di.op == Opcode::Shr)) {
                return std::nullopt;
            }
            inSlice.insert(d);
            for (int i = 0; i < numSources(di.op); ++i)
                work.emplace_back(d, di.src[static_cast<std::size_t>(i)]);
            if (di.guardPred >= 0)
                work.emplace_back(d, Operand::pred(di.guardPred));
        }
    }
    return std::vector<int>(inSlice.begin(), inSlice.end());
}

void
CoverageDeriver::refineResidency()
{
    const int nb = sa_.cfg.numBlocks();
    resident_.assign(static_cast<std::size_t>(nb), true);
    for (int b = 0; b < nb; ++b)
        resident_[static_cast<std::size_t>(b)] =
            sa_.aa.blockAffineResident(b);
    keepBranch_.assign(static_cast<std::size_t>(sa_.k.numInsts()), false);

    bool changed = true;
    while (changed) {
        changed = false;
        for (int pc = 0; pc < sa_.k.numInsts(); ++pc) {
            const Instruction &inst =
                sa_.k.insts[static_cast<std::size_t>(pc)];
            if (!inst.isBranch())
                continue;
            bool keep =
                resident_[static_cast<std::size_t>(sa_.cfg.blockOf(pc))];
            if (keep && inst.guardPred >= 0) {
                if (!sa_.aa.guardType(pc).affineOk(maxConds()))
                    keep = false;
                else
                    keep = backwardSlice(
                               pc, {Operand::pred(inst.guardPred)})
                               .has_value();
            }
            keepBranch_[static_cast<std::size_t>(pc)] = keep;
        }
        for (int b = 0; b < nb; ++b) {
            if (!resident_[static_cast<std::size_t>(b)])
                continue;
            for (int br : sa_.cfg.controlDeps(b)) {
                int term =
                    sa_.cfg.blocks()[static_cast<std::size_t>(br)].last;
                if (!keepBranch_[static_cast<std::size_t>(term)]) {
                    resident_[static_cast<std::size_t>(b)] = false;
                    changed = true;
                    break;
                }
            }
        }
    }
}

void
CoverageDeriver::findCandidates()
{
    const int n = sa_.k.numInsts();
    cand_.assign(static_cast<std::size_t>(n), CKind::No);
    slice_.assign(static_cast<std::size_t>(n), false);

    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = sa_.k.insts[static_cast<std::size_t>(pc)];
        if (!resident_[static_cast<std::size_t>(sa_.cfg.blockOf(pc))])
            continue;
        if (inst.guardPred >= 0 &&
            !sa_.aa.guardType(pc).affineOk(maxConds()))
            continue;

        CKind kind = CKind::No;
        if (inst.op == Opcode::Ld && inst.space == MemSpace::Global &&
            sa_.aa.srcType(pc, inst.src[0]).affineOk(maxConds())) {
            kind = CKind::Load;
        } else if (inst.op == Opcode::St &&
                   inst.space == MemSpace::Global &&
                   sa_.aa.srcType(pc, inst.src[0]).affineOk(maxConds())) {
            kind = CKind::Store;
        } else if (inst.op == Opcode::Setp &&
                   sa_.aa.defType(pc).affineOk(maxConds())) {
            kind = CKind::Pred;
        }
        if (kind == CKind::No)
            continue;

        auto slice = backwardSlice(pc, seedsOf(pc, kind));
        if (!slice)
            continue;
        cand_[static_cast<std::size_t>(pc)] = kind;
        for (int d : *slice)
            slice_[static_cast<std::size_t>(d)] = true;
    }

    for (int pc = 0; pc < n; ++pc) {
        if (!keepBranch_[static_cast<std::size_t>(pc)] ||
            sa_.k.insts[static_cast<std::size_t>(pc)].guardPred < 0)
            continue;
        auto slice = backwardSlice(
            pc,
            {Operand::pred(
                sa_.k.insts[static_cast<std::size_t>(pc)].guardPred)});
        ensure(slice.has_value(),
               "predict: keepable branch with infeasible slice");
        for (int d : *slice)
            slice_[static_cast<std::size_t>(d)] = true;
    }
}

Coverage
CoverageDeriver::run()
{
    const int n = sa_.k.numInsts();
    Coverage out;
    out.covered.assign(static_cast<std::size_t>(n), false);

    bool feasible = exitsDecoupleable();
    if (feasible) {
        refineResidency();
        findCandidates();
        feasible = std::any_of(cand_.begin(), cand_.end(),
                               [](CKind k) { return k != CKind::No; });
    }
    if (!feasible)
        return out;
    out.anyDecoupled = true;

    // Dead-code elimination over the non-affine projection: which
    // instructions still execute on the non-affine warps once the
    // decoupled ones become enq/deq pairs? Replacements drop their
    // sources exactly as the decoupler's rewrite does (LdDeq: none,
    // StDeq: the value, DeqPred: none); guards are preserved.
    std::vector<bool> needed(static_cast<std::size_t>(n), false);
    std::vector<int> work;
    auto markNeeded = [&](int pc) {
        if (!needed[static_cast<std::size_t>(pc)]) {
            needed[static_cast<std::size_t>(pc)] = true;
            work.push_back(pc);
        }
    };
    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = sa_.k.insts[static_cast<std::size_t>(pc)];
        const CKind ck = cand_[static_cast<std::size_t>(pc)];
        const bool memory = ck == CKind::Load || ck == CKind::Store ||
                            (ck == CKind::No && inst.isMemory());
        if (memory || inst.isBranch() || inst.isBarrier() || inst.isExit())
            markNeeded(pc);
    }
    while (!work.empty()) {
        int pc = work.back();
        work.pop_back();
        const Instruction &inst = sa_.k.insts[static_cast<std::size_t>(pc)];
        const CKind ck = cand_[static_cast<std::size_t>(pc)];
        auto markUse = [&](const Operand &op) {
            std::vector<int> defs;
            if (op.isReg())
                defs = sa_.rd.reachingRegDefs(pc, op.index);
            else if (op.isPred())
                defs = sa_.rd.reachingPredDefs(pc, op.index);
            for (int d : defs)
                if (!sa_.rd.isEntryDef(d))
                    markNeeded(d);
        };
        switch (ck) {
          case CKind::Load:
          case CKind::Pred:
            break; // replacement consumes only the queue
          case CKind::Store:
            markUse(inst.src[1]); // the stored value
            break;
          case CKind::No:
            for (int i = 0; i < numSources(inst.op); ++i)
                markUse(inst.src[static_cast<std::size_t>(i)]);
            break;
        }
        if (inst.guardPred >= 0)
            markUse(Operand::pred(inst.guardPred));
    }

    for (int pc = 0; pc < n; ++pc) {
        auto i = static_cast<std::size_t>(pc);
        out.covered[i] =
            cand_[i] != CKind::No || (slice_[i] && !needed[i]);
        if (out.covered[i])
            ++out.count;
    }
    return out;
}

std::string
fmtDouble(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

} // namespace

PredictReport
predictKernel(const Kernel &kernel,
              const std::vector<PredictLaunch> &launches,
              const GpuConfig &gpu, const DacConfig &dac)
{
    ensure(!launches.empty(), "predictKernel: no launches");
    const int maxConds = dac.maxDivergentConditions;

    PredictReport rep;
    rep.kernel = kernel.name;
    rep.numLaunches = static_cast<int>(launches.size());

    StreamAnalysis orig(kernel, maxConds);
    rep.numInsts = orig.k.numInsts();

    // Predicted coverage: independent re-derivation of the decoupling.
    Coverage cov = CoverageDeriver(orig, dac).run();
    rep.predictedCoveredInsts = cov.count;
    rep.predictedCoverage =
        rep.numInsts ? static_cast<double>(cov.count) / rep.numInsts : 0.0;
    rep.predictedAnyDecoupled = cov.anyDecoupled;

    // The DAC cost model walks the streams the simulator will execute.
    DecoupledKernel dec = decouple(kernel, dac);
    StreamAnalysis na(dec.nonAffine, maxConds);
    StreamAnalysis aff(dec.affine, maxConds);

    const CostCtx cc(gpu, dac);
    // Per-launch startup/drain slack (pipeline fill, first-miss chain,
    // audit-boundary rounding).
    const unsigned long long c0 =
        8192 + 2 * static_cast<unsigned long long>(cc.memChain);

    std::vector<bool> loopBoundedAll(orig.loops.size(), true);
    std::vector<unsigned long long> loopMaxTrips(orig.loops.size(), 0);

    for (const PredictLaunch &l : launches) {
        const Geom g = geomOf(l, gpu);
        rep.totalCtas += g.ctas;
        rep.totalWarps += g.warps;

        std::vector<unsigned long long> trips;
        std::vector<bool> bounded;
        evalTrips(orig.loops, l, &trips, &bounded);
        bool launchCapped = false;
        for (std::size_t i = 0; i < trips.size(); ++i) {
            if (!bounded[i]) {
                loopBoundedAll[i] = false;
                launchCapped = true;
            }
            loopMaxTrips[i] = std::max(loopMaxTrips[i], trips[i]);
        }

        // Baseline.
        StreamTotals tb =
            walkStream(orig, trips, l, gpu, cc, nullptr, nullptr);
        rep.base.boundCycles = satAdd(
            rep.base.boundCycles, satAdd(c0, satMul(tb.bound, g.warps)));
        rep.base.capped = rep.base.capped || launchCapped;
        const EstTerms baseTerms = rooflineTerms(g, gpu, dac, tb, nullptr);
        rep.base.issueTerm += baseTerms.issue;
        rep.base.dramTerm += baseTerms.dram;
        rep.base.latTerm += baseTerms.lat;
        rep.base.expTerm += baseTerms.exp;
        rep.base.estimateCycles = satAdd(rep.base.estimateCycles,
                                         combineEstimate(baseTerms, cc));
        rep.dramLineBound =
            satAdd(rep.dramLineBound, satMul(tb.linesBound, g.warps));

        // DAC: non-affine stream on every warp, affine stream once per
        // CTA (the SM's affine warp walks it for each resident CTA).
        std::vector<unsigned long long> naTrips, affTrips;
        std::vector<bool> naBounded, affBounded;
        mapStreamTrips(na, dec.nonAffineOrigPc, orig, trips, bounded, l,
                       &naTrips, &naBounded);
        mapStreamTrips(aff, dec.affineOrigPc, orig, trips, bounded, l,
                       &affTrips, &affBounded);
        bool dacCapped = launchCapped;
        for (bool b : naBounded)
            dacCapped = dacCapped || !b;
        for (bool b : affBounded)
            dacCapped = dacCapped || !b;
        StreamTotals tn =
            walkStream(na, naTrips, l, gpu, cc, &orig, &dec.nonAffineOrigPc);
        StreamTotals ta =
            walkStream(aff, affTrips, l, gpu, cc, nullptr, nullptr);
        unsigned long long dacBound =
            satAdd(satMul(tn.bound, g.warps), satMul(ta.bound, g.ctas));
        rep.dac.boundCycles =
            satAdd(rep.dac.boundCycles, satAdd(c0, dacBound));
        rep.dac.capped = rep.dac.capped || dacCapped;
        const EstTerms dacTerms = rooflineTerms(g, gpu, dac, tn, &ta);
        rep.dac.issueTerm += dacTerms.issue;
        rep.dac.dramTerm += dacTerms.dram;
        rep.dac.latTerm += dacTerms.lat;
        rep.dac.expTerm += dacTerms.exp;
        rep.dac.estimateCycles = satAdd(rep.dac.estimateCycles,
                                        combineEstimate(dacTerms, cc));
    }

    for (std::size_t i = 0; i < orig.loops.size(); ++i) {
        LoopPredict lp;
        lp.header = orig.loops[i].header;
        lp.branchPc = orig.loops[i].branchPc;
        lp.inductionReg = orig.loops[i].inductionReg;
        lp.bounded = loopBoundedAll[i];
        lp.maxTrips = loopBoundedAll[i] ? loopMaxTrips[i] : 0;
        rep.loops.push_back(lp);
    }
    for (int pc = 0; pc < orig.k.numInsts(); ++pc) {
        const Instruction &inst = orig.k.insts[static_cast<std::size_t>(pc)];
        if (!(inst.op == Opcode::Ld || inst.op == Opcode::St) ||
            inst.space != MemSpace::Global)
            continue;
        AccessPredict ap;
        ap.pc = pc;
        ap.isStore = inst.op == Opcode::St;
        for (const PredictLaunch &l : launches)
            ap.txPerWarp =
                std::max(ap.txPerWarp, predictTx(orig, pc, l.block));
        rep.accesses.push_back(ap);
    }
    return rep;
}

std::string
PredictReport::renderText() const
{
    std::ostringstream os;
    os << "predict report for " << kernel << "\n";
    os << "  insts " << numInsts << "  launches " << numLaunches
       << "  ctas " << totalCtas << "  warps " << totalWarps << "\n";
    os << "  loops:";
    if (loops.empty())
        os << " none";
    os << "\n";
    for (const LoopPredict &lp : loops) {
        os << "    block " << lp.header << " branch_pc " << lp.branchPc;
        if (lp.inductionReg >= 0)
            os << " induction r" << lp.inductionReg;
        if (lp.bounded)
            os << " trips <= " << lp.maxTrips;
        else
            os << " trips unbounded (capped)";
        os << "\n";
    }
    os << "  global accesses:";
    if (accesses.empty())
        os << " none";
    os << "\n";
    for (const AccessPredict &ap : accesses) {
        os << "    pc " << ap.pc << " " << (ap.isStore ? "st" : "ld")
           << " tx/warp " << ap.txPerWarp << "\n";
    }
    os << "  baseline bound " << base.boundCycles << " cycles (capped "
       << (base.capped ? "yes" : "no") << "), estimate "
       << base.estimateCycles << " cycles\n";
    os << "  dac      bound " << dac.boundCycles << " cycles (capped "
       << (dac.capped ? "yes" : "no") << "), estimate "
       << dac.estimateCycles << " cycles\n";
    os << "  predicted coverage " << predictedCoveredInsts << "/"
       << numInsts << " insts ("
       << fmtDouble(predictedCoverage * 100.0, 2) << "%), decoupled "
       << (predictedAnyDecoupled ? "yes" : "no") << "\n";
    os << "  dram line bound " << dramLineBound << "\n";
    return os.str();
}

std::string
PredictReport::renderJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"kernel\": \"" << kernel << "\",\n";
    os << "  \"num_insts\": " << numInsts << ",\n";
    os << "  \"launches\": " << numLaunches << ",\n";
    os << "  \"total_ctas\": " << totalCtas << ",\n";
    os << "  \"total_warps\": " << totalWarps << ",\n";
    os << "  \"baseline\": {\"bound_cycles\": " << base.boundCycles
       << ", \"capped\": " << (base.capped ? 1 : 0)
       << ", \"estimate_cycles\": " << base.estimateCycles << "},\n";
    os << "  \"dac\": {\"bound_cycles\": " << dac.boundCycles
       << ", \"capped\": " << (dac.capped ? 1 : 0)
       << ", \"estimate_cycles\": " << dac.estimateCycles << "},\n";
    os << "  \"predicted_covered_insts\": " << predictedCoveredInsts
       << ",\n";
    os << "  \"predicted_coverage\": "
       << fmtDouble(predictedCoverage, 6) << ",\n";
    os << "  \"predicted_any_decoupled\": "
       << (predictedAnyDecoupled ? 1 : 0) << ",\n";
    os << "  \"dram_line_bound\": " << dramLineBound << ",\n";
    os << "  \"loops\": [";
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const LoopPredict &lp = loops[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"header\": " << lp.header
           << ", \"branch_pc\": " << lp.branchPc
           << ", \"induction_reg\": " << lp.inductionReg
           << ", \"bounded\": " << (lp.bounded ? 1 : 0)
           << ", \"max_trips\": " << lp.maxTrips << "}";
    }
    os << (loops.empty() ? "" : "\n  ") << "],\n";
    os << "  \"accesses\": [";
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        const AccessPredict &ap = accesses[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"pc\": " << ap.pc << ", \"store\": "
           << (ap.isStore ? 1 : 0)
           << ", \"tx_per_warp\": " << ap.txPerWarp << "}";
    }
    os << (accesses.empty() ? "" : "\n  ") << "],\n";
    os << "  \"trip_cap\": " << predictTripCap << "\n";
    os << "}";
    return os.str();
}

} // namespace dacsim
