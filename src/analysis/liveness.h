/**
 * @file
 * Backward liveness of general and predicate registers over a kernel
 * (DESIGN.md §10). Used by the dead-store checker: a pure ALU result
 * whose destination is not live out of its instruction can never be
 * observed.
 *
 * Guarded definitions are treated as non-killing (the incumbent value
 * survives for threads failing the guard), matching the reaching-defs
 * lattice in src/compiler.
 */

#ifndef DACSIM_ANALYSIS_LIVENESS_H
#define DACSIM_ANALYSIS_LIVENESS_H

#include <cstdint>
#include <vector>

#include "compiler/cfg.h"
#include "isa/instruction.h"

namespace dacsim
{

class Liveness
{
  public:
    Liveness(const Kernel &kernel, const Cfg &cfg);

    /** Is register @p reg live just after instruction @p pc? */
    bool liveOutReg(int pc, int reg) const;
    /** Is predicate @p pred live just after instruction @p pc? */
    bool liveOutPred(int pc, int pred) const;

  private:
    int numRegs_;
    int words_;
    /** Live-out bitset per instruction: regs then predicates. */
    std::vector<std::vector<std::uint64_t>> liveOut_;

    bool bit(int pc, int idx) const;
};

} // namespace dacsim

#endif // DACSIM_ANALYSIS_LIVENESS_H
