#include "analysis/checkers.h"

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/soundness.h"
#include "compiler/decoupler.h"

namespace dacsim
{

namespace
{

std::string
regName(bool is_pred, int index)
{
    return (is_pred ? "p" : "r") + std::to_string(index);
}

/** Iterate the PCs of every block reachable from the entry. */
template <typename Fn>
void
forEachReachablePc(const AnalysisContext &ctx, Fn fn)
{
    const auto &blocks = ctx.cfg().blocks();
    for (int b : ctx.cfg().rpo()) {
        const BasicBlock &bb = blocks[static_cast<std::size_t>(b)];
        for (int pc = bb.first; pc <= bb.last; ++pc)
            fn(pc, b);
    }
}

// ---------------------------------------------------------------------------
// DAC-W001: possibly-uninitialized register read.
// ---------------------------------------------------------------------------

class UninitChecker final : public Checker
{
  public:
    const char *name() const override { return "uninit"; }

    void
    run(const AnalysisContext &ctx, DiagnosticEngine &eng) const override
    {
        const Kernel &k = ctx.kernel();
        forEachReachablePc(ctx, [&](int pc, int b) {
            const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];
            // One finding per (pc, register), even when an operand
            // appears in several source slots.
            std::set<std::pair<bool, int>> flagged;
            auto check = [&](bool is_pred, int index) {
                if (!flagged.insert({is_pred, index}).second)
                    return;
                std::vector<int> defs =
                    is_pred ? ctx.rd().reachingPredDefs(pc, index)
                            : ctx.rd().reachingRegDefs(pc, index);
                bool any_entry = false;
                bool all_entry = true;
                for (int d : defs) {
                    if (ctx.rd().isEntryDef(d))
                        any_entry = true;
                    else
                        all_entry = false;
                }
                if (!any_entry)
                    return;
                std::string n = regName(is_pred, index);
                std::string path = all_entry
                                       ? "is never written before this read"
                                       : "may be read before any write on "
                                         "some path";
                eng.report("DAC-W001", Severity::Warning, pc, b,
                           n + " " + path +
                               " (uninitialized registers read as zero)",
                           "initialize " + n +
                               " explicitly before this instruction");
            };
            for (int i = 0; i < numSources(inst.op); ++i) {
                const Operand &op = inst.src[i];
                if (op.isReg())
                    check(false, op.index);
                else if (op.isPred())
                    check(true, op.index);
            }
            if (inst.guardPred >= 0)
                check(true, inst.guardPred);
        });
    }
};

// ---------------------------------------------------------------------------
// DAC-E002: barrier under thread-divergent control flow.
// ---------------------------------------------------------------------------

class BarrierDivergenceChecker final : public Checker
{
  public:
    const char *name() const override { return "barrier-divergence"; }

    void
    run(const AnalysisContext &ctx, DiagnosticEngine &eng) const override
    {
        const Kernel &k = ctx.kernel();
        const Cfg &cfg = ctx.cfg();
        const int nb = cfg.numBlocks();

        // Transitive divergence: a block is divergent when any branch it
        // is control-dependent on has a non-uniform (non-Scalar) guard,
        // or when that branch's own block is divergent. divWitness
        // records one offending branch PC for the message.
        std::vector<int> divWitness(static_cast<std::size_t>(nb), -1);
        bool changed = true;
        while (changed) {
            changed = false;
            for (int b : cfg.rpo()) {
                if (divWitness[static_cast<std::size_t>(b)] >= 0)
                    continue;
                for (int br : cfg.controlDeps(b)) {
                    int term = cfg.blocks()[static_cast<std::size_t>(br)].last;
                    const Instruction &bi =
                        k.insts[static_cast<std::size_t>(term)];
                    bool nonuniform = bi.guardPred >= 0 &&
                                      !ctx.aa().guardType(term).isScalar();
                    int inherited = divWitness[static_cast<std::size_t>(br)];
                    if (nonuniform || inherited >= 0) {
                        divWitness[static_cast<std::size_t>(b)] =
                            nonuniform ? term : inherited;
                        changed = true;
                        break;
                    }
                }
            }
        }

        forEachReachablePc(ctx, [&](int pc, int b) {
            const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];
            if (!inst.isBarrier())
                return;
            if (inst.guardPred >= 0 &&
                !ctx.aa().guardType(pc).isScalar()) {
                eng.report("DAC-E002", Severity::Error, pc, b,
                           "barrier guarded by non-uniform predicate p" +
                               std::to_string(inst.guardPred) +
                               ": threads of one CTA may disagree on "
                               "reaching it",
                           "make the guard uniform or drop it");
                return;
            }
            int w = divWitness[static_cast<std::size_t>(b)];
            if (w >= 0) {
                eng.report(
                    "DAC-E002", Severity::Error, pc, b,
                    "barrier executes under thread-divergent control "
                    "flow (divergent branch at pc " +
                        std::to_string(w) + ")",
                    "hoist the bar out of the divergent region or make "
                    "the branch condition uniform");
            }
        });
    }
};

// ---------------------------------------------------------------------------
// DAC-W003: static shared-memory race.
// ---------------------------------------------------------------------------

class SharedRaceChecker final : public Checker
{
  public:
    const char *name() const override { return "shared-race"; }

    void
    run(const AnalysisContext &ctx, DiagnosticEngine &eng) const override
    {
        const Kernel &k = ctx.kernel();
        const int n = k.numInsts();

        struct Access
        {
            int pc;
            int block;
            bool isStore;
            int bytes;
            AddrExpr expr;
        };
        std::vector<Access> accs;
        forEachReachablePc(ctx, [&](int pc, int b) {
            const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];
            if (!inst.isMemory() || inst.space != MemSpace::Shared)
                return;
            accs.push_back({pc, b, inst.isStore(),
                            memWidthBytes(inst.width), ctx.addr().addrOf(pc)});
        });
        if (accs.empty())
            return;

        // Barrier-free reachability between instructions: BFS over the
        // instruction-level successor graph, never expanding through a
        // bar (the bar ends the synchronization interval).
        auto succsOf = [&](int pc) {
            std::vector<int> s;
            const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];
            if (inst.isBarrier())
                return s;
            if (inst.isBranch() && inst.target >= 0)
                s.push_back(inst.target);
            if (inst.fallsThrough() && pc + 1 < n)
                s.push_back(pc + 1);
            return s;
        };
        auto reaches = [&](int from, int to) {
            std::vector<bool> seen(static_cast<std::size_t>(n), false);
            std::vector<int> work = succsOf(from);
            while (!work.empty()) {
                int pc = work.back();
                work.pop_back();
                if (seen[static_cast<std::size_t>(pc)])
                    continue;
                seen[static_cast<std::size_t>(pc)] = true;
                if (pc == to)
                    return true;
                for (int s : succsOf(pc))
                    work.push_back(s);
            }
            return false;
        };

        const Dim3 *block =
            ctx.launch().known ? &ctx.launch().block : nullptr;

        for (std::size_t i = 0; i < accs.size(); ++i) {
            for (std::size_t j = i; j < accs.size(); ++j) {
                const Access &a = accs[i];
                const Access &b = accs[j];
                if (!a.isStore && !b.isStore)
                    continue; // load/load pairs never race
                // Same synchronization interval? A single instruction
                // races with itself across lanes; distinct instructions
                // race only when one reaches the other without a bar.
                if (i != j && !reaches(a.pc, b.pc) && !reaches(b.pc, a.pc))
                    continue;
                if (!mayConflictAcrossLanes(a.expr, a.bytes, b.expr,
                                            b.bytes, block))
                    continue;
                const Access &at = a.isStore ? a : b;  // anchor: a store
                const Access &other = a.isStore ? b : a;
                std::ostringstream msg;
                if (i == j) {
                    msg << "shared store may touch the same bytes from "
                           "two lanes (addr "
                        << at.expr.toString(k) << ")";
                } else {
                    msg << "shared " << (at.isStore ? "store" : "access")
                        << " (addr " << at.expr.toString(k)
                        << ") may race with the shared "
                        << (other.isStore ? "store" : "load") << " at pc "
                        << other.pc << " (addr " << other.expr.toString(k)
                        << "); no barrier separates them";
                }
                eng.report("DAC-W003", Severity::Warning, at.pc, at.block,
                           msg.str(),
                           "insert `bar;` between the accesses or make "
                           "the per-lane indices provably disjoint");
            }
        }
    }
};

// ---------------------------------------------------------------------------
// DAC-W004 / DAC-W005: unreachable blocks and dead stores.
// ---------------------------------------------------------------------------

class DeadCodeChecker final : public Checker
{
  public:
    const char *name() const override { return "dead-code"; }

    void
    run(const AnalysisContext &ctx, DiagnosticEngine &eng) const override
    {
        const Kernel &k = ctx.kernel();
        const Cfg &cfg = ctx.cfg();

        for (int b = 0; b < cfg.numBlocks(); ++b) {
            if (ctx.dom().reachable(b))
                continue;
            const BasicBlock &bb = cfg.blocks()[static_cast<std::size_t>(b)];
            eng.report("DAC-W004", Severity::Warning, bb.first, b,
                       "basic block b" + std::to_string(b) + " (pc " +
                           std::to_string(bb.first) + ".." +
                           std::to_string(bb.last) +
                           ") is unreachable from the entry",
                       "delete the block or add a path to it");
        }

        forEachReachablePc(ctx, [&](int pc, int b) {
            const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];
            // Pure computations only: memory, queue, and control
            // instructions have effects beyond their destination.
            if (inst.isMemory() || inst.isBranch() || inst.isBarrier() ||
                inst.isExit() || inst.isEnq() || inst.isDeq())
                return;
            bool dead = false;
            std::string n;
            if (inst.dst.isReg() && !ctx.liveness().liveOutReg(
                                        pc, inst.dst.index)) {
                dead = true;
                n = regName(false, inst.dst.index);
            } else if (inst.dst.isPred() && !ctx.liveness().liveOutPred(
                                                pc, inst.dst.index)) {
                dead = true;
                n = regName(true, inst.dst.index);
            }
            if (!dead)
                return;
            eng.report("DAC-W005", Severity::Warning, pc, b,
                       "result " + n + " of `" + ctx.instText(pc) +
                           "` is never read (dead store)",
                       "delete this instruction");
        });
    }
};

// ---------------------------------------------------------------------------
// DAC-I006: global-access coalescing grade.
// ---------------------------------------------------------------------------

class CoalescingChecker final : public Checker
{
  public:
    const char *name() const override { return "coalescing"; }

    void
    run(const AnalysisContext &ctx, DiagnosticEngine &eng) const override
    {
        const Kernel &k = ctx.kernel();
        // With known launch bounds and block.x a multiple of the warp
        // size, tid.y/z are constant within any warp and their address
        // terms cannot affect intra-warp coalescing.
        bool yzWarpUniform =
            ctx.launch().known && ctx.launch().block.x % warpSize == 0;

        forEachReachablePc(ctx, [&](int pc, int b) {
            const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];
            if (!inst.isMemory() || inst.space != MemSpace::Global)
                return;
            const AddrExpr e = ctx.addr().addrOf(pc);
            const int bytes = memWidthBytes(inst.width);
            const char *what = inst.isStore() ? "store" : "load";

            if (!e.known) {
                eng.report("DAC-I006", Severity::Info, pc, b,
                           std::string("global ") + what +
                               " address is data-dependent; coalescing "
                               "not statically gradable");
                return;
            }
            if ((e.tid[1] != 0 || e.tid[2] != 0) && !yzWarpUniform) {
                eng.report("DAC-I006", Severity::Info, pc, b,
                           std::string("global ") + what +
                               " address varies with tid.y/z; grade "
                               "depends on launch shape");
                return;
            }
            long long c = e.tid[0] < 0 ? -e.tid[0] : e.tid[0];
            if (c == 0) {
                eng.report("DAC-I006", Severity::Info, pc, b,
                           std::string("global ") + what +
                               " address is uniform across the warp "
                               "(broadcast): one transaction");
                return;
            }
            if (c == bytes) {
                eng.report("DAC-I006", Severity::Info, pc, b,
                           std::string("global ") + what +
                               " is fully coalesced (unit stride of " +
                               std::to_string(bytes) + " bytes)");
                return;
            }
            // Estimated 128-byte transactions for one 32-lane warp.
            long long span = c * (warpSize - 1) + bytes;
            long long tx = (span + lineSizeBytes - 1) / lineSizeBytes;
            if (tx > warpSize)
                tx = warpSize;
            std::string msg = "global " + std::string(what) +
                              " has tid.x stride " + std::to_string(c) +
                              " bytes (access width " +
                              std::to_string(bytes) + "): ~" +
                              std::to_string(tx) +
                              " transactions per warp";
            if (tx >= 8) {
                eng.report("DAC-I006", Severity::Warning, pc, b,
                           msg + "; poorly coalesced",
                           "restructure toward unit stride or stage "
                           "through shared memory");
            } else {
                eng.report("DAC-I006", Severity::Info, pc, b, msg);
            }
        });
    }
};

// ---------------------------------------------------------------------------
// DAC-I008: loop trip count not statically bounded.
// ---------------------------------------------------------------------------

class LoopBoundChecker final : public Checker
{
  public:
    const char *name() const override { return "loop-bound"; }

    void
    run(const AnalysisContext &ctx, DiagnosticEngine &eng) const override
    {
        const std::vector<LoopInfo> loops =
            findLoops(ctx.kernel(), ctx.cfg(), ctx.dom(), ctx.rd(),
                      ctx.addr());
        for (const LoopInfo &l : loops) {
            if (l.boundedSymbolically())
                continue;
            const int b = ctx.cfg().blockOf(l.branchPc);
            if (!l.patternMatched) {
                eng.report("DAC-I008", Severity::Info, l.branchPc, b,
                           "loop exit condition does not match a counted "
                           "induction pattern; the trip count is not "
                           "statically bounded (static prediction charges "
                           "the conservative cap)",
                           "rewrite the exit test of this back-edge as a "
                           "comparison against a counted induction "
                           "register");
                continue;
            }
            const std::string reg = "r" + std::to_string(l.inductionReg);
            eng.report("DAC-I008", Severity::Info, l.branchPc, b,
                       "induction register " + reg +
                           " has a data-dependent bound; the interval "
                           "analysis cannot bound this loop's trip count "
                           "(static prediction charges the conservative "
                           "cap)",
                       "bound " + reg +
                           " by a kernel parameter or constant so the "
                           "interval analysis can derive the trip count");
        }
    }
};

// ---------------------------------------------------------------------------
// DAC-E007: decoupler soundness (implementation in soundness.cc).
// ---------------------------------------------------------------------------

class DecouplerSoundnessChecker final : public Checker
{
  public:
    const char *name() const override { return "decoupler-soundness"; }

    void
    run(const AnalysisContext &ctx, DiagnosticEngine &eng) const override
    {
        DecoupledKernel dec = decouple(ctx.kernel(), ctx.dacConfig());
        auditDecoupling(ctx, dec, eng);
    }
};

} // namespace

std::unique_ptr<Checker>
makeUninitChecker()
{
    return std::make_unique<UninitChecker>();
}

std::unique_ptr<Checker>
makeBarrierDivergenceChecker()
{
    return std::make_unique<BarrierDivergenceChecker>();
}

std::unique_ptr<Checker>
makeSharedRaceChecker()
{
    return std::make_unique<SharedRaceChecker>();
}

std::unique_ptr<Checker>
makeDeadCodeChecker()
{
    return std::make_unique<DeadCodeChecker>();
}

std::unique_ptr<Checker>
makeCoalescingChecker()
{
    return std::make_unique<CoalescingChecker>();
}

std::unique_ptr<Checker>
makeDecouplerSoundnessChecker()
{
    return std::make_unique<DecouplerSoundnessChecker>();
}

std::unique_ptr<Checker>
makeLoopBoundChecker()
{
    return std::make_unique<LoopBoundChecker>();
}

} // namespace dacsim
