#include "analysis/soundness.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dacsim
{

namespace
{

constexpr const char *kRule = "DAC-E007";

/** One queue operation, in static program order of its stream. */
struct QueueOp
{
    int origPc;
    int guardPred;
    bool guardNeg;
};

std::vector<QueueOp>
queueOps(const Kernel &stream, const std::vector<int> &origPc, Opcode op)
{
    std::vector<QueueOp> out;
    for (int pc = 0; pc < stream.numInsts(); ++pc) {
        const Instruction &inst = stream.insts[static_cast<std::size_t>(pc)];
        if (inst.op != op)
            continue;
        int o = pc < static_cast<int>(origPc.size())
                    ? origPc[static_cast<std::size_t>(pc)]
                    : -1;
        out.push_back({o, inst.guardPred, inst.guardNeg});
    }
    return out;
}

/**
 * Independent backward slice from the seeds of a decoupled
 * instruction, walking reaching definitions. Returns false (and
 * reports) when the slice is not affine-closed or leaves the affine
 * stream.
 */
bool
auditSlice(const AnalysisContext &ctx, const DecoupledKernel &dec,
           int pc, const std::vector<Operand> &seeds, DiagnosticEngine &eng)
{
    const Kernel &k = ctx.kernel();
    std::set<int> visited;
    std::vector<std::pair<int, Operand>> work;
    for (const Operand &s : seeds)
        work.emplace_back(pc, s);

    bool ok = true;
    while (!work.empty() && ok) {
        auto [usePc, op] = work.back();
        work.pop_back();
        std::vector<int> defs;
        if (op.isReg())
            defs = ctx.rd().reachingRegDefs(usePc, op.index);
        else if (op.isPred())
            defs = ctx.rd().reachingPredDefs(usePc, op.index);
        else
            continue;
        for (int d : defs) {
            if (ctx.rd().isEntryDef(d) || !visited.insert(d).second)
                continue;
            const Instruction &di = k.insts[static_cast<std::size_t>(d)];
            if (di.isLoad() || di.isDeq()) {
                eng.report(kRule, Severity::Error, pc,
                           ctx.cfg().blockOf(pc),
                           "decoupled instruction's slice crosses the "
                           "memory result at pc " +
                               std::to_string(d) +
                               " — not computable by the affine warp");
                ok = false;
                break;
            }
            if (ctx.aa().defType(d).isNonAffine()) {
                eng.report(kRule, Severity::Error, pc,
                           ctx.cfg().blockOf(pc),
                           "decoupled instruction depends on the "
                           "non-affine value defined at pc " +
                               std::to_string(d));
                ok = false;
                break;
            }
            if (!dec.inAffineStream[static_cast<std::size_t>(d)]) {
                eng.report(kRule, Severity::Error, pc,
                           ctx.cfg().blockOf(pc),
                           "slice instruction at pc " + std::to_string(d) +
                               " was not placed in the affine stream "
                               "(produced-before-consumed violated)");
                ok = false;
                break;
            }
            for (int i = 0; i < numSources(di.op); ++i)
                work.emplace_back(d, di.src[i]);
            if (di.guardPred >= 0)
                work.emplace_back(d, Operand::pred(di.guardPred));
        }
    }
    return ok;
}

void
auditQueueKind(const Kernel &affine, const std::vector<int> &affOrig,
               const Kernel &nonAffine, const std::vector<int> &naOrig,
               Opcode enq, Opcode deq, const char *what,
               DiagnosticEngine &eng)
{
    std::vector<QueueOp> prod = queueOps(affine, affOrig, enq);
    std::vector<QueueOp> cons = queueOps(nonAffine, naOrig, deq);
    if (prod.size() != cons.size()) {
        eng.report(kRule, Severity::Error, -1, -1,
                   std::string(what) + " queue imbalance: " +
                       std::to_string(prod.size()) + " enq in the affine "
                       "stream vs " + std::to_string(cons.size()) +
                       " deq in the non-affine stream");
        return;
    }
    for (std::size_t i = 0; i < prod.size(); ++i) {
        if (prod[i].origPc != cons[i].origPc) {
            eng.report(kRule, Severity::Error, cons[i].origPc, -1,
                       std::string(what) + " queue order mismatch at "
                       "position " + std::to_string(i) + ": affine "
                       "stream enqueues for original pc " +
                           std::to_string(prod[i].origPc) +
                           " but non-affine stream dequeues for pc " +
                           std::to_string(cons[i].origPc));
            return;
        }
        if (prod[i].guardPred != cons[i].guardPred ||
            (prod[i].guardPred >= 0 &&
             prod[i].guardNeg != cons[i].guardNeg)) {
            eng.report(kRule, Severity::Error, cons[i].origPc, -1,
                       std::string(what) + " guard mismatch for original "
                       "pc " + std::to_string(cons[i].origPc) +
                           ": producer and consumer are predicated "
                           "differently");
        }
    }
}

} // namespace

void
auditDecoupling(const AnalysisContext &ctx, const DecoupledKernel &dec,
                DiagnosticEngine &eng)
{
    const Kernel &k = ctx.kernel();
    const int n = k.numInsts();
    const int maxConds = ctx.dacConfig().maxDivergentConditions;

    if (!dec.anyDecoupled) {
        // Degenerate case: nothing was decoupled; the non-affine stream
        // must be the untouched original.
        for (int pc = 0; pc < n; ++pc) {
            if (dec.decoupled[static_cast<std::size_t>(pc)]) {
                eng.report(kRule, Severity::Error, pc, ctx.cfg().blockOf(pc),
                           "kernel reported as undecoupled but pc " +
                               std::to_string(pc) + " is marked decoupled");
            }
        }
        if (dec.nonAffine.numInsts() != n) {
            eng.report(kRule, Severity::Error, -1, -1,
                       "undecoupled kernel's non-affine stream does not "
                       "match the original instruction count");
        }
        return;
    }

    // 1. Independent affine typing and slice closure per decoupled pc.
    for (int pc = 0; pc < n; ++pc) {
        if (!dec.decoupled[static_cast<std::size_t>(pc)])
            continue;
        const Instruction &inst = k.insts[static_cast<std::size_t>(pc)];
        int b = ctx.cfg().blockOf(pc);
        std::vector<Operand> seeds;
        bool typeOk = true;
        switch (inst.op) {
          case Opcode::Ld:
          case Opcode::St:
            if (inst.space != MemSpace::Global) {
                eng.report(kRule, Severity::Error, pc, b,
                           "decoupled memory access is not in the global "
                           "space");
                typeOk = false;
            }
            if (!ctx.aa().srcType(pc, inst.src[0]).affineOk(maxConds)) {
                eng.report(kRule, Severity::Error, pc, b,
                           "decoupled access address is not affine-"
                           "trackable per independent re-analysis");
                typeOk = false;
            }
            seeds.push_back(inst.src[0]);
            break;
          case Opcode::Setp:
            if (!ctx.aa().defType(pc).affineOk(maxConds)) {
                eng.report(kRule, Severity::Error, pc, b,
                           "decoupled predicate is not affine-trackable "
                           "per independent re-analysis");
                typeOk = false;
            }
            seeds.push_back(inst.src[0]);
            seeds.push_back(inst.src[1]);
            break;
          default:
            eng.report(kRule, Severity::Error, pc, b,
                       "instruction `" + ctx.instText(pc) +
                           "` is not a decoupleable kind (ld/st/setp)");
            typeOk = false;
            break;
        }
        if (inst.guardPred >= 0 &&
            !ctx.aa().guardType(pc).affineOk(maxConds)) {
            eng.report(kRule, Severity::Error, pc, b,
                       "decoupled instruction's guard predicate is not "
                       "affine-trackable");
            typeOk = false;
        }
        if (typeOk) {
            if (inst.guardPred >= 0)
                seeds.push_back(Operand::pred(inst.guardPred));
            auditSlice(ctx, dec, pc, seeds, eng);
        }
    }

    // 2. Affine-stream purity: the affine warp never touches memory
    // directly and never consumes queues.
    for (int pc = 0; pc < dec.affine.numInsts(); ++pc) {
        const Instruction &inst =
            dec.affine.insts[static_cast<std::size_t>(pc)];
        if (inst.isMemory() || inst.op == Opcode::DeqPred) {
            eng.report(kRule, Severity::Error, -1, -1,
                       "affine stream contains a direct memory/dequeue "
                       "instruction at its pc " + std::to_string(pc) +
                           " (`" +
                           instToString(inst, dec.affine.params) + "`)");
        }
    }

    // 3. Queue discipline, per queue kind.
    auditQueueKind(dec.affine, dec.affineOrigPc, dec.nonAffine,
                   dec.nonAffineOrigPc, Opcode::EnqData, Opcode::LdDeq,
                   "load", eng);
    auditQueueKind(dec.affine, dec.affineOrigPc, dec.nonAffine,
                   dec.nonAffineOrigPc, Opcode::EnqAddr, Opcode::StDeq,
                   "store", eng);
    auditQueueKind(dec.affine, dec.affineOrigPc, dec.nonAffine,
                   dec.nonAffineOrigPc, Opcode::EnqPred, Opcode::DeqPred,
                   "predicate", eng);

    // 4a. Control replication: every branch controlling a decoupled
    // instruction's block must appear in both streams.
    std::set<int> affPcs(dec.affineOrigPc.begin(), dec.affineOrigPc.end());
    std::set<int> naPcs(dec.nonAffineOrigPc.begin(),
                        dec.nonAffineOrigPc.end());
    std::set<int> checkedBranches;
    for (int pc = 0; pc < n; ++pc) {
        if (!dec.decoupled[static_cast<std::size_t>(pc)])
            continue;
        int b = ctx.cfg().blockOf(pc);
        for (int br : ctx.cfg().controlDeps(b)) {
            int term = ctx.cfg().blocks()[static_cast<std::size_t>(br)].last;
            if (!ctx.kernel().insts[static_cast<std::size_t>(term)]
                     .isBranch())
                continue;
            if (!checkedBranches.insert(term).second)
                continue;
            if (!affPcs.count(term) || !naPcs.count(term)) {
                eng.report(kRule, Severity::Error, term, br,
                           "branch controlling the decoupled access at "
                           "pc " + std::to_string(pc) +
                               " is not replicated in both streams");
            }
        }
    }

    // 4b. Barrier alignment: the affine stream's barriers must be
    // exactly the original barriers whose non-affine replica is
    // epoch-counted, in the same order, and every affine barrier must
    // itself be epoch-counted.
    std::vector<int> affBars;
    for (int pc = 0; pc < dec.affine.numInsts(); ++pc) {
        const Instruction &inst =
            dec.affine.insts[static_cast<std::size_t>(pc)];
        if (!inst.isBarrier())
            continue;
        if (!inst.epochCounted) {
            eng.report(kRule, Severity::Error,
                       dec.affineOrigPc[static_cast<std::size_t>(pc)], -1,
                       "affine-stream barrier is not epoch-counted");
        }
        affBars.push_back(dec.affineOrigPc[static_cast<std::size_t>(pc)]);
    }
    std::vector<int> naBars;
    for (int pc = 0; pc < dec.nonAffine.numInsts(); ++pc) {
        const Instruction &inst =
            dec.nonAffine.insts[static_cast<std::size_t>(pc)];
        if (inst.isBarrier() && inst.epochCounted)
            naBars.push_back(
                dec.nonAffineOrigPc[static_cast<std::size_t>(pc)]);
    }
    if (affBars != naBars) {
        eng.report(kRule, Severity::Error, -1, -1,
                   "epoch-counted barrier sequences of the two streams "
                   "disagree (" + std::to_string(affBars.size()) +
                       " affine vs " + std::to_string(naBars.size()) +
                       " non-affine)");
    }
}

LintReport
auditDecoupling(const Kernel &kernel, const DacConfig &cfg)
{
    AnalysisContext ctx(kernel, cfg);
    DiagnosticEngine eng(ctx.kernel());
    DecoupledKernel dec = decouple(ctx.kernel(), cfg);
    auditDecoupling(ctx, dec, eng);
    return eng.finish();
}

} // namespace dacsim
