/**
 * @file
 * The built-in checker catalog (DESIGN.md §10):
 *
 *   DAC-W001  possibly-uninitialized register read
 *   DAC-E002  barrier under divergent (non-uniform) control flow
 *   DAC-W003  static shared-memory race
 *   DAC-W004  unreachable basic block
 *   DAC-W005  dead store (pure result never read)
 *   DAC-I006  global-access coalescing grade (info; warning when poor)
 *   DAC-E007  decoupler soundness violation (see soundness.h)
 *   DAC-I008  loop trip count not statically bounded (see predict.h)
 */

#ifndef DACSIM_ANALYSIS_CHECKERS_H
#define DACSIM_ANALYSIS_CHECKERS_H

#include <memory>

#include "analysis/pass_manager.h"

namespace dacsim
{

std::unique_ptr<Checker> makeUninitChecker();
std::unique_ptr<Checker> makeBarrierDivergenceChecker();
std::unique_ptr<Checker> makeSharedRaceChecker();
std::unique_ptr<Checker> makeDeadCodeChecker();
std::unique_ptr<Checker> makeCoalescingChecker();
std::unique_ptr<Checker> makeDecouplerSoundnessChecker();
std::unique_ptr<Checker> makeLoopBoundChecker();

} // namespace dacsim

#endif // DACSIM_ANALYSIS_CHECKERS_H
