/**
 * @file
 * Static performance prediction (DESIGN.md §15).
 *
 * Derives, without simulating, (a) a guaranteed upper bound on a
 * kernel's simulated cycles under the baseline and DAC techniques,
 * (b) a throughput/latency *estimate* tracked for accuracy (MAPE and
 * rank correlation against simulated cycles), and (c) the predicted
 * affine-coverage fraction — the share of static instructions the
 * decoupler will move off the non-affine warps — re-derived
 * independently from the analysis framework and validated against the
 * decoupler's actual split (dac/engine.h, dacActualSplit).
 *
 * The cycle bound composes per-instruction latencies from GpuConfig,
 * loop trip-count intervals from the widening interval-affine analysis
 * (analysis/addr_expr.h, findLoops — unbounded loops widen the bound
 * to the flagged predictTripCap), and per-warp DRAM transaction counts
 * from the address-expression coalescing predicates. Soundness comes
 * from aggregate charging: every simulated cycle is attributable to
 * some dynamic instruction's issue slot, completion latency, or DRAM
 * line transfer, all of which the bound charges fully serialized
 * across every warp of every CTA (see DESIGN.md §15 for the argument).
 */

#ifndef DACSIM_ANALYSIS_PREDICT_H
#define DACSIM_ANALYSIS_PREDICT_H

#include <string>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "sim/dim3.h"

namespace dacsim
{

/** One concrete launch of the kernel: grid/block dimensions plus
 * parameter values by slot (PreparedWorkload supplies these). */
struct PredictLaunch
{
    Dim3 grid;
    Dim3 block;
    std::vector<RegVal> params;
};

/** Conservative per-entry trip cap charged for loops whose trip count
 * the interval analysis cannot bound (flagged via TechPredict::capped
 * and lint rule DAC-I008). */
inline constexpr unsigned long long predictTripCap = 1ull << 20;

/** Per-technique cycle prediction. */
struct TechPredict
{
    /** Guaranteed upper bound on simulated cycles. */
    unsigned long long boundCycles = 0;
    /** Some loop's trip count was not statically bounded: boundCycles
     * charges predictTripCap entries per loop entry and is a true
     * bound only while no loop actually exceeds the cap. */
    bool capped = false;
    /** Roofline-style estimate — NOT a bound; tracked for MAPE and
     * rank correlation against simulated cycles (BENCH_predict.json). */
    unsigned long long estimateCycles = 0;

    // Estimate decomposition (cycles, summed over launches): the
    // throughput and latency terms the estimate combines. Exported to
    // BENCH_predict.json for model calibration and debugging.
    double issueTerm = 0; ///< scheduler-occupancy throughput floor
    double dramTerm = 0;  ///< DRAM line-transfer throughput floor
    double latTerm = 0;   ///< per-warp dependence-chain latency
    double expTerm = 0;   ///< DAC expansion-unit throughput floor
};

/** One loop of the original kernel, with its evaluated trip bound. */
struct LoopPredict
{
    int header = -1;       ///< header block id
    int branchPc = -1;     ///< back-edge branch pc
    int inductionReg = -1; ///< matched induction register (-1: none)
    bool bounded = false;  ///< trip count derived for every launch
    /** Max per-entry trip bound over all launches (valid when bounded). */
    unsigned long long maxTrips = 0;
};

/** One global-memory access, with its predicted coalescing cost. */
struct AccessPredict
{
    int pc = -1;
    bool isStore = false;
    int txPerWarp = 0; ///< worst-case DRAM lines per warp access
};

struct PredictReport
{
    std::string kernel;
    int numInsts = 0;
    int numLaunches = 0;
    unsigned long long totalCtas = 0;  ///< summed over launches
    unsigned long long totalWarps = 0; ///< summed over launches

    TechPredict base; ///< baseline technique
    TechPredict dac;  ///< DAC technique

    /** Static affine coverage predicted by the independent
     * re-derivation of the decoupling decision. */
    int predictedCoveredInsts = 0;
    double predictedCoverage = 0.0; ///< fraction of static instructions
    bool predictedAnyDecoupled = false;

    /** Total predicted DRAM line transfers, baseline technique (bound). */
    unsigned long long dramLineBound = 0;

    std::vector<LoopPredict> loops;      ///< original kernel's loops
    std::vector<AccessPredict> accesses; ///< original kernel's globals

    /** Human-readable report (golden fixture format, deterministic). */
    std::string renderText() const;
    /** One JSON object (stable key order, deterministic). */
    std::string renderJson() const;
};

/**
 * Predict @p kernel's behaviour under the baseline and DAC techniques
 * for the given launches, without simulating. @p launches must be
 * non-empty; per-launch parameter sets model iterative re-launches.
 */
PredictReport predictKernel(const Kernel &kernel,
                            const std::vector<PredictLaunch> &launches,
                            const GpuConfig &gpu, const DacConfig &dac);

} // namespace dacsim

#endif // DACSIM_ANALYSIS_PREDICT_H
