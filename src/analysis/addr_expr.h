/**
 * @file
 * Symbolic affine address expressions (DESIGN.md §10).
 *
 * Where the compiler's AffineAnalysis classifies values on the
 * Scalar/Affine/NonAffine lattice, this analysis derives *concrete*
 * symbolic linear forms for them:
 *
 *     addr = sum_d tid[d]*tid.d  +  sum_s sym[s]*symbol_s  +  residual
 *
 * with the residual tracked as an integer interval [lo, hi] (constants,
 * mask-bounded data terms, bounded selections) or marked unbounded
 * (loop counters after widening). Symbols are kernel parameters,
 * ctaid.*, ntid.* and nctaid.* — all thread-invariant within a CTA.
 *
 * The shared-memory race checker uses the thread-varying tid
 * coefficients plus the residual interval to decide whether two
 * accesses from distinct lanes can collide; the coalescing checker
 * grades global accesses by their tid.x stride.
 */

#ifndef DACSIM_ANALYSIS_ADDR_EXPR_H
#define DACSIM_ANALYSIS_ADDR_EXPR_H

#include <map>
#include <string>
#include <vector>

#include "compiler/reaching_defs.h"
#include "isa/instruction.h"
#include "sim/dim3.h"

namespace dacsim
{

/** Symbol keys for the thread-invariant terms of an AddrExpr. */
enum : int
{
    symCtaidBase = 1000,  ///< +d for ctaid.d
    symNtidBase = 1100,   ///< +d for ntid.d
    symNctaidBase = 1200, ///< +d for nctaid.d
    /** +d for the product ctaid.d*ntid.d — the CTA base of the global
     * thread index, the one non-linear term the domain represents
     * (every kernel's `mul r, ctaid.x, ntid.x` prologue). */
    symCtaidNtidBase = 1300,
};

struct AddrExpr
{
    /** False: nothing is known about the value (may be anything). */
    bool known = false;
    /** The residual interval [lo, hi] is valid; false after widening
     * (loop-carried terms): residual may be any integer. */
    bool bounded = true;
    /** Coefficients of tid.x/y/z — the thread-varying part. */
    long long tid[3] = {0, 0, 0};
    /** Coefficients of symbolic thread-invariant terms (param slot or
     * sym*Base + dim). */
    std::map<int, long long> sym;
    /** Residual interval (meaningful only when bounded). */
    long long lo = 0, hi = 0;

    static AddrExpr
    constant(long long v)
    {
        AddrExpr e;
        e.known = true;
        e.lo = e.hi = v;
        return e;
    }

    static AddrExpr unknown() { return AddrExpr{}; }

    /** Known with zero tid coefficients (uniform across the CTA)? */
    bool threadInvariant() const;
    /** Pure interval: no tid terms and no symbols. */
    bool pureInterval() const;
    /** Pure single constant? */
    bool isConst() const { return pureInterval() && bounded && lo == hi; }

    bool operator==(const AddrExpr &o) const;

    /** Debug rendering, e.g. "4*tid.x + $out + [0,60]". */
    std::string toString(const Kernel &kernel) const;
};

/** a + b (unknown-propagating). */
AddrExpr addExpr(const AddrExpr &a, const AddrExpr &b);
/** a scaled by constant c. */
AddrExpr scaleExpr(const AddrExpr &a, long long c);

/**
 * Whole-kernel derivation: a forward fixpoint over definition sites
 * using reaching definitions, with interval widening on loop-carried
 * values.
 */
class AddrExprAnalysis
{
  public:
    AddrExprAnalysis(const Kernel &kernel, const Cfg &cfg,
                     const ReachingDefs &rd);

    /** Expression of source operand @p op as seen at @p pc. */
    AddrExpr srcExpr(int pc, const Operand &op) const;

    /** Address expression of the memory instruction at @p pc
     * (base operand plus immediate displacement). */
    AddrExpr addrOf(int pc) const;

    /** Expression of definition site @p def (index layout matches
     * ReachingDefs); unknown when the definition was never reached
     * during the fixpoint. Used by the loop trip-count extraction. */
    AddrExpr defExprOf(int def) const;

  private:
    const Kernel &kernel_;
    const ReachingDefs &rd_;
    /** Per definition site; index layout matches ReachingDefs. */
    std::vector<AddrExpr> defExpr_;
    std::vector<bool> defSet_; ///< false: def never computed (bottom)

    void runFixpoint(const Cfg &cfg);
    AddrExpr transfer(int pc, bool widen) const;
};

/**
 * Can accesses through @p a (@p widthA bytes) and @p b (@p widthB
 * bytes) from two *distinct* threads of one CTA touch overlapping
 * bytes? @p block bounds the thread-id deltas when non-null; pass
 * nullptr when launch dimensions are unknown (conservative).
 * Conservative: returns true whenever overlap cannot be excluded.
 */
bool mayConflictAcrossLanes(const AddrExpr &a, int widthA, const AddrExpr &b,
                            int widthB, const Dim3 *block);

class DomTree;

/**
 * One loop of the CFG with its statically derived trip-count interval
 * (DESIGN.md §15). Natural loops (back edge whose target dominates its
 * source) are matched against the canonical bottom-test induction
 * pattern
 *
 *     H:  ...body...
 *         add  rI, rI, step        (the only in-loop def of rI)
 *         setp.CC p, rI, bound     (the only def of p reaching the latch)
 *         @p bra H
 *
 * in either test order (setp before or after the add) and with the
 * comparison on either side. When the pattern matches, the symbolic
 * extent `span` bounds the iteration count as
 *
 *     trips <= max(1, ceil(spanHi / step) + inclusive + extraTrip)
 *
 * once span is evaluated against concrete launch dimensions and
 * parameter values. Irreducible retreating edges produce a pseudo-loop
 * with patternMatched == false covering every block that can reach the
 * edge's source, so downstream consumers stay conservative.
 */
struct LoopInfo
{
    int header = -1;          ///< header block id (back-edge target)
    int latch = -1;           ///< latch block id (back-edge source)
    int branchPc = -1;        ///< back-edge branch instruction
    std::vector<int> blocks;  ///< body block ids (header included), sorted
    /** The induction pattern matched: step/inclusive/extraTrip/span are
     * valid. False for irreducible pseudo-loops and unrecognized
     * shapes (data-dependent exit conditions). */
    bool patternMatched = false;
    int inductionReg = -1;    ///< matched induction register (-1 unknown)
    long long step = 0;       ///< normalized positive step per iteration
    bool inclusive = false;   ///< continue-comparison is Le/Ge
    int extraTrip = 0;        ///< +1 when the test reads pre-increment rI
    /** Symbolic iteration extent (exit bound minus initial value,
     * normalized to the positive-step direction). May reference kernel
     * parameters and grid/block symbols; unknown when the bound or the
     * initial value is not derivable. */
    AddrExpr span;

    /** Trip count symbolically bounded (still needs span evaluation)? */
    bool boundedSymbolically() const
    {
        return patternMatched && span.known && span.bounded;
    }
};

/**
 * Find every loop of @p cfg and derive its trip-count interval from
 * the address-expression analysis. Deterministic order: by (header,
 * latch) block id.
 */
std::vector<LoopInfo> findLoops(const Kernel &kernel, const Cfg &cfg,
                                const DomTree &dom, const ReachingDefs &rd,
                                const AddrExprAnalysis &addr);

} // namespace dacsim

#endif // DACSIM_ANALYSIS_ADDR_EXPR_H
