/**
 * @file
 * Symbolic affine address expressions (DESIGN.md §10).
 *
 * Where the compiler's AffineAnalysis classifies values on the
 * Scalar/Affine/NonAffine lattice, this analysis derives *concrete*
 * symbolic linear forms for them:
 *
 *     addr = sum_d tid[d]*tid.d  +  sum_s sym[s]*symbol_s  +  residual
 *
 * with the residual tracked as an integer interval [lo, hi] (constants,
 * mask-bounded data terms, bounded selections) or marked unbounded
 * (loop counters after widening). Symbols are kernel parameters,
 * ctaid.*, ntid.* and nctaid.* — all thread-invariant within a CTA.
 *
 * The shared-memory race checker uses the thread-varying tid
 * coefficients plus the residual interval to decide whether two
 * accesses from distinct lanes can collide; the coalescing checker
 * grades global accesses by their tid.x stride.
 */

#ifndef DACSIM_ANALYSIS_ADDR_EXPR_H
#define DACSIM_ANALYSIS_ADDR_EXPR_H

#include <map>
#include <string>
#include <vector>

#include "compiler/reaching_defs.h"
#include "isa/instruction.h"
#include "sim/dim3.h"

namespace dacsim
{

/** Symbol keys for the thread-invariant terms of an AddrExpr. */
enum : int
{
    symCtaidBase = 1000,  ///< +d for ctaid.d
    symNtidBase = 1100,   ///< +d for ntid.d
    symNctaidBase = 1200, ///< +d for nctaid.d
};

struct AddrExpr
{
    /** False: nothing is known about the value (may be anything). */
    bool known = false;
    /** The residual interval [lo, hi] is valid; false after widening
     * (loop-carried terms): residual may be any integer. */
    bool bounded = true;
    /** Coefficients of tid.x/y/z — the thread-varying part. */
    long long tid[3] = {0, 0, 0};
    /** Coefficients of symbolic thread-invariant terms (param slot or
     * sym*Base + dim). */
    std::map<int, long long> sym;
    /** Residual interval (meaningful only when bounded). */
    long long lo = 0, hi = 0;

    static AddrExpr
    constant(long long v)
    {
        AddrExpr e;
        e.known = true;
        e.lo = e.hi = v;
        return e;
    }

    static AddrExpr unknown() { return AddrExpr{}; }

    /** Known with zero tid coefficients (uniform across the CTA)? */
    bool threadInvariant() const;
    /** Pure interval: no tid terms and no symbols. */
    bool pureInterval() const;
    /** Pure single constant? */
    bool isConst() const { return pureInterval() && bounded && lo == hi; }

    bool operator==(const AddrExpr &o) const;

    /** Debug rendering, e.g. "4*tid.x + $out + [0,60]". */
    std::string toString(const Kernel &kernel) const;
};

/** a + b (unknown-propagating). */
AddrExpr addExpr(const AddrExpr &a, const AddrExpr &b);
/** a scaled by constant c. */
AddrExpr scaleExpr(const AddrExpr &a, long long c);

/**
 * Whole-kernel derivation: a forward fixpoint over definition sites
 * using reaching definitions, with interval widening on loop-carried
 * values.
 */
class AddrExprAnalysis
{
  public:
    AddrExprAnalysis(const Kernel &kernel, const Cfg &cfg,
                     const ReachingDefs &rd);

    /** Expression of source operand @p op as seen at @p pc. */
    AddrExpr srcExpr(int pc, const Operand &op) const;

    /** Address expression of the memory instruction at @p pc
     * (base operand plus immediate displacement). */
    AddrExpr addrOf(int pc) const;

  private:
    const Kernel &kernel_;
    const ReachingDefs &rd_;
    /** Per definition site; index layout matches ReachingDefs. */
    std::vector<AddrExpr> defExpr_;
    std::vector<bool> defSet_; ///< false: def never computed (bottom)

    void runFixpoint(const Cfg &cfg);
    AddrExpr transfer(int pc, bool widen) const;
};

/**
 * Can accesses through @p a (@p widthA bytes) and @p b (@p widthB
 * bytes) from two *distinct* threads of one CTA touch overlapping
 * bytes? @p block bounds the thread-id deltas when non-null; pass
 * nullptr when launch dimensions are unknown (conservative).
 * Conservative: returns true whenever overlap cannot be excluded.
 */
bool mayConflictAcrossLanes(const AddrExpr &a, int widthA, const AddrExpr &b,
                            int widthB, const Dim3 *block);

} // namespace dacsim

#endif // DACSIM_ANALYSIS_ADDR_EXPR_H
