#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace dacsim
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

DiagnosticEngine::DiagnosticEngine(const Kernel &kernel) : kernel_(kernel)
{
}

bool
DiagnosticEngine::suppressedAt(int pc, const std::string &rule) const
{
    auto it = kernel_.lintAllows.find(pc);
    if (it == kernel_.lintAllows.end())
        return false;
    for (const std::string &r : it->second)
        if (r == rule || r == "*")
            return true;
    return false;
}

void
DiagnosticEngine::report(const std::string &rule, Severity sev, int pc,
                         int block, const std::string &message,
                         const std::string &fixit)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.kernel = kernel_.name;
    d.pc = pc;
    if (pc >= 0 && pc < kernel_.numInsts())
        d.line = kernel_.insts[static_cast<std::size_t>(pc)].srcLine;
    d.block = block;
    d.message = message;
    d.fixit = fixit;
    d.suppressed = suppressedAt(pc, rule);
    findings_.push_back(std::move(d));
}

LintReport
DiagnosticEngine::finish() const
{
    LintReport rep;
    rep.kernel = kernel_.name;
    rep.findings = findings_;
    std::stable_sort(rep.findings.begin(), rep.findings.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return std::tie(a.pc, a.rule, a.message) <
                                std::tie(b.pc, b.rule, b.message);
                     });
    for (const Diagnostic &d : rep.findings) {
        if (d.suppressed) {
            ++rep.numSuppressed;
            continue;
        }
        switch (d.severity) {
          case Severity::Error: ++rep.numErrors; break;
          case Severity::Warning: ++rep.numWarnings; break;
          case Severity::Info: ++rep.numInfos; break;
        }
    }
    return rep;
}

std::string
LintReport::renderText() const
{
    std::ostringstream os;
    os << "kernel " << kernel << ": " << numErrors << " error(s), "
       << numWarnings << " warning(s), " << numInfos << " info(s)";
    if (numSuppressed)
        os << ", " << numSuppressed << " suppressed";
    os << "\n";
    for (const Diagnostic &d : findings) {
        os << "  " << kernel << ":";
        if (d.pc >= 0)
            os << d.pc;
        else
            os << "-";
        if (d.line > 0)
            os << " (line " << d.line << ")";
        os << " [" << d.rule << "] " << severityName(d.severity);
        if (d.suppressed)
            os << " (suppressed)";
        os << ": " << d.message << "\n";
        if (!d.fixit.empty())
            os << "      fix-it: " << d.fixit << "\n";
    }
    return os.str();
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
LintReport::renderJson() const
{
    std::ostringstream os;
    os << "{\"kernel\": \"" << jsonEscape(kernel) << "\",\n"
       << " \"errors\": " << numErrors << ", \"warnings\": " << numWarnings
       << ", \"infos\": " << numInfos
       << ", \"suppressed\": " << numSuppressed << ",\n"
       << " \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Diagnostic &d = findings[i];
        os << (i ? ",\n  " : "\n  ");
        os << "{\"rule\": \"" << d.rule << "\", \"severity\": \""
           << severityName(d.severity) << "\", \"pc\": " << d.pc
           << ", \"line\": " << d.line
           << ", \"block\": " << d.block << ", \"suppressed\": "
           << (d.suppressed ? "true" : "false") << ", \"message\": \""
           << jsonEscape(d.message) << "\", \"fixit\": \""
           << jsonEscape(d.fixit) << "\"}";
    }
    os << (findings.empty() ? "]}" : "\n ]}");
    return os.str();
}

std::string
renderJsonReportList(const std::vector<LintReport> &reports)
{
    std::ostringstream os;
    int errors = 0, warnings = 0;
    for (const LintReport &r : reports) {
        errors += r.numErrors;
        warnings += r.numWarnings;
    }
    os << "{\"errors\": " << errors << ", \"warnings\": " << warnings
       << ",\n \"kernels\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i)
        os << reports[i].renderJson() << (i + 1 < reports.size() ? ",\n"
                                                                 : "\n");
    os << "]}\n";
    return os.str();
}

} // namespace dacsim
