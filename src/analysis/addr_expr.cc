#include "analysis/addr_expr.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "analysis/dominators.h"
#include "isa/opcode.h"

namespace dacsim
{

namespace
{

/** Saturating interval bound to keep products away from overflow. */
constexpr long long boundCap = 1ll << 40;

long long
clampBound(long long v)
{
    return std::max(-boundCap, std::min(boundCap, v));
}

} // namespace

bool
AddrExpr::threadInvariant() const
{
    return known && tid[0] == 0 && tid[1] == 0 && tid[2] == 0;
}

bool
AddrExpr::pureInterval() const
{
    return threadInvariant() && sym.empty();
}

bool
AddrExpr::operator==(const AddrExpr &o) const
{
    if (known != o.known)
        return false;
    if (!known)
        return true;
    return bounded == o.bounded && tid[0] == o.tid[0] &&
           tid[1] == o.tid[1] && tid[2] == o.tid[2] && sym == o.sym &&
           (!bounded || (lo == o.lo && hi == o.hi));
}

std::string
AddrExpr::toString(const Kernel &kernel) const
{
    if (!known)
        return "<unknown>";
    std::ostringstream os;
    bool first = true;
    auto term = [&](long long c, const std::string &name) {
        if (c == 0)
            return;
        if (!first)
            os << " + ";
        first = false;
        if (c != 1)
            os << c << "*";
        os << name;
    };
    static const char *dims = "xyz";
    for (int d = 0; d < 3; ++d)
        term(tid[d], std::string("tid.") + dims[d]);
    for (const auto &[key, c] : sym) {
        std::string name;
        if (key >= symCtaidNtidBase)
            name = std::string("ctaid.") + dims[key - symCtaidNtidBase] +
                   "*ntid." + dims[key - symCtaidNtidBase];
        else if (key >= symNctaidBase)
            name = std::string("nctaid.") + dims[key - symNctaidBase];
        else if (key >= symNtidBase)
            name = std::string("ntid.") + dims[key - symNtidBase];
        else if (key >= symCtaidBase)
            name = std::string("ctaid.") + dims[key - symCtaidBase];
        else if (key < static_cast<int>(kernel.params.size()))
            name = "$" + kernel.params[static_cast<std::size_t>(key)];
        else
            name = "$p" + std::to_string(key);
        term(c, name);
    }
    if (!bounded) {
        os << (first ? "" : " + ") << "[unbounded]";
    } else if (lo != 0 || hi != 0 || first) {
        if (!first)
            os << " + ";
        if (lo == hi)
            os << lo;
        else
            os << "[" << lo << "," << hi << "]";
    }
    return os.str();
}

AddrExpr
addExpr(const AddrExpr &a, const AddrExpr &b)
{
    if (!a.known || !b.known)
        return AddrExpr::unknown();
    AddrExpr r;
    r.known = true;
    for (int d = 0; d < 3; ++d)
        r.tid[d] = a.tid[d] + b.tid[d];
    r.sym = a.sym;
    for (const auto &[k, c] : b.sym) {
        r.sym[k] += c;
        if (r.sym[k] == 0)
            r.sym.erase(k);
    }
    r.bounded = a.bounded && b.bounded;
    if (r.bounded) {
        r.lo = clampBound(a.lo + b.lo);
        r.hi = clampBound(a.hi + b.hi);
    }
    return r;
}

AddrExpr
scaleExpr(const AddrExpr &a, long long c)
{
    if (!a.known)
        return AddrExpr::unknown();
    if (c == 0)
        return AddrExpr::constant(0);
    AddrExpr r;
    r.known = true;
    for (int d = 0; d < 3; ++d)
        r.tid[d] = a.tid[d] * c;
    for (const auto &[k, v] : a.sym)
        r.sym[k] = v * c;
    r.bounded = a.bounded;
    if (r.bounded) {
        long long x = clampBound(a.lo * c), y = clampBound(a.hi * c);
        r.lo = std::min(x, y);
        r.hi = std::max(x, y);
    }
    return r;
}

namespace
{

AddrExpr
negExpr(const AddrExpr &a)
{
    return scaleExpr(a, -1);
}

/**
 * Product of two expressions. Constants distribute via scaleExpr; the
 * one non-linear form the domain represents is (k*ctaid.d + c1) *
 * (m*ntid.d + c2) — the global-thread-index base every kernel's
 * prologue computes — folded onto the composite symCtaidNtidBase
 * symbol. Anything else is unknown.
 */
AddrExpr
mulExpr(const AddrExpr &a, const AddrExpr &b)
{
    if (!a.known || !b.known)
        return AddrExpr::unknown();
    if (b.isConst())
        return scaleExpr(a, b.lo);
    if (a.isConst())
        return scaleExpr(b, a.lo);
    // Exactly const + one symbol from [base, base+3)?
    auto single = [](const AddrExpr &e, int base, int *d, long long *k,
                     long long *c) {
        if (!e.bounded || e.lo != e.hi || e.tid[0] != 0 ||
            e.tid[1] != 0 || e.tid[2] != 0 || e.sym.size() != 1)
            return false;
        const auto &[key, coeff] = *e.sym.begin();
        if (key < base || key >= base + 3)
            return false;
        *d = key - base;
        *k = coeff;
        *c = e.lo;
        return true;
    };
    const AddrExpr *ord[2][2] = {{&a, &b}, {&b, &a}};
    for (const auto &p : ord) {
        int dc = 0, dn = 0;
        long long k = 0, c1 = 0, m = 0, c2 = 0;
        if (single(*p[0], symCtaidBase, &dc, &k, &c1) &&
            single(*p[1], symNtidBase, &dn, &m, &c2) && dc == dn) {
            AddrExpr r;
            r.known = true;
            if (k * m != 0)
                r.sym[symCtaidNtidBase + dc] = k * m;
            if (k * c2 != 0)
                r.sym[symCtaidBase + dc] = k * c2;
            if (c1 * m != 0)
                r.sym[symNtidBase + dn] = c1 * m;
            r.lo = r.hi = c1 * c2;
            return r;
        }
    }
    return AddrExpr::unknown();
}

/** Join for the fixpoint; @p widen forces loop-carried intervals to
 * unbounded instead of growing them forever. */
AddrExpr
joinExpr(const AddrExpr &a, const AddrExpr &b, bool widen)
{
    if (!a.known || !b.known)
        return AddrExpr::unknown();
    if (a.tid[0] != b.tid[0] || a.tid[1] != b.tid[1] ||
        a.tid[2] != b.tid[2])
        return AddrExpr::unknown();
    if (a.sym != b.sym) {
        // The lane structure (tid terms) agrees; symbolic terms that
        // differ — a pointer advanced by a parameter-sized stride each
        // iteration — are absorbed into the unbounded residual. Sound:
        // the residual already means "plus any per-thread value".
        AddrExpr r = a;
        r.bounded = false;
        r.lo = r.hi = 0;
        for (auto it = r.sym.begin(); it != r.sym.end();) {
            auto jt = b.sym.find(it->first);
            if (jt == b.sym.end() || jt->second != it->second)
                it = r.sym.erase(it);
            else
                ++it;
        }
        return r;
    }
    AddrExpr r = a;
    r.bounded = a.bounded && b.bounded;
    if (r.bounded) {
        if (widen && (a.lo != b.lo || a.hi != b.hi)) {
            r.bounded = false;
            r.lo = r.hi = 0;
        } else {
            r.lo = std::min(a.lo, b.lo);
            r.hi = std::max(a.hi, b.hi);
        }
    } else {
        r.lo = r.hi = 0;
    }
    return r;
}

} // namespace

AddrExprAnalysis::AddrExprAnalysis(const Kernel &kernel, const Cfg &cfg,
                                   const ReachingDefs &rd)
    : kernel_(kernel), rd_(rd)
{
    const int numDefs =
        kernel.numInsts() + kernel.numRegs + kernel.numPreds;
    defExpr_.assign(static_cast<std::size_t>(numDefs), AddrExpr{});
    defSet_.assign(static_cast<std::size_t>(numDefs), false);
    // Entry pseudo-definitions: registers read before any write are 0.
    for (int d = kernel.numInsts(); d < numDefs; ++d) {
        defExpr_[static_cast<std::size_t>(d)] = AddrExpr::constant(0);
        defSet_[static_cast<std::size_t>(d)] = true;
    }
    runFixpoint(cfg);
}

AddrExpr
AddrExprAnalysis::srcExpr(int pc, const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::Imm:
        return AddrExpr::constant(op.imm);
      case Operand::Kind::Param: {
        AddrExpr e;
        e.known = true;
        e.sym[op.index] = 1;
        return e;
      }
      case Operand::Kind::Special: {
        AddrExpr e;
        e.known = true;
        int d = specialRegDim(op.sreg);
        if (isTidReg(op.sreg))
            e.tid[d] = 1;
        else if (isCtaidReg(op.sreg))
            e.sym[symCtaidBase + d] = 1;
        else if (op.sreg == SpecialReg::NtidX ||
                 op.sreg == SpecialReg::NtidY ||
                 op.sreg == SpecialReg::NtidZ)
            e.sym[symNtidBase + d] = 1;
        else
            e.sym[symNctaidBase + d] = 1;
        return e;
      }
      case Operand::Kind::Reg: {
        AddrExpr acc;
        bool first = true;
        for (int d : rd_.reachingRegDefs(pc, op.index)) {
            if (!defSet_[static_cast<std::size_t>(d)])
                continue; // bottom: path never executed yet
            const AddrExpr &e = defExpr_[static_cast<std::size_t>(d)];
            acc = first ? e : joinExpr(acc, e, false);
            first = false;
        }
        return first ? AddrExpr::unknown() : acc;
      }
      default:
        return AddrExpr::unknown();
    }
}

AddrExpr
AddrExprAnalysis::addrOf(int pc) const
{
    const Instruction &inst = kernel_.insts[pc];
    AddrExpr base = srcExpr(pc, inst.src[0]);
    return addExpr(base, AddrExpr::constant(inst.addrOffset));
}

AddrExpr
AddrExprAnalysis::defExprOf(int def) const
{
    auto i = static_cast<std::size_t>(def);
    if (i >= defExpr_.size() || !defSet_[i])
        return AddrExpr::unknown();
    return defExpr_[i];
}

AddrExpr
AddrExprAnalysis::transfer(int pc, bool widen) const
{
    const Instruction &inst = kernel_.insts[pc];
    auto src = [&](int i) { return srcExpr(pc, inst.src[i]); };
    (void)widen;
    switch (inst.op) {
      case Opcode::Mov:
        return src(0);
      case Opcode::Add:
        return addExpr(src(0), src(1));
      case Opcode::Sub:
        return addExpr(src(0), negExpr(src(1)));
      case Opcode::Shl: {
        AddrExpr b = src(1);
        if (b.isConst() && b.lo >= 0 && b.lo < 40)
            return scaleExpr(src(0), 1ll << b.lo);
        return AddrExpr::unknown();
      }
      case Opcode::Shr: {
        AddrExpr a = src(0), b = src(1);
        if (a.pureInterval() && a.bounded && a.lo >= 0 && b.isConst() &&
            b.lo >= 0 && b.lo < 63) {
            AddrExpr r;
            r.known = true;
            r.lo = a.lo >> b.lo;
            r.hi = a.hi >> b.lo;
            return r;
        }
        return AddrExpr::unknown();
      }
      case Opcode::Mul:
        return mulExpr(src(0), src(1));
      case Opcode::Mad:
        return addExpr(mulExpr(src(0), src(1)), src(2));
      case Opcode::And: {
        AddrExpr a = src(0), b = src(1);
        // x & (2^k - 1) lies in [0, mask] whatever x is.
        for (const AddrExpr *m : {&b, &a}) {
            if (m->isConst() && m->lo >= 0 &&
                ((m->lo + 1) & m->lo) == 0) {
                AddrExpr r;
                r.known = true;
                r.lo = 0;
                r.hi = m->lo;
                return r;
            }
        }
        return AddrExpr::unknown();
      }
      case Opcode::Mod: {
        AddrExpr a = src(0), b = src(1);
        if (b.isConst() && b.lo > 0) {
            AddrExpr r;
            r.known = true;
            if (a.pureInterval() && a.bounded && a.lo >= 0) {
                r.lo = 0;
                r.hi = std::min(a.hi, b.lo - 1);
            } else {
                r.lo = -(b.lo - 1);
                r.hi = b.lo - 1;
            }
            return r;
        }
        return AddrExpr::unknown();
      }
      case Opcode::Min:
      case Opcode::Max: {
        AddrExpr a = src(0), b = src(1);
        if (a.pureInterval() && a.bounded && b.pureInterval() &&
            b.bounded) {
            AddrExpr r;
            r.known = true;
            if (inst.op == Opcode::Min) {
                r.lo = std::min(a.lo, b.lo);
                r.hi = std::min(a.hi, b.hi);
            } else {
                r.lo = std::max(a.lo, b.lo);
                r.hi = std::max(a.hi, b.hi);
            }
            return r;
        }
        return AddrExpr::unknown();
      }
      case Opcode::Abs: {
        AddrExpr a = src(0);
        if (a.pureInterval() && a.bounded) {
            AddrExpr r;
            r.known = true;
            r.lo = a.lo >= 0 ? a.lo : (a.hi <= 0 ? -a.hi : 0);
            r.hi = std::max(std::llabs(a.lo), std::llabs(a.hi));
            return r;
        }
        return AddrExpr::unknown();
      }
      default:
        // Loads, division, bitwise mixes, sel, deq: not derivable.
        return AddrExpr::unknown();
    }
}

void
AddrExprAnalysis::runFixpoint(const Cfg &cfg)
{
    // Instruction order: blocks in RPO, instructions in block order.
    std::vector<int> order;
    for (int b : cfg.rpo()) {
        const BasicBlock &bb = cfg.blocks()[static_cast<std::size_t>(b)];
        for (int pc = bb.first; pc <= bb.last; ++pc)
            order.push_back(pc);
    }

    // A few exact passes, then widening joins until stable. The
    // lattice after widening has finite height (bounded -> unbounded
    // -> unknown), so this terminates.
    for (int pass = 0;; ++pass) {
        const bool widen = pass >= 3;
        bool changed = false;
        for (int pc : order) {
            const Instruction &inst = kernel_.insts[pc];
            if (!inst.dst.isReg())
                continue;
            AddrExpr next = transfer(pc, widen);
            auto i = static_cast<std::size_t>(pc);
            if (!defSet_[i]) {
                defSet_[i] = true;
                defExpr_[i] = next;
                changed = true;
            } else if (!(defExpr_[i] == next)) {
                defExpr_[i] = widen ? joinExpr(defExpr_[i], next, true)
                                    : next;
                changed = true;
            }
        }
        if (!changed)
            break;
        ensure(pass < 64, "addr-expr fixpoint failed to converge");
    }
}

namespace
{

/** Does a nonzero multiple m = c*k of |c|, with |k| <= kMax, fall in
 * the open interval (wLo, wHi)? */
bool
multipleInWindow(long long c, long long wLo, long long wHi, long long kMax)
{
    const long long g = std::llabs(c);
    if (g == 0 || kMax <= 0)
        return false;
    // Positive multiples g*k in (lo, hi); negative ones are the
    // positive multiples of the mirrored window.
    auto existsPositive = [&](long long lo, long long hi) {
        long long k = lo < g ? 1 : lo / g + 1; // smallest k with g*k > lo
        return k <= kMax && g * k < hi;
    };
    return existsPositive(wLo, wHi) || existsPositive(-wHi, -wLo);
}

} // namespace

bool
mayConflictAcrossLanes(const AddrExpr &a, int widthA, const AddrExpr &b,
                       int widthB, const Dim3 *block)
{
    if (!a.known || !b.known)
        return true;
    if (a.sym != b.sym)
        return true; // unknown base difference
    // Only the x dimension is modelled precisely; any thread-varying
    // y/z term is handled conservatively.
    if (a.tid[1] != 0 || a.tid[2] != 0 || b.tid[1] != 0 || b.tid[2] != 0)
        return true;
    if (a.tid[0] != b.tid[0])
        return true; // differing strides: gcd lattice, assume overlap
    if (!a.bounded || !b.bounded)
        return true; // residual unbounded: any delta reachable

    // AddrA(t) - AddrB(u) = c*(t - u) + dRes with
    // dRes in [a.lo - b.hi, a.hi - b.lo]; overlap iff the difference
    // falls in (-widthB, widthA).
    const long long c = a.tid[0];
    const long long dLo = a.lo - b.hi, dHi = a.hi - b.lo;

    // Threads differing only in y/z (or unknown block shape) have
    // t.x == u.x: the tid term cancels entirely.
    bool multiRow = block == nullptr || block->y > 1 || block->z > 1;
    if (multiRow || c == 0) {
        if (dHi > -widthB && dLo < widthA)
            return true;
        if (c == 0)
            return false;
    }

    long long kMax = block ? block->x - 1
                           : std::numeric_limits<long long>::max() / 2;
    // c*k must land in (-widthB - dHi, widthA - dLo) for some k != 0.
    return multipleInWindow(c, -widthB - dHi, widthA - dLo, kMax);
}

namespace
{

CmpOp
negateCmp(CmpOp c)
{
    switch (c) {
      case CmpOp::Eq: return CmpOp::Ne;
      case CmpOp::Ne: return CmpOp::Eq;
      case CmpOp::Lt: return CmpOp::Ge;
      case CmpOp::Le: return CmpOp::Gt;
      case CmpOp::Gt: return CmpOp::Le;
      case CmpOp::Ge: return CmpOp::Lt;
    }
    panic("bad CmpOp");
}

/** a CC b  ==  b mirror(CC) a. */
CmpOp
mirrorCmp(CmpOp c)
{
    switch (c) {
      case CmpOp::Lt: return CmpOp::Gt;
      case CmpOp::Le: return CmpOp::Ge;
      case CmpOp::Gt: return CmpOp::Lt;
      case CmpOp::Ge: return CmpOp::Le;
      default: return c;
    }
}

/**
 * Match the bottom-test induction pattern on a natural loop; fills in
 * the trip-count fields of @p li on success. Every check here is a
 * soundness condition: a rejected loop stays patternMatched == false
 * and downstream consumers fall back to the conservative cap.
 */
void
matchInduction(const Kernel &kernel, const Cfg &cfg, const DomTree &dom,
               const ReachingDefs &rd, const AddrExprAnalysis &addr,
               LoopInfo &li)
{
    const Instruction &br =
        kernel.insts[static_cast<std::size_t>(li.branchPc)];
    if (!br.isBranch() || br.guardPred < 0)
        return;
    const int headerPc =
        cfg.blocks()[static_cast<std::size_t>(li.header)].first;
    // The back edge is either the taken edge or the fall-through edge
    // of the latch's conditional branch.
    const bool takenBack = br.target == headerPc;
    if (!takenBack && li.branchPc + 1 != headerPc)
        return;

    auto inLoop = [&](int b) {
        return std::binary_search(li.blocks.begin(), li.blocks.end(), b);
    };

    // The guard must come from exactly one definition — an unguarded
    // setp inside the loop — on every path to the latch.
    std::vector<int> gdefs = rd.reachingPredDefs(li.branchPc, br.guardPred);
    if (gdefs.size() != 1 || rd.isEntryDef(gdefs[0]))
        return;
    const int setpPc = gdefs[0];
    const Instruction &setp =
        kernel.insts[static_cast<std::size_t>(setpPc)];
    if (setp.op != Opcode::Setp || setp.guardPred >= 0 ||
        !inLoop(cfg.blockOf(setpPc)))
        return;

    for (int side = 0; side < 2; ++side) {
        const Operand &ind = setp.src[static_cast<std::size_t>(side)];
        const Operand &bnd = setp.src[static_cast<std::size_t>(1 - side)];
        if (!ind.isReg())
            continue;

        // The induction operand has exactly one in-loop definition —
        // an unguarded self-increment by a constant whose block
        // dominates the latch (so it executes once per iteration).
        int addPc = -1;
        bool preIncrement = false, bad = false;
        for (int d : rd.reachingRegDefs(setpPc, ind.index)) {
            if (rd.isEntryDef(d) || !inLoop(cfg.blockOf(d))) {
                preIncrement = true; // the test sees the lagging value
                continue;
            }
            if (addPc >= 0 && d != addPc) {
                bad = true;
                break;
            }
            addPc = d;
        }
        if (bad || addPc < 0)
            continue;
        const Instruction &inc =
            kernel.insts[static_cast<std::size_t>(addPc)];
        if (inc.guardPred >= 0 ||
            !dom.dominates(cfg.blockOf(addPc), li.latch))
            continue;
        long long step = 0;
        if (inc.op == Opcode::Add || inc.op == Opcode::Sub) {
            const Operand &a = inc.src[0], &b = inc.src[1];
            AddrExpr ea = addr.srcExpr(addPc, a);
            AddrExpr eb = addr.srcExpr(addPc, b);
            if (a.isReg() && a.index == ind.index && eb.isConst())
                step = inc.op == Opcode::Add ? eb.lo : -eb.lo;
            else if (inc.op == Opcode::Add && b.isReg() &&
                     b.index == ind.index && ea.isConst())
                step = ea.lo;
        }
        if (step == 0)
            continue;

        // The increment may only see itself plus loop-invariant
        // initial definitions; their join is the initial value.
        AddrExpr init = AddrExpr::unknown();
        bool haveInit = false, selfOk = true;
        for (int d : rd.reachingRegDefs(addPc, ind.index)) {
            if (d == addPc)
                continue;
            if (!rd.isEntryDef(d) && inLoop(cfg.blockOf(d))) {
                selfOk = false;
                break;
            }
            AddrExpr e = addr.defExprOf(d);
            init = haveInit ? joinExpr(init, e, false) : e;
            haveInit = true;
        }
        if (!selfOk || !haveInit)
            continue;

        // The bound operand must be loop-invariant.
        bool invariant = bnd.isReg() || bnd.isImm() || bnd.isParam() ||
                         bnd.isSpecial();
        if (bnd.isReg()) {
            for (int d : rd.reachingRegDefs(setpPc, bnd.index)) {
                if (!rd.isEntryDef(d) && inLoop(cfg.blockOf(d))) {
                    invariant = false;
                    break;
                }
            }
        }
        if (!invariant)
            continue;
        AddrExpr bound = addr.srcExpr(setpPc, bnd);

        // Effective continue-comparison "rI cc bound".
        CmpOp cc = setp.cmp;
        if (br.guardNeg)
            cc = negateCmp(cc);
        if (!takenBack)
            cc = negateCmp(cc); // loop continues on guard-false
        if (side == 1)
            cc = mirrorCmp(cc);

        long long normStep;
        AddrExpr span;
        switch (cc) {
          case CmpOp::Lt:
          case CmpOp::Le:
            if (step <= 0)
                continue; // counting away from the bound: no bound
            normStep = step;
            span = addExpr(bound, scaleExpr(init, -1));
            break;
          case CmpOp::Gt:
          case CmpOp::Ge:
            if (step >= 0)
                continue;
            normStep = -step;
            span = addExpr(init, scaleExpr(bound, -1));
            break;
          default:
            continue; // Eq/Ne: not a monotone count
        }
        li.patternMatched = true;
        li.inductionReg = ind.index;
        li.step = normStep;
        li.inclusive = cc == CmpOp::Le || cc == CmpOp::Ge;
        li.extraTrip = preIncrement ? 1 : 0;
        li.span = span;
        return;
    }
}

} // namespace

std::vector<LoopInfo>
findLoops(const Kernel &kernel, const Cfg &cfg, const DomTree &dom,
          const ReachingDefs &rd, const AddrExprAnalysis &addr)
{
    const int nb = cfg.numBlocks();
    std::vector<int> rpoIndex(static_cast<std::size_t>(nb), -1);
    const std::vector<int> &rpo = cfg.rpo();
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);

    std::vector<LoopInfo> loops;
    for (int u = 0; u < nb; ++u) {
        if (rpoIndex[static_cast<std::size_t>(u)] < 0)
            continue; // unreachable latch: never executes
        for (int h : cfg.blocks()[static_cast<std::size_t>(u)].succs) {
            if (h < 0 || h >= nb ||
                rpoIndex[static_cast<std::size_t>(h)] < 0)
                continue;
            if (rpoIndex[static_cast<std::size_t>(h)] >
                rpoIndex[static_cast<std::size_t>(u)])
                continue; // forward edge
            LoopInfo li;
            li.header = h;
            li.latch = u;
            li.branchPc = cfg.blocks()[static_cast<std::size_t>(u)].last;
            const bool natural = dom.dominates(h, u);
            std::vector<bool> in(static_cast<std::size_t>(nb), false);
            std::vector<int> work;
            if (natural) {
                // Natural loop: header plus everything that reaches
                // the latch without passing through the header.
                in[static_cast<std::size_t>(h)] = true;
                if (u != h) {
                    in[static_cast<std::size_t>(u)] = true;
                    work.push_back(u);
                }
            } else {
                // Irreducible retreating edge: the "body" is every
                // block that can reach the latch at all — maximally
                // conservative, never under-scoped.
                in[static_cast<std::size_t>(u)] = true;
                work.push_back(u);
            }
            while (!work.empty()) {
                int b = work.back();
                work.pop_back();
                for (int p :
                     cfg.blocks()[static_cast<std::size_t>(b)].preds) {
                    if (!in[static_cast<std::size_t>(p)]) {
                        in[static_cast<std::size_t>(p)] = true;
                        work.push_back(p);
                    }
                }
            }
            in[static_cast<std::size_t>(h)] = true;
            for (int b = 0; b < nb; ++b)
                if (in[static_cast<std::size_t>(b)])
                    li.blocks.push_back(b);
            if (natural)
                matchInduction(kernel, cfg, dom, rd, addr, li);
            loops.push_back(std::move(li));
        }
    }
    std::sort(loops.begin(), loops.end(),
              [](const LoopInfo &a, const LoopInfo &b) {
                  return a.header != b.header ? a.header < b.header
                                              : a.latch < b.latch;
              });
    return loops;
}

} // namespace dacsim
