/**
 * @file
 * The static-analysis pass manager (DESIGN.md §10).
 *
 * An AnalysisContext bundles every IR-level analysis the checkers
 * consume — CFG with post-dominators, forward dominator tree,
 * reaching definitions, affine types, liveness, and symbolic address
 * expressions — computed once per kernel and shared read-only.
 * Checkers are stateless visitors that report findings through a
 * DiagnosticEngine; the PassManager runs a checker pipeline over one
 * kernel and seals the result into an immutable LintReport.
 */

#ifndef DACSIM_ANALYSIS_PASS_MANAGER_H
#define DACSIM_ANALYSIS_PASS_MANAGER_H

#include <memory>
#include <vector>

#include "analysis/addr_expr.h"
#include "analysis/diagnostics.h"
#include "analysis/dominators.h"
#include "analysis/liveness.h"
#include "common/config.h"
#include "compiler/affine_types.h"
#include "compiler/cfg.h"
#include "compiler/reaching_defs.h"

namespace dacsim
{

/** Optional launch dimensions, when the caller knows them (workload
 * registry, harness). Unknown dimensions make the race checker
 * conservative. */
struct LaunchBoundsHint
{
    bool known = false;
    Dim3 block{};
};

class AnalysisContext
{
  public:
    AnalysisContext(const Kernel &kernel, const DacConfig &dac,
                    LaunchBoundsHint launch = {});

    const Kernel &kernel() const { return kernel_; }
    const Cfg &cfg() const { return cfg_; }
    const ReachingDefs &rd() const { return rd_; }
    const AffineAnalysis &aa() const { return aa_; }
    const DomTree &dom() const { return dom_; }
    const Liveness &liveness() const { return live_; }
    const AddrExprAnalysis &addr() const { return addr_; }
    const DacConfig &dacConfig() const { return dac_; }
    const LaunchBoundsHint &launch() const { return launch_; }

    /** instToString with this kernel's parameter names. */
    std::string instText(int pc) const;

  private:
    Kernel kernel_; ///< analysed private copy (reconvergence PCs set)
    DacConfig dac_;
    LaunchBoundsHint launch_;
    Cfg cfg_;
    ReachingDefs rd_;
    AffineAnalysis aa_;
    DomTree dom_;
    Liveness live_;
    AddrExprAnalysis addr_;
};

/** One stateless checker; registered with a PassManager. */
class Checker
{
  public:
    virtual ~Checker() = default;
    virtual const char *name() const = 0;
    virtual void run(const AnalysisContext &ctx,
                     DiagnosticEngine &eng) const = 0;
};

class PassManager
{
  public:
    PassManager() = default;

    void add(std::unique_ptr<Checker> checker);

    const std::vector<std::unique_ptr<Checker>> &
    checkers() const
    {
        return checkers_;
    }

    /** Run every registered checker over @p ctx and seal the report. */
    LintReport run(const AnalysisContext &ctx) const;

    /** Convenience: build the context, then run. */
    LintReport run(const Kernel &kernel, const DacConfig &dac,
                   LaunchBoundsHint launch = {}) const;

    /** The full pipeline: all seven checkers (DESIGN.md §10 catalog). */
    static PassManager withAllCheckers();

  private:
    std::vector<std::unique_ptr<Checker>> checkers_;
};

} // namespace dacsim

#endif // DACSIM_ANALYSIS_PASS_MANAGER_H
