#include "analysis/dominators.h"

namespace dacsim
{

DomTree::DomTree(const Cfg &cfg)
{
    const int nb = cfg.numBlocks();
    idom_.assign(static_cast<std::size_t>(nb), -1);
    if (nb == 0)
        return;

    // Position of each block in reverse post-order, for intersect().
    std::vector<int> rpoIndex(static_cast<std::size_t>(nb), -1);
    const std::vector<int> &rpo = cfg.rpo();
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex[static_cast<std::size_t>(a)] >
                   rpoIndex[static_cast<std::size_t>(b)])
                a = idom_[static_cast<std::size_t>(a)];
            while (rpoIndex[static_cast<std::size_t>(b)] >
                   rpoIndex[static_cast<std::size_t>(a)])
                b = idom_[static_cast<std::size_t>(b)];
        }
        return a;
    };

    idom_[0] = 0; // sentinel: entry is its own idom during iteration
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == 0)
                continue;
            int newIdom = -1;
            for (int p : cfg.blocks()[static_cast<std::size_t>(b)].preds) {
                if (idom_[static_cast<std::size_t>(p)] < 0)
                    continue; // predecessor not yet reached
                newIdom = newIdom < 0 ? p : intersect(p, newIdom);
            }
            if (newIdom >= 0 &&
                idom_[static_cast<std::size_t>(b)] != newIdom) {
                idom_[static_cast<std::size_t>(b)] = newIdom;
                changed = true;
            }
        }
    }
    idom_[0] = -1; // restore the public convention
}

bool
DomTree::dominates(int a, int b) const
{
    if (!reachable(b))
        return false;
    while (true) {
        if (a == b)
            return true;
        int up = idom_.at(static_cast<std::size_t>(b));
        if (up < 0)
            return false;
        b = up;
    }
}

} // namespace dacsim
