/**
 * @file
 * Structured diagnostics for the kernel-IR static-analysis framework
 * (DESIGN.md §10).
 *
 * Checkers report findings through a DiagnosticEngine; finish() seals
 * them into an immutable LintReport with deterministic ordering, text
 * and JSON renderings, and severity counts. Findings carry a stable
 * rule ID (e.g. "DAC-W005") so suppressions and golden fixtures stay
 * valid across message-wording changes.
 *
 * Suppression: a kernel-source comment `// lint:allow(RULE[, RULE...])`
 * on (or immediately before) an instruction marks that instruction's
 * findings for the listed rules as suppressed. Suppressed findings
 * remain in the report (flagged) but do not count toward the severity
 * totals or the lint exit status.
 */

#ifndef DACSIM_ANALYSIS_DIAGNOSTICS_H
#define DACSIM_ANALYSIS_DIAGNOSTICS_H

#include <string>
#include <vector>

#include "isa/instruction.h"

namespace dacsim
{

enum class Severity
{
    Info,
    Warning,
    Error,
};

const char *severityName(Severity s);

/** One immutable finding. */
struct Diagnostic
{
    std::string rule;      ///< stable ID, e.g. "DAC-W005"
    Severity severity = Severity::Warning;
    std::string kernel;    ///< kernel name
    int pc = -1;           ///< instruction index; -1 for kernel-level
    /** 1-based source line of the instruction at pc (0 when the
     * kernel was built without source, e.g. synthesized IR). */
    int line = 0;
    int block = -1;        ///< basic-block id; -1 when not applicable
    std::string message;
    std::string fixit;     ///< suggested fix ("" when none)
    bool suppressed = false;
};

/** Sealed result of one kernel's analysis. */
struct LintReport
{
    std::string kernel;
    /** Sorted by (pc, rule, message); suppressed findings included. */
    std::vector<Diagnostic> findings;
    int numErrors = 0;     ///< active (unsuppressed) errors
    int numWarnings = 0;
    int numInfos = 0;
    int numSuppressed = 0;

    bool clean() const { return numErrors == 0; }

    /** Human-readable report (one finding per line plus a summary). */
    std::string renderText() const;
    /** One JSON object (stable key order, sorted findings). */
    std::string renderJson() const;
};

/**
 * Collects findings for one kernel. The engine applies the kernel's
 * `lint:allow` pragmas as findings arrive; checkers never see or
 * mutate previously reported findings.
 */
class DiagnosticEngine
{
  public:
    /** @p kernel supplies the name and the suppression pragmas. */
    explicit DiagnosticEngine(const Kernel &kernel);

    /** Report one finding at instruction @p pc (-1: kernel-level). */
    void report(const std::string &rule, Severity sev, int pc, int block,
                const std::string &message, const std::string &fixit = "");

    /** Seal: sort, count, and return the immutable report. */
    LintReport finish() const;

  private:
    const Kernel &kernel_;
    std::vector<Diagnostic> findings_;

    bool suppressedAt(int pc, const std::string &rule) const;
};

/** Combined multi-kernel JSON document (array under "kernels"). */
std::string renderJsonReportList(const std::vector<LintReport> &reports);

} // namespace dacsim

#endif // DACSIM_ANALYSIS_DIAGNOSTICS_H
