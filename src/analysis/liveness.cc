#include "analysis/liveness.h"

namespace dacsim
{

namespace
{

void
setBit(std::vector<std::uint64_t> &v, int i)
{
    v[static_cast<std::size_t>(i >> 6)] |= 1ull << (i & 63);
}

void
clearBit(std::vector<std::uint64_t> &v, int i)
{
    v[static_cast<std::size_t>(i >> 6)] &= ~(1ull << (i & 63));
}

bool
orInto(std::vector<std::uint64_t> &dst, const std::vector<std::uint64_t> &src)
{
    bool changed = false;
    for (std::size_t i = 0; i < dst.size(); ++i) {
        std::uint64_t merged = dst[i] | src[i];
        changed |= merged != dst[i];
        dst[i] = merged;
    }
    return changed;
}

} // namespace

Liveness::Liveness(const Kernel &kernel, const Cfg &cfg)
    : numRegs_(kernel.numRegs),
      words_((kernel.numRegs + kernel.numPreds + 63) / 64)
{
    const int n = kernel.numInsts();
    liveOut_.assign(static_cast<std::size_t>(n),
                    std::vector<std::uint64_t>(
                        static_cast<std::size_t>(words_), 0));
    if (n == 0 || words_ == 0)
        return;

    auto useOf = [&](int pc, std::vector<std::uint64_t> &live) {
        const Instruction &inst = kernel.insts[pc];
        for (int i = 0; i < numSources(inst.op); ++i) {
            const Operand &op = inst.src[i];
            if (op.isReg())
                setBit(live, op.index);
            else if (op.isPred())
                setBit(live, numRegs_ + op.index);
        }
        if (inst.guardPred >= 0)
            setBit(live, numRegs_ + inst.guardPred);
    };
    auto defOf = [&](int pc, std::vector<std::uint64_t> &live) {
        const Instruction &inst = kernel.insts[pc];
        if (inst.guardPred >= 0)
            return; // guarded defs do not kill
        if (inst.dst.isReg())
            clearBit(live, inst.dst.index);
        else if (inst.dst.isPred())
            clearBit(live, numRegs_ + inst.dst.index);
    };

    // Block-level fixpoint.
    const auto &blocks = cfg.blocks();
    const std::size_t nb = blocks.size();
    std::vector<std::vector<std::uint64_t>> blockIn(
        nb, std::vector<std::uint64_t>(static_cast<std::size_t>(words_), 0));
    std::vector<std::vector<std::uint64_t>> blockOut = blockIn;
    bool changed = true;
    while (changed) {
        changed = false;
        // Post-order-ish: iterate RPO backwards for fast convergence.
        const std::vector<int> &rpo = cfg.rpo();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            int b = *it;
            auto &out = blockOut[static_cast<std::size_t>(b)];
            for (int s : blocks[static_cast<std::size_t>(b)].succs)
                changed |= orInto(out, blockIn[static_cast<std::size_t>(s)]);
            std::vector<std::uint64_t> live = out;
            for (int pc = blocks[static_cast<std::size_t>(b)].last;
                 pc >= blocks[static_cast<std::size_t>(b)].first; --pc) {
                defOf(pc, live);
                useOf(pc, live);
            }
            changed |= orInto(blockIn[static_cast<std::size_t>(b)], live);
        }
    }

    // Per-instruction live-out, one backward pass per block.
    for (std::size_t b = 0; b < nb; ++b) {
        std::vector<std::uint64_t> live = blockOut[b];
        for (int pc = blocks[b].last; pc >= blocks[b].first; --pc) {
            liveOut_[static_cast<std::size_t>(pc)] = live;
            defOf(pc, live);
            useOf(pc, live);
        }
    }
}

bool
Liveness::bit(int pc, int idx) const
{
    const auto &v = liveOut_.at(static_cast<std::size_t>(pc));
    return (v[static_cast<std::size_t>(idx >> 6)] >> (idx & 63)) & 1;
}

bool
Liveness::liveOutReg(int pc, int reg) const
{
    return bit(pc, reg);
}

bool
Liveness::liveOutPred(int pc, int pred) const
{
    return bit(pc, numRegs_ + pred);
}

} // namespace dacsim
