/**
 * @file
 * Forward dominator tree over a Cfg (DESIGN.md §10).
 *
 * The Cfg already computes *post*-dominators (for SIMT reconvergence);
 * the analysis framework also needs forward dominance — e.g. to tell
 * which blocks are reachable at all, and whether a barrier separates
 * two accesses on every path. Implemented with the Cooper-Harvey-
 * Kennedy iterative algorithm over the reverse post-order the Cfg
 * already exposes.
 */

#ifndef DACSIM_ANALYSIS_DOMINATORS_H
#define DACSIM_ANALYSIS_DOMINATORS_H

#include <vector>

#include "compiler/cfg.h"

namespace dacsim
{

class DomTree
{
  public:
    explicit DomTree(const Cfg &cfg);

    /** Immediate dominator of block @p b; -1 for the entry block and
     * for blocks unreachable from the entry. */
    int idom(int b) const { return idom_.at(static_cast<std::size_t>(b)); }

    /** Is block @p b reachable from the entry block? */
    bool
    reachable(int b) const
    {
        return b == 0 || idom_.at(static_cast<std::size_t>(b)) >= 0;
    }

    /** Does @p a dominate @p b (a == b counts)? False when @p b is
     * unreachable. */
    bool dominates(int a, int b) const;

  private:
    std::vector<int> idom_;
};

} // namespace dacsim

#endif // DACSIM_ANALYSIS_DOMINATORS_H
