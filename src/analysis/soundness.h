/**
 * @file
 * The decoupler soundness auditor (rule DAC-E007, DESIGN.md §10).
 *
 * Independently re-derives what the decoupling pass must have proven
 * and cross-checks its output:
 *
 *  1. every decoupled instruction's address/predicate really is
 *     affine-trackable under the configured condition budget, and its
 *     backward slice is affine-closed (no loads, no non-affine defs)
 *     and fully materialized in the affine stream;
 *  2. the affine stream contains no direct memory instructions and no
 *     dequeues — it communicates with memory only through enq.*;
 *  3. queue traffic is produced before it is consumed: the static
 *     enq.data/enq.addr/enq.pred sequences of the affine stream line
 *     up one-to-one (by original PC, in program order, with matching
 *     guards) with the ld.deq/st.deq/deq.pred sequences of the
 *     non-affine stream;
 *  4. every branch controlling a decoupled instruction is replicated
 *     in both streams, and epoch-counted barriers agree.
 *
 * Any disagreement with decoupler.cc is reported as a hard error.
 */

#ifndef DACSIM_ANALYSIS_SOUNDNESS_H
#define DACSIM_ANALYSIS_SOUNDNESS_H

#include "analysis/diagnostics.h"
#include "analysis/pass_manager.h"
#include "compiler/decoupler.h"

namespace dacsim
{

/** Audit @p dec (produced from ctx.kernel()) and report DAC-E007
 * findings into @p eng. */
void auditDecoupling(const AnalysisContext &ctx, const DecoupledKernel &dec,
                     DiagnosticEngine &eng);

/** Convenience wrapper: decouple @p kernel, audit, and seal a report.
 * Used by the harness under DACSIM_LINT=1. */
LintReport auditDecoupling(const Kernel &kernel, const DacConfig &cfg);

} // namespace dacsim

#endif // DACSIM_ANALYSIS_SOUNDNESS_H
