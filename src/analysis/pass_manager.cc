#include "analysis/pass_manager.h"

#include <utility>

#include "analysis/checkers.h"

namespace dacsim
{

AnalysisContext::AnalysisContext(const Kernel &kernel, const DacConfig &dac,
                                 LaunchBoundsHint launch)
    : kernel_(kernel),
      dac_(dac),
      launch_(launch),
      cfg_(analyzeControlFlow(kernel_)),
      rd_(kernel_, cfg_),
      aa_(kernel_, cfg_, rd_, dac_.maxDivergentConditions),
      dom_(cfg_),
      live_(kernel_, cfg_),
      addr_(kernel_, cfg_, rd_)
{
}

std::string
AnalysisContext::instText(int pc) const
{
    return instToString(kernel_.insts.at(static_cast<std::size_t>(pc)),
                        kernel_.params);
}

void
PassManager::add(std::unique_ptr<Checker> checker)
{
    checkers_.push_back(std::move(checker));
}

LintReport
PassManager::run(const AnalysisContext &ctx) const
{
    DiagnosticEngine eng(ctx.kernel());
    for (const auto &c : checkers_)
        c->run(ctx, eng);
    return eng.finish();
}

LintReport
PassManager::run(const Kernel &kernel, const DacConfig &dac,
                 LaunchBoundsHint launch) const
{
    AnalysisContext ctx(kernel, dac, launch);
    return run(ctx);
}

PassManager
PassManager::withAllCheckers()
{
    PassManager pm;
    pm.add(makeUninitChecker());
    pm.add(makeBarrierDivergenceChecker());
    pm.add(makeSharedRaceChecker());
    pm.add(makeDeadCodeChecker());
    pm.add(makeCoalescingChecker());
    pm.add(makeDecouplerSoundnessChecker());
    pm.add(makeLoopBoundChecker());
    return pm;
}

} // namespace dacsim
