#include "service/queue.h"

namespace dacsim::service
{

DurableQueue::DurableQueue(const std::string &path) : journal_(path, "Q1")
{
}

void
DurableQueue::submit(const std::string &key,
                     const std::string &encodedRequest)
{
    journal_.record(key, "p " + journalEscape(encodedRequest));
}

void
DurableQueue::complete(const std::string &key)
{
    journal_.record(key, "d");
}

std::vector<std::pair<std::string, std::string>>
DurableQueue::pending() const
{
    std::vector<std::pair<std::string, std::string>> out;
    journal_.forEach([&](const std::string &key, const std::string &payload) {
        if (payload.size() >= 2 && payload[0] == 'p' && payload[1] == ' ')
            out.emplace_back(key, journalUnescape(payload.substr(2)));
    });
    return out;
}

} // namespace dacsim::service
