/**
 * @file
 * Durable job queue of the dacsimd daemon (DESIGN.md §14.4).
 *
 * Built on the generic LineJournal (tag "Q1"): submitting a job
 * appends a pending record carrying the encoded JobSpec (the `j2`
 * form — the same encoding the wire uses); completing it appends a
 * done record for the same key, which wins by the journal's
 * last-record-wins rule. A daemon killed with outstanding jobs
 * therefore reopens the journal, reads back exactly the pending set,
 * and resumes the backlog — and because specs round-trip byte-exactly
 * through the codec, the resumed jobs are the identical jobs, not
 * reconstructions. Journals written before DSF2 carry legacy `q1`
 * lines; decodeSpec() reads both, so an upgrade never drops a
 * backlog.
 */

#ifndef DACSIM_SERVICE_QUEUE_H
#define DACSIM_SERVICE_QUEUE_H

#include <string>
#include <utility>
#include <vector>

#include "harness/journal.h"

namespace dacsim::service
{

class DurableQueue
{
  public:
    /** Open (and load) the queue journal at @p path. */
    explicit DurableQueue(const std::string &path);

    /** Journal @p encodedRequest as pending work under @p key. */
    void submit(const std::string &key, const std::string &encodedRequest);

    /** Journal @p key as done (idempotent). */
    void complete(const std::string &key);

    /** The backlog: every submitted key not yet completed, in key
     * order, with its encoded request. */
    std::vector<std::pair<std::string, std::string>> pending() const;

  private:
    LineJournal journal_;
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_QUEUE_H
