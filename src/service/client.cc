#include "service/client.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "harness/isolation.h"

namespace dacsim::service
{

namespace
{

std::int64_t
nowMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Client::Client(std::string socketPath, ClientOptions opt)
    : path_(std::move(socketPath)), opt_(opt)
{
    ::signal(SIGPIPE, SIG_IGN);
}

Client::~Client()
{
    disconnect();
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
Client::ensureConnected(std::int64_t deadline, std::string *error)
{
    if (fd_ >= 0)
        return true;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "socket path too long: " + path_;
        return false;
    }
    std::strncpy(addr.sun_path, path_.c_str(), sizeof addr.sun_path - 1);
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0) {
            fd_ = fd;
            buf_.clear();
            // Negotiate DSF2, then resubmit everything still pending:
            // the daemon may have died holding our jobs, and jobs are
            // idempotent by content-addressing.
            writeAll(fd_, frameMessage(encodeHello(), frameMagicV2));
            for (const auto &[id, spec] : pending_)
                sendSpec(spec);
            return true;
        }
        const int err = errno;
        if (fd >= 0)
            ::close(fd);
        if (nowMs() >= deadline) {
            if (error)
                *error = "cannot reach dacsimd at " + path_ + ": " +
                         std::strerror(err);
            return false;
        }
        // The daemon may be restarting (kill/resume tests do exactly
        // this): wait and retry until the deadline.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt_.reconnectDelayMs));
    }
}

void
Client::sendSpec(const JobSpec &spec)
{
    if (fd_ >= 0)
        writeAll(fd_, frameMessage(encodeSpec(spec, 2), frameMagicV2));
}

std::uint64_t
Client::submit(JobSpec spec)
{
    if (spec.id == 0 || pending_.count(spec.id) != 0 ||
        done_.count(spec.id) != 0)
        spec.id = nextId_;
    if (spec.id >= nextId_)
        nextId_ = spec.id + 1;
    const std::uint64_t id = spec.id;
    pending_[id] = spec;
    resubmits_[id] = 0;
    sendSpec(spec); // no-op when not yet connected; wait() connects
    return id;
}

bool
Client::dispatch(const std::string &payload)
{
    const std::string tag = payloadTag(payload);
    if (tag == "h2")
        return true; // the daemon's hello echo
    if (tag == "g2") {
        JobProgress p;
        if (!decodeProgress(payload, &p))
            return false;
        if (progress_)
            progress_(p);
        return true;
    }
    JobResult got;
    if (!decodeResult(payload, &got))
        return false;
    auto it = pending_.find(got.id);
    if (it == pending_.end())
        return true; // stale duplicate (e.g. re-sent after reconnect)
    if (got.retryable() && resubmits_[got.id] < opt_.maxResubmits) {
        const int n = ++resubmits_[got.id];
        // An overloaded daemon is telling us to yield: back off
        // harder each time so the favoured clients drain first.
        if (got.status == JobStatus::Overloaded)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                opt_.reconnectDelayMs * n));
        sendSpec(it->second);
        return true;
    }
    const std::uint64_t doneId = got.id;
    pending_.erase(it);
    resubmits_.erase(doneId);
    done_[doneId] = std::move(got);
    return true;
}

bool
Client::wait(std::uint64_t id, JobResult *rs, std::string *error)
{
    const std::int64_t deadline = nowMs() + opt_.deadlineMs;
    for (;;) {
        auto doneIt = done_.find(id);
        if (doneIt != done_.end()) {
            *rs = std::move(doneIt->second);
            done_.erase(doneIt);
            return true;
        }
        if (pending_.count(id) == 0) {
            if (error)
                *error = "wait() on unknown job id " + std::to_string(id);
            return false;
        }
        if (!ensureConnected(deadline, error))
            return false;
        // Pump the connection: pop complete frames, read more bytes
        // when short. EOF or garbage means the daemon died (or
        // restarted) mid-job — reconnect and resubmit.
        bool streamDead = false;
        for (;;) {
            std::string payload, detail;
            const FrameStatus st = popFrame(&buf_, &payload, &detail);
            if (st == FrameStatus::Ok) {
                if (!dispatch(payload)) {
                    streamDead = true;
                    break;
                }
                if (done_.count(id) != 0)
                    break;
                continue;
            }
            if (st != FrameStatus::NeedMore) {
                streamDead = true;
                break;
            }
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
            if (n > 0) {
                buf_.append(tmp, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            streamDead = true;
            break;
        }
        if (streamDead) {
            disconnect();
            if (nowMs() >= deadline) {
                if (error)
                    *error = "dacsimd at " + path_ +
                             " keeps dropping the connection";
                return false;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opt_.reconnectDelayMs));
        }
    }
}

bool
Client::call(const JobSpec &spec, JobResult *rs, std::string *error)
{
    return wait(submit(spec), rs, error);
}

} // namespace dacsim::service
