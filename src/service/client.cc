#include "service/client.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "harness/isolation.h"

namespace dacsim::service
{

namespace
{

std::int64_t
nowMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

ServiceClient::ServiceClient(std::string socketPath, ClientOptions opt)
    : path_(std::move(socketPath)), opt_(opt)
{
    ::signal(SIGPIPE, SIG_IGN);
}

ServiceClient::~ServiceClient()
{
    disconnect();
}

void
ServiceClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
ServiceClient::ensureConnected(std::int64_t deadline, std::string *error)
{
    if (fd_ >= 0)
        return true;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "socket path too long: " + path_;
        return false;
    }
    std::strncpy(addr.sun_path, path_.c_str(), sizeof addr.sun_path - 1);
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0) {
            fd_ = fd;
            buf_.clear();
            return true;
        }
        const int err = errno;
        if (fd >= 0)
            ::close(fd);
        if (nowMs() >= deadline) {
            if (error)
                *error = "cannot reach dacsimd at " + path_ + ": " +
                         std::strerror(err);
            return false;
        }
        // The daemon may be restarting (kill/resume tests do exactly
        // this): wait and retry until the deadline.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt_.reconnectDelayMs));
    }
}

bool
ServiceClient::call(const JobRequest &rq, JobResponse *rs,
                    std::string *error)
{
    const std::int64_t deadline = nowMs() + opt_.deadlineMs;
    const std::string wire = frameMessage(encodeRequest(rq));
    int resubmits = 0;
    for (;;) {
        if (!ensureConnected(deadline, error))
            return false;
        writeAll(fd_, wire);
        // Block for one complete response frame; EOF or garbage means
        // the daemon died (or restarted) mid-job — reconnect and
        // resubmit the identical, idempotent request.
        bool streamDead = false;
        for (;;) {
            std::string payload, detail;
            const FrameStatus st = popFrame(&buf_, &payload, &detail);
            if (st == FrameStatus::Ok) {
                JobResponse got;
                if (!decodeResponse(payload, &got)) {
                    streamDead = true;
                    break;
                }
                if (!got.ok && got.retryable &&
                    resubmits < opt_.maxResubmits) {
                    ++resubmits;
                    streamDead = false;
                    // Same connection, fresh submission: the daemon's
                    // chaos/flake sequence advances, so this converges.
                    writeAll(fd_, wire);
                    continue;
                }
                *rs = got;
                return true;
            }
            if (st != FrameStatus::NeedMore) {
                streamDead = true;
                break;
            }
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
            if (n > 0) {
                buf_.append(tmp, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            streamDead = true;
            break;
        }
        if (streamDead) {
            disconnect();
            if (nowMs() >= deadline) {
                if (error)
                    *error = "dacsimd at " + path_ +
                             " keeps dropping the connection";
                return false;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opt_.reconnectDelayMs));
        }
    }
}

} // namespace dacsim::service
