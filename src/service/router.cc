#include "service/router.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/env.h"

namespace dacsim::service
{

namespace
{

std::int64_t
nowMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

ShardRouter::ShardRouter(std::vector<std::string> sockets,
                         RouterOptions opt)
    : sockets_(std::move(sockets)), opt_(opt)
{
    clients_.resize(sockets_.size());
    deadUntil_.assign(sockets_.size(), 0);
}

std::vector<std::string>
ShardRouter::shardsFromEnv()
{
    std::vector<std::string> out;
    const std::string &shards = env().serviceShards;
    std::size_t pos = 0;
    while (pos <= shards.size()) {
        std::size_t sep = shards.find(',', pos);
        if (sep == std::string::npos)
            sep = shards.size();
        if (sep > pos)
            out.push_back(shards.substr(pos, sep - pos));
        pos = sep + 1;
    }
    if (out.empty() && !env().serviceSocket.empty())
        out.push_back(env().serviceSocket);
    return out;
}

void
ShardRouter::onProgress(ProgressFn fn)
{
    progress_ = std::move(fn);
    for (auto &c : clients_)
        if (c)
            c->onProgress(progress_);
}

Client &
ShardRouter::clientFor(std::size_t shard)
{
    if (!clients_[shard]) {
        ClientOptions copt = opt_.client;
        // With siblings available, bound the time spent probing one
        // shard; a lone shard gets the whole budget (nowhere to go).
        if (sockets_.size() > 1)
            copt.deadlineMs = opt_.failoverMs;
        clients_[shard] = std::make_unique<Client>(sockets_[shard], copt);
        if (progress_)
            clients_[shard]->onProgress(progress_);
    }
    return *clients_[shard];
}

std::vector<std::size_t>
ShardRouter::rank(const std::string &key) const
{
    // Rendezvous hashing: score every shard against the key and sort
    // descending. Each key gets an independent pseudo-random
    // preference permutation, so removing the top shard sends its
    // keys to their individual next ranks (spreading the load), and
    // a new shard only claims the keys it now scores highest on.
    std::vector<std::pair<std::uint64_t, std::size_t>> scored;
    scored.reserve(sockets_.size());
    for (std::size_t i = 0; i < sockets_.size(); ++i) {
        std::uint64_t h = 1469598103934665603ull;
        h = fnvMix(h, key);
        h = fnvMix(h, sockets_[i]);
        // FNV barely diffuses the final byte it mixes, and sibling
        // socket paths typically differ only in a trailing digit —
        // without an avalanche finalizer the ranking degenerates to a
        // couple of hash bits and shard load skews badly.
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        scored.emplace_back(h, i);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });
    std::vector<std::size_t> order;
    order.reserve(scored.size());
    for (const auto &[h, i] : scored)
        order.push_back(i);
    return order;
}

std::string
ShardRouter::keyFor(const JobSpec &spec)
{
    return cacheKeyFor(spec, &fps_);
}

bool
ShardRouter::call(const JobSpec &spec, JobResult *rs, std::string *error)
{
    if (sockets_.empty()) {
        if (error)
            *error = "no shards configured";
        return false;
    }
    const std::vector<std::size_t> order = rank(keyFor(spec));
    const std::int64_t deadline = nowMs() + opt_.client.deadlineMs;
    std::string lastErr;
    for (;;) {
        bool tried = false;
        for (std::size_t shard : order) {
            if (deadUntil_[shard] > nowMs() && sockets_.size() > 1)
                continue; // cooling down; the sibling owns it for now
            tried = true;
            std::string err;
            if (clientFor(shard).call(spec, rs, &err))
                return true;
            // Unreachable within the failover budget (or it kept
            // dropping us): mark it cold and walk down the ranks.
            deadUntil_[shard] = nowMs() + opt_.deadSkipMs;
            lastErr = sockets_[shard] + ": " + err;
            if (nowMs() >= deadline)
                break;
        }
        if (!tried) {
            // Everything is cooling down — a full outage looks the
            // same as N dead shards. Clear the cooldowns and probe
            // again until the overall deadline says stop.
            std::fill(deadUntil_.begin(), deadUntil_.end(), 0);
        }
        if (nowMs() >= deadline) {
            if (error)
                *error = "no shard reachable: " +
                         (lastErr.empty() ? "all cooling down" : lastErr);
            return false;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt_.client.reconnectDelayMs));
    }
}

} // namespace dacsim::service
