#include "service/codec.h"

#include <cstring>
#include <sstream>

#include "common/snapshot.h"
#include "harness/journal.h"

namespace dacsim::service
{

namespace
{

void
putU32(std::string *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const std::string &s, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(s[off + i]))
             << (8 * i);
    return v;
}

} // namespace

std::string
frameMessage(const std::string &payload, std::uint32_t magic)
{
    std::string out;
    out.reserve(12 + payload.size());
    putU32(&out, magic);
    putU32(&out, static_cast<std::uint32_t>(payload.size()));
    putU32(&out, crc32(payload.data(), payload.size()));
    out += payload;
    return out;
}

const char *
frameStatusName(FrameStatus s)
{
    switch (s) {
      case FrameStatus::Ok: return "ok";
      case FrameStatus::NeedMore: return "need-more";
      case FrameStatus::BadMagic: return "bad-magic";
      case FrameStatus::Oversized: return "oversized";
      case FrameStatus::BadCrc: return "bad-crc";
    }
    return "?";
}

FrameStatus
popFrame(std::string *buf, std::string *payload, std::string *detail,
         int *version)
{
    if (buf->size() < 12)
        return FrameStatus::NeedMore;
    const std::uint32_t magic = getU32(*buf, 0);
    if (magic != frameMagic && magic != frameMagicV2) {
        if (detail) {
            std::ostringstream os;
            os << "bad frame magic 0x" << std::hex << magic
               << " (stream out of sync)";
            *detail = os.str();
        }
        return FrameStatus::BadMagic;
    }
    const std::uint32_t len = getU32(*buf, 4);
    if (len > maxFramePayload) {
        if (detail) {
            std::ostringstream os;
            os << "oversized frame: " << len << " bytes (limit "
               << maxFramePayload << ")";
            *detail = os.str();
        }
        return FrameStatus::Oversized;
    }
    if (buf->size() < 12 + static_cast<std::size_t>(len))
        return FrameStatus::NeedMore;
    const std::uint32_t want = getU32(*buf, 8);
    const std::uint32_t got = crc32(buf->data() + 12, len);
    if (want != got) {
        if (detail) {
            std::ostringstream os;
            os << "frame CRC mismatch (header " << std::hex << want
               << ", payload " << got << ")";
            *detail = os.str();
        }
        return FrameStatus::BadCrc;
    }
    if (version)
        *version = magic == frameMagicV2 ? 2 : 1;
    *payload = buf->substr(12, len);
    buf->erase(0, 12 + static_cast<std::size_t>(len));
    return FrameStatus::Ok;
}

std::string
payloadTag(const std::string &payload)
{
    std::istringstream is(payload);
    std::string tag;
    is >> tag;
    return tag;
}

// ----- hello --------------------------------------------------------------

std::string
encodeHello()
{
    return "h2 proto=2";
}

bool
decodeHello(const std::string &payload, int *proto)
{
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || tag != "h2")
        return false;
    int p = 2;
    std::string tok;
    while (is >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            return false;
        if (tok.substr(0, eq) == "proto") {
            try {
                p = std::stoi(tok.substr(eq + 1));
            } catch (const std::exception &) {
                return false;
            }
        }
        // Unknown hello keys are ignored: hellos are the one message
        // future protocol generations may extend compatibly.
    }
    if (proto)
        *proto = p;
    return true;
}

// ----- job spec -----------------------------------------------------------

double
JobSpec::scale() const
{
    double d = 0;
    static_assert(sizeof d == sizeof scaleBits);
    std::memcpy(&d, &scaleBits, sizeof d);
    return d;
}

void
JobSpec::setScale(double s)
{
    std::memcpy(&scaleBits, &s, sizeof scaleBits);
}

bool
techniqueFromName(const std::string &name, Technique *t)
{
    for (Technique cand : {Technique::Baseline, Technique::Cae,
                           Technique::Mta, Technique::Dac}) {
        if (name == techniqueName(cand)) {
            *t = cand;
            return true;
        }
    }
    return false;
}

const char *
jobKindName(JobKind k)
{
    return k == JobKind::Predict ? "predict" : "run";
}

std::string
encodeSpec(const JobSpec &spec, int version)
{
    std::ostringstream os;
    os << (version >= 2 ? "j2" : "q1") << " id=" << spec.id
       << " kind=" << jobKindName(spec.kind)
       << " bench=" << journalEscape(spec.bench)
       << " tech=" << techniqueName(spec.tech) << " scale=" << std::hex
       << spec.scaleBits << std::dec
       << " faults=" << journalEscape(spec.faultSpec);
    if (version >= 2)
        os << " client=" << journalEscape(spec.client)
           << " weight=" << spec.weight
           << " prog=" << (spec.progress ? 1 : 0);
    return os.str();
}

bool
decodeSpec(const std::string &payload, JobSpec *spec, std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || (tag != "q1" && tag != "j2"))
        return fail("unknown request tag (expected q1 or j2)");
    const bool v2 = tag == "j2";
    JobSpec o;
    bool haveBench = false, haveTech = false;
    std::string tok;
    try {
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return fail("malformed request field '" + tok + "'");
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "id") {
                o.id = std::stoull(val);
            } else if (key == "kind") {
                // Absent key means Run: pre-kind journal entries and
                // clients stay decodable.
                if (val == "run")
                    o.kind = JobKind::Run;
                else if (val == "predict")
                    o.kind = JobKind::Predict;
                else
                    return fail("unknown job kind '" + val + "'");
            } else if (key == "bench") {
                o.bench = journalUnescape(val);
                haveBench = true;
            } else if (key == "tech") {
                if (!techniqueFromName(val, &o.tech))
                    return fail("unknown technique '" + val + "'");
                haveTech = true;
            } else if (key == "scale") {
                o.scaleBits = std::stoull(val, nullptr, 16);
            } else if (key == "faults") {
                o.faultSpec = journalUnescape(val);
            } else if (v2 && key == "client") {
                o.client = journalUnescape(val);
            } else if (v2 && key == "weight") {
                o.weight = std::stoi(val);
            } else if (v2 && key == "prog") {
                if (val != "0" && val != "1")
                    return fail("progress flag must be 0 or 1");
                o.progress = val == "1";
            } else {
                return fail("unknown request key '" + key + "'");
            }
        }
    } catch (const std::exception &) {
        return fail("non-numeric value in request field '" + tok + "'");
    }
    if (!haveBench || o.bench.empty())
        return fail("request names no benchmark");
    if (!haveTech)
        return fail("request names no technique");
    const double s = o.scale();
    if (!(s > 0.0) || s > 64.0)
        return fail("request scale out of range");
    if (o.weight < 1 || o.weight > 1024)
        return fail("request weight out of range [1, 1024]");
    *spec = std::move(o);
    return true;
}

// ----- job result ---------------------------------------------------------

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::Retryable: return "retryable";
      case JobStatus::Overloaded: return "overloaded";
    }
    return "?";
}

bool
jobStatusFromName(const std::string &name, JobStatus *s)
{
    for (JobStatus cand : {JobStatus::Ok, JobStatus::Failed,
                           JobStatus::Retryable, JobStatus::Overloaded}) {
        if (name == jobStatusName(cand)) {
            *s = cand;
            return true;
        }
    }
    return false;
}

const char *
resultSourceName(ResultSource s)
{
    switch (s) {
      case ResultSource::Simulated: return "sim";
      case ResultSource::Cached: return "cache";
      case ResultSource::Predicted: return "pred";
    }
    return "?";
}

bool
resultSourceFromName(const std::string &name, ResultSource *s)
{
    for (ResultSource cand :
         {ResultSource::Simulated, ResultSource::Cached,
          ResultSource::Predicted}) {
        if (name == resultSourceName(cand)) {
            *s = cand;
            return true;
        }
    }
    return false;
}

std::string
encodeResult(const JobResult &rs, int version)
{
    std::ostringstream os;
    if (version >= 2) {
        os << "r2 id=" << rs.id << " st=" << jobStatusName(rs.status)
           << " src=" << resultSourceName(rs.source)
           << " att=" << rs.attempts
           << " err=" << journalEscape(rs.errorJson)
           << " o=" << journalEscape(encodeOutcome(rs.outcome));
        return os.str();
    }
    // Legacy p1 flag soup: ok/cached/est/rt are projections of the
    // typed status and source, byte-identical to what a pre-DSF2
    // daemon emitted for the same job.
    os << "p1 id=" << rs.id << " ok=" << (rs.ok() ? 1 : 0)
       << " cached=" << (rs.source == ResultSource::Cached ? 1 : 0)
       << " est=" << (rs.source == ResultSource::Predicted ? 1 : 0)
       << " att=" << rs.attempts << " rt=" << (rs.retryable() ? 1 : 0)
       << " err=" << journalEscape(rs.errorJson)
       << " o=" << journalEscape(encodeOutcome(rs.outcome));
    return os.str();
}

bool
decodeResult(const std::string &payload, JobResult *rs)
{
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || (tag != "p1" && tag != "r2"))
        return false;
    const bool v2 = tag == "r2";
    JobResult o;
    bool haveOutcome = false, haveStatus = false;
    bool ok = false, cached = false, est = false, rt = false;
    std::string tok;
    try {
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return false;
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "id") {
                o.id = std::stoull(val);
            } else if (v2 && key == "st") {
                if (!jobStatusFromName(val, &o.status))
                    return false;
                haveStatus = true;
            } else if (v2 && key == "src") {
                if (!resultSourceFromName(val, &o.source))
                    return false;
            } else if (!v2 && key == "ok") {
                ok = val == "1";
            } else if (!v2 && key == "cached") {
                cached = val == "1";
            } else if (!v2 && key == "est") {
                est = val == "1";
            } else if (!v2 && key == "rt") {
                rt = val == "1";
            } else if (key == "att") {
                o.attempts = std::stoi(val);
            } else if (key == "err") {
                o.errorJson = journalUnescape(val);
            } else if (key == "o") {
                if (!decodeOutcome(journalUnescape(val), &o.outcome))
                    return false;
                haveOutcome = true;
            } else {
                return false; // unknown key: different format version
            }
        }
    } catch (const std::exception &) {
        return false;
    }
    if (!haveOutcome)
        return false;
    if (v2) {
        if (!haveStatus)
            return false;
    } else {
        o.status = ok ? JobStatus::Ok
                      : (rt ? JobStatus::Retryable : JobStatus::Failed);
        o.source = cached ? ResultSource::Cached
                          : (est ? ResultSource::Predicted
                                 : ResultSource::Simulated);
    }
    *rs = std::move(o);
    return true;
}

// ----- job progress -------------------------------------------------------

std::string
encodeProgress(const JobProgress &p)
{
    std::ostringstream os;
    os << "g2 id=" << p.id << " cycle=" << p.sample.cycle
       << " wi=" << p.sample.warpInsts << " lr=" << p.sample.loadRequests
       << " l1m=" << p.sample.l1Misses
       << " deq=" << p.sample.deqStallCycles
       << " aw=" << p.sample.activeWarps << " atq=" << p.sample.atq
       << " pwaq=" << p.sample.pwaq << " pwpq=" << p.sample.pwpq
       << " mshr=" << p.sample.mshrLive << " idle=" << p.stalls.idleSlots
       << " sr=";
    for (std::size_t r = 0; r < p.stalls.reasons.size(); ++r)
        os << (r != 0 ? "," : "") << p.stalls.reasons[r];
    return os.str();
}

bool
decodeProgress(const std::string &payload, JobProgress *p)
{
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || tag != "g2")
        return false;
    JobProgress o;
    bool haveCycle = false;
    std::string tok;
    try {
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return false;
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "id") {
                o.id = std::stoull(val);
            } else if (key == "cycle") {
                o.sample.cycle = std::stoull(val);
                haveCycle = true;
            } else if (key == "wi") {
                o.sample.warpInsts = std::stoull(val);
            } else if (key == "lr") {
                o.sample.loadRequests = std::stoull(val);
            } else if (key == "l1m") {
                o.sample.l1Misses = std::stoull(val);
            } else if (key == "deq") {
                o.sample.deqStallCycles = std::stoull(val);
            } else if (key == "aw") {
                o.sample.activeWarps = std::stoi(val);
            } else if (key == "atq") {
                o.sample.atq = std::stoi(val);
            } else if (key == "pwaq") {
                o.sample.pwaq = std::stoi(val);
            } else if (key == "pwpq") {
                o.sample.pwpq = std::stoi(val);
            } else if (key == "mshr") {
                o.sample.mshrLive = std::stoi(val);
            } else if (key == "idle") {
                o.stalls.idleSlots = std::stoull(val);
            } else if (key == "sr") {
                std::size_t pos = 0, r = 0;
                while (pos <= val.size() &&
                       r < o.stalls.reasons.size()) {
                    std::size_t sep = val.find(',', pos);
                    if (sep == std::string::npos)
                        sep = val.size();
                    o.stalls.reasons[r++] =
                        std::stoull(val.substr(pos, sep - pos));
                    pos = sep + 1;
                }
                if (r != o.stalls.reasons.size())
                    return false;
            } else {
                return false;
            }
        }
    } catch (const std::exception &) {
        return false;
    }
    if (!haveCycle)
        return false;
    *p = std::move(o);
    return true;
}

// ----- child-pipe outcome -------------------------------------------------

std::string
encodeChildOutcome(const RunOutcome &out)
{
    return "o2 " + encodeOutcome(out);
}

bool
decodeChildOutcome(const std::string &payload, RunOutcome *out)
{
    if (payload.rfind("o2 ", 0) != 0)
        return false;
    return decodeOutcome(payload.substr(3), out);
}

} // namespace dacsim::service
