#include "service/codec.h"

#include <cstring>
#include <sstream>

#include "common/snapshot.h"
#include "harness/journal.h"

namespace dacsim::service
{

namespace
{

void
putU32(std::string *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const std::string &s, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(s[off + i]))
             << (8 * i);
    return v;
}

} // namespace

std::string
frameMessage(const std::string &payload)
{
    std::string out;
    out.reserve(12 + payload.size());
    putU32(&out, frameMagic);
    putU32(&out, static_cast<std::uint32_t>(payload.size()));
    putU32(&out, crc32(payload.data(), payload.size()));
    out += payload;
    return out;
}

const char *
frameStatusName(FrameStatus s)
{
    switch (s) {
      case FrameStatus::Ok: return "ok";
      case FrameStatus::NeedMore: return "need-more";
      case FrameStatus::BadMagic: return "bad-magic";
      case FrameStatus::Oversized: return "oversized";
      case FrameStatus::BadCrc: return "bad-crc";
    }
    return "?";
}

FrameStatus
popFrame(std::string *buf, std::string *payload, std::string *detail)
{
    if (buf->size() < 12)
        return FrameStatus::NeedMore;
    const std::uint32_t magic = getU32(*buf, 0);
    if (magic != frameMagic) {
        if (detail) {
            std::ostringstream os;
            os << "bad frame magic 0x" << std::hex << magic
               << " (stream out of sync)";
            *detail = os.str();
        }
        return FrameStatus::BadMagic;
    }
    const std::uint32_t len = getU32(*buf, 4);
    if (len > maxFramePayload) {
        if (detail) {
            std::ostringstream os;
            os << "oversized frame: " << len << " bytes (limit "
               << maxFramePayload << ")";
            *detail = os.str();
        }
        return FrameStatus::Oversized;
    }
    if (buf->size() < 12 + static_cast<std::size_t>(len))
        return FrameStatus::NeedMore;
    const std::uint32_t want = getU32(*buf, 8);
    const std::uint32_t got = crc32(buf->data() + 12, len);
    if (want != got) {
        if (detail) {
            std::ostringstream os;
            os << "frame CRC mismatch (header " << std::hex << want
               << ", payload " << got << ")";
            *detail = os.str();
        }
        return FrameStatus::BadCrc;
    }
    *payload = buf->substr(12, len);
    buf->erase(0, 12 + static_cast<std::size_t>(len));
    return FrameStatus::Ok;
}

// ----- job request --------------------------------------------------------

double
JobRequest::scale() const
{
    double d = 0;
    static_assert(sizeof d == sizeof scaleBits);
    std::memcpy(&d, &scaleBits, sizeof d);
    return d;
}

void
JobRequest::setScale(double s)
{
    std::memcpy(&scaleBits, &s, sizeof scaleBits);
}

bool
techniqueFromName(const std::string &name, Technique *t)
{
    for (Technique cand : {Technique::Baseline, Technique::Cae,
                           Technique::Mta, Technique::Dac}) {
        if (name == techniqueName(cand)) {
            *t = cand;
            return true;
        }
    }
    return false;
}

const char *
jobKindName(JobKind k)
{
    return k == JobKind::Predict ? "predict" : "run";
}

std::string
encodeRequest(const JobRequest &rq)
{
    std::ostringstream os;
    os << "q1 id=" << rq.id << " kind=" << jobKindName(rq.kind)
       << " bench=" << journalEscape(rq.bench)
       << " tech=" << techniqueName(rq.tech) << " scale=" << std::hex
       << rq.scaleBits << std::dec
       << " faults=" << journalEscape(rq.faultSpec);
    return os.str();
}

bool
decodeRequest(const std::string &payload, JobRequest *rq,
              std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || tag != "q1")
        return fail("unknown request tag (expected q1)");
    JobRequest o;
    bool haveBench = false, haveTech = false;
    std::string tok;
    try {
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return fail("malformed request field '" + tok + "'");
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "id") {
                o.id = std::stoull(val);
            } else if (key == "kind") {
                // Absent key means Run: pre-kind journal entries and
                // clients stay decodable.
                if (val == "run")
                    o.kind = JobKind::Run;
                else if (val == "predict")
                    o.kind = JobKind::Predict;
                else
                    return fail("unknown job kind '" + val + "'");
            } else if (key == "bench") {
                o.bench = journalUnescape(val);
                haveBench = true;
            } else if (key == "tech") {
                if (!techniqueFromName(val, &o.tech))
                    return fail("unknown technique '" + val + "'");
                haveTech = true;
            } else if (key == "scale") {
                o.scaleBits = std::stoull(val, nullptr, 16);
            } else if (key == "faults") {
                o.faultSpec = journalUnescape(val);
            } else {
                return fail("unknown request key '" + key + "'");
            }
        }
    } catch (const std::exception &) {
        return fail("non-numeric value in request field '" + tok + "'");
    }
    if (!haveBench || o.bench.empty())
        return fail("request names no benchmark");
    if (!haveTech)
        return fail("request names no technique");
    const double s = o.scale();
    if (!(s > 0.0) || s > 64.0)
        return fail("request scale out of range");
    *rq = std::move(o);
    return true;
}

// ----- job response -------------------------------------------------------

std::string
encodeResponse(const JobResponse &rs)
{
    std::ostringstream os;
    os << "p1 id=" << rs.id << " ok=" << (rs.ok ? 1 : 0)
       << " cached=" << (rs.cached ? 1 : 0)
       << " est=" << (rs.estimate ? 1 : 0) << " att=" << rs.attempts
       << " rt=" << (rs.retryable ? 1 : 0)
       << " err=" << journalEscape(rs.errorJson)
       << " o=" << journalEscape(encodeOutcome(rs.outcome));
    return os.str();
}

bool
decodeResponse(const std::string &payload, JobResponse *rs)
{
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || tag != "p1")
        return false;
    JobResponse o;
    bool haveOutcome = false;
    std::string tok;
    try {
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return false;
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "id") {
                o.id = std::stoull(val);
            } else if (key == "ok") {
                o.ok = val == "1";
            } else if (key == "cached") {
                o.cached = val == "1";
            } else if (key == "est") {
                o.estimate = val == "1";
            } else if (key == "att") {
                o.attempts = std::stoi(val);
            } else if (key == "rt") {
                o.retryable = val == "1";
            } else if (key == "err") {
                o.errorJson = journalUnescape(val);
            } else if (key == "o") {
                if (!decodeOutcome(journalUnescape(val), &o.outcome))
                    return false;
                haveOutcome = true;
            } else {
                return false; // unknown key: different format version
            }
        }
    } catch (const std::exception &) {
        return false;
    }
    if (!haveOutcome)
        return false;
    *rs = std::move(o);
    return true;
}

} // namespace dacsim::service
