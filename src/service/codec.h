/**
 * @file
 * Wire protocol of the dacsimd simulation service (DESIGN.md §14.2).
 *
 * Transport framing is length-prefixed and CRC-protected: every frame
 * is a 12-byte header (magic, payload length, payload CRC32, all
 * explicit little-endian) followed by the payload bytes. The decoder
 * is incremental — feed it whatever the socket delivered and it either
 * pops one complete verified frame, asks for more bytes, or reports a
 * structured framing error (bad magic / oversized length / bad CRC).
 * A framing error means the stream is unsynchronized and the
 * connection must be dropped; it must never crash the daemon.
 *
 * Message payloads reuse the journal text codec (exact, single-line,
 * percent-escaped fields): requests name a {bench, technique, scale,
 * faults} job, responses carry either the full encoded RunOutcome —
 * byte-identical to what a local runWorkload() would have produced —
 * or a structured error report in the PR-1 JSON schema.
 */

#ifndef DACSIM_SERVICE_CODEC_H
#define DACSIM_SERVICE_CODEC_H

#include <cstdint>
#include <string>

#include "harness/runner.h"

namespace dacsim::service
{

/** Frame header magic ("DSF1", little-endian on the wire). */
inline constexpr std::uint32_t frameMagic = 0x31465344u;

/** Hard payload-size ceiling; a length field above this is treated as
 * stream corruption, not a request to allocate. */
inline constexpr std::uint32_t maxFramePayload = 1u << 20;

/** Wrap @p payload in a framed message ready for the socket. */
std::string frameMessage(const std::string &payload);

/** Incremental decode result. */
enum class FrameStatus
{
    Ok,        ///< one frame popped into *payload
    NeedMore,  ///< the buffer holds only a frame prefix so far
    BadMagic,  ///< stream out of sync (drop the connection)
    Oversized, ///< length field exceeds maxFramePayload
    BadCrc,    ///< payload did not verify against its header CRC
};

const char *frameStatusName(FrameStatus s);

/**
 * Try to pop one frame off the front of @p buf (consumed bytes are
 * erased). On Ok, *payload holds the verified payload. On BadMagic /
 * Oversized / BadCrc, *detail describes the corruption; the buffer is
 * left untouched so the caller can log it before closing.
 */
FrameStatus popFrame(std::string *buf, std::string *payload,
                     std::string *detail);

// ----- job request --------------------------------------------------------

/** What the client wants done with the named job. */
enum class JobKind
{
    /** Simulate (cache-through, queued to the worker pool). */
    Run,
    /** Answer from the cache when possible; otherwise return the
     * static predictor's instant estimate (analysis/predict.h) without
     * simulating. Estimates are marked JobResponse::estimate and are
     * never cached. */
    Predict,
};

const char *jobKindName(JobKind k);

/** One simulation job: run @p bench under @p tech at @p scale. */
struct JobRequest
{
    /** Client-chosen correlation id, echoed in the response. */
    std::uint64_t id = 0;
    JobKind kind = JobKind::Run;
    std::string bench;
    Technique tech = Technique::Baseline;
    /** Exact bit pattern of the double workload scale (never rounds
     * through text, so client and server run the identical job). */
    std::uint64_t scaleBits = 0x3ff0000000000000ull; // 1.0
    /** Fault-plan spec applied to the run ("": fault-free). */
    std::string faultSpec;

    double scale() const;
    void setScale(double s);
};

std::string encodeRequest(const JobRequest &rq);

/**
 * Decode and validate a request payload. False on malformed input —
 * unknown tag or key, non-numeric field, unknown technique or empty
 * bench — with *error naming the problem (the daemon echoes it in a
 * structured error response).
 */
bool decodeRequest(const std::string &payload, JobRequest *rq,
                   std::string *error);

/** Technique by its techniqueName() rendering; false when unknown. */
bool techniqueFromName(const std::string &name, Technique *t);

// ----- job response -------------------------------------------------------

struct JobResponse
{
    std::uint64_t id = 0;
    /** The job completed and outcome is valid; false: errorJson holds
     * a structured failure report instead. */
    bool ok = false;
    /** Served from the result cache without re-simulation. */
    bool cached = false;
    /** The outcome is the static predictor's estimate, not a
     * simulation result (predict requests on a cache miss). */
    bool estimate = false;
    /** Attempts the daemon's workers consumed (0 for cache hits). */
    int attempts = 0;
    /** The failure was host-side flake (crash/timeout): resubmitting
     * may succeed. False for deterministic failures (malformed
     * request, blacklisted job). Meaningful only when ok == false. */
    bool retryable = false;
    /** PR-1 schema JSON error report (ok == false). */
    std::string errorJson;
    /** The run's outcome, exactly as a local run would return it
     * (hash chain and obs diagnostics excluded, as in journals). */
    RunOutcome outcome;
};

std::string encodeResponse(const JobResponse &rs);
bool decodeResponse(const std::string &payload, JobResponse *rs);

} // namespace dacsim::service

#endif // DACSIM_SERVICE_CODEC_H
