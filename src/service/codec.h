/**
 * @file
 * Wire protocol of the dacsimd simulation service (DESIGN.md §14.2,
 * §16.1) — the single source of truth for the typed job schema.
 *
 * Transport framing is length-prefixed and CRC-protected: every frame
 * is a 12-byte header (magic, payload length, payload CRC32, all
 * explicit little-endian) followed by the payload bytes. Two magics
 * coexist: "DSF1" (the original protocol) and "DSF2" (the typed,
 * streaming protocol). The decoder is incremental — feed it whatever
 * the socket delivered and it either pops one complete verified frame
 * (reporting which protocol version framed it), asks for more bytes,
 * or reports a structured framing error (bad magic / oversized length
 * / bad CRC). A framing error means the stream is unsynchronized and
 * the connection must be dropped; it must never crash the daemon.
 *
 * The schema is three typed messages:
 *  - JobSpec: what to run — {bench, technique, exact scale bits,
 *    faults} plus the admission identity (client, weight) and the
 *    progress-streaming flag. One encoding (`j2`) feeds the wire, the
 *    durable queue journal, and the content-addressed cache key
 *    (service/key.h); the legacy `q1` encoding is still decoded so
 *    old clients and pre-DSF2 queue journals keep working.
 *  - JobResult: status (ok / failed / retryable / overloaded), the
 *    result's source (simulated / cached / predicted), attempts, a
 *    structured error report, and the full encoded RunOutcome —
 *    byte-identical to what a local runWorkload() would have
 *    produced. Encodes as `r2`, or as the legacy `p1` flag soup for
 *    DSF1 connections.
 *  - JobProgress: one ring-timeline sample plus the cumulative stall
 *    partition, emitted at every 4096-cycle audit boundary of a
 *    progress-streaming job and forwarded worker → daemon → client.
 *
 * Protocol negotiation happens per connection at connect time: a DSF2
 * client opens with an `h2` hello (answered in kind); anything else —
 * a bare `q1` request in a DSF1 frame — keeps the connection on DSF1.
 */

#ifndef DACSIM_SERVICE_CODEC_H
#define DACSIM_SERVICE_CODEC_H

#include <cstdint>
#include <string>

#include "harness/runner.h"
#include "obs/obs.h"

namespace dacsim::service
{

/** Frame header magics ("DSF1"/"DSF2", little-endian on the wire). */
inline constexpr std::uint32_t frameMagic = 0x31465344u;
inline constexpr std::uint32_t frameMagicV2 = 0x32465344u;

/** Hard payload-size ceiling; a length field above this is treated as
 * stream corruption, not a request to allocate. */
inline constexpr std::uint32_t maxFramePayload = 1u << 20;

/** Wrap @p payload in a framed message ready for the socket. @p magic
 * selects the protocol generation the frame advertises. */
std::string frameMessage(const std::string &payload,
                         std::uint32_t magic = frameMagic);

/** Incremental decode result. */
enum class FrameStatus
{
    Ok,        ///< one frame popped into *payload
    NeedMore,  ///< the buffer holds only a frame prefix so far
    BadMagic,  ///< stream out of sync (drop the connection)
    Oversized, ///< length field exceeds maxFramePayload
    BadCrc,    ///< payload did not verify against its header CRC
};

const char *frameStatusName(FrameStatus s);

/**
 * Try to pop one frame off the front of @p buf (consumed bytes are
 * erased). On Ok, *payload holds the verified payload and *version
 * (when given) the protocol generation of the frame's magic (1 or 2).
 * On BadMagic / Oversized / BadCrc, *detail describes the corruption;
 * the buffer is left untouched so the caller can log it before
 * closing.
 */
FrameStatus popFrame(std::string *buf, std::string *payload,
                     std::string *detail, int *version = nullptr);

/** First whitespace-delimited token of a payload ("j2", "q1", "r2",
 * "p1", "g2", "h2", "o2", ...); "" for an empty payload. */
std::string payloadTag(const std::string &payload);

// ----- hello (connect-time negotiation) -----------------------------------

/** The DSF2 connect hello ("h2 proto=2"); a daemon answers it in kind
 * and switches the connection to DSF2 framing. */
std::string encodeHello();

/** True when @p payload is a hello; *proto gets the advertised
 * protocol generation. */
bool decodeHello(const std::string &payload, int *proto);

// ----- job spec -----------------------------------------------------------

/** What the client wants done with the named job. */
enum class JobKind
{
    /** Simulate (cache-through, queued to the worker pool). */
    Run,
    /** Answer from the cache when possible; otherwise return the
     * static predictor's instant estimate (analysis/predict.h) without
     * simulating. Estimates are marked ResultSource::Predicted and
     * are never cached. */
    Predict,
};

const char *jobKindName(JobKind k);

/** One simulation job: run @p bench under @p tech at @p scale. */
struct JobSpec
{
    /** Client-chosen correlation id, echoed in the result and every
     * progress frame. */
    std::uint64_t id = 0;
    JobKind kind = JobKind::Run;
    std::string bench;
    Technique tech = Technique::Baseline;
    /** Exact bit pattern of the double workload scale (never rounds
     * through text, so client and server run the identical job). */
    std::uint64_t scaleBits = 0x3ff0000000000000ull; // 1.0
    /** Fault-plan spec applied to the run ("": fault-free). */
    std::string faultSpec;

    // Admission-control identity (DESIGN.md §16.4). Not part of the
    // cache key: the same job submitted by two clients is one result.
    /** Fair-share scheduling identity ("": the default client). */
    std::string client;
    /** Fair-share weight: a weight-2 client drains twice as fast as a
     * weight-1 one under contention. Clamped to [1, 1024]. */
    int weight = 1;
    /** Stream JobProgress frames while the job simulates. */
    bool progress = false;

    double scale() const;
    void setScale(double s);
};

/** Encode @p spec for @p version (1: legacy `q1` without the
 * admission/progress fields, 2: `j2`). The `j2` form is what the
 * durable queue journals. */
std::string encodeSpec(const JobSpec &spec, int version = 2);

/**
 * Decode and validate a `j2` (or legacy `q1`) payload. False on
 * malformed input — unknown tag or key, non-numeric field, unknown
 * technique, empty bench, out-of-range scale or weight — with *error
 * naming the problem (the daemon echoes it in a structured error
 * result).
 */
bool decodeSpec(const std::string &payload, JobSpec *spec,
                std::string *error);

/** Technique by its techniqueName() rendering; false when unknown. */
bool techniqueFromName(const std::string &name, Technique *t);

// ----- job result ---------------------------------------------------------

/** How the job ended. */
enum class JobStatus
{
    Ok,         ///< outcome is valid
    Failed,     ///< deterministic failure; resubmitting will not help
    Retryable,  ///< host-side flake survived the daemon's retries
    Overloaded, ///< admission control refused the client's submission
};

const char *jobStatusName(JobStatus s);
bool jobStatusFromName(const std::string &name, JobStatus *s);

/** Where an ok result came from. */
enum class ResultSource
{
    Simulated, ///< a fresh fork-isolated simulation
    Cached,    ///< the content-addressed result cache
    Predicted, ///< the static predictor (predict requests on a miss)
};

const char *resultSourceName(ResultSource s);
bool resultSourceFromName(const std::string &name, ResultSource *s);

struct JobResult
{
    std::uint64_t id = 0;
    JobStatus status = JobStatus::Failed;
    ResultSource source = ResultSource::Simulated;
    /** Attempts the daemon's workers consumed (0 for cache hits,
     * estimates, and admission rejections). */
    int attempts = 0;
    /** PR-1 schema JSON error report (status != Ok). */
    std::string errorJson;
    /** The run's outcome, exactly as a local run would return it
     * (hash chain and obs diagnostics excluded, as in journals). */
    RunOutcome outcome;

    bool ok() const { return status == JobStatus::Ok; }
    /** Resubmitting may help (flake or transient overload). */
    bool
    retryable() const
    {
        return status == JobStatus::Retryable ||
               status == JobStatus::Overloaded;
    }
};

/** Encode @p rs for @p version (1: legacy `p1` flags, 2: `r2`). The
 * `p1` mapping is lossy only in that Overloaded degrades to a generic
 * retryable failure — all a DSF1 client can act on. */
std::string encodeResult(const JobResult &rs, int version = 2);
bool decodeResult(const std::string &payload, JobResult *rs);

// ----- job progress -------------------------------------------------------

/**
 * One streamed sample of a running job: the ring-timeline counters at
 * a 4096-cycle audit boundary plus the cumulative slot-exclusive
 * stall partition so far. A retried job (chaos, host flake) restarts
 * its stream from the first boundary — consumers detect the restart
 * as a non-increasing cycle and reset.
 */
struct JobProgress
{
    std::uint64_t id = 0;
    TimelineSample sample;
    StallStats stalls;
};

std::string encodeProgress(const JobProgress &p);
bool decodeProgress(const std::string &payload, JobProgress *p);

// ----- child-pipe outcome -------------------------------------------------

/** Frame payload a progress-streaming worker child ends its pipe
 * with: "o2 " + encodeOutcome(...). (Non-streaming children write the
 * raw encoded outcome, unframed, as always.) */
std::string encodeChildOutcome(const RunOutcome &out);
bool decodeChildOutcome(const std::string &payload, RunOutcome *out);

} // namespace dacsim::service

#endif // DACSIM_SERVICE_CODEC_H
