#include "service/cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

#include "common/snapshot.h"
#include "harness/journal.h"

namespace dacsim::service
{

namespace
{

std::string
crcHex(std::uint32_t crc)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", crc);
    return buf;
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "dacsimd: warning: %s\n", msg.c_str());
}

} // namespace

std::string
Provenance::encode() const
{
    std::ostringstream os;
    os << "bench=" << journalEscape(bench) << " tech=" << journalEscape(tech)
       << " cfp=" << std::hex << configFp << " kfp=" << kernelFp << std::dec
       << " att=" << attempts << " by=" << journalEscape(producer);
    return os.str();
}

bool
Provenance::decode(const std::string &s, Provenance *p)
{
    std::istringstream is(s);
    Provenance o;
    std::string tok;
    try {
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return false;
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "bench")
                o.bench = journalUnescape(val);
            else if (key == "tech")
                o.tech = journalUnescape(val);
            else if (key == "cfp")
                o.configFp = std::stoull(val, nullptr, 16);
            else if (key == "kfp")
                o.kernelFp = std::stoull(val, nullptr, 16);
            else if (key == "att")
                o.attempts = std::stoi(val);
            else if (key == "by")
                o.producer = journalUnescape(val);
            else
                return false;
        }
    } catch (const std::exception &) {
        return false;
    }
    *p = std::move(o);
    return true;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    ::mkdir(dir_.c_str(), 0755); // fine if it already exists
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return dir_ + "/" + key + ".result";
}

bool
ResultCache::lookup(const std::string &key, RunOutcome *out,
                    Provenance *prov, bool *quarantinedNow)
{
    if (quarantinedNow)
        *quarantinedNow = false;
    const std::string path = entryPath(key);
    std::ifstream in(path);
    if (!in)
        return false;

    // Read the whole entry and validate it as one CRC-protected line.
    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string text = raw.str();

    auto corrupt = [&](const char *why) {
        const std::string aside = path + ".quarantined";
        ::rename(path.c_str(), aside.c_str());
        quarantined_.fetch_add(1);
        if (quarantinedNow)
            *quarantinedNow = true;
        warn("cache entry " + path + " " + why +
                "; quarantined to " + aside);
        return false;
    };

    std::istringstream is(text);
    std::string tag, crc, provEsc, payloadEsc;
    if (!(is >> tag >> crc >> provEsc >> payloadEsc) || tag != "R1")
        return corrupt("is malformed");
    const std::string body = provEsc + " " + payloadEsc;
    if (crc != crcHex(crc32(body.data(), body.size())))
        return corrupt("failed its CRC");
    Provenance p;
    if (!Provenance::decode(journalUnescape(provEsc), &p))
        return corrupt("has unreadable provenance");
    RunOutcome o;
    if (!decodeOutcome(journalUnescape(payloadEsc), &o))
        return corrupt("has an undecodable outcome");

    *out = std::move(o);
    if (prov)
        *prov = std::move(p);
    return true;
}

void
ResultCache::store(const std::string &key, const RunOutcome &out,
                   const Provenance &prov)
{
    const std::string body = journalEscape(prov.encode()) + " " +
                             journalEscape(encodeOutcome(out));
    const std::string line =
        "R1 " + crcHex(crc32(body.data(), body.size())) + " " + body + "\n";

    const std::string path = entryPath(key);
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream o(tmp, std::ios::trunc);
        if (!o) {
            warn("cache: cannot write " + tmp + " (entry not stored)");
            return;
        }
        o << line;
        o.flush();
        if (!o) {
            warn("cache: short write to " + tmp + " (entry not stored)");
            ::unlink(tmp.c_str());
            return;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cache: cannot publish " + path + " (entry not stored)");
        ::unlink(tmp.c_str());
    }
}

} // namespace dacsim::service
