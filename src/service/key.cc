#include "service/key.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "sim/fingerprint.h"
#include "workloads/workload.h"

namespace dacsim::service
{

std::uint64_t
fnvMix(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    return fnvMix(h, &v, sizeof v);
}

std::uint64_t
fnvMix(std::uint64_t h, const std::string &s)
{
    h = fnvMix(h, static_cast<std::uint64_t>(s.size()));
    return fnvMix(h, s.data(), s.size());
}

std::uint64_t
KernelFpMemo::get(const std::string &bench, std::uint64_t scaleBits)
{
    std::ostringstream mk;
    mk << bench << '|' << std::hex << scaleBits;
    const std::string memoKey = mk.str();
    {
        std::lock_guard<std::mutex> g(mu_);
        auto it = fps_.find(memoKey);
        if (it != fps_.end())
            return it->second;
    }
    double scale = 0;
    static_assert(sizeof scale == sizeof scaleBits);
    std::memcpy(&scale, &scaleBits, sizeof scale);
    GpuMemory mem;
    const PreparedWorkload pw = findWorkload(bench).prepare(mem, scale);
    const std::uint64_t fp = kernelFingerprint(pw.kernel);
    std::lock_guard<std::mutex> g(mu_);
    fps_[memoKey] = fp;
    return fp;
}

std::string
cacheKeyFor(const JobSpec &spec, KernelFpMemo *memo)
{
    const RunOptions defaults;
    std::uint64_t h = 1469598103934665603ull;
    h = fnvMix(h, configFingerprint(spec.tech, defaults.gpu, defaults.dac,
                                    defaults.cae, defaults.mta));
    if (memo) {
        h = fnvMix(h, memo->get(spec.bench, spec.scaleBits));
    } else {
        KernelFpMemo once;
        h = fnvMix(h, once.get(spec.bench, spec.scaleBits));
    }
    h = fnvMix(h, spec.bench);
    h = fnvMix(h, std::string(techniqueName(spec.tech)));
    h = fnvMix(h, spec.scaleBits);
    h = fnvMix(h, spec.faultSpec);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace dacsim::service
