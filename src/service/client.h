/**
 * @file
 * Typed client of the dacsimd service (DESIGN.md §14.5, §16.5).
 *
 * The API is the schema: submit() queues a JobSpec (pipelined — a
 * client may have many jobs outstanding on one connection), wait()
 * blocks for one job's JobResult, and onProgress() registers the sink
 * for streamed JobProgress frames. call() is the submit-then-wait
 * convenience every sweep worker uses.
 *
 * The client is the resilient half of the protocol: when the daemon
 * dies mid-job (connection refused, EOF before the result, a framing
 * error), it reconnects with backoff — waiting out a daemon restart —
 * and resubmits every pending spec. That is always safe: jobs are
 * idempotent by construction (the daemon content-addresses them), so
 * a resubmission either joins the in-flight job, hits the cache, or
 * re-runs deterministically. Retryable and Overloaded results are
 * resubmitted a bounded number of times (Overloaded with a growing
 * pause, yielding to the clients the daemon is favouring).
 *
 * On connect the client sends the DSF2 hello and frames everything
 * with the DSF2 magic; old DSF1 clients keep working against the same
 * daemon (the daemon answers each connection in the protocol it
 * opened with).
 */

#ifndef DACSIM_SERVICE_CLIENT_H
#define DACSIM_SERVICE_CLIENT_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "service/codec.h"

namespace dacsim::service
{

/** Sink for streamed progress frames. A retried job restarts its
 * stream: a non-increasing cycle for the same id marks the reset. */
using ProgressFn = std::function<void(const JobProgress &)>;

struct ClientOptions
{
    /** Total budget for reaching the daemon per wait()/call(),
     * reconnects included (time spent simulating does not count —
     * a healthy connection is allowed to take as long as the job). */
    int deadlineMs = 120000;
    /** Delay between reconnect attempts. */
    int reconnectDelayMs = 100;
    /** Resubmissions per job when the daemon reports a retryable or
     * overloaded result. */
    int maxResubmits = 5;
};

class Client
{
  public:
    explicit Client(std::string socketPath,
                    ClientOptions opt = ClientOptions{});
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    const std::string &socketPath() const { return path_; }

    /** Register the progress sink for all of this client's jobs
     * (invoked on the wait()ing thread; specs must set progress). */
    void onProgress(ProgressFn fn) { progress_ = std::move(fn); }

    /**
     * Queue @p spec and (when connected) send it immediately. A zero
     * id is assigned a fresh one; the chosen id is returned and names
     * the job in wait() and in progress frames.
     */
    std::uint64_t submit(JobSpec spec);

    /**
     * Block for job @p id's result. True with *rs filled — including
     * failed results carrying a structured error. False with *error
     * set only when the service stays unreachable past the deadline,
     * speaks an unintelligible protocol, or @p id names no submitted
     * job. Progress frames for any pending job are dispatched to the
     * onProgress sink while waiting.
     */
    bool wait(std::uint64_t id, JobResult *rs, std::string *error);

    /** submit() + wait(). */
    bool call(const JobSpec &spec, JobResult *rs, std::string *error);

  private:
    bool ensureConnected(std::int64_t deadline, std::string *error);
    void disconnect();
    void sendSpec(const JobSpec &spec);
    /** Dispatch one received payload; false when the stream talks an
     * unknown protocol (treat as a dead stream). */
    bool dispatch(const std::string &payload);

    std::string path_;
    ClientOptions opt_;
    ProgressFn progress_;
    int fd_ = -1;
    std::string buf_;
    std::uint64_t nextId_ = 1;
    std::map<std::uint64_t, JobSpec> pending_;
    std::map<std::uint64_t, int> resubmits_;
    std::map<std::uint64_t, JobResult> done_;
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_CLIENT_H
