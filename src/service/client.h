/**
 * @file
 * Thin blocking client of the dacsimd service (DESIGN.md §14.5).
 *
 * call() frames and sends one job request and blocks for its
 * response. The client is the resilient half of the protocol: when
 * the daemon dies mid-job (connection refused, EOF before the
 * response, a framing error), it reconnects with backoff — waiting
 * out a daemon restart — and resubmits the identical request. That is
 * always safe: requests are idempotent by construction (the daemon
 * content-addresses them), so a resubmission either joins the
 * in-flight job, hits the cache, or re-runs deterministically.
 */

#ifndef DACSIM_SERVICE_CLIENT_H
#define DACSIM_SERVICE_CLIENT_H

#include <string>

#include "service/codec.h"

namespace dacsim::service
{

struct ClientOptions
{
    /** Total budget for one call(), reconnects included. */
    int deadlineMs = 120000;
    /** Delay between reconnect attempts. */
    int reconnectDelayMs = 100;
    /** Resubmissions when the daemon reports a retryable failure
     * (host-side flake that exhausted the daemon's own retries). */
    int maxResubmits = 5;
};

class ServiceClient
{
  public:
    explicit ServiceClient(std::string socketPath,
                           ClientOptions opt = ClientOptions{});
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Submit @p rq and block for its response. True with *rs filled —
     * including ok == false responses carrying a structured error.
     * False with *error set only when the service stays unreachable
     * past the deadline or speaks an unintelligible protocol.
     */
    bool call(const JobRequest &rq, JobResponse *rs, std::string *error);

  private:
    bool ensureConnected(std::int64_t deadline, std::string *error);
    void disconnect();

    std::string path_;
    ClientOptions opt_;
    int fd_ = -1;
    std::string buf_;
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_CLIENT_H
