/**
 * @file
 * Content-addressed, CRC-verified result cache (DESIGN.md §14.3).
 *
 * A cache entry maps one job identity — the configuration fingerprint
 * + kernel fingerprint pair (sim/fingerprint.h) folded with the
 * technique, exact workload scale bits, and fault spec — to the
 * encoded RunOutcome the job produced, plus a provenance record naming
 * what computed it. Every entry is a single self-verifying line (the
 * journal line shape: tag, CRC32, payload) written atomically via
 * temp-file + rename, so a kill can never leave a torn entry under the
 * final name.
 *
 * Degradation: an entry that fails its CRC (or does not parse) is
 * never served. It is quarantined — renamed aside with a .quarantined
 * suffix so the evidence survives for inspection — and reported as a
 * miss, which makes the daemon recompute and rewrite it. Corruption
 * therefore costs one re-simulation, not a wrong answer.
 */

#ifndef DACSIM_SERVICE_CACHE_H
#define DACSIM_SERVICE_CACHE_H

#include <atomic>
#include <cstdint>
#include <string>

#include "harness/runner.h"

namespace dacsim::service
{

/** Provenance stored beside a cached outcome (diagnostics only; never
 * part of the served result). */
struct Provenance
{
    std::string bench;
    std::string tech;
    std::uint64_t configFp = 0;
    std::uint64_t kernelFp = 0;
    int attempts = 0;
    /** Who computed it ("dacsimd pid 1234"). */
    std::string producer;

    std::string encode() const;
    static bool decode(const std::string &s, Provenance *p);
};

class ResultCache
{
  public:
    /** Open (and create) the cache directory. */
    explicit ResultCache(std::string dir);

    /**
     * Serve the entry for @p key. True with *out filled on a verified
     * hit. A corrupt entry is quarantined and reported as a miss
     * (*quarantinedNow set when given, so callers can log it).
     */
    bool lookup(const std::string &key, RunOutcome *out,
                Provenance *prov = nullptr,
                bool *quarantinedNow = nullptr);

    /** Store @p out for @p key (atomic: temp file + rename). */
    void store(const std::string &key, const RunOutcome &out,
               const Provenance &prov);

    /** Entries quarantined by this process so far. */
    std::uint64_t quarantined() const { return quarantined_.load(); }

    std::string entryPath(const std::string &key) const;

  private:
    std::string dir_;
    std::atomic<std::uint64_t> quarantined_{0};
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_CACHE_H
