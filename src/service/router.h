/**
 * @file
 * The shard router (DESIGN.md §16.2): fan one client's jobs out
 * across a static fleet of dacsimd daemons.
 *
 * Placement is rendezvous (highest-random-weight) hashing of the
 * job's host-independent content address (service/key.h) against the
 * shard socket names: every job has a total preference order over
 * shards, the top-ranked shard owns it, and adding or removing a
 * shard only remaps the jobs whose top rank changed — no global
 * reshuffle, no coordination, no shard map versioning.
 *
 * Failover is client-side and needs no shard-to-shard protocol: when
 * the owning daemon cannot be reached within the failover budget (or
 * dies mid-job), the router walks down the job's preference order to
 * the designated sibling — the next rank — and resubmits there.
 * Content addressing makes this safe: whichever shard computes the
 * job produces the byte-identical outcome, the sibling simply fills
 * its own cache. A shard that just failed is skipped for a cooldown
 * window so a dead daemon costs one probe per window, not one per
 * job.
 *
 * The router is single-threaded by design — sweeps give each worker
 * thread its own router, mirroring the one-client-per-thread pattern
 * the service has always used.
 */

#ifndef DACSIM_SERVICE_ROUTER_H
#define DACSIM_SERVICE_ROUTER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/client.h"
#include "service/key.h"

namespace dacsim::service
{

struct RouterOptions
{
    /** Per-wait options for each shard's client; deadlineMs is the
     * total budget across all shards and rounds. */
    ClientOptions client;
    /** Budget for reaching one shard before failing over to the next
     * rank (a healthy shard may then take as long as the job needs). */
    int failoverMs = 3000;
    /** Cooldown during which a shard that just failed is skipped
     * (when any alternative remains). */
    int deadSkipMs = 10000;
};

class ShardRouter
{
  public:
    explicit ShardRouter(std::vector<std::string> sockets,
                         RouterOptions opt = RouterOptions{});

    /** The shard map from the environment: DACSIM_SERVICE_SHARDS
     * (comma-separated socket paths), else the single
     * DACSIM_SERVICE_SOCKET. Empty when the service is off. */
    static std::vector<std::string> shardsFromEnv();

    std::size_t shardCount() const { return sockets_.size(); }

    /** Progress sink for all subsequent calls (specs must set
     * progress; frames may restart after a failover, marked by a
     * non-increasing cycle). */
    void onProgress(ProgressFn fn);

    /**
     * Route @p spec to its owning shard and block for the result,
     * failing over down the preference order as needed. True with
     * *rs filled (including structured failures); false with *error
     * set when every shard stays unreachable past the deadline.
     */
    bool call(const JobSpec &spec, JobResult *rs, std::string *error);

    /** The job's shard preference order (indices into the socket
     * list, best first) — rendezvous ranks of @p key. */
    std::vector<std::size_t> rank(const std::string &key) const;

    /** Content address of @p spec (memoized kernel fingerprints). */
    std::string keyFor(const JobSpec &spec);

  private:
    Client &clientFor(std::size_t shard);

    std::vector<std::string> sockets_;
    RouterOptions opt_;
    std::vector<std::unique_ptr<Client>> clients_;
    std::vector<std::int64_t> deadUntil_;
    KernelFpMemo fps_;
    ProgressFn progress_;
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_ROUTER_H
