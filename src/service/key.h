/**
 * @file
 * The service's content address (DESIGN.md §14.3, §16.2): a pure
 * function of a JobSpec's simulation-relevant fields — configuration
 * fingerprint, kernel fingerprint, benchmark, technique, exact scale
 * bits, fault spec — and nothing else. The admission-control identity
 * (client, weight) and the progress flag are deliberately excluded:
 * the same job submitted by two clients, with or without streaming,
 * is one cache entry and one simulation.
 *
 * Because the key is host-independent, it is also the shard address:
 * the router (service/router.h) rendezvous-hashes it across the shard
 * map, and any daemon that computes the job gets the byte-identical
 * result, so failing over to a sibling shard can never change an
 * answer.
 */

#ifndef DACSIM_SERVICE_KEY_H
#define DACSIM_SERVICE_KEY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "service/codec.h"

namespace dacsim::service
{

/** FNV-1a over bytes/ints/strings — the service's one hash. */
std::uint64_t fnvMix(std::uint64_t h, const void *data, std::size_t n);
std::uint64_t fnvMix(std::uint64_t h, std::uint64_t v);
std::uint64_t fnvMix(std::uint64_t h, const std::string &s);

/**
 * Memoized kernel fingerprints: preparing a workload to fingerprint
 * its kernel is the expensive half of key computation, and sweeps ask
 * for the same (bench, scale) pair once per technique. Thread-safe.
 */
class KernelFpMemo
{
  public:
    std::uint64_t get(const std::string &bench, std::uint64_t scaleBits);

  private:
    std::mutex mu_;
    std::map<std::string, std::uint64_t> fps_;
};

/**
 * The job's content address: 16 lowercase hex characters. @p memo
 * caches kernel fingerprints across calls (pass nullptr to recompute
 * every time). Throws FatalError for an unknown benchmark — validate
 * the spec first.
 */
std::string cacheKeyFor(const JobSpec &spec, KernelFpMemo *memo = nullptr);

} // namespace dacsim::service

#endif // DACSIM_SERVICE_KEY_H
