/**
 * @file
 * The dacsimd simulation-service daemon (DESIGN.md §14, §16).
 *
 * A long-lived process owning a unix-domain socket: clients submit
 * typed JobSpecs (service/codec.h) and stream back the run's
 * statistics and checksums, byte-identical to what a local
 * runWorkload() would have produced. Each job executes in a
 * fork-isolated worker child (harness/isolation.h) under a
 * poll-deadline SIGKILL watchdog, drawn from a weighted-fair worker
 * pool (service/fair.h); host-side flake (a crashed or hung child) is
 * retried with exponential backoff, deterministic failures are
 * reported as structured errors.
 *
 * Robustness machinery:
 *  - content-addressed result cache keyed on the configuration
 *    fingerprint + kernel hash (service/key.h, service/cache.h):
 *    resubmitting a completed job is a CRC-verified cache hit, never
 *    a re-simulation;
 *  - durable queue (service/queue.h): a daemon killed with -9 reopens
 *    its journal and resumes exactly the outstanding backlog;
 *  - in-flight dedup: identical concurrent submissions share one
 *    simulation;
 *  - crash blacklist: a job that keeps failing after its retry budget
 *    is served its structured error instead of burning workers;
 *  - admission control: per-client weighted fair scheduling with a
 *    bounded per-client depth — exceeding it earns a structured
 *    JobStatus::Overloaded, never unbounded buffering;
 *  - progress streaming: a JobSpec::progress job's child samples its
 *    counter timeline + stall partition at every 4096-cycle audit
 *    boundary and the daemon forwards the frames to every waiting
 *    client while the job still runs;
 *  - chaos harness: deterministic injected crashes/timeouts
 *    (ChaosSpec) so tests and scripts/check.sh can drive the whole
 *    failure surface on demand.
 *
 * Protocol negotiation is per connection: a DSF2 hello (or any DSF2-
 * framed message) switches the connection to the typed r2/g2 wire
 * encodings; DSF1 clients keep receiving the p1 responses they always
 * did.
 */

#ifndef DACSIM_SERVICE_DAEMON_H
#define DACSIM_SERVICE_DAEMON_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/client.h" // ProgressFn
#include "service/codec.h"
#include "service/fair.h"
#include "service/key.h"
#include "service/queue.h"

namespace dacsim::service
{

/**
 * Deterministic fault injection for the service layer itself: with
 * probability @p crash an attempt's child aborts before reporting,
 * with probability @p timeout it hangs until the watchdog SIGKILLs
 * it. Decisions are a pure hash of (seed, job key, attempt index), so
 * a chaos run is reproducible and every job still eventually succeeds
 * under retry — the injected failures delay results, never change
 * them.
 */
struct ChaosSpec
{
    double crash = 0.0;
    double timeout = 0.0;
    std::uint64_t seed = 0;

    bool enabled() const { return crash > 0.0 || timeout > 0.0; }

    /** Parse "crash=0.2,timeout=0.05,seed=7" (any subset of keys).
     * False with *error set on malformed input. */
    static bool parse(const std::string &spec, ChaosSpec *out,
                      std::string *error);
};

struct DaemonOptions
{
    /** Unix-domain socket path the daemon listens on. */
    std::string socketPath;
    /** State directory: result cache entries + the durable queue
     * journal live here. */
    std::string dir;
    /** Worker pool size (0: hardware concurrency). */
    int workers = 0;
    /** Per-job watchdog deadline before the child is SIGKILLed. */
    int timeoutMs = 60000;
    /** Retries after a host-side flake (crashed/hung child). */
    int maxRetries = 2;
    /** Deterministic failures per job before it is blacklisted. */
    int crashLimit = 3;
    /** Admission bound: one client's queued + running jobs
     * (0: unbounded). Exceeding it earns JobStatus::Overloaded. */
    int queueDepth = 256;
    ChaosSpec chaos;
    /** Test knob (0: off): _Exit(3) — a kill -9 stand-in, skipping
     * every destructor and un-sent response — after n fresh
     * simulations have been cached and journalled complete. */
    long abortAfter = 0;
    /** serve() returns after this long with no connections and no
     * outstanding work (0: serve until stop()). */
    int idleExitMs = 0;

    /** Service knobs from the DACSIM_SERVICE_* registry folded into
     * the defaults (socketPath/dir from SOCKET/DIR, etc.). */
    static DaemonOptions fromEnv();
};

struct DaemonCounters
{
    std::atomic<std::uint64_t> jobs{0};       ///< requests handled
    std::atomic<std::uint64_t> sims{0};       ///< fresh simulations run
    std::atomic<std::uint64_t> cacheHits{0};  ///< served from the cache
    std::atomic<std::uint64_t> dedup{0};      ///< joined an in-flight job
    std::atomic<std::uint64_t> retries{0};    ///< attempts beyond the first
    std::atomic<std::uint64_t> crashes{0};    ///< child crash attempts seen
    std::atomic<std::uint64_t> timeouts{0};   ///< watchdog kills seen
    std::atomic<std::uint64_t> blacklisted{0};///< served the crash blacklist
    std::atomic<std::uint64_t> badRequests{0};///< malformed frames/requests
    std::atomic<std::uint64_t> resumed{0};    ///< backlog jobs from the queue
    std::atomic<std::uint64_t> estimates{0};  ///< predict misses answered
                                              ///< by the static model
    std::atomic<std::uint64_t> overloaded{0}; ///< admission rejections
    std::atomic<std::uint64_t> progressFrames{0}; ///< streamed samples
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions opt);
    ~Daemon();

    /** Bind the socket, reopen cache + queue, resume the backlog, and
     * start the worker pool. False with *error set on failure. */
    bool start(std::string *error);

    /** Accept-and-serve loop; returns after stop() or the idle-exit
     * deadline. Prints the counters summary line on return. */
    void serve();

    /** Unblock serve() and join every worker/connection thread. */
    void stop();

    /** Async-signal-safe stop request (a plain atomic store): serve()
     * notices within its 100 ms poll tick and shuts down cleanly. */
    void requestStop() { stopping_.store(true); }

    /**
     * The complete request pipeline for one job — admission, cache,
     * blacklist, dedup, durable queue, fair worker pool — without a
     * socket. serve()'s connection threads call this; tests drive it
     * directly. @p onProgress (may be empty) receives the job's
     * streamed samples while it runs (JobSpec::progress only).
     */
    JobResult handle(const JobSpec &spec,
                     const ProgressFn &onProgress = {});

    const DaemonCounters &counters() const { return counters_; }

    /** "dacsimd: jobs=... sims=... cache_hits=..." (one line). */
    std::string summaryLine() const;

    /** The job's content address (service/key.h) with this daemon's
     * fingerprint memo. Exposed for tests. */
    std::string cacheKey(const JobSpec &spec);

  private:
    struct Inflight
    {
        bool done = false;
        JobResult rs;
    };
    struct PoolJob
    {
        std::string key;
        JobSpec spec;
        /** Admitted via handle() (false: resumed backlog) — pairs the
         * admission bookkeeping exactly. */
        bool admitted = false;
    };
    struct Conn; // per-connection state (fd, negotiated proto, mutex)

    JobResult runJob(const std::string &key, const JobSpec &spec);
    void finishJob(PoolJob job, JobResult rs);
    void workerLoop();
    void connectionLoop(int fd);
    void handleFramed(const std::shared_ptr<Conn> &conn,
                      const std::string &payload);
    void submitToPool(PoolJob job);
    void forwardProgress(const std::string &key, const JobProgress &p);
    bool idle();

    DaemonOptions opt_;
    DaemonCounters counters_;
    std::unique_ptr<ResultCache> cache_;
    std::unique_ptr<DurableQueue> queue_;
    std::mutex cacheMu_;
    KernelFpMemo fps_;

    // Job state: in-flight dedup table, crash blacklist, chaos attempt
    // sequence numbers.
    std::mutex stateMu_;
    std::condition_variable stateCv_;
    std::map<std::string, std::shared_ptr<Inflight>> inflight_;
    /** Per-client admitted-but-unfinished jobs (the admission bound). */
    std::map<std::string, int> outstanding_;
    std::map<std::string, int> crashCounts_;
    std::map<std::string, std::string> blacklistJson_;
    std::map<std::string, int> chaosAttempts_;

    // Progress sinks: every client waiting on a key with streaming
    // requested, keyed for O(1) fan-out from the worker thread.
    std::mutex progressMu_;
    std::uint64_t nextSinkToken_ = 1;
    std::map<std::string,
             std::map<std::uint64_t, std::pair<std::uint64_t, ProgressFn>>>
        progressSinks_; // key -> token -> (client job id, sink)

    // Weighted-fair worker pool: workers pop the stride scheduler's
    // fairest job; per-client depth doubles as the admission bound.
    std::mutex poolMu_;
    std::condition_variable poolCv_;
    StrideScheduler<PoolJob> sched_;
    std::vector<std::thread> workers_;

    // Socket plumbing.
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::mutex connMu_;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;
    std::atomic<int> activeConns_{0};
    std::atomic<std::int64_t> lastActivityMs_{0};
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_DAEMON_H
