/**
 * @file
 * The dacsimd simulation-service daemon (DESIGN.md §14).
 *
 * A long-lived process owning a unix-domain socket: clients submit
 * {benchmark, technique, scale, faults} jobs (service/codec.h) and
 * stream back the run's statistics and checksums, byte-identical to
 * what a local runWorkload() would have produced. Each job executes in
 * a fork-isolated worker child (harness/isolation.h) under a
 * poll-deadline SIGKILL watchdog, drawn from a work-stealing pool;
 * host-side flake (a crashed or hung child) is retried with
 * exponential backoff, deterministic failures are reported as
 * structured errors.
 *
 * Robustness machinery:
 *  - content-addressed result cache keyed on the configuration
 *    fingerprint + kernel hash (service/cache.h): resubmitting a
 *    completed job is a CRC-verified cache hit, never a re-simulation;
 *  - durable queue (service/queue.h): a daemon killed with -9 reopens
 *    its journal and resumes exactly the outstanding backlog;
 *  - in-flight dedup: identical concurrent submissions share one
 *    simulation;
 *  - crash blacklist: a job that keeps failing after its retry budget
 *    is served its structured error instead of burning workers;
 *  - chaos harness: deterministic injected crashes/timeouts
 *    (ChaosSpec) so tests and scripts/check.sh can drive the whole
 *    failure surface on demand.
 */

#ifndef DACSIM_SERVICE_DAEMON_H
#define DACSIM_SERVICE_DAEMON_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/codec.h"
#include "service/queue.h"

namespace dacsim::service
{

/**
 * Deterministic fault injection for the service layer itself: with
 * probability @p crash an attempt's child aborts before reporting,
 * with probability @p timeout it hangs until the watchdog SIGKILLs
 * it. Decisions are a pure hash of (seed, job key, attempt index), so
 * a chaos run is reproducible and every job still eventually succeeds
 * under retry — the injected failures delay results, never change
 * them.
 */
struct ChaosSpec
{
    double crash = 0.0;
    double timeout = 0.0;
    std::uint64_t seed = 0;

    bool enabled() const { return crash > 0.0 || timeout > 0.0; }

    /** Parse "crash=0.2,timeout=0.05,seed=7" (any subset of keys).
     * False with *error set on malformed input. */
    static bool parse(const std::string &spec, ChaosSpec *out,
                      std::string *error);
};

struct DaemonOptions
{
    /** Unix-domain socket path the daemon listens on. */
    std::string socketPath;
    /** State directory: result cache entries + the durable queue
     * journal live here. */
    std::string dir;
    /** Worker pool size (0: hardware concurrency). */
    int workers = 0;
    /** Per-job watchdog deadline before the child is SIGKILLed. */
    int timeoutMs = 60000;
    /** Retries after a host-side flake (crashed/hung child). */
    int maxRetries = 2;
    /** Deterministic failures per job before it is blacklisted. */
    int crashLimit = 3;
    ChaosSpec chaos;
    /** Test knob (0: off): _Exit(3) — a kill -9 stand-in, skipping
     * every destructor and un-sent response — after n fresh
     * simulations have been cached and journalled complete. */
    long abortAfter = 0;
    /** serve() returns after this long with no connections and no
     * outstanding work (0: serve until stop()). */
    int idleExitMs = 0;

    /** Service knobs from the DACSIM_SERVICE_* registry folded into
     * the defaults (socketPath/dir from SOCKET/DIR, etc.). */
    static DaemonOptions fromEnv();
};

struct DaemonCounters
{
    std::atomic<std::uint64_t> jobs{0};       ///< requests handled
    std::atomic<std::uint64_t> sims{0};       ///< fresh simulations run
    std::atomic<std::uint64_t> cacheHits{0};  ///< served from the cache
    std::atomic<std::uint64_t> dedup{0};      ///< joined an in-flight job
    std::atomic<std::uint64_t> retries{0};    ///< attempts beyond the first
    std::atomic<std::uint64_t> crashes{0};    ///< child crash attempts seen
    std::atomic<std::uint64_t> timeouts{0};   ///< watchdog kills seen
    std::atomic<std::uint64_t> blacklisted{0};///< served the crash blacklist
    std::atomic<std::uint64_t> badRequests{0};///< malformed frames/requests
    std::atomic<std::uint64_t> resumed{0};    ///< backlog jobs from the queue
    std::atomic<std::uint64_t> estimates{0};  ///< predict misses answered
                                              ///< by the static model
};

class Daemon
{
  public:
    explicit Daemon(DaemonOptions opt);
    ~Daemon();

    /** Bind the socket, reopen cache + queue, resume the backlog, and
     * start the worker pool. False with *error set on failure. */
    bool start(std::string *error);

    /** Accept-and-serve loop; returns after stop() or the idle-exit
     * deadline. Prints the counters summary line on return. */
    void serve();

    /** Unblock serve() and join every worker/connection thread. */
    void stop();

    /** Async-signal-safe stop request (a plain atomic store): serve()
     * notices within its 100 ms poll tick and shuts down cleanly. */
    void requestStop() { stopping_.store(true); }

    /**
     * The complete request pipeline for one job — cache, blacklist,
     * dedup, durable queue, worker pool — without a socket. serve()'s
     * connection threads call this; tests drive it directly.
     */
    JobResponse handle(const JobRequest &rq);

    const DaemonCounters &counters() const { return counters_; }

    /** "dacsimd: jobs=... sims=... cache_hits=..." (one line). */
    std::string summaryLine() const;

    /** Compute the job's content-address (cache key) — a pure
     * function of config fingerprint, kernel hash, technique, exact
     * scale bits, and fault spec. Exposed for tests. */
    std::string cacheKey(const JobRequest &rq);

  private:
    struct Inflight
    {
        bool done = false;
        JobResponse rs;
    };
    struct PoolJob
    {
        std::string key;
        JobRequest rq;
    };

    JobResponse runJob(const std::string &key, const JobRequest &rq);
    void finishJob(const std::string &key, const JobRequest &rq,
                   JobResponse rs);
    void workerLoop(int self);
    void connectionLoop(int fd);
    void submitToPool(PoolJob job);
    bool idle();
    std::uint64_t kernelFp(const JobRequest &rq);

    DaemonOptions opt_;
    DaemonCounters counters_;
    std::unique_ptr<ResultCache> cache_;
    std::unique_ptr<DurableQueue> queue_;
    std::mutex cacheMu_;

    // Job state: in-flight dedup table, crash blacklist, chaos attempt
    // sequence numbers, memoized kernel fingerprints.
    std::mutex stateMu_;
    std::condition_variable stateCv_;
    std::map<std::string, std::shared_ptr<Inflight>> inflight_;
    std::map<std::string, int> crashCounts_;
    std::map<std::string, std::string> blacklistJson_;
    std::map<std::string, int> chaosAttempts_;
    std::map<std::string, std::uint64_t> kernelFps_;

    // Work-stealing pool: one deque per worker, round-robin submit;
    // an idle worker drains its own deque front-first, then steals
    // from the back of its siblings'.
    std::mutex poolMu_;
    std::condition_variable poolCv_;
    std::vector<std::deque<PoolJob>> poolQueues_;
    std::size_t poolNext_ = 0;
    std::vector<std::thread> workers_;

    // Socket plumbing.
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::mutex connMu_;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;
    std::atomic<int> activeConns_{0};
    std::atomic<std::int64_t> lastActivityMs_{0};
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_DAEMON_H
