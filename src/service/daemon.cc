#include "service/daemon.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/env.h"
#include "common/fault.h"
#include "common/log.h"
#include "harness/isolation.h"
#include "sim/fingerprint.h"
#include "workloads/workload.h"

namespace dacsim::service
{

namespace
{

std::int64_t
nowMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** PR-1 report-schema JSON for a service-level failure — the same
 * keys bench_util::reportRun() emits, so one grep covers both. */
std::string
failureJson(const std::string &bench, const std::string &tech,
            const char *kind, const std::string &what)
{
    std::ostringstream os;
    os << "{\"figure\":\"service\",\"bench\":\"" << jsonEscape(bench)
       << "\",\"tech\":\"" << jsonEscape(tech)
       << "\",\"status\":\"error\",\"kind\":\"" << kind
       << "\",\"cycle\":0,\"what\":\"" << jsonEscape(what)
       << "\",\"fault_seed\":0,\"checkpoint\":\"\","
          "\"last_hash\":\"0000000000000000\",\"resumed\":false}";
    return os.str();
}

RunOptions
buildRunOptions(const JobSpec &spec)
{
    RunOptions opt;
    opt.tech = spec.tech;
    opt.scale = spec.scale();
    if (!spec.faultSpec.empty())
        opt.faults = FaultPlan::parse(spec.faultSpec);
    return opt;
}

} // namespace

// ----- chaos --------------------------------------------------------------

bool
ChaosSpec::parse(const std::string &spec, ChaosSpec *out,
                 std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    ChaosSpec o;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t sep = spec.find(',', pos);
        if (sep == std::string::npos)
            sep = spec.size();
        const std::string item = spec.substr(pos, sep - pos);
        pos = sep + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("malformed chaos item '" + item +
                        "' (expected key=value)");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        char *end = nullptr;
        if (key == "crash" || key == "timeout") {
            const double p = std::strtod(val.c_str(), &end);
            if (end == nullptr || *end != '\0' || !(p >= 0.0) || p > 1.0)
                return fail("chaos " + key + " must be a probability in "
                            "[0,1], got '" + val + "'");
            (key == "crash" ? o.crash : o.timeout) = p;
        } else if (key == "seed") {
            o.seed = std::strtoull(val.c_str(), &end, 10);
            if (end == nullptr || *end != '\0')
                return fail("chaos seed must be an integer, got '" + val +
                            "'");
        } else {
            return fail("unknown chaos key '" + key +
                        "' (crash, timeout, seed)");
        }
    }
    if (o.crash + o.timeout > 1.0)
        return fail("chaos crash+timeout probabilities exceed 1");
    *out = o;
    return true;
}

DaemonOptions
DaemonOptions::fromEnv()
{
    DaemonOptions o;
    o.socketPath = env().serviceSocket;
    o.dir = env().serviceDir;
    o.workers = env().serviceWorkers;
    o.timeoutMs = env().serviceTimeoutMs;
    o.maxRetries = env().serviceRetries;
    o.queueDepth = env().serviceQueueDepth;
    if (!env().serviceChaos.empty()) {
        std::string err;
        if (!ChaosSpec::parse(env().serviceChaos, &o.chaos, &err))
            std::fprintf(stderr,
                         "dacsimd: warning: DACSIM_SERVICE_CHAOS: %s "
                         "(chaos disabled)\n",
                         err.c_str());
    }
    return o;
}

// ----- connection state ---------------------------------------------------

/**
 * One accepted connection. The negotiated protocol generation is
 * sticky (a DSF2 frame or hello upgrades it for the connection's
 * lifetime), and all writes — results from request threads, progress
 * frames from worker threads — serialize on writeMu so frames never
 * interleave mid-header.
 */
struct Daemon::Conn
{
    int fd = -1;
    std::atomic<int> proto{1};
    std::mutex writeMu;

    // Request threads (one per in-flight spec on this connection, so a
    // pipelining client's jobs run concurrently). The connection
    // thread reaps finished ones as it goes and joins the rest at
    // close.
    std::mutex threadsMu;
    std::vector<std::thread> threads;
    std::vector<std::thread::id> finished;

    void
    send(const std::string &payload)
    {
        const int p = proto.load();
        const std::string msg =
            frameMessage(payload, p >= 2 ? frameMagicV2 : frameMagic);
        std::lock_guard<std::mutex> g(writeMu);
        writeAll(fd, msg);
    }

    void
    sendResult(const JobResult &rs)
    {
        send(encodeResult(rs, proto.load()));
    }

    /** Join request threads that already signalled completion. */
    void
    reap()
    {
        std::lock_guard<std::mutex> g(threadsMu);
        for (const std::thread::id id : finished) {
            for (auto it = threads.begin(); it != threads.end(); ++it)
                if (it->get_id() == id) {
                    it->join();
                    threads.erase(it);
                    break;
                }
        }
        finished.clear();
    }

    void
    joinAll()
    {
        std::vector<std::thread> all;
        {
            std::lock_guard<std::mutex> g(threadsMu);
            all.swap(threads);
            finished.clear();
        }
        for (std::thread &t : all)
            if (t.joinable())
                t.join();
    }
};

// ----- daemon -------------------------------------------------------------

Daemon::Daemon(DaemonOptions opt) : opt_(std::move(opt))
{
}

Daemon::~Daemon()
{
    stop();
}

std::string
Daemon::cacheKey(const JobSpec &spec)
{
    return cacheKeyFor(spec, &fps_);
}

bool
Daemon::start(std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    ::signal(SIGPIPE, SIG_IGN);
    if (opt_.dir.empty())
        return fail("service state directory not set");
    ::mkdir(opt_.dir.c_str(), 0755);
    cache_ = std::make_unique<ResultCache>(opt_.dir + "/cache");
    queue_ = std::make_unique<DurableQueue>(opt_.dir + "/queue.journal");

    int n = opt_.workers;
    if (n <= 0)
        n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0)
        n = 2;

    // Resume the backlog: every job journalled submitted but never
    // completed re-enters the pool, exactly as the dead daemon held
    // it. A job whose result was cached before the kill (killed
    // between the cache store and the queue's completion record) is
    // simply marked complete — its next submission is a cache hit.
    // Old journals carry legacy `q1` lines; decodeSpec takes both.
    for (const auto &[key, enc] : queue_->pending()) {
        JobSpec spec;
        std::string err;
        if (!decodeSpec(enc, &spec, &err)) {
            std::fprintf(stderr,
                         "dacsimd: warning: dropping unreadable backlog "
                         "entry %s: %s\n",
                         key.c_str(), err.c_str());
            queue_->complete(key);
            continue;
        }
        RunOutcome out;
        {
            std::lock_guard<std::mutex> g(cacheMu_);
            if (cache_->lookup(key, &out)) {
                queue_->complete(key);
                continue;
            }
        }
        {
            std::lock_guard<std::mutex> g(stateMu_);
            inflight_[key] = std::make_shared<Inflight>();
        }
        counters_.resumed.fetch_add(1);
        // Resumed jobs skip admission (their clients already hold the
        // results' slots on the other side of the kill).
        submitToPool(PoolJob{key, spec, false});
    }

    for (int i = 0; i < n; ++i)
        workers_.emplace_back(&Daemon::workerLoop, this);

    if (opt_.socketPath.empty())
        return true; // worker-pool-only mode (tests drive handle())
    if (opt_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        return fail("socket path too long: " + opt_.socketPath);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail(std::string("socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(opt_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail("bind " + opt_.socketPath + ": " +
                    std::strerror(errno));
    if (::listen(listenFd_, 64) != 0)
        return fail(std::string("listen: ") + std::strerror(errno));
    return true;
}

bool
Daemon::idle()
{
    if (activeConns_.load() != 0)
        return false;
    {
        std::lock_guard<std::mutex> g(stateMu_);
        if (!inflight_.empty())
            return false;
    }
    std::lock_guard<std::mutex> g(poolMu_);
    return sched_.empty();
}

void
Daemon::serve()
{
    lastActivityMs_.store(nowMs());
    while (!stopping_.load()) {
        struct pollfd pfd = {listenFd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr > 0 && (pfd.revents & POLLIN) != 0) {
            const int cfd = ::accept(listenFd_, nullptr, nullptr);
            if (cfd >= 0) {
                lastActivityMs_.store(nowMs());
                activeConns_.fetch_add(1);
                std::lock_guard<std::mutex> g(connMu_);
                connFds_.push_back(cfd);
                connThreads_.emplace_back(&Daemon::connectionLoop, this,
                                          cfd);
            }
        }
        if (opt_.idleExitMs > 0 && idle() &&
            nowMs() - lastActivityMs_.load() > opt_.idleExitMs)
            break;
    }
    stop();
    std::printf("%s\n", summaryLine().c_str());
    std::fflush(stdout);
}

void
Daemon::stop()
{
    stopping_.store(true);
    poolCv_.notify_all();
    stateCv_.notify_all();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
    // Connection threads remove themselves from connFds_; joining
    // under connMu_ would deadlock, so swap the list out first.
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> g(connMu_);
        conns.swap(connThreads_);
    }
    for (std::thread &t : conns)
        if (t.joinable())
            t.join();
}

void
Daemon::submitToPool(PoolJob job)
{
    const std::string client = job.spec.client;
    const int weight = job.spec.weight;
    {
        std::lock_guard<std::mutex> g(poolMu_);
        sched_.push(client, weight, std::move(job));
    }
    poolCv_.notify_all();
}

void
Daemon::workerLoop()
{
    for (;;) {
        PoolJob job;
        std::string client;
        bool have = false;
        {
            std::unique_lock<std::mutex> lk(poolMu_);
            poolCv_.wait(lk, [&] {
                return stopping_.load() || !sched_.empty();
            });
            have = sched_.pop(&job, &client);
            if (!have && stopping_.load())
                return;
        }
        if (!have)
            continue;
        finishJob(job, runJob(job.key, job.spec));
        std::lock_guard<std::mutex> g(poolMu_);
        sched_.finished(client);
    }
}

void
Daemon::forwardProgress(const std::string &key, const JobProgress &p)
{
    std::lock_guard<std::mutex> g(progressMu_);
    auto it = progressSinks_.find(key);
    if (it == progressSinks_.end())
        return;
    JobProgress fwd = p;
    for (const auto &[token, sink] : it->second) {
        fwd.id = sink.first; // every waiter sees its own job id
        sink.second(fwd);
    }
}

JobResult
Daemon::runJob(const std::string &key, const JobSpec &spec)
{
    JobResult rs;
    rs.id = spec.id;
    const RunOptions ro = buildRunOptions(spec); // validated in handle()
    const bool streaming =
        spec.progress && spec.kind == JobKind::Run;
    const char *lastKind = "crash";
    std::string lastDetail;

    RetryPolicy policy;
    policy.maxRetries = opt_.maxRetries;
    rs.attempts = retryWithBackoff(policy, [&] {
        int chaosMode = 0; // 0 clean, 1 injected crash, 2 injected hang
        if (opt_.chaos.enabled()) {
            int seqNo;
            {
                std::lock_guard<std::mutex> g(stateMu_);
                seqNo = chaosAttempts_[key]++;
            }
            const std::uint64_t h = fnvMix(
                fnvMix(fnvMix(1469598103934665603ull, opt_.chaos.seed),
                       key),
                static_cast<std::uint64_t>(seqNo));
            const double u =
                static_cast<double>(h >> 11) / 9007199254740992.0;
            if (u < opt_.chaos.crash)
                chaosMode = 1;
            else if (u < opt_.chaos.crash + opt_.chaos.timeout)
                chaosMode = 2;
        }
        IsolationOptions iso;
        iso.subject = "job";
        iso.timeoutMs = opt_.timeoutMs;
        if (chaosMode == 2 && iso.timeoutMs > 200)
            iso.timeoutMs = 200; // hang fast: the kill is the point

        // A streaming child frames its pipe: g2 progress frames while
        // it runs, one o2 outcome at the end. The parent decodes them
        // as they arrive and fans the progress out to every waiting
        // client. A retried attempt restarts the stream from scratch
        // (consumers detect the non-increasing cycle).
        std::string parseBuf;
        RunOutcome streamed;
        bool haveStreamed = false;
        if (streaming)
            iso.onData = [&](const char *data, std::size_t n) {
                parseBuf.append(data, n);
                for (;;) {
                    std::string payload, detail;
                    if (popFrame(&parseBuf, &payload, &detail) !=
                        FrameStatus::Ok)
                        return; // short (or corrupt: attempt fails)
                    const std::string tag = payloadTag(payload);
                    if (tag == "g2") {
                        JobProgress p;
                        if (decodeProgress(payload, &p)) {
                            counters_.progressFrames.fetch_add(1);
                            forwardProgress(key, p);
                        }
                    } else if (tag == "o2") {
                        if (decodeChildOutcome(payload, &streamed))
                            haveStreamed = true;
                    }
                }
            };

        const ChildResult cr = runForkIsolated(
            [&](int fd) {
                if (chaosMode == 1)
                    std::_Exit(86); // injected crash: no verdict written
                if (chaosMode == 2)
                    for (;;) // injected hang: the watchdog SIGKILLs us
                        ::poll(nullptr, 0, 1000);
                if (streaming) {
                    RunOptions po = ro;
                    po.obs.stalls = true;
                    po.obs.timeline = true;
                    po.obs.onSample = [&](const TimelineSample &t,
                                          const StallStats &s) {
                        JobProgress p;
                        p.id = spec.id;
                        p.sample = t;
                        p.stalls = s;
                        writeAll(fd, frameMessage(encodeProgress(p),
                                                  frameMagicV2));
                    };
                    const RunOutcome out = runWorkload(spec.bench, po);
                    writeAll(fd, frameMessage(encodeChildOutcome(out),
                                              frameMagicV2));
                } else {
                    const RunOutcome out = runWorkload(spec.bench, ro);
                    writeAll(fd, encodeOutcome(out));
                }
                std::_Exit(0);
            },
            iso);
        switch (cr.outcome) {
          case ChildOutcome::HostFail:
            lastKind = "crash";
            lastDetail = cr.error;
            counters_.crashes.fetch_add(1);
            return false;
          case ChildOutcome::Timeout:
            lastKind = "timeout";
            lastDetail = watchdogDetail(iso);
            counters_.timeouts.fetch_add(1);
            return false;
          case ChildOutcome::Finished:
            break;
        }
        if (streaming) {
            if (cr.cleanExit() && haveStreamed) {
                rs.status = JobStatus::Ok;
                rs.source = ResultSource::Simulated;
                rs.outcome = std::move(streamed);
                return true;
            }
        } else {
            RunOutcome out;
            if (cr.cleanExit() && decodeOutcome(cr.output, &out)) {
                rs.status = JobStatus::Ok;
                rs.source = ResultSource::Simulated;
                rs.outcome = std::move(out);
                return true;
            }
        }
        lastKind = "crash";
        lastDetail = cr.cleanExit()
                         ? std::string("child returned an undecodable "
                                       "verdict")
                         : cr.exitDetail();
        counters_.crashes.fetch_add(1);
        return false;
    });
    counters_.retries.fetch_add(
        static_cast<std::uint64_t>(rs.attempts - 1));
    if (!rs.ok()) {
        rs.status = JobStatus::Retryable;
        rs.errorJson = failureJson(spec.bench, techniqueName(spec.tech),
                                   lastKind, lastDetail);
    }
    return rs;
}

void
Daemon::finishJob(PoolJob job, JobResult rs)
{
    const std::string &key = job.key;
    const JobSpec &spec = job.spec;
    if (rs.ok()) {
        Provenance prov;
        prov.bench = spec.bench;
        prov.tech = techniqueName(spec.tech);
        const RunOptions defaults;
        prov.configFp = configFingerprint(spec.tech, defaults.gpu,
                                          defaults.dac, defaults.cae,
                                          defaults.mta);
        prov.kernelFp = fps_.get(spec.bench, spec.scaleBits);
        prov.attempts = rs.attempts;
        prov.producer = "dacsimd pid " + std::to_string(::getpid());
        std::lock_guard<std::mutex> g(cacheMu_);
        cache_->store(key, rs.outcome, prov);
    }
    queue_->complete(key);
    if (rs.ok()) {
        const std::uint64_t sims = counters_.sims.fetch_add(1) + 1;
        // The kill -9 stand-in: result cached and journalled complete,
        // but the response never reaches the client — it must
        // reconnect, resubmit, and hit the cache.
        if (opt_.abortAfter > 0 &&
            sims >= static_cast<std::uint64_t>(opt_.abortAfter))
            std::_Exit(3);
    } else {
        std::lock_guard<std::mutex> g(stateMu_);
        if (++crashCounts_[key] >= opt_.crashLimit)
            blacklistJson_[key] = rs.errorJson;
    }
    {
        std::lock_guard<std::mutex> g(stateMu_);
        if (job.admitted) {
            auto out = outstanding_.find(spec.client);
            if (out != outstanding_.end() && --out->second <= 0)
                outstanding_.erase(out);
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            it->second->rs = std::move(rs);
            it->second->done = true;
            inflight_.erase(it);
        }
    }
    stateCv_.notify_all();
    lastActivityMs_.store(nowMs());
}

JobResult
Daemon::handle(const JobSpec &spec, const ProgressFn &onProgress)
{
    counters_.jobs.fetch_add(1);
    lastActivityMs_.store(nowMs());
    JobResult rs;
    rs.id = spec.id;

    // Validate what the codec cannot: the benchmark must exist and the
    // fault spec must parse. Both fail as structured errors.
    try {
        findWorkload(spec.bench);
        if (!spec.faultSpec.empty())
            FaultPlan::parse(spec.faultSpec);
    } catch (const FatalError &e) {
        counters_.badRequests.fetch_add(1);
        rs.status = JobStatus::Failed;
        rs.errorJson = failureJson(spec.bench, techniqueName(spec.tech),
                                   "bad-request", e.what());
        return rs;
    }

    const std::string key = cacheKey(spec);
    const bool streaming =
        spec.progress && spec.kind == JobKind::Run;
    // A streaming run bypasses the cache lookup (never the store): the
    // client asked to watch the simulation, so one actually happens.
    // Its result still lands in the cache for later plain requests.
    if (!streaming) {
        std::lock_guard<std::mutex> g(cacheMu_);
        RunOutcome out;
        if (cache_->lookup(key, &out)) {
            counters_.cacheHits.fetch_add(1);
            rs.status = JobStatus::Ok;
            rs.source = ResultSource::Cached;
            rs.outcome = std::move(out);
            return rs;
        }
    }

    // Predict requests never simulate: on a cache miss the static
    // predictor (analysis/predict.h) answers synchronously, in
    // process. Estimates model the fault-free run, are marked
    // ResultSource::Predicted, and are never cached or queued — a
    // later run request for the same job still simulates.
    if (spec.kind == JobKind::Predict) {
        counters_.estimates.fetch_add(1);
        try {
            const RunOptions defaults;
            GpuMemory gmem;
            PreparedWorkload prep =
                findWorkload(spec.bench).prepare(gmem, spec.scale());
            PredictReport rep =
                predictKernel(prep.kernel, predictLaunches(prep),
                              defaults.gpu, defaults.dac);
            const TechPredict &tp =
                spec.tech == Technique::Dac ? rep.dac : rep.base;
            rs.status = JobStatus::Ok;
            rs.source = ResultSource::Predicted;
            rs.outcome.stats.cycles =
                static_cast<std::uint64_t>(tp.estimateCycles);
            rs.outcome.anyDecoupled = spec.tech == Technique::Dac &&
                                      rep.predictedAnyDecoupled;
        } catch (const FatalError &e) {
            rs.status = JobStatus::Failed;
            rs.errorJson = failureJson(spec.bench,
                                       techniqueName(spec.tech),
                                       "predict-failed", e.what());
        }
        return rs;
    }

    std::shared_ptr<Inflight> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> g(stateMu_);
        auto bl = blacklistJson_.find(key);
        if (bl != blacklistJson_.end()) {
            counters_.blacklisted.fetch_add(1);
            rs.status = JobStatus::Failed;
            rs.errorJson = bl->second;
            return rs;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            entry = it->second;
            counters_.dedup.fetch_add(1);
        } else {
            // Admission control (DESIGN.md §16.4): a client at its
            // depth bound gets a structured Overloaded — resubmit
            // after backing off — instead of unbounded buffering.
            // Dedup joiners are free: they add no work.
            if (opt_.queueDepth > 0 &&
                outstanding_[spec.client] >=
                    static_cast<int>(opt_.queueDepth)) {
                counters_.overloaded.fetch_add(1);
                rs.status = JobStatus::Overloaded;
                rs.errorJson = failureJson(
                    spec.bench, techniqueName(spec.tech), "overloaded",
                    "client '" + spec.client + "' is at its queue depth "
                    "of " + std::to_string(opt_.queueDepth));
                return rs;
            }
            ++outstanding_[spec.client];
            entry = std::make_shared<Inflight>();
            inflight_[key] = entry;
            owner = true;
        }
    }
    // Register the progress sink before the job can start, so the
    // first boundary's frame is never missed. Joiners of an already
    // running job pick the stream up mid-flight.
    std::uint64_t sinkToken = 0;
    if (streaming && onProgress) {
        std::lock_guard<std::mutex> g(progressMu_);
        sinkToken = nextSinkToken_++;
        progressSinks_[key][sinkToken] = {spec.id, onProgress};
    }
    if (owner) {
        queue_->submit(key, encodeSpec(spec, 2));
        submitToPool(PoolJob{key, spec, true});
    }
    {
        std::unique_lock<std::mutex> lk(stateMu_);
        stateCv_.wait(lk, [&] { return entry->done || stopping_.load(); });
        if (entry->done)
            rs = entry->rs;
    }
    if (sinkToken != 0) {
        std::lock_guard<std::mutex> g(progressMu_);
        auto it = progressSinks_.find(key);
        if (it != progressSinks_.end()) {
            it->second.erase(sinkToken);
            if (it->second.empty())
                progressSinks_.erase(it);
        }
    }
    if (!entry->done) {
        rs.status = JobStatus::Retryable;
        rs.errorJson =
            failureJson(spec.bench, techniqueName(spec.tech), "shutdown",
                        "daemon stopped before the job completed");
    }
    rs.id = spec.id;
    return rs;
}

void
Daemon::handleFramed(const std::shared_ptr<Conn> &conn,
                     const std::string &payload)
{
    const std::string tag = payloadTag(payload);
    if (tag == "h2") {
        int proto = 0;
        if (decodeHello(payload, &proto) && proto >= 2)
            conn->proto.store(2);
        conn->send(encodeHello());
        return;
    }
    JobSpec spec;
    std::string err;
    if (!decodeSpec(payload, &spec, &err)) {
        counters_.badRequests.fetch_add(1);
        JobResult rs;
        rs.status = JobStatus::Failed;
        rs.errorJson = failureJson("?", "?", "bad-request", err);
        conn->sendResult(rs);
        return; // framing is intact: keep the connection
    }
    // Valid spec: run it on its own thread, so one connection can
    // pipeline many jobs (submit them all, then collect results as
    // the pool finishes them in fair-share order).
    std::lock_guard<std::mutex> g(conn->threadsMu);
    conn->threads.emplace_back([this, conn, spec] {
        ProgressFn sink;
        if (spec.progress && conn->proto.load() >= 2) {
            const std::weak_ptr<Conn> weak = conn;
            sink = [weak](const JobProgress &p) {
                if (const std::shared_ptr<Conn> c = weak.lock())
                    c->send(encodeProgress(p));
            };
        }
        JobResult rs = handle(spec, sink);
        rs.id = spec.id;
        conn->sendResult(rs);
        std::lock_guard<std::mutex> g2(conn->threadsMu);
        conn->finished.push_back(std::this_thread::get_id());
    });
}

void
Daemon::connectionLoop(int fd)
{
    const auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::string buf;
    char tmp[4096];
    bool open = true;
    while (open && !stopping_.load()) {
        const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
        if (n == 0)
            break;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        buf.append(tmp, static_cast<std::size_t>(n));
        lastActivityMs_.store(nowMs());
        while (open) {
            std::string payload, detail;
            int version = 1;
            const FrameStatus st =
                popFrame(&buf, &payload, &detail, &version);
            if (st == FrameStatus::NeedMore)
                break;
            if (st != FrameStatus::Ok) {
                // The stream is unsynchronized: answer with a
                // structured framing error, then drop the connection
                // (no correlation id can be trusted).
                counters_.badRequests.fetch_add(1);
                JobResult rs;
                rs.status = JobStatus::Failed;
                rs.errorJson = failureJson(
                    "?", "?", "bad-frame",
                    std::string(frameStatusName(st)) + ": " + detail);
                conn->sendResult(rs);
                open = false;
                break;
            }
            // Any DSF2-framed message upgrades the connection: the
            // peer demonstrably speaks the new protocol.
            if (version >= 2)
                conn->proto.store(2);
            handleFramed(conn, payload);
        }
        conn->reap();
    }
    // Wait for in-flight request threads before closing the socket:
    // their results (even if the peer is gone) must not race the
    // close. A daemon stop() wakes them via stateCv_.
    conn->joinAll();
    ::close(fd);
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (auto it = connFds_.begin(); it != connFds_.end(); ++it)
            if (*it == fd) {
                connFds_.erase(it);
                break;
            }
    }
    activeConns_.fetch_sub(1);
    lastActivityMs_.store(nowMs());
}

std::string
Daemon::summaryLine() const
{
    std::ostringstream os;
    os << "dacsimd: jobs=" << counters_.jobs.load()
       << " sims=" << counters_.sims.load()
       << " cache_hits=" << counters_.cacheHits.load()
       << " dedup=" << counters_.dedup.load()
       << " retries=" << counters_.retries.load()
       << " crashes=" << counters_.crashes.load()
       << " timeouts=" << counters_.timeouts.load()
       << " blacklisted=" << counters_.blacklisted.load()
       << " bad_requests=" << counters_.badRequests.load()
       << " resumed=" << counters_.resumed.load()
       << " estimates=" << counters_.estimates.load()
       << " overloaded=" << counters_.overloaded.load()
       << " progress_frames=" << counters_.progressFrames.load()
       << " quarantined=" << (cache_ ? cache_->quarantined() : 0);
    return os.str();
}

} // namespace dacsim::service
