#include "service/daemon.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/env.h"
#include "common/fault.h"
#include "common/log.h"
#include "harness/isolation.h"
#include "sim/fingerprint.h"
#include "workloads/workload.h"

namespace dacsim::service
{

namespace
{

std::int64_t
nowMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
fnvMix(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    return fnvMix(h, &v, sizeof v);
}

std::uint64_t
fnvMix(std::uint64_t h, const std::string &s)
{
    h = fnvMix(h, static_cast<std::uint64_t>(s.size()));
    return fnvMix(h, s.data(), s.size());
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** PR-1 report-schema JSON for a service-level failure — the same
 * keys bench_util::reportRun() emits, so one grep covers both. */
std::string
failureJson(const std::string &bench, const std::string &tech,
            const char *kind, const std::string &what)
{
    std::ostringstream os;
    os << "{\"figure\":\"service\",\"bench\":\"" << jsonEscape(bench)
       << "\",\"tech\":\"" << jsonEscape(tech)
       << "\",\"status\":\"error\",\"kind\":\"" << kind
       << "\",\"cycle\":0,\"what\":\"" << jsonEscape(what)
       << "\",\"fault_seed\":0,\"checkpoint\":\"\","
          "\"last_hash\":\"0000000000000000\",\"resumed\":false}";
    return os.str();
}

RunOptions
buildRunOptions(const JobRequest &rq)
{
    RunOptions opt;
    opt.tech = rq.tech;
    opt.scale = rq.scale();
    if (!rq.faultSpec.empty())
        opt.faults = FaultPlan::parse(rq.faultSpec);
    return opt;
}

} // namespace

// ----- chaos --------------------------------------------------------------

bool
ChaosSpec::parse(const std::string &spec, ChaosSpec *out,
                 std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    ChaosSpec o;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t sep = spec.find(',', pos);
        if (sep == std::string::npos)
            sep = spec.size();
        const std::string item = spec.substr(pos, sep - pos);
        pos = sep + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("malformed chaos item '" + item +
                        "' (expected key=value)");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        char *end = nullptr;
        if (key == "crash" || key == "timeout") {
            const double p = std::strtod(val.c_str(), &end);
            if (end == nullptr || *end != '\0' || !(p >= 0.0) || p > 1.0)
                return fail("chaos " + key + " must be a probability in "
                            "[0,1], got '" + val + "'");
            (key == "crash" ? o.crash : o.timeout) = p;
        } else if (key == "seed") {
            o.seed = std::strtoull(val.c_str(), &end, 10);
            if (end == nullptr || *end != '\0')
                return fail("chaos seed must be an integer, got '" + val +
                            "'");
        } else {
            return fail("unknown chaos key '" + key +
                        "' (crash, timeout, seed)");
        }
    }
    if (o.crash + o.timeout > 1.0)
        return fail("chaos crash+timeout probabilities exceed 1");
    *out = o;
    return true;
}

DaemonOptions
DaemonOptions::fromEnv()
{
    DaemonOptions o;
    o.socketPath = env().serviceSocket;
    o.dir = env().serviceDir;
    o.workers = env().serviceWorkers;
    o.timeoutMs = env().serviceTimeoutMs;
    o.maxRetries = env().serviceRetries;
    if (!env().serviceChaos.empty()) {
        std::string err;
        if (!ChaosSpec::parse(env().serviceChaos, &o.chaos, &err))
            std::fprintf(stderr,
                         "dacsimd: warning: DACSIM_SERVICE_CHAOS: %s "
                         "(chaos disabled)\n",
                         err.c_str());
    }
    return o;
}

// ----- daemon -------------------------------------------------------------

Daemon::Daemon(DaemonOptions opt) : opt_(std::move(opt))
{
}

Daemon::~Daemon()
{
    stop();
}

std::uint64_t
Daemon::kernelFp(const JobRequest &rq)
{
    std::ostringstream mk;
    mk << rq.bench << '|' << std::hex << rq.scaleBits;
    const std::string memoKey = mk.str();
    {
        std::lock_guard<std::mutex> g(stateMu_);
        auto it = kernelFps_.find(memoKey);
        if (it != kernelFps_.end())
            return it->second;
    }
    GpuMemory mem;
    const PreparedWorkload pw =
        findWorkload(rq.bench).prepare(mem, rq.scale());
    const std::uint64_t fp = kernelFingerprint(pw.kernel);
    std::lock_guard<std::mutex> g(stateMu_);
    kernelFps_[memoKey] = fp;
    return fp;
}

std::string
Daemon::cacheKey(const JobRequest &rq)
{
    const RunOptions defaults;
    std::uint64_t h = 1469598103934665603ull;
    h = fnvMix(h, configFingerprint(rq.tech, defaults.gpu, defaults.dac,
                                    defaults.cae, defaults.mta));
    h = fnvMix(h, kernelFp(rq));
    h = fnvMix(h, rq.bench);
    h = fnvMix(h, std::string(techniqueName(rq.tech)));
    h = fnvMix(h, rq.scaleBits);
    h = fnvMix(h, rq.faultSpec);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
Daemon::start(std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    ::signal(SIGPIPE, SIG_IGN);
    if (opt_.dir.empty())
        return fail("service state directory not set");
    ::mkdir(opt_.dir.c_str(), 0755);
    cache_ = std::make_unique<ResultCache>(opt_.dir + "/cache");
    queue_ = std::make_unique<DurableQueue>(opt_.dir + "/queue.journal");

    int n = opt_.workers;
    if (n <= 0)
        n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0)
        n = 2;
    poolQueues_.resize(static_cast<std::size_t>(n));

    // Resume the backlog: every job journalled submitted but never
    // completed re-enters the pool, exactly as the dead daemon held
    // it. A job whose result was cached before the kill (killed
    // between the cache store and the queue's completion record) is
    // simply marked complete — its next submission is a cache hit.
    for (const auto &[key, enc] : queue_->pending()) {
        JobRequest rq;
        std::string err;
        if (!decodeRequest(enc, &rq, &err)) {
            std::fprintf(stderr,
                         "dacsimd: warning: dropping unreadable backlog "
                         "entry %s: %s\n",
                         key.c_str(), err.c_str());
            queue_->complete(key);
            continue;
        }
        RunOutcome out;
        {
            std::lock_guard<std::mutex> g(cacheMu_);
            if (cache_->lookup(key, &out)) {
                queue_->complete(key);
                continue;
            }
        }
        {
            std::lock_guard<std::mutex> g(stateMu_);
            inflight_[key] = std::make_shared<Inflight>();
        }
        counters_.resumed.fetch_add(1);
        submitToPool(PoolJob{key, rq});
    }

    for (int i = 0; i < n; ++i)
        workers_.emplace_back(&Daemon::workerLoop, this, i);

    if (opt_.socketPath.empty())
        return true; // worker-pool-only mode (tests drive handle())
    if (opt_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        return fail("socket path too long: " + opt_.socketPath);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail(std::string("socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(opt_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail("bind " + opt_.socketPath + ": " +
                    std::strerror(errno));
    if (::listen(listenFd_, 64) != 0)
        return fail(std::string("listen: ") + std::strerror(errno));
    return true;
}

bool
Daemon::idle()
{
    if (activeConns_.load() != 0)
        return false;
    {
        std::lock_guard<std::mutex> g(stateMu_);
        if (!inflight_.empty())
            return false;
    }
    std::lock_guard<std::mutex> g(poolMu_);
    for (const auto &q : poolQueues_)
        if (!q.empty())
            return false;
    return true;
}

void
Daemon::serve()
{
    lastActivityMs_.store(nowMs());
    while (!stopping_.load()) {
        struct pollfd pfd = {listenFd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr > 0 && (pfd.revents & POLLIN) != 0) {
            const int cfd = ::accept(listenFd_, nullptr, nullptr);
            if (cfd >= 0) {
                lastActivityMs_.store(nowMs());
                activeConns_.fetch_add(1);
                std::lock_guard<std::mutex> g(connMu_);
                connFds_.push_back(cfd);
                connThreads_.emplace_back(&Daemon::connectionLoop, this,
                                          cfd);
            }
        }
        if (opt_.idleExitMs > 0 && idle() &&
            nowMs() - lastActivityMs_.load() > opt_.idleExitMs)
            break;
    }
    stop();
    std::printf("%s\n", summaryLine().c_str());
    std::fflush(stdout);
}

void
Daemon::stop()
{
    stopping_.store(true);
    poolCv_.notify_all();
    stateCv_.notify_all();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
    // Connection threads remove themselves from connFds_; joining
    // under connMu_ would deadlock, so swap the list out first.
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> g(connMu_);
        conns.swap(connThreads_);
    }
    for (std::thread &t : conns)
        if (t.joinable())
            t.join();
}

void
Daemon::submitToPool(PoolJob job)
{
    {
        std::lock_guard<std::mutex> g(poolMu_);
        poolQueues_[poolNext_++ % poolQueues_.size()].push_back(
            std::move(job));
    }
    poolCv_.notify_all();
}

void
Daemon::workerLoop(int self)
{
    const auto idx = static_cast<std::size_t>(self);
    for (;;) {
        PoolJob job;
        bool have = false;
        {
            std::unique_lock<std::mutex> lk(poolMu_);
            poolCv_.wait(lk, [&] {
                if (stopping_.load())
                    return true;
                for (const auto &q : poolQueues_)
                    if (!q.empty())
                        return true;
                return false;
            });
            if (!poolQueues_[idx].empty()) {
                job = std::move(poolQueues_[idx].front());
                poolQueues_[idx].pop_front();
                have = true;
            } else {
                // Steal from the busiest sibling's tail.
                for (std::size_t j = 0; j < poolQueues_.size(); ++j) {
                    if (j == idx || poolQueues_[j].empty())
                        continue;
                    job = std::move(poolQueues_[j].back());
                    poolQueues_[j].pop_back();
                    have = true;
                    break;
                }
            }
            if (!have && stopping_.load())
                return;
        }
        if (!have)
            continue;
        finishJob(job.key, job.rq, runJob(job.key, job.rq));
    }
}

JobResponse
Daemon::runJob(const std::string &key, const JobRequest &rq)
{
    JobResponse rs;
    rs.id = rq.id;
    const RunOptions ro = buildRunOptions(rq); // validated in handle()
    const char *lastKind = "crash";
    std::string lastDetail;

    RetryPolicy policy;
    policy.maxRetries = opt_.maxRetries;
    rs.attempts = retryWithBackoff(policy, [&] {
        int chaosMode = 0; // 0 clean, 1 injected crash, 2 injected hang
        if (opt_.chaos.enabled()) {
            int seqNo;
            {
                std::lock_guard<std::mutex> g(stateMu_);
                seqNo = chaosAttempts_[key]++;
            }
            const std::uint64_t h = fnvMix(
                fnvMix(fnvMix(1469598103934665603ull, opt_.chaos.seed),
                       key),
                static_cast<std::uint64_t>(seqNo));
            const double u =
                static_cast<double>(h >> 11) / 9007199254740992.0;
            if (u < opt_.chaos.crash)
                chaosMode = 1;
            else if (u < opt_.chaos.crash + opt_.chaos.timeout)
                chaosMode = 2;
        }
        IsolationOptions iso;
        iso.subject = "job";
        iso.timeoutMs = opt_.timeoutMs;
        if (chaosMode == 2 && iso.timeoutMs > 200)
            iso.timeoutMs = 200; // hang fast: the kill is the point
        const ChildResult cr = runForkIsolated(
            [&](int fd) {
                if (chaosMode == 1)
                    std::_Exit(86); // injected crash: no verdict written
                if (chaosMode == 2)
                    for (;;) // injected hang: the watchdog SIGKILLs us
                        ::poll(nullptr, 0, 1000);
                const RunOutcome out = runWorkload(rq.bench, ro);
                writeAll(fd, encodeOutcome(out));
                std::_Exit(0);
            },
            iso);
        switch (cr.outcome) {
          case ChildOutcome::HostFail:
            lastKind = "crash";
            lastDetail = cr.error;
            counters_.crashes.fetch_add(1);
            return false;
          case ChildOutcome::Timeout:
            lastKind = "timeout";
            lastDetail = watchdogDetail(iso);
            counters_.timeouts.fetch_add(1);
            return false;
          case ChildOutcome::Finished:
            break;
        }
        RunOutcome out;
        if (cr.cleanExit() && decodeOutcome(cr.output, &out)) {
            rs.ok = true;
            rs.outcome = std::move(out);
            return true;
        }
        lastKind = "crash";
        lastDetail = cr.cleanExit()
                         ? std::string("child returned an undecodable "
                                       "verdict")
                         : cr.exitDetail();
        counters_.crashes.fetch_add(1);
        return false;
    });
    counters_.retries.fetch_add(
        static_cast<std::uint64_t>(rs.attempts - 1));
    if (!rs.ok) {
        rs.retryable = true;
        rs.errorJson = failureJson(rq.bench, techniqueName(rq.tech),
                                   lastKind, lastDetail);
    }
    return rs;
}

void
Daemon::finishJob(const std::string &key, const JobRequest &rq,
                  JobResponse rs)
{
    if (rs.ok) {
        Provenance prov;
        prov.bench = rq.bench;
        prov.tech = techniqueName(rq.tech);
        const RunOptions defaults;
        prov.configFp = configFingerprint(rq.tech, defaults.gpu,
                                          defaults.dac, defaults.cae,
                                          defaults.mta);
        prov.kernelFp = kernelFp(rq);
        prov.attempts = rs.attempts;
        prov.producer = "dacsimd pid " + std::to_string(::getpid());
        std::lock_guard<std::mutex> g(cacheMu_);
        cache_->store(key, rs.outcome, prov);
    }
    queue_->complete(key);
    if (rs.ok) {
        const std::uint64_t sims = counters_.sims.fetch_add(1) + 1;
        // The kill -9 stand-in: result cached and journalled complete,
        // but the response never reaches the client — it must
        // reconnect, resubmit, and hit the cache.
        if (opt_.abortAfter > 0 &&
            sims >= static_cast<std::uint64_t>(opt_.abortAfter))
            std::_Exit(3);
    } else {
        std::lock_guard<std::mutex> g(stateMu_);
        if (++crashCounts_[key] >= opt_.crashLimit)
            blacklistJson_[key] = rs.errorJson;
    }
    {
        std::lock_guard<std::mutex> g(stateMu_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            it->second->rs = std::move(rs);
            it->second->done = true;
            inflight_.erase(it);
        }
    }
    stateCv_.notify_all();
    lastActivityMs_.store(nowMs());
}

JobResponse
Daemon::handle(const JobRequest &rq)
{
    counters_.jobs.fetch_add(1);
    lastActivityMs_.store(nowMs());
    JobResponse rs;
    rs.id = rq.id;

    // Validate what the codec cannot: the benchmark must exist and the
    // fault spec must parse. Both fail as structured errors.
    try {
        findWorkload(rq.bench);
        if (!rq.faultSpec.empty())
            FaultPlan::parse(rq.faultSpec);
    } catch (const FatalError &e) {
        counters_.badRequests.fetch_add(1);
        rs.ok = false;
        rs.retryable = false;
        rs.errorJson = failureJson(rq.bench, techniqueName(rq.tech),
                                   "bad-request", e.what());
        return rs;
    }

    const std::string key = cacheKey(rq);
    {
        std::lock_guard<std::mutex> g(cacheMu_);
        RunOutcome out;
        if (cache_->lookup(key, &out)) {
            counters_.cacheHits.fetch_add(1);
            rs.ok = true;
            rs.cached = true;
            rs.outcome = std::move(out);
            return rs;
        }
    }

    // Predict requests never simulate: on a cache miss the static
    // predictor (analysis/predict.h) answers synchronously, in
    // process. Estimates model the fault-free run, are flagged
    // estimate=1, and are never cached or queued — a later run request
    // for the same job still simulates.
    if (rq.kind == JobKind::Predict) {
        counters_.estimates.fetch_add(1);
        try {
            const RunOptions defaults;
            GpuMemory gmem;
            PreparedWorkload prep =
                findWorkload(rq.bench).prepare(gmem, rq.scale());
            PredictReport rep =
                predictKernel(prep.kernel, predictLaunches(prep),
                              defaults.gpu, defaults.dac);
            const TechPredict &tp =
                rq.tech == Technique::Dac ? rep.dac : rep.base;
            rs.ok = true;
            rs.estimate = true;
            rs.outcome.stats.cycles =
                static_cast<std::uint64_t>(tp.estimateCycles);
            rs.outcome.anyDecoupled = rq.tech == Technique::Dac &&
                                      rep.predictedAnyDecoupled;
        } catch (const FatalError &e) {
            rs.ok = false;
            rs.retryable = false;
            rs.errorJson = failureJson(rq.bench, techniqueName(rq.tech),
                                       "predict-failed", e.what());
        }
        return rs;
    }

    std::shared_ptr<Inflight> entry;
    bool owner = false;
    {
        std::lock_guard<std::mutex> g(stateMu_);
        auto bl = blacklistJson_.find(key);
        if (bl != blacklistJson_.end()) {
            counters_.blacklisted.fetch_add(1);
            rs.ok = false;
            rs.retryable = false;
            rs.errorJson = bl->second;
            return rs;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            entry = it->second;
            counters_.dedup.fetch_add(1);
        } else {
            entry = std::make_shared<Inflight>();
            inflight_[key] = entry;
            owner = true;
        }
    }
    if (owner) {
        queue_->submit(key, encodeRequest(rq));
        submitToPool(PoolJob{key, rq});
    }
    {
        std::unique_lock<std::mutex> lk(stateMu_);
        stateCv_.wait(lk, [&] { return entry->done || stopping_.load(); });
        if (!entry->done) {
            rs.ok = false;
            rs.retryable = true;
            rs.errorJson =
                failureJson(rq.bench, techniqueName(rq.tech), "shutdown",
                            "daemon stopped before the job completed");
            return rs;
        }
        rs = entry->rs;
    }
    rs.id = rq.id;
    return rs;
}

void
Daemon::connectionLoop(int fd)
{
    std::string buf;
    char tmp[4096];
    bool open = true;
    while (open && !stopping_.load()) {
        const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
        if (n == 0)
            break;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        buf.append(tmp, static_cast<std::size_t>(n));
        lastActivityMs_.store(nowMs());
        while (open) {
            std::string payload, detail;
            const FrameStatus st = popFrame(&buf, &payload, &detail);
            if (st == FrameStatus::NeedMore)
                break;
            if (st != FrameStatus::Ok) {
                // The stream is unsynchronized: answer with a
                // structured framing error, then drop the connection
                // (no correlation id can be trusted).
                counters_.badRequests.fetch_add(1);
                JobResponse rs;
                rs.ok = false;
                rs.retryable = false;
                rs.errorJson = failureJson(
                    "?", "?", "bad-frame",
                    std::string(frameStatusName(st)) + ": " + detail);
                writeAll(fd, frameMessage(encodeResponse(rs)));
                open = false;
                break;
            }
            JobRequest rq;
            std::string err;
            if (!decodeRequest(payload, &rq, &err)) {
                counters_.badRequests.fetch_add(1);
                JobResponse rs;
                rs.ok = false;
                rs.retryable = false;
                rs.errorJson = failureJson("?", "?", "bad-request", err);
                writeAll(fd, frameMessage(encodeResponse(rs)));
                continue; // framing is intact: keep the connection
            }
            JobResponse rs = handle(rq);
            rs.id = rq.id;
            writeAll(fd, frameMessage(encodeResponse(rs)));
        }
    }
    ::close(fd);
    {
        std::lock_guard<std::mutex> g(connMu_);
        for (auto it = connFds_.begin(); it != connFds_.end(); ++it)
            if (*it == fd) {
                connFds_.erase(it);
                break;
            }
    }
    activeConns_.fetch_sub(1);
    lastActivityMs_.store(nowMs());
}

std::string
Daemon::summaryLine() const
{
    std::ostringstream os;
    os << "dacsimd: jobs=" << counters_.jobs.load()
       << " sims=" << counters_.sims.load()
       << " cache_hits=" << counters_.cacheHits.load()
       << " dedup=" << counters_.dedup.load()
       << " retries=" << counters_.retries.load()
       << " crashes=" << counters_.crashes.load()
       << " timeouts=" << counters_.timeouts.load()
       << " blacklisted=" << counters_.blacklisted.load()
       << " bad_requests=" << counters_.badRequests.load()
       << " resumed=" << counters_.resumed.load() << " quarantined="
       << (cache_ ? cache_->quarantined() : 0);
    return os.str();
}

} // namespace dacsim::service
