/**
 * @file
 * Weighted fair scheduling for the daemon's worker pool (DESIGN.md
 * §16.4): a stride scheduler over per-client queues.
 *
 * Every client (JobSpec::client) owns a FIFO queue and a virtual-time
 * pass; popping always takes the head of the non-empty queue with the
 * minimum pass, then advances that pass by the client's stride
 * (strideScale / weight). A weight-2 client therefore drains twice as
 * many jobs per unit of virtual time as a weight-1 one, regardless of
 * how bursty either's submissions are, and a newly active client
 * joins at the current virtual clock instead of replaying the past —
 * no starvation, no banked credit.
 *
 * The scheduler also owns the admission bound: push() refuses (and
 * the daemon answers JobStatus::Overloaded) once a client's queued +
 * running jobs reach the configured depth, so one runaway sweep gets
 * a structured rejection instead of buffering without bound. The
 * class is deliberately lock-free-of-its-own: the daemon serializes
 * access under its pool mutex, and tests drive it single-threaded to
 * pin the interleaving deterministically.
 */

#ifndef DACSIM_SERVICE_FAIR_H
#define DACSIM_SERVICE_FAIR_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>

namespace dacsim::service
{

template <typename T>
class StrideScheduler
{
  public:
    /** Virtual-time quantum of a weight-1 pop. */
    static constexpr std::uint64_t strideScale = 1ull << 20;

    /** @p maxDepth bounds one client's queued + running jobs
     * (0: unbounded). */
    explicit StrideScheduler(std::size_t maxDepth = 0)
        : maxDepth_(maxDepth)
    {
    }

    /**
     * Queue @p item for @p client. False when the client is at its
     * depth bound (the item is not queued). @p weight is clamped to
     * [1, 1024] and may change between pushes; the latest wins.
     */
    bool
    push(const std::string &client, int weight, T item)
    {
        Queue &q = queues_[client];
        if (maxDepth_ != 0 && q.items.size() + q.running >= maxDepth_)
            return false;
        if (weight < 1)
            weight = 1;
        if (weight > 1024)
            weight = 1024;
        q.stride = strideScale / static_cast<std::uint64_t>(weight);
        if (q.items.empty() && q.running == 0 && q.pass < clock_)
            q.pass = clock_; // joining client starts at "now"
        q.items.push_back(std::move(item));
        ++size_;
        return true;
    }

    /**
     * Pop the fairest item: head of the minimum-pass non-empty queue
     * (ties broken by client name, deterministically). The client's
     * running count is incremented — pair every successful pop with a
     * finished() call. False when empty.
     */
    bool
    pop(T *out, std::string *client = nullptr)
    {
        Queue *best = nullptr;
        const std::string *bestName = nullptr;
        for (auto &[name, q] : queues_) {
            if (q.items.empty())
                continue;
            if (best == nullptr || q.pass < best->pass) {
                best = &q;
                bestName = &name;
            }
        }
        if (best == nullptr)
            return false;
        *out = std::move(best->items.front());
        best->items.pop_front();
        ++best->running;
        clock_ = best->pass;
        best->pass += best->stride;
        --size_;
        if (client)
            *client = *bestName;
        return true;
    }

    /** A popped item's job completed: release its depth slot. */
    void
    finished(const std::string &client)
    {
        auto it = queues_.find(client);
        if (it == queues_.end())
            return;
        if (it->second.running > 0)
            --it->second.running;
        if (it->second.items.empty() && it->second.running == 0)
            queues_.erase(it);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Queued + running jobs charged to @p client right now. */
    std::size_t
    depth(const std::string &client) const
    {
        auto it = queues_.find(client);
        if (it == queues_.end())
            return 0;
        return it->second.items.size() + it->second.running;
    }

  private:
    struct Queue
    {
        std::deque<T> items;
        std::size_t running = 0;
        std::uint64_t pass = 0;
        std::uint64_t stride = strideScale;
    };

    std::size_t maxDepth_;
    std::map<std::string, Queue> queues_;
    std::uint64_t clock_ = 0;
    std::size_t size_ = 0;
};

} // namespace dacsim::service

#endif // DACSIM_SERVICE_FAIR_H
