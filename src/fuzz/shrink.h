/**
 * @file
 * Deterministic test-case minimizer for failing oracle cases
 * (DESIGN.md §12.4).
 *
 * Shrinking repeatedly applies two reduction passes to the failing
 * kernel source — dropping instruction/label lines, then narrowing
 * integer constants — keeping a candidate only when it still
 * assembles, still lints without unsuppressed errors, and still fails
 * the oracle with the same status. Passes iterate to a fixed point in
 * a fixed order with no randomness, so the same failure always
 * shrinks to the same minimal repro (and shrinking a shrunk case is a
 * no-op — the idempotence the regression tests pin down).
 *
 * The result is rendered as a self-contained repro file: a header of
 * structured comments (seed, parameter point, verdict, shrink
 * statistics) followed by the minimized kernel, directly replayable
 * by `dacsim-fuzz --replay` and the corpus tier in tests/corpus/.
 */

#ifndef DACSIM_FUZZ_SHRINK_H
#define DACSIM_FUZZ_SHRINK_H

#include <cstdint>
#include <string>

#include "fuzz/oracle.h"

namespace dacsim::fuzz
{

struct ShrinkOptions
{
    /** Oracle configuration candidates are re-checked under. Must be
     * the configuration the case originally failed under. */
    OracleOptions oracle;
    /** Fixed-point bound (each round is one drop pass plus one
     * constant-narrowing pass over the whole source). */
    int maxRounds = 16;
    /**
     * Optional known-good configuration for differential shrinking.
     * When set, an accepted candidate must also PASS the oracle under
     * it. Without a reference, minimization can drift onto kernels
     * that fail for an unrelated reason — e.g. dropping the store
     * that gave every thread its own OUT slot makes final memory
     * schedule-dependent, which mismatches under ANY configuration
     * and so still satisfies the plain predicate. Campaigns hunting a
     * seeded bug pass the same options with the bug knob cleared, so
     * repros stay replayable (and committable to tests/corpus/) on
     * trunk.
     */
    bool haveReference = false;
    OracleOptions reference;
};

struct ShrinkResult
{
    std::string source;    ///< minimized source, still failing
    OracleVerdict verdict; ///< the minimized source's verdict
    int rounds = 0;        ///< fixed-point rounds executed
    int attempts = 0;      ///< candidate oracle evaluations
    int droppedLines = 0;  ///< source lines removed
    int narrowedConsts = 0;///< integer constants reduced
};

/**
 * Minimize @p source, which must currently fail the oracle under
 * @p opt.oracle (fatals otherwise — shrinking a passing case is a
 * caller bug). @p seed labels verdicts in the result.
 */
ShrinkResult shrinkCase(const std::string &source, std::uint64_t seed,
                        const ShrinkOptions &opt);

/** Render a self-contained repro file for a shrunk failure. */
std::string renderRepro(std::uint64_t seed, const std::string &paramsDesc,
                        const ShrinkResult &result);

/** The seed recorded in a repro file header (0 when absent). */
std::uint64_t reproSeed(const std::string &reproText);

} // namespace dacsim::fuzz

#endif // DACSIM_FUZZ_SHRINK_H
