#include "fuzz/campaign.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/log.h"
#include "fuzz/shrink.h"
#include "harness/isolation.h"
#include "harness/journal.h"
#include "harness/sweep.h"

namespace dacsim::fuzz
{

const char *
caseStatusName(CaseStatus s)
{
    switch (s) {
      case CaseStatus::Match: return "match";
      case CaseStatus::AssembleError: return "assemble-error";
      case CaseStatus::LintDirty: return "lint-dirty";
      case CaseStatus::RunFailure: return "run-failure";
      case CaseStatus::Mismatch: return "mismatch";
      case CaseStatus::Crash: return "crash";
      case CaseStatus::Timeout: return "timeout";
    }
    return "?";
}

bool
caseFailed(CaseStatus s)
{
    return s != CaseStatus::Match;
}

namespace
{

CaseStatus
fromOracleStatus(OracleStatus s)
{
    switch (s) {
      case OracleStatus::Match: return CaseStatus::Match;
      case OracleStatus::AssembleError: return CaseStatus::AssembleError;
      case OracleStatus::LintDirty: return CaseStatus::LintDirty;
      case OracleStatus::RunFailure: return CaseStatus::RunFailure;
      case OracleStatus::Mismatch: return CaseStatus::Mismatch;
    }
    return CaseStatus::Crash;
}

std::string
jsonEsc(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** The first non-baseline technique record carrying the failure, if
 * the verdict has one. */
const TechRecord *
offendingTech(const OracleVerdict &v)
{
    if (v.techs.empty())
        return nullptr;
    const std::uint64_t baseCk = v.techs.front().checksum;
    for (const TechRecord &t : v.techs) {
        if (t.tech == Technique::Baseline)
            continue;
        if (t.error != RunErrorKind::None || t.fellBack ||
            t.checksum != baseCk)
            return &t;
    }
    return nullptr;
}

/** Journal key: the seed plus a fingerprint of every option that
 * changes a verdict, so reusing a campaign directory with different
 * oracle settings re-runs instead of serving stale verdicts. */
std::string
journalKey(std::uint64_t seed, const CampaignOptions &opt)
{
    std::uint64_t h = 1469598103934665603ull;
    auto fold = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (char c : opt.faultSpec)
        fold(static_cast<unsigned char>(c));
    fold(opt.oracle.dac.bugPerturbAffineImm ? 1 : 0);
    fold(static_cast<std::uint64_t>(opt.oracle.gpu.numSms));
    fold(static_cast<std::uint64_t>(opt.oracle.ctas));
    fold(static_cast<std::uint64_t>(opt.oracle.blockThreads));
    fold(static_cast<std::uint64_t>(opt.oracle.elems));
    fold(opt.oracle.lintGate ? 1 : 0);
    fold(static_cast<std::uint64_t>(opt.oracle.maxCycles));
    for (Technique t : opt.oracle.techs)
        fold(static_cast<std::uint64_t>(t) + 2);
    std::ostringstream os;
    os << 's' << seed << '@' << std::hex << h;
    return os.str();
}

/** The last parseable verdict line in a child's output. */
bool
lastVerdictLine(const std::string &buf, OracleVerdict *v)
{
    bool found = false;
    std::istringstream is(buf);
    for (std::string line; std::getline(is, line);) {
        OracleVerdict cand;
        if (decodeVerdict(line, &cand)) {
            *v = std::move(cand);
            found = true;
        }
    }
    return found;
}

/** One crash-isolated attempt (Fork or ForkExec) through the shared
 * fork/pipe/watchdog layer (harness/isolation.h). */
CaseResult
runIsolatedOnce(std::uint64_t seed, const CampaignOptions &opt,
                const OracleOptions &oracleOpt)
{
    CaseResult r;
    r.seed = seed;

    IsolationOptions iso;
    iso.timeoutMs = opt.timeoutMs;
    iso.subject = "case";
    ChildResult cr = runForkIsolated(
        [&](int writeFd) {
            // Never return: the only exits are _Exit/_exit/exec, so no
            // parent-side state (journals, gtest, stdio buffers) is
            // flushed twice.
            if (opt.isolation == CampaignOptions::Isolation::ForkExec) {
                ::dup2(writeFd, STDOUT_FILENO);
                ::close(writeFd);
                const std::string seedStr = std::to_string(seed);
                std::vector<const char *> argv = {opt.execPath.c_str(),
                                                  "--child-case",
                                                  seedStr.c_str()};
                if (!opt.faultSpec.empty()) {
                    argv.push_back("--faults");
                    argv.push_back(opt.faultSpec.c_str());
                }
                if (opt.oracle.dac.bugPerturbAffineImm)
                    argv.push_back("--inject-bug");
                argv.push_back(nullptr);
                ::execv(opt.execPath.c_str(),
                        const_cast<char *const *>(argv.data()));
                _exit(127);
            }
            try {
                OracleVerdict v = runOracleSeed(seed, oracleOpt);
                writeAll(writeFd, encodeVerdict(v) + "\n");
            } catch (...) {
                // Swallow everything: an unparsable/absent verdict plus
                // the exit status is the crash report.
                std::_Exit(1);
            }
            std::_Exit(0);
        },
        iso);

    if (cr.outcome == ChildOutcome::HostFail) {
        r.status = CaseStatus::Crash;
        r.detail = cr.error;
        return r;
    }
    if (cr.outcome == ChildOutcome::Timeout) {
        r.status = CaseStatus::Timeout;
        r.detail = watchdogDetail(iso);
        r.verdict.seed = seed;
        return r;
    }

    OracleVerdict v;
    const bool haveVerdict = lastVerdictLine(cr.output, &v);
    if (!haveVerdict || !cr.cleanExit()) {
        r.status = CaseStatus::Crash;
        std::string detail = cr.exitDetail();
        if (!haveVerdict)
            detail += " (no verdict received)";
        r.detail = std::move(detail);
        r.verdict.seed = seed;
        return r;
    }

    r.status = fromOracleStatus(v.status);
    r.detail = v.detail;
    r.verdict = std::move(v);
    return r;
}

CaseResult
runCaseOnce(std::uint64_t seed, const CampaignOptions &opt,
            const OracleOptions &oracleOpt)
{
    if (opt.isolation == CampaignOptions::Isolation::InProcess) {
        CaseResult r;
        r.seed = seed;
        try {
            OracleVerdict v = runOracleSeed(seed, oracleOpt);
            r.status = fromOracleStatus(v.status);
            r.detail = v.detail;
            r.verdict = std::move(v);
        } catch (const std::exception &e) {
            r.status = CaseStatus::Crash;
            r.detail = std::string("uncaught exception: ") + e.what();
            r.verdict.seed = seed;
        }
        return r;
    }
    return runIsolatedOnce(seed, opt, oracleOpt);
}

/** Retry host-side failures (crash/timeout) with backoff; oracle
 * verdicts are deterministic and never retried. */
CaseResult
runCaseWithRetry(std::uint64_t seed, const CampaignOptions &opt,
                 const OracleOptions &oracleOpt)
{
    CaseResult r;
    RetryPolicy policy;
    policy.maxRetries = opt.maxRetries;
    r.attempts = retryWithBackoff(policy, [&] {
        r = runCaseOnce(seed, opt, oracleOpt);
        return r.status != CaseStatus::Crash &&
               r.status != CaseStatus::Timeout;
    });
    return r;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::trunc);
    os << text;
}

/** Shrink a deterministic failure and write its repro file; crash and
 * timeout cases get the unshrunk source (shrinking them in the parent
 * would reproduce the crash in the campaign process). */
void
writeRepro(CaseResult &r, const CampaignOptions &opt,
           const OracleOptions &oracleOpt)
{
    if (opt.dir.empty() || !caseFailed(r.status))
        return;
    const std::string path =
        opt.dir + "/repro-seed" + std::to_string(r.seed) + ".dacasm";
    GeneratedKernel g = generateKernel(r.seed);
    if (r.status == CaseStatus::Crash || r.status == CaseStatus::Timeout) {
        std::ostringstream os;
        os << "// dacsim-fuzz repro (unshrunk: the case "
           << (r.status == CaseStatus::Crash ? "crashed" : "timed out")
           << " the child process)\n"
           << "// seed: " << r.seed << "\n"
           << "// params: " << g.params.describe() << "\n"
           << "// verdict: " << caseStatusName(r.status) << "\n"
           << "// detail: " << r.detail << "\n"
           << g.source;
        writeFile(path, os.str());
        r.reproPath = path;
        return;
    }
    if (!opt.shrinkFailures)
        return;
    try {
        ShrinkOptions so;
        so.oracle = oracleOpt;
        // Hunting a seeded bug means a known-good configuration
        // exists: shrink differentially against it so the repro keeps
        // isolating the bug (and replays clean on trunk, corpus-ready)
        // instead of drifting onto a kernel that fails everywhere.
        if (oracleOpt.dac.bugPerturbAffineImm) {
            so.haveReference = true;
            so.reference = oracleOpt;
            so.reference.dac.bugPerturbAffineImm = false;
        }
        ShrinkResult sr = shrinkCase(g.source, r.seed, so);
        writeFile(path,
                  renderRepro(r.seed, g.params.describe(), sr));
        r.reproPath = path;
    } catch (const std::exception &e) {
        r.detail += std::string(" [shrink failed: ") + e.what() + "]";
    }
}

} // namespace

std::string
encodeCaseResult(const CaseResult &r)
{
    std::ostringstream os;
    os << "c1 st=" << static_cast<int>(r.status) << " att=" << r.attempts
       << " fseed=" << r.faultSeed
       << " repro=" << journalEscape(r.reproPath)
       << " detail=" << journalEscape(r.detail)
       << " v=" << journalEscape(encodeVerdict(r.verdict));
    return os.str();
}

bool
decodeCaseResult(const std::string &payload, CaseResult *r)
{
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || tag != "c1")
        return false;
    CaseResult o;
    bool haveVerdict = false;
    std::string tok;
    try {
        while (is >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return false;
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "st") {
                o.status = static_cast<CaseStatus>(std::stoi(val));
            } else if (key == "att") {
                o.attempts = std::stoi(val);
            } else if (key == "fseed") {
                o.faultSeed = std::stoull(val);
            } else if (key == "repro") {
                o.reproPath = journalUnescape(val);
            } else if (key == "detail") {
                o.detail = journalUnescape(val);
            } else if (key == "v") {
                if (!decodeVerdict(journalUnescape(val), &o.verdict))
                    return false;
                haveVerdict = true;
            } else {
                return false; // unknown key: different format version
            }
        }
    } catch (const std::exception &) {
        return false;
    }
    if (!haveVerdict)
        return false;
    o.seed = o.verdict.seed;
    *r = std::move(o);
    return true;
}

std::string
caseFailureJson(const CaseResult &r)
{
    const TechRecord *off = offendingTech(r.verdict);
    const char *kind = caseStatusName(r.status);
    if (r.status == CaseStatus::RunFailure && off)
        kind = runErrorKindName(off->error);
    std::ostringstream os;
    os << "{\"figure\":\"dacsim-fuzz\",\"bench\":\"seed"
       << r.verdict.seed << "\",\"tech\":\""
       << (off ? techniqueName(off->tech) : "-") << "\",\"status\":\""
       << (off && off->fellBack ? "fallback" : "error")
       << "\",\"kind\":\"" << kind << "\",\"cycle\":"
       << (off ? off->cycles : 0) << ",\"what\":\"" << jsonEsc(r.detail)
       << "\",\"fault_seed\":" << r.faultSeed << ",\"checkpoint\":\"\","
       << "\"last_hash\":\"";
    char hb[32];
    std::snprintf(hb, sizeof hb, "%016llx",
                  static_cast<unsigned long long>(off ? off->lastHash : 0));
    os << hb << "\",\"resumed\":" << (r.fromJournal ? "true" : "false")
       << ",\"seed\":" << r.verdict.seed << ",\"repro\":\""
       << jsonEsc(r.reproPath) << "\",\"attempts\":" << r.attempts << "}";
    return os.str();
}

OracleOptions
campaignOracleOptions(const CampaignOptions &opt)
{
    OracleOptions oracle = opt.oracle;
    if (!opt.faultSpec.empty())
        oracle.faults = FaultPlan::parse(opt.faultSpec);
    return oracle;
}

std::string
CampaignReport::renderJson() const
{
    // Invariant under kill/resume: a pure function of the per-case
    // results (fromJournal is deliberately excluded), so check.sh can
    // byte-compare a straight-through run against a killed-and-resumed
    // one.
    int counts[7] = {0, 0, 0, 0, 0, 0, 0};
    for (const CaseResult &c : cases)
        ++counts[static_cast<int>(c.status)];
    std::ostringstream os;
    os << "{\"fuzz_campaign\":{\"first_seed\":" << firstSeed
       << ",\"seeds\":" << numSeeds << "},\n\"counts\":{";
    for (int s = 0; s < 7; ++s)
        os << (s ? "," : "") << "\""
           << caseStatusName(static_cast<CaseStatus>(s))
           << "\":" << counts[s];
    char hb[32];
    std::snprintf(hb, sizeof hb, "%016llx",
                  static_cast<unsigned long long>(verdictDigest));
    os << "},\n\"verdict_digest\":\"" << hb << "\",\n\"failures\":[";
    bool first = true;
    for (const CaseResult &c : cases) {
        if (!caseFailed(c.status))
            continue;
        CaseResult stable = c;
        stable.fromJournal = false;
        os << (first ? "\n" : ",\n") << caseFailureJson(stable);
        first = false;
    }
    os << (first ? "" : "\n") << "]}\n";
    return os.str();
}

CampaignReport
runCampaign(const CampaignOptions &opt)
{
    require(opt.numSeeds >= 0, "runCampaign: negative seed count");
    require(opt.isolation != CampaignOptions::Isolation::ForkExec ||
                !opt.execPath.empty(),
            "runCampaign: ForkExec isolation needs an execPath");

    const OracleOptions oracleOpt = campaignOracleOptions(opt);
    const std::uint64_t faultSeed =
        opt.faultSpec.empty() ? 0 : oracleOpt.faults.seed();

    std::unique_ptr<LineJournal> journal;
    if (!opt.dir.empty()) {
        ::mkdir(opt.dir.c_str(), 0777); // EEXIST is fine
        journal = std::make_unique<LineJournal>(
            opt.dir + "/fuzz.campaign.journal", "F1");
    }

    CampaignReport rep;
    rep.firstSeed = opt.firstSeed;
    rep.numSeeds = opt.numSeeds;
    rep.cases.resize(static_cast<std::size_t>(opt.numSeeds));

    std::atomic<long> fresh{0};
    std::mutex observerMu;
    parallelFor(
        static_cast<std::size_t>(opt.numSeeds),
        [&](std::size_t i) {
            const std::uint64_t seed = opt.firstSeed + i;
            const std::string key = journalKey(seed, opt);
            CaseResult r;
            std::string payload;
            if (journal && journal->lookup(key, &payload) &&
                decodeCaseResult(payload, &r)) {
                r.fromJournal = true;
            } else {
                r = runCaseWithRetry(seed, opt, oracleOpt);
                r.faultSeed = faultSeed;
                writeRepro(r, opt, oracleOpt);
                if (journal)
                    journal->record(key, encodeCaseResult(r));
                const long n = fresh.fetch_add(1) + 1;
                if (opt.abortAfter > 0 && n >= opt.abortAfter)
                    std::_Exit(3); // deterministic kill -9 stand-in
            }
            rep.cases[i] = r;
            if (opt.onCase) {
                std::lock_guard<std::mutex> lk(observerMu);
                opt.onCase(rep.cases[i]);
            }
        },
        opt.jobs);

    std::uint64_t digest = 1469598103934665603ull;
    for (const CaseResult &c : rep.cases) {
        // The digest summarizes *verdicts*. `attempts` records host
        // flakiness (a watchdog-killed child that succeeded on retry),
        // so folding it in would make the digest depend on machine
        // load; pin it before encoding.
        CaseResult stable = c;
        stable.attempts = 1;
        for (char ch : encodeCaseResult(stable)) {
            digest ^= static_cast<unsigned char>(ch);
            digest *= 1099511628211ull;
        }
        digest ^= '\n';
        digest *= 1099511628211ull;
        if (caseFailed(c.status))
            ++rep.numFailed;
        else
            ++rep.numMatch;
        if (c.fromJournal)
            ++rep.numFromJournal;
    }
    rep.verdictDigest = digest;
    return rep;
}

} // namespace dacsim::fuzz
