/**
 * @file
 * Parameterized kernel synthesizer for the differential-fuzzing
 * campaign engine (DESIGN.md §12).
 *
 * A generated kernel is a pure function of its seed: the seed first
 * fixes a GenParams point (the campaign's coverage axes — access
 * pattern mix, divergence depth, arithmetic intensity, indirection
 * depth, shared-memory staging, guard density), then drives every
 * random choice inside the body. Generated kernels obey the oracle
 * contract (DESIGN.md §12.1):
 *
 *   - `.kernel fuzz` with `.param IN OUT elems`, launched as a
 *     6×96-thread grid by the oracle;
 *   - every thread stores exactly one word, to its own OUT slot, so
 *     final memory is schedule-independent;
 *   - every load address is brought in bounds by mod-$elems indexing,
 *     and all intermediate values are masked to 20 bits to dodge
 *     signed-overflow UB in products;
 *   - barriers are emitted only at top level (never under divergent
 *     control), so the kernel lints clean (no DAC-E002).
 *
 * The same file exports the assembly-preserving mutator the analyzer
 * fuzz tier uses to manufacture the pathologies the checkers hunt.
 */

#ifndef DACSIM_FUZZ_GENERATOR_H
#define DACSIM_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace dacsim::fuzz
{

/** Deterministic xorshift64 RNG; the only randomness source in the
 * fuzz subsystem (never std::rand — seeds must replay bit-exactly). */
class FuzzRng
{
  public:
    explicit FuzzRng(std::uint64_t seed) : s_(seed * 2654435761u + 1) {}

    std::uint64_t
    next()
    {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return s_;
    }

    int
    range(int lo, int hi) // inclusive
    {
        return lo + static_cast<int>(
                        next() % static_cast<std::uint64_t>(hi - lo + 1));
    }

    bool chance(int pct) { return range(1, 100) <= pct; }

  private:
    std::uint64_t s_;
};

/** The generator's coverage axes. Every field is derived from the
 * seed by fromSeed(), but campaigns and tests may also pin a point. */
struct GenParams
{
    /** Top-level statements in the kernel body. */
    int statements = 8;
    /** Maximum nesting of divergent diamonds (0: straight-line). */
    int divergenceDepth = 1;
    /** Percent of statements that are pure ALU work (the rest are
     * memory/divergence shapes); the arithmetic-intensity axis. */
    int arithIntensity = 40;
    /** Chained data-dependent loads per gather (1: direct; >1: the
     * loaded value feeds the next index — indirect access). */
    int indirectionDepth = 1;
    /** Stage values through shared memory (write own slot, barrier,
     * read a neighbour's slot — race-free by the barrier). */
    bool useShared = false;
    /** Percent chance an ALU statement is guarded by a fresh
     * predicate ("@p add ..."). */
    int guardDensityPct = 25;
    /** Append a trailing scalar loop (trip count 2..6). */
    bool scalarLoop = false;
    /** Block size the kernel is generated for (the oracle's launch
     * contract; sizes the shared-memory tile). */
    int blockThreads = 96;

    /** The campaign's seed → parameter-point map. */
    static GenParams fromSeed(std::uint64_t seed);

    /** One-line rendering for repro headers and reports. */
    std::string describe() const;
};

/** One synthesized kernel. */
struct GeneratedKernel
{
    std::uint64_t seed = 0;
    GenParams params;
    std::string source; ///< assembler text (assembles and lints clean)
};

/** Synthesize the kernel for @p seed (params from GenParams::fromSeed). */
GeneratedKernel generateKernel(std::uint64_t seed);

/** Synthesize with a pinned parameter point. */
GeneratedKernel generateKernel(std::uint64_t seed, const GenParams &params);

/**
 * Assembly-preserving mutations for analyzer fuzzing: inserted
 * barriers, duplicated/deleted/swapped instructions, injected
 * suppression pragmas. @p muts mutations are applied in place;
 * the result may no longer assemble (callers handle FatalError).
 */
std::string mutateSource(const std::string &source, FuzzRng &rng, int muts);

} // namespace dacsim::fuzz

#endif // DACSIM_FUZZ_GENERATOR_H
