/**
 * @file
 * The differential oracle of the fuzzing campaign engine
 * (DESIGN.md §12.2).
 *
 * One oracle case takes a kernel source (usually synthesized by
 * fuzz/generator.h) and runs it under the baseline and every
 * comparison technique (CAE, MTA, DAC) through the full harness —
 * invariant auditors, watchdog, optional fault injection — and
 * requires:
 *
 *   - the source assembles and lints clean (no unsuppressed
 *     error-severity finding from the DESIGN.md §10 checkers);
 *   - every run completes (or, under an active fault plan, fails with
 *     an injected fault / degrades via the PR-1 DAC→baseline
 *     fallback — never silently);
 *   - final memory is bit-identical to the baseline's, for every
 *     technique;
 *   - each run's state-hash chain is structurally sound (strictly
 *     increasing fold cycles, head equal to the run's last state
 *     hash).
 *
 * Verdicts are value types with an exact text encoding, so the
 * campaign runner can ship them over a pipe from a crash-isolated
 * child and journal them for byte-identical resume.
 */

#ifndef DACSIM_FUZZ_ORACLE_H
#define DACSIM_FUZZ_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "fuzz/generator.h"
#include "harness/runner.h"

namespace dacsim::fuzz
{

/** How an oracle case resolved. */
enum class OracleStatus
{
    Match,         ///< every technique agreed with the baseline
    AssembleError, ///< the source does not assemble (generator bug)
    LintDirty,     ///< static analysis found unsuppressed errors
    RunFailure,    ///< a run failed with no accepted fault/fallback path
    Mismatch,      ///< checksums or hash-chain structure diverged
};

const char *oracleStatusName(OracleStatus s);

/** Per-technique evidence retained in the verdict. */
struct TechRecord
{
    Technique tech = Technique::Baseline;
    std::uint64_t checksum = 0; ///< final-memory checksum (OUT range)
    RunErrorKind error = RunErrorKind::None;
    bool fellBack = false;
    Cycle cycles = 0;
    std::uint64_t lastHash = 0;
    std::uint64_t chainLinks = 0;
};

struct OracleVerdict
{
    OracleStatus status = OracleStatus::Match;
    /** First offending technique/diagnostic ("" for Match). */
    std::string detail;
    std::uint64_t seed = 0;
    bool anyDecoupled = false;
    std::vector<TechRecord> techs; ///< baseline first, run order

    bool ok() const { return status == OracleStatus::Match; }
};

/** How the oracle builds and runs a case. */
struct OracleOptions
{
    /** Machine scale for oracle runs (small: throughput matters). */
    GpuConfig gpu;
    DacConfig dac;
    /** Fault plan applied identically to every technique's run
     * (empty: fault-free). */
    FaultPlan faults;
    /** Gate each case on a clean static-analysis report first. */
    bool lintGate = true;
    /** Re-run the DAC case under the other simulation core (stepped
     * vs event, DESIGN.md §13) and require a bit-identical checksum,
     * cycle count, and hash chain. Skipped under a fault plan (faults
     * force the stepped core, so the A/B would compare a run against
     * itself). */
    bool eventCoreCheck = true;
    /** Check the static predictor (analysis/predict.h) against the
     * actual runs: its guaranteed bound must dominate the fault-free
     * simulated cycles of the baseline and DAC cases, and its
     * predicted coverage must be within 5pp of the decoupler's actual
     * split. Skipped under a fault plan (faults inflate cycles past
     * any fault-free model). */
    bool predictCheck = true;
    /** Techniques to compare, baseline first (the shrinker narrows
     * this to the offending pair to keep candidate checks cheap). */
    std::vector<Technique> techs = {Technique::Baseline, Technique::Cae,
                                    Technique::Mta, Technique::Dac};
    /** Launch contract (must agree with GenParams::blockThreads). */
    int ctas = 6;
    int blockThreads = 96;
    int elems = 4096;
    /** Cycle budget per run (HaltError past it). Generated kernels
     * finish in a few thousand cycles; the budget exists because the
     * liveness watchdog cannot catch an infinite loop that keeps
     * retiring instructions — which shrink candidates routinely create
     * by dropping a loop increment. 0 disables the cap. */
    Cycle maxCycles = 100000;

    OracleOptions() { gpu.numSms = 4; }
};

/** Run the differential oracle over @p source. @p seed only labels
 * the verdict (0 for hand-written repros). */
OracleVerdict runOracle(const std::string &source, std::uint64_t seed,
                        const OracleOptions &opt);

/** Generate the kernel for @p seed, then run the oracle on it. */
OracleVerdict runOracleSeed(std::uint64_t seed, const OracleOptions &opt);

/** Exact single-line text encoding (journal/pipe payload). */
std::string encodeVerdict(const OracleVerdict &v);

/** Inverse of encodeVerdict(); false when @p payload is malformed. */
bool decodeVerdict(const std::string &payload, OracleVerdict *v);

} // namespace dacsim::fuzz

#endif // DACSIM_FUZZ_ORACLE_H
