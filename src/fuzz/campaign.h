/**
 * @file
 * Crash-isolated, resumable fuzzing campaigns (DESIGN.md §12.3).
 *
 * A campaign executes a contiguous seed range through the
 * differential oracle, one crash-isolated child process per case
 * (fork, or fork+exec of the dacsim-fuzz binary), with a per-case
 * watchdog timeout, bounded retry with backoff on host-side flake,
 * and a CRC-journalled progress file so a killed campaign resumes
 * byte-identically: journalled cases are served from disk and only
 * the missing seeds re-run. Failing cases are minimized by the
 * shrinker and written as self-contained repro files; every failure
 * is also rendered as a one-line JSON report in the PR-1 error-report
 * schema.
 */

#ifndef DACSIM_FUZZ_CAMPAIGN_H
#define DACSIM_FUZZ_CAMPAIGN_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/oracle.h"

namespace dacsim::fuzz
{

/** How one campaign case resolved (OracleStatus plus the two
 * host-side outcomes only crash isolation can observe). */
enum class CaseStatus
{
    Match,
    AssembleError,
    LintDirty,
    RunFailure,
    Mismatch,
    Crash,   ///< the child died (signal / bad exit / no verdict)
    Timeout, ///< the per-case watchdog killed the child
};

const char *caseStatusName(CaseStatus s);

/** True for every status a campaign counts as a failure. */
bool caseFailed(CaseStatus s);

struct CaseResult
{
    std::uint64_t seed = 0;
    CaseStatus status = CaseStatus::Match;
    /** Oracle evidence (empty techs for Crash/Timeout). */
    OracleVerdict verdict;
    /** Crash/timeout diagnostics, or the verdict detail. */
    std::string detail;
    /** Attempts consumed (1 + retries on host-side flake). */
    int attempts = 1;
    /** Seed of the fault plan the case ran under (0: fault-free). */
    std::uint64_t faultSeed = 0;
    /** Self-contained repro file ("" when none was written). */
    std::string reproPath;
    /** Served from the campaign journal instead of re-running. */
    bool fromJournal = false;
};

/** Exact text encoding of a case result (journal payload). */
std::string encodeCaseResult(const CaseResult &r);
bool decodeCaseResult(const std::string &payload, CaseResult *r);

/** One-line JSON failure report in the PR-1 error-report schema
 * (bench_util reportRun keys, plus seed/repro/attempts). */
std::string caseFailureJson(const CaseResult &r);

struct CampaignOptions
{
    std::uint64_t firstSeed = 1;
    int numSeeds = 1000;
    /** Concurrent cases in flight (0: sweepJobs()). */
    int jobs = 0;
    /** Journal + repro directory ("": ephemeral, no resume). */
    std::string dir;
    /** Per-case watchdog; the child is SIGKILLed at the deadline. */
    int timeoutMs = 20000;
    /** Retries (with backoff) after a crash/timeout/fork failure. */
    int maxRetries = 2;

    /** Crash-isolation mode for each case. */
    enum class Isolation
    {
        InProcess, ///< no isolation (unit tests, --replay, shrinking)
        Fork,      ///< fork(); the child runs the oracle in-image
        ForkExec,  ///< fork()+exec of execPath --child-case <seed>
    };
    Isolation isolation = Isolation::Fork;
    /** Binary to exec in ForkExec mode (dacsim-fuzz passes
     * /proc/self/exe). The child inherits only --faults/--inject-bug
     * oracle settings, so ForkExec campaigns use the default oracle
     * configuration. */
    std::string execPath;

    /** Fault-plan spec applied to every case ("": fault-free). */
    std::string faultSpec;
    /** Oracle configuration (InProcess/Fork and parent-side shrink);
     * faults are overridden from faultSpec when that is non-empty. */
    OracleOptions oracle;

    /** Shrink non-crash failures and write repro files. */
    bool shrinkFailures = true;
    /** Test knob mirroring DACSIM_SWEEP_ABORT_AFTER: _Exit(3) after
     * n freshly computed cases (0: off). */
    long abortAfter = 0;
    /** Observer invoked (under a lock) as each case completes. */
    std::function<void(const CaseResult &)> onCase;
};

struct CampaignReport
{
    std::uint64_t firstSeed = 0;
    int numSeeds = 0;
    std::vector<CaseResult> cases; ///< seed order
    int numMatch = 0;
    int numFailed = 0;
    int numFromJournal = 0;
    /** FNV-1a digest over every case's exact encoding, in seed order —
     * the byte-identical-resume check in one number. */
    std::uint64_t verdictDigest = 0;

    bool ok() const { return numFailed == 0; }
    /** Deterministic campaign summary (counts, digest, failures). */
    std::string renderJson() const;
};

/** Run (or resume) the campaign described by @p opt. */
CampaignReport runCampaign(const CampaignOptions &opt);

/** The oracle options a campaign's cases run under (faultSpec folded
 * into oracle.faults; shared by runCampaign, --child-case, --replay). */
OracleOptions campaignOracleOptions(const CampaignOptions &opt);

} // namespace dacsim::fuzz

#endif // DACSIM_FUZZ_CAMPAIGN_H
