#include "fuzz/generator.h"

#include <sstream>

namespace dacsim::fuzz
{

GenParams
GenParams::fromSeed(std::uint64_t seed)
{
    // A separate RNG stream from the body's, so widening one axis's
    // range never reshuffles the statement-level choices of every
    // existing seed.
    FuzzRng rng(seed ^ 0x9e3779b97f4a7c15ull);
    GenParams p;
    p.statements = rng.range(4, 12);
    p.divergenceDepth = rng.range(0, 2);
    p.arithIntensity = rng.range(10, 70);
    p.indirectionDepth = rng.chance(35) ? rng.range(2, 3) : 1;
    p.useShared = rng.chance(30);
    p.guardDensityPct = rng.range(0, 60);
    p.scalarLoop = rng.chance(50);
    return p;
}

std::string
GenParams::describe() const
{
    std::ostringstream os;
    os << "stmts=" << statements << " div=" << divergenceDepth
       << " alu=" << arithIntensity << "% ind=" << indirectionDepth
       << " shared=" << (useShared ? 1 : 0) << " guard=" << guardDensityPct
       << "% loop=" << (scalarLoop ? 1 : 0) << " block=" << blockThreads;
    return os.str();
}

namespace
{

/**
 * Builds one kernel as assembly text. All label/register/predicate
 * counters are members — a KernelGen instance is a pure function of
 * (seed, params), so a campaign journal can replay any seed
 * byte-identically in a fresh process.
 */
class KernelGen
{
  public:
    KernelGen(std::uint64_t seed, const GenParams &params)
        : rng_(seed), params_(params)
    {
    }

    std::string
    generate()
    {
        // r0 = global thread id; r1 = running accumulator.
        emit("mul r0, ctaid.x, ntid.x");
        emit("add r0, r0, tid.x");
        emit("mov r1, 1");
        live_ = {0, 1};
        nextReg_ = 2;

        for (int i = 0; i < params_.statements; ++i)
            statement(0);

        if (params_.useShared && !sharedDone_)
            sharedStage(); // params said shared: guarantee one stage

        if (params_.scalarLoop)
            scalarLoop();

        // Store the accumulator to the thread's own slot.
        int a = fresh();
        emit("shl r" + std::to_string(a) + ", r0, 2");
        emit("add r" + std::to_string(a) + ", $OUT, r" +
             std::to_string(a));
        emit("st.global.u32 [r" + std::to_string(a) + "], r1");
        emit("exit");

        std::string header = ".kernel fuzz\n.param IN OUT elems\n";
        if (sharedDone_)
            header += ".shared " +
                      std::to_string(4 * params_.blockThreads) + "\n";
        return header + os_.str();
    }

  private:
    FuzzRng rng_;
    GenParams params_;
    std::ostringstream os_;
    std::vector<int> live_;
    int nextReg_ = 0;
    int nextPred_ = 0;
    int nextLabel_ = 0;
    bool sharedDone_ = false;

    void
    emit(const std::string &line)
    {
        os_ << "    " << line << ";\n";
    }

    int
    fresh()
    {
        return nextReg_++;
    }

    std::string
    r(int i)
    {
        return "r" + std::to_string(i);
    }

    std::string
    anyLive()
    {
        return r(live_[static_cast<std::size_t>(
            rng_.range(0, static_cast<int>(live_.size()) - 1))]);
    }

    std::string
    anySource()
    {
        switch (rng_.range(0, 4)) {
          case 0: return anyLive();
          case 1: return "tid.x";
          case 2: return "ctaid.x";
          case 3: return std::to_string(rng_.range(-64, 64));
          default: return "$elems";
        }
    }

    void
    maskInto(int reg)
    {
        // Keep values small (and non-negative) to dodge signed-overflow
        // UB in products and negative mod results in addressing.
        emit("and " + r(reg) + ", " + r(reg) + ", 1048575");
    }

    void
    accumulate(int reg)
    {
        live_.push_back(reg);
        emit("add r1, r1, " + r(reg));
        emit("and r1, r1, 1048575");
    }

    /** One statement at divergence-nesting depth @p depth. */
    void
    statement(int depth)
    {
        if (rng_.range(1, 100) <= params_.arithIntensity) {
            aluOp();
            return;
        }
        // Shared staging and barriers only at top level: a barrier
        // under divergent control is the DAC-E002 pathology, and the
        // oracle requires generated kernels to lint clean.
        if (depth == 0 && params_.useShared && !sharedDone_ &&
            rng_.chance(35)) {
            sharedStage();
            return;
        }
        switch (rng_.range(0, 2)) {
          case 0: gather(); break;
          case 1:
            if (depth < params_.divergenceDepth)
                diamond(depth);
            else
                gather();
            break;
          default: guarded(); break;
        }
    }

    void
    aluOp()
    {
        static const char *ops[] = {"add", "sub", "mul", "min",
                                    "max", "xor", "shl"};
        const char *op = ops[rng_.range(0, 6)];
        int d = fresh();
        std::string a = anySource();
        std::string b = std::string(op) == std::string("shl")
                            ? std::to_string(rng_.range(0, 4))
                            : anySource();
        if (rng_.range(1, 100) <= params_.guardDensityPct) {
            // Guard-density axis: initialize, then predicate the op.
            int p = nextPred_++;
            emit("setp.lt p" + std::to_string(p) + ", " + anySource() +
                 ", " + anySource());
            emit("mov " + r(d) + ", " + std::to_string(rng_.range(0, 9)));
            os_ << "    @p" << p << " " << op << " " << r(d) << ", " << a
                << ", " << b << ";\n";
        } else {
            emit(std::string(op) + " " + r(d) + ", " + a + ", " + b);
        }
        maskInto(d);
        accumulate(d);
    }

    void
    gather()
    {
        // addr = IN + 4 * ((expr) mod elems): masked non-negative then
        // mod-reduced, so every load is in bounds. The indirection
        // axis chains loads: each loaded value (masked, non-negative)
        // becomes the next index.
        int e = fresh();
        emit("add " + r(e) + ", " + anySource() + ", " + anySource());
        maskInto(e);
        int v = e;
        for (int level = 0; level < params_.indirectionDepth; ++level) {
            int m = fresh();
            emit("mod " + r(m) + ", " + r(v) + ", $elems");
            int a = fresh();
            emit("shl " + r(a) + ", " + r(m) + ", 2");
            emit("add " + r(a) + ", $IN, " + r(a));
            v = fresh();
            emit("ld.global.u32 " + r(v) + ", [" + r(a) + "]");
        }
        accumulate(v);
    }

    void
    diamond(int depth)
    {
        int p = nextPred_++;
        std::string tag = "D" + std::to_string(nextLabel_++);
        static const char *cmps[] = {"lt", "ge", "eq", "ne"};
        emit("setp." + std::string(cmps[rng_.range(0, 3)]) + " p" +
             std::to_string(p) + ", " + anySource() + ", " +
             anySource());
        int d = fresh();
        emit("mov " + r(d) + ", " + std::to_string(rng_.range(0, 9)));
        os_ << "    @p" << p << " bra " << tag << "T;\n";
        emit("add " + r(d) + ", " + r(d) + ", 100");
        if (depth + 1 < params_.divergenceDepth && rng_.chance(50))
            statement(depth + 1); // nested divergence, fall-through arm
        os_ << "    bra " << tag << "J;\n";
        os_ << tag << "T:\n";
        emit("add " + r(d) + ", " + r(d) + ", " + anySource());
        if (depth + 1 < params_.divergenceDepth && rng_.chance(50))
            statement(depth + 1); // nested divergence, taken arm
        maskInto(d);
        os_ << tag << "J:\n";
        accumulate(d);
    }

    void
    guarded()
    {
        int p = nextPred_++;
        emit("setp.lt p" + std::to_string(p) + ", " + anySource() +
             ", " + anySource());
        int d = fresh();
        emit("mov " + r(d) + ", 3");
        os_ << "    @p" << p << " add " << r(d) << ", " << r(d) << ", "
            << anySource() << ";\n";
        maskInto(d);
        accumulate(d);
    }

    /**
     * Shared-memory staging (top level only): publish the accumulator
     * to the thread's own slot, barrier, read the next thread's slot.
     * Race-free — every slot is written exactly once before the
     * barrier and only read after it.
     */
    void
    sharedStage()
    {
        sharedDone_ = true;
        int a = fresh();
        emit("shl " + r(a) + ", tid.x, 2");
        emit("st.shared.u32 [" + r(a) + "], r1");
        emit("bar");
        int n = fresh();
        emit("add " + r(n) + ", tid.x, 1");
        emit("mod " + r(n) + ", " + r(n) + ", ntid.x");
        emit("shl " + r(n) + ", " + r(n) + ", 2");
        int v = fresh();
        emit("ld.shared.u32 " + r(v) + ", [" + r(n) + "]");
        accumulate(v);
    }

    void
    scalarLoop()
    {
        int p = nextPred_++;
        int i = fresh();
        std::string tag = "L" + std::to_string(nextLabel_++);
        int trips = rng_.range(2, 6);
        emit("mov " + r(i) + ", 0");
        os_ << tag << ":\n";
        // A small body: accumulate a gather or an ALU mix.
        if (rng_.chance(60))
            gather();
        else
            aluOp();
        emit("add " + r(i) + ", " + r(i) + ", 1");
        emit("setp.lt p" + std::to_string(p) + ", " + r(i) + ", " +
             std::to_string(trips));
        os_ << "    @p" << p << " bra " << tag << ";\n";
    }
};

} // namespace

GeneratedKernel
generateKernel(std::uint64_t seed)
{
    return generateKernel(seed, GenParams::fromSeed(seed));
}

GeneratedKernel
generateKernel(std::uint64_t seed, const GenParams &params)
{
    GeneratedKernel g;
    g.seed = seed;
    g.params = params;
    g.source = KernelGen(seed, params).generate();
    return g;
}

// ----- assembly-preserving mutation (analyzer fuzzing) --------------------

namespace
{

std::vector<std::string>
splitLines(const std::string &src)
{
    std::vector<std::string> lines;
    std::istringstream is(src);
    for (std::string l; std::getline(is, l);)
        lines.push_back(l);
    return lines;
}

bool
isInstLine(const std::string &l)
{
    return l.rfind("    ", 0) == 0 && l.find("exit") == std::string::npos;
}

void
mutateLines(std::vector<std::string> &lines, FuzzRng &rng)
{
    std::vector<int> insts;
    for (int i = 0; i < static_cast<int>(lines.size()); ++i)
        if (isInstLine(lines[static_cast<std::size_t>(i)]))
            insts.push_back(i);
    if (insts.empty())
        return;
    int at = insts[static_cast<std::size_t>(
        rng.range(0, static_cast<int>(insts.size()) - 1))];
    auto it = lines.begin() + at;
    switch (rng.range(0, 4)) {
      case 0: // a barrier, possibly under divergent control
        lines.insert(it, "    bar;");
        break;
      case 1: // duplicate: the first copy often becomes a dead store
        lines.insert(it, lines[static_cast<std::size_t>(at)]);
        break;
      case 2: // delete: later reads may become possibly-uninitialized
        lines.erase(it);
        break;
      case 3: { // swap adjacent instruction lines
        if (at + 1 < static_cast<int>(lines.size()) &&
            isInstLine(lines[static_cast<std::size_t>(at) + 1]))
            std::swap(lines[static_cast<std::size_t>(at)],
                      lines[static_cast<std::size_t>(at) + 1]);
        break;
      }
      default: // standalone pragma, carried to the next instruction
        lines.insert(it, "    // fuzz-injected. lint:allow(*)");
        break;
    }
}

} // namespace

std::string
mutateSource(const std::string &source, FuzzRng &rng, int muts)
{
    std::vector<std::string> lines = splitLines(source);
    for (int i = 0; i < muts; ++i)
        mutateLines(lines, rng);
    std::string out;
    for (const std::string &l : lines)
        out += l + "\n";
    return out;
}

} // namespace dacsim::fuzz
