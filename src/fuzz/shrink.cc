#include "fuzz/shrink.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "analysis/checkers.h"
#include "analysis/pass_manager.h"
#include "common/log.h"
#include "isa/assembler.h"

namespace dacsim::fuzz
{

namespace
{

std::vector<std::string>
splitLines(const std::string &src)
{
    std::vector<std::string> lines;
    std::istringstream is(src);
    for (std::string l; std::getline(is, l);)
        lines.push_back(l);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const std::string &l : lines)
        out += l + "\n";
    return out;
}

/** Lines the drop pass may remove: instructions and labels, never
 * directives (.kernel/.param/.shared) and never the final exit. */
bool
droppable(const std::string &l)
{
    if (l.empty() || l[0] == '.')
        return false;
    if (l.find("exit") != std::string::npos)
        return false;
    return true;
}

/** A candidate survives when it assembles, lints without unsuppressed
 * errors, still fails the oracle with the target status, and (when a
 * reference configuration is supplied) still passes under it. */
class Predicate
{
  public:
    Predicate(const OracleOptions &opt, std::uint64_t seed,
              OracleStatus target, const OracleOptions *reference)
        : opt_(opt), seed_(seed), target_(target), reference_(reference)
    {
    }

    bool
    stillFails(const std::string &source, OracleVerdict *verdict,
               int *attempts) const
    {
        ++*attempts;
        Kernel k;
        try {
            k = assemble(source);
        } catch (const FatalError &) {
            return false;
        }
        // Keep repros lint-clean (corpus entries must replay through
        // the oracle's lint gate), unless the failure being shrunk IS
        // a lint failure.
        if (target_ != OracleStatus::LintDirty) {
            PassManager pm = PassManager::withAllCheckers();
            LintReport rep = pm.run(k, DacConfig{},
                                    {true, {opt_.blockThreads, 1, 1}});
            if (!rep.clean())
                return false;
        }
        OracleVerdict v = runOracle(source, seed_, opt_);
        if (v.status != target_)
            return false;
        // Differential check: the candidate must still isolate the
        // configuration under shrink, not have become a kernel that
        // fails everywhere (see ShrinkOptions::haveReference).
        if (reference_ && !runOracle(source, seed_, *reference_).ok())
            return false;
        *verdict = std::move(v);
        return true;
    }

  private:
    OracleOptions opt_;
    std::uint64_t seed_;
    OracleStatus target_;
    const OracleOptions *reference_; ///< null: no differential check
};

/**
 * Narrow one standalone integer literal per call, scanning from
 * @p fromLine / @p fromCol. A literal qualifies when its preceding
 * character is not alphanumeric (so r12, u32, D0 stay untouched) and
 * its absolute value exceeds 1. Candidates per literal, in order:
 * 0, 1, value/2. Returns false when no further literal qualifies.
 */
bool
narrowOne(std::vector<std::string> &lines, const Predicate &pred,
          OracleVerdict *verdict, int *attempts, std::size_t *fromLine,
          std::size_t *fromCol)
{
    for (std::size_t li = *fromLine; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        if (!line.empty() && line[0] == '.')
            continue; // directives are part of the launch contract
        std::size_t ci = li == *fromLine ? *fromCol : 0;
        while (ci < line.size()) {
            if (!std::isdigit(static_cast<unsigned char>(line[ci])) &&
                line[ci] != '-') {
                ++ci;
                continue;
            }
            std::size_t start = ci;
            std::size_t digits = line[ci] == '-' ? ci + 1 : ci;
            std::size_t end = digits;
            while (end < line.size() &&
                   std::isdigit(static_cast<unsigned char>(line[end])))
                ++end;
            if (end == digits ||
                (start > 0 &&
                 std::isalnum(static_cast<unsigned char>(
                     line[start - 1])))) {
                ci = end > ci ? end : ci + 1;
                continue;
            }
            long long value = 0;
            try {
                value = std::stoll(line.substr(start, end - start));
            } catch (const std::exception &) {
                ci = end;
                continue;
            }
            if (value != 0 && value != 1 && value != -1) {
                const long long cands[] = {0, 1, value / 2};
                for (long long cand : cands) {
                    if (cand == value)
                        continue;
                    std::vector<std::string> trial = lines;
                    trial[li] = line.substr(0, start) +
                                std::to_string(cand) + line.substr(end);
                    if (pred.stillFails(joinLines(trial), verdict,
                                        attempts)) {
                        lines = std::move(trial);
                        *fromLine = li;
                        *fromCol = start;
                        return true;
                    }
                }
            }
            ci = end;
        }
    }
    return false;
}

} // namespace

ShrinkResult
shrinkCase(const std::string &source, std::uint64_t seed,
           const ShrinkOptions &opt)
{
    OracleVerdict initial = runOracle(source, seed, opt.oracle);
    require(!initial.ok(),
            "shrinkCase: the case passes the oracle; nothing to shrink");

    // Narrow the differential runs to the offending pair: candidate
    // checks dominate shrink time and the other techniques' agreement
    // is not part of the failure being preserved.
    OracleOptions oopt = opt.oracle;
    if (initial.status == OracleStatus::Mismatch ||
        initial.status == OracleStatus::RunFailure) {
        for (const TechRecord &t : initial.techs) {
            bool offends = t.error != RunErrorKind::None || t.fellBack ||
                           (!initial.techs.empty() &&
                            t.checksum != initial.techs.front().checksum);
            if (t.tech != Technique::Baseline && offends) {
                oopt.techs = {Technique::Baseline, t.tech};
                break;
            }
        }
    }

    // The reference check is narrowed to the same technique pair —
    // it guards against candidates that fail everywhere, and those
    // fail on the offending pair too.
    OracleOptions ref;
    if (opt.haveReference) {
        ref = opt.reference;
        ref.techs = oopt.techs;
    }
    Predicate pred(oopt, seed, initial.status,
                   opt.haveReference ? &ref : nullptr);
    ShrinkResult res;
    res.verdict = initial;
    std::vector<std::string> lines = splitLines(source);

    for (res.rounds = 0; res.rounds < opt.maxRounds; ++res.rounds) {
        bool changed = false;

        // Pass 1: drop lines, front to back; stay on the same index
        // after a successful drop (the next line slid into it).
        std::size_t i = 0;
        while (i < lines.size()) {
            if (droppable(lines[i])) {
                std::vector<std::string> trial = lines;
                trial.erase(trial.begin() + static_cast<long>(i));
                if (pred.stillFails(joinLines(trial), &res.verdict,
                                    &res.attempts)) {
                    lines = std::move(trial);
                    ++res.droppedLines;
                    changed = true;
                    continue;
                }
            }
            ++i;
        }

        // Pass 2: narrow integer constants, front to back.
        std::size_t fromLine = 0, fromCol = 0;
        while (narrowOne(lines, pred, &res.verdict, &res.attempts,
                         &fromLine, &fromCol)) {
            ++res.narrowedConsts;
            changed = true;
        }

        if (!changed)
            break; // fixed point
    }

    res.source = joinLines(lines);
    // Re-establish the full-technique verdict for the minimized case,
    // so the repro header reports what a replay will see.
    res.verdict = runOracle(res.source, seed, opt.oracle);
    return res;
}

std::string
renderRepro(std::uint64_t seed, const std::string &paramsDesc,
            const ShrinkResult &result)
{
    std::ostringstream os;
    os << "// dacsim-fuzz repro (self-contained; replay with"
          " `dacsim-fuzz --replay FILE`)\n";
    os << "// seed: " << seed << "\n";
    if (!paramsDesc.empty())
        os << "// params: " << paramsDesc << "\n";
    os << "// verdict: " << oracleStatusName(result.verdict.status)
       << "\n";
    if (!result.verdict.detail.empty())
        os << "// detail: " << result.verdict.detail << "\n";
    os << "// shrink: " << result.rounds << " round(s), "
       << result.attempts << " candidate(s), " << result.droppedLines
       << " line(s) dropped, " << result.narrowedConsts
       << " constant(s) narrowed\n";
    os << result.source;
    return os.str();
}

std::uint64_t
reproSeed(const std::string &reproText)
{
    std::istringstream is(reproText);
    for (std::string line; std::getline(is, line);) {
        const std::string tag = "// seed: ";
        if (line.rfind(tag, 0) == 0) {
            try {
                return std::stoull(line.substr(tag.size()));
            } catch (const std::exception &) {
                return 0;
            }
        }
        if (!line.empty() && line[0] != '/')
            break; // past the header
    }
    return 0;
}

} // namespace dacsim::fuzz
