#include "fuzz/oracle.h"

#include <cmath>
#include <sstream>

#include "analysis/checkers.h"
#include "analysis/pass_manager.h"
#include "common/log.h"
#include "compiler/decoupler.h"
#include "dac/engine.h"
#include "harness/journal.h"
#include "isa/assembler.h"
#include "mem/gpu_memory.h"
#include "workloads/workload.h"

namespace dacsim::fuzz
{

const char *
oracleStatusName(OracleStatus s)
{
    switch (s) {
      case OracleStatus::Match: return "match";
      case OracleStatus::AssembleError: return "assemble-error";
      case OracleStatus::LintDirty: return "lint-dirty";
      case OracleStatus::RunFailure: return "run-failure";
      case OracleStatus::Mismatch: return "mismatch";
    }
    return "?";
}

namespace
{

/** Wrap one generated source as a Workload so oracle runs flow
 * through the full harness (auditors, watchdog, faults, fallback). */
Workload
makeFuzzWorkload(const std::string &source, const OracleOptions &opt)
{
    Workload wl;
    wl.name = "FUZZ";
    wl.fullName = "generated fuzz kernel";
    wl.suite = 'F';
    const int ctas = opt.ctas, block = opt.blockThreads,
              elems = opt.elems;
    wl.prepare = [source, ctas, block,
                  elems](GpuMemory &gmem, double) -> PreparedWorkload {
        PreparedWorkload prep;
        prep.kernel = assemble(source);
        const std::uint64_t threads =
            static_cast<std::uint64_t>(ctas) * block;
        Addr in = gmem.alloc(static_cast<std::uint64_t>(elems) * 4);
        Addr out = gmem.alloc(threads * 4);
        for (int i = 0; i < elems; ++i)
            gmem.store(in + 4ull * i,
                       (static_cast<std::uint64_t>(i) * 2654435761u) &
                           0xfffff,
                       MemWidth::U32);
        prep.grid = {ctas, 1, 1};
        prep.block = {block, 1, 1};
        prep.params = {static_cast<RegVal>(in), static_cast<RegVal>(out),
                       elems};
        prep.outputs = {{out, threads * 4}};
        return prep;
    };
    return wl;
}

/** Structural well-formedness of one run's state-hash chain: strictly
 * increasing fold cycles and a head equal to the final state hash.
 * Returns "" when sound, else a diagnostic. */
std::string
checkChain(const RunOutcome &out)
{
    if (out.hashChain.empty())
        return "empty hash chain on a completed run";
    Cycle prev = 0;
    bool first = true;
    for (const HashLink &l : out.hashChain) {
        if (!first && l.cycle <= prev)
            return "hash-chain fold cycles not strictly increasing";
        prev = l.cycle;
        first = false;
    }
    if (out.hashChain.back().hash != out.lastStateHash)
        return "hash-chain head disagrees with the run's last state hash";
    return "";
}

} // namespace

OracleVerdict
runOracle(const std::string &source, std::uint64_t seed,
          const OracleOptions &opt)
{
    OracleVerdict v;
    v.seed = seed;

    // 1. The source must assemble.
    Kernel kernel;
    try {
        kernel = assemble(source);
    } catch (const FatalError &e) {
        v.status = OracleStatus::AssembleError;
        v.detail = e.what();
        return v;
    }

    // 2. Generated kernels must lint clean (no unsuppressed errors).
    //    The gate runs with a clean DacConfig: it vets the kernel, not
    //    whatever perturbation the run options are exercising.
    if (opt.lintGate) {
        PassManager pm = PassManager::withAllCheckers();
        LintReport rep =
            pm.run(kernel, DacConfig{},
                   {true, {opt.blockThreads, 1, 1}});
        if (!rep.clean()) {
            v.status = OracleStatus::LintDirty;
            for (const Diagnostic &d : rep.findings)
                if (d.severity == Severity::Error && !d.suppressed) {
                    v.detail = d.rule + ": " + d.message;
                    break;
                }
            return v;
        }
    }

    // 3. Differential runs, baseline first.
    Workload wl = makeFuzzWorkload(source, opt);
    require(!opt.techs.empty() && opt.techs.front() == Technique::Baseline,
            "oracle technique list must start with the baseline");
    const bool faulty = !opt.faults.empty();
    std::uint64_t baseCk = 0;
    bool haveBase = false;
    RunOutcome dacOut;
    bool haveDac = false;
    for (Technique tech : opt.techs) {
        RunOptions ro;
        ro.tech = tech;
        ro.gpu = opt.gpu;
        ro.dac = opt.dac;
        ro.faults = opt.faults;
        ro.checkpoint.haltAtCycle = opt.maxCycles;
        RunOutcome out = runWorkload(wl, ro);

        TechRecord rec;
        rec.tech = tech;
        rec.error = out.error.kind;
        rec.fellBack = out.fellBack;
        rec.cycles = out.stats.cycles;
        rec.lastHash = out.lastStateHash;
        rec.chainLinks = out.hashChain.size();
        if (!out.checksums.empty())
            rec.checksum = out.checksums.front();
        if (tech == Technique::Dac)
            v.anyDecoupled = out.anyDecoupled;
        v.techs.push_back(rec);

        const char *tname = techniqueName(tech);
        if (!out.ok()) {
            // Under an active fault plan an unrecoverable injected
            // fault is an accepted (loud) outcome; anything else is a
            // failure the campaign must report.
            if (faulty && out.error.kind == RunErrorKind::FaultInjected)
                continue;
            v.status = OracleStatus::RunFailure;
            v.detail = std::string(tname) + ": " +
                       runErrorKindName(out.error.kind) + ": " +
                       out.error.what;
            return v;
        }
        std::string chainErr = checkChain(out);
        if (!chainErr.empty()) {
            v.status = OracleStatus::Mismatch;
            v.detail = std::string(tname) + ": " + chainErr;
            return v;
        }
        if (tech == Technique::Dac && !out.fellBack && !faulty) {
            dacOut = out;
            haveDac = true;
        }
        if (tech == Technique::Baseline) {
            baseCk = rec.checksum;
            haveBase = true;
        } else if (haveBase && rec.checksum != baseCk) {
            v.status = OracleStatus::Mismatch;
            std::ostringstream os;
            os << tname << (out.fellBack ? " (fellBack)" : "")
               << ": final memory diverged from baseline (" << std::hex
               << rec.checksum << " vs " << baseCk << ")";
            v.detail = os.str();
            return v;
        }
    }
    // 4. Static-prediction soundness (DESIGN.md §15): the predictor's
    //    guaranteed bound must dominate the simulated cycles of every
    //    fault-free baseline/DAC run, and its independently re-derived
    //    coverage must agree with the decoupler's actual split. A
    //    violation is a Mismatch, so the shrinker minimizes it like
    //    any other differential.
    if (opt.predictCheck && !faulty) {
        GpuMemory pmem;
        PreparedWorkload prep = wl.prepare(pmem, 1.0);
        PredictReport rep = predictKernel(prep.kernel,
                                          predictLaunches(prep), opt.gpu,
                                          opt.dac);
        for (const TechRecord &rec : v.techs) {
            const TechPredict *tp = nullptr;
            if (rec.tech == Technique::Baseline)
                tp = &rep.base;
            else if (rec.tech == Technique::Dac)
                tp = &rep.dac;
            if (tp == nullptr || tp->capped || rec.fellBack)
                continue;
            if (tp->boundCycles < rec.cycles) {
                v.status = OracleStatus::Mismatch;
                std::ostringstream os;
                os << "predict: " << techniqueName(rec.tech)
                   << " bound " << tp->boundCycles
                   << " below simulated cycles " << rec.cycles;
                v.detail = os.str();
                return v;
            }
        }
        const DacSplitSummary actual =
            dacActualSplit(decouple(kernel, opt.dac));
        const double diff = std::fabs(rep.predictedCoverage -
                                      actual.coveredFraction());
        if (diff > 0.05 ||
            rep.predictedAnyDecoupled != actual.anyDecoupled) {
            v.status = OracleStatus::Mismatch;
            std::ostringstream os;
            os << "predict: coverage diverged from the decoupler "
               << "(predicted " << rep.predictedCoverage << " decoupled "
               << (rep.predictedAnyDecoupled ? 1 : 0) << ", actual "
               << actual.coveredFraction() << " decoupled "
               << (actual.anyDecoupled ? 1 : 0) << ")";
            v.detail = os.str();
            return v;
        }
    }

    // 5. Event-core cross-check (DESIGN.md §13): the DAC case again
    //    under the other simulation core must reproduce the exact same
    //    simulation — checksum, cycle count, last state hash, and the
    //    full hash chain (which pins audit boundaries, not just the
    //    end state). A clock-jump bug that reorders or elides issue
    //    surfaces here as a differential, not a silent skew.
    if (opt.eventCoreCheck && haveDac) {
        RunOptions ro;
        ro.tech = Technique::Dac;
        ro.gpu = opt.gpu;
        ro.gpu.simCore = opt.gpu.simCore == SimCore::Stepped
                             ? SimCore::Event
                             : SimCore::Stepped;
        ro.dac = opt.dac;
        ro.checkpoint.haltAtCycle = opt.maxCycles;
        RunOutcome alt = runWorkload(wl, ro);
        const std::string label =
            std::string("event-core (dac under ") +
            simCoreName(ro.gpu.simCore) + ")";
        if (!alt.ok() || alt.fellBack != dacOut.fellBack) {
            v.status = OracleStatus::RunFailure;
            v.detail = label + ": " + runErrorKindName(alt.error.kind) +
                       ": " + alt.error.what;
            return v;
        }
        auto mismatch = [&](const std::string &what) {
            v.status = OracleStatus::Mismatch;
            v.detail = label + ": " + what;
        };
        if (alt.checksums != dacOut.checksums) {
            mismatch("final memory diverged across simulation cores");
            return v;
        }
        if (alt.stats.cycles != dacOut.stats.cycles) {
            std::ostringstream os;
            os << "cycle count diverged (" << alt.stats.cycles << " vs "
               << dacOut.stats.cycles << ")";
            mismatch(os.str());
            return v;
        }
        if (alt.lastStateHash != dacOut.lastStateHash ||
            alt.hashChain != dacOut.hashChain) {
            mismatch("hash chain diverged across simulation cores");
            return v;
        }
        if (!(alt.stats == dacOut.stats)) {
            mismatch("simulated statistics diverged across simulation "
                     "cores");
            return v;
        }
    }
    if (!haveBase) {
        // The baseline itself died of the injected fault: nothing to
        // compare against, but nothing diverged silently either.
        v.detail = "baseline failed under the injected fault plan";
    }
    return v;
}

OracleVerdict
runOracleSeed(std::uint64_t seed, const OracleOptions &opt)
{
    GeneratedKernel g = generateKernel(seed);
    OracleVerdict v = runOracle(g.source, seed, opt);
    return v;
}

// ----- exact text encoding ------------------------------------------------

std::string
encodeVerdict(const OracleVerdict &v)
{
    std::ostringstream os;
    os << "v1 st=" << static_cast<int>(v.status) << " seed=" << v.seed
       << " dec=" << (v.anyDecoupled ? 1 : 0)
       << " detail=" << journalEscape(v.detail) << " nt=" << v.techs.size();
    for (const TechRecord &t : v.techs)
        os << " t=" << static_cast<int>(t.tech) << ',' << t.checksum << ','
           << static_cast<int>(t.error) << ',' << (t.fellBack ? 1 : 0)
           << ',' << t.cycles << ',' << t.lastHash << ',' << t.chainLinks;
    return os.str();
}

bool
decodeVerdict(const std::string &payload, OracleVerdict *v)
{
    std::istringstream is(payload);
    std::string tag;
    if (!(is >> tag) || tag != "v1")
        return false;
    OracleVerdict o;
    std::size_t wantTechs = 0;
    std::string tok;
    try {
        while (is >> tok) {
            std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return false;
            std::string key = tok.substr(0, eq);
            std::string val = tok.substr(eq + 1);
            if (key == "st") {
                o.status = static_cast<OracleStatus>(std::stoi(val));
            } else if (key == "seed") {
                o.seed = std::stoull(val);
            } else if (key == "dec") {
                o.anyDecoupled = val == "1";
            } else if (key == "detail") {
                o.detail = journalUnescape(val);
            } else if (key == "nt") {
                wantTechs = std::stoul(val);
            } else if (key == "t") {
                TechRecord t;
                std::istringstream ts(val);
                std::string f;
                auto field = [&]() -> std::string {
                    if (!std::getline(ts, f, ','))
                        throw std::runtime_error("short tech record");
                    return f;
                };
                t.tech = static_cast<Technique>(std::stoi(field()));
                t.checksum = std::stoull(field());
                t.error = static_cast<RunErrorKind>(std::stoi(field()));
                t.fellBack = field() == "1";
                t.cycles = std::stoull(field());
                t.lastHash = std::stoull(field());
                t.chainLinks = std::stoull(field());
                o.techs.push_back(t);
            } else {
                return false; // unknown key: different format version
            }
        }
    } catch (const std::exception &) {
        return false;
    }
    if (o.techs.size() != wantTechs)
        return false; // torn line
    *v = std::move(o);
    return true;
}

} // namespace dacsim::fuzz
