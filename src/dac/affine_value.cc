#include "dac/affine_value.h"

#include <algorithm>

namespace dacsim
{

const AffineTuple &
AffineValue::tupleFor(int warp, int lane) const
{
    if (isUniform())
        return variants_[0].tuple;
    for (const AffineVariant &v : variants_) {
        ensure(v.cond != nullptr, "divergent value with implicit mask");
        if ((*v.cond)[static_cast<std::size_t>(warp)] >> lane & 1)
            return v.tuple;
    }
    panic("thread not covered by any affine variant");
}

void
AffineValue::makeExplicit(const MaskSet &full)
{
    if (!isUniform() || variants_[0].cond != nullptr)
        return;
    variants_[0].cond = std::make_shared<MaskSet>(full);
}

void
AffineValue::normalize()
{
    // Drop empty variants and merge variants holding identical tuples.
    std::vector<AffineVariant> merged;
    for (AffineVariant &v : variants_) {
        if (v.cond && maskSetEmpty(*v.cond))
            continue;
        bool fused = false;
        for (AffineVariant &m : merged) {
            if (m.tuple == v.tuple && m.cond && v.cond) {
                m.cond = std::make_shared<MaskSet>(
                    maskSetOr(*m.cond, *v.cond));
                fused = true;
                break;
            }
        }
        if (!fused)
            merged.push_back(std::move(v));
    }
    variants_ = std::move(merged);
    if (variants_.size() == 1)
        variants_[0].cond = nullptr; // back to uniform form
}

std::optional<AffineValue>
AffineValue::apply(Opcode op, const AffineValue &a, const AffineValue &b,
                   const AffineValue &c, const MaskSet &full)
{
    int nsrc = numSources(op);
    if ((nsrc < 2 || b.isUniform()) && a.isUniform() &&
        (nsrc < 3 || c.isUniform())) {
        auto t = affineAlu(op, a.variants_[0].tuple, b.variants_[0].tuple,
                           c.variants_[0].tuple);
        if (!t)
            return std::nullopt;
        return uniform(*t);
    }

    AffineValue av = a, bv = b, cv = c;
    av.makeExplicit(full);
    bv.makeExplicit(full);
    cv.makeExplicit(full);
    AffineValue result;
    result.variants_.clear();
    for (const AffineVariant &va : av.variants_) {
        for (const AffineVariant &vb : bv.variants_) {
            MaskSet ab = maskSetAnd(*va.cond, *vb.cond);
            if (maskSetEmpty(ab))
                continue;
            for (const AffineVariant &vc : cv.variants_) {
                MaskSet abc =
                    nsrc < 3 ? ab : maskSetAnd(ab, *vc.cond);
                if (nsrc >= 3 && maskSetEmpty(abc))
                    continue;
                auto t = affineAlu(op, va.tuple, vb.tuple, vc.tuple);
                if (!t)
                    return std::nullopt;
                result.variants_.push_back(
                    {*t, std::make_shared<MaskSet>(std::move(abc))});
                if (nsrc < 3)
                    break;
            }
        }
    }
    result.normalize();
    ensure(!result.variants_.empty(), "affine apply produced no variants");
    if (result.numVariants() > maxVariants)
        return std::nullopt;
    return result;
}

bool
AffineValue::overlay(const AffineValue &v, const MaskSet &mask,
                     const MaskSet &full)
{
    makeExplicit(full);
    std::vector<AffineVariant> next;
    for (const AffineVariant &old : variants_) {
        MaskSet kept = maskSetAndNot(*old.cond, mask);
        if (!maskSetEmpty(kept))
            next.push_back({old.tuple,
                            std::make_shared<MaskSet>(std::move(kept))});
    }
    AffineValue nv = v;
    nv.makeExplicit(full);
    for (const AffineVariant &newer : nv.variants_) {
        MaskSet got = maskSetAnd(*newer.cond, mask);
        if (!maskSetEmpty(got))
            next.push_back({newer.tuple,
                            std::make_shared<MaskSet>(std::move(got))});
    }
    variants_ = std::move(next);
    normalize();
    ensure(!variants_.empty(), "overlay produced no variants");
    return numVariants() <= maxVariants;
}

std::optional<AffineValue>
AffineValue::select(const AffineValue &a, const AffineValue &b,
                    const MaskSet &mask, const MaskSet &full)
{
    AffineValue result = b;
    if (!result.overlay(a, mask, full))
        return std::nullopt;
    return result;
}

} // namespace dacsim
