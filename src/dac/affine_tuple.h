/**
 * @file
 * Affine tuples: the compact value representation executed by the DAC
 * affine warp (paper Sections 3 and 4.4).
 *
 * A tuple represents, for every thread of the grid,
 *
 *   value(tid, ctaid) = base + sum_d tidOff[d]  * tid[d]
 *                            + sum_d ctaOff[d]  * ctaid[d]
 *                            + modScale * ((modBase
 *                            + sum_d modTidOff[d] * tid[d]
 *                            + sum_d modCtaOff[d] * ctaid[d]) mod divisor)
 *
 * i.e. one base plus up to six offsets (three thread-index dimensions
 * and three block-index dimensions), optionally extended with a
 * mod-by-scalar term (the paper's mod-type tuple).
 */

#ifndef DACSIM_DAC_AFFINE_TUPLE_H
#define DACSIM_DAC_AFFINE_TUPLE_H

#include <array>
#include <optional>
#include <string>

#include "common/types.h"
#include "isa/opcode.h"
#include "sim/dim3.h"

namespace dacsim
{

struct AffineTuple
{
    RegVal base = 0;
    std::array<RegVal, 3> tidOff{};
    std::array<RegVal, 3> ctaOff{};

    bool hasMod = false;
    RegVal modScale = 0;
    RegVal modBase = 0;
    std::array<RegVal, 3> modTidOff{};
    std::array<RegVal, 3> modCtaOff{};
    RegVal divisor = 1;

    /** A tuple holding the same value in every thread. */
    static AffineTuple
    scalar(RegVal v)
    {
        AffineTuple t;
        t.base = v;
        return t;
    }

    /** The identity tuple for threadIdx dimension @p dim. */
    static AffineTuple
    tid(int dim)
    {
        AffineTuple t;
        t.tidOff[static_cast<std::size_t>(dim)] = 1;
        return t;
    }

    /** The identity tuple for blockIdx dimension @p dim. */
    static AffineTuple
    ctaid(int dim)
    {
        AffineTuple t;
        t.ctaOff[static_cast<std::size_t>(dim)] = 1;
        return t;
    }

    bool
    isScalar() const
    {
        if (hasMod)
            return false;
        for (int d = 0; d < 3; ++d)
            if (tidOff[d] != 0 || ctaOff[d] != 0)
                return false;
        return true;
    }

    /** True when the value varies only along threadIdx.x linearly
     * (no mod term): the AEU/PEU fast-path shape. */
    bool
    xOnly() const
    {
        return !hasMod && tidOff[1] == 0 && tidOff[2] == 0;
    }

    /** Concrete value for one thread. */
    RegVal eval(const Idx3 &tid, const Idx3 &cta) const;

    bool operator==(const AffineTuple &) const = default;

    std::string toString() const;
};

/**
 * Affine-datapath execution of a (linear-capable) ALU opcode over
 * tuples. Returns nullopt when the result is not representable as a
 * single tuple (the compiler's affine type analysis guarantees this
 * never happens for decoupled instructions; min/max/abs/sel divergence
 * is handled one level up in AffineValue).
 *
 * Supported: mov, add, sub, mul/mad/shl with a scalar factor, mod by
 * a scalar, and shr/div/and/or/xor/not on scalar operands.
 */
std::optional<AffineTuple> affineAlu(Opcode op, const AffineTuple &a,
                                     const AffineTuple &b = {},
                                     const AffineTuple &c = {});

} // namespace dacsim

#endif // DACSIM_DAC_AFFINE_TUPLE_H
