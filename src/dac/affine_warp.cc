#include "dac/affine_warp.h"

#include <algorithm>

#include "common/log.h"
#include "common/trace.h"
#include "sim/alu.h"

namespace dacsim
{

AffineWarp::AffineWarp(const GpuConfig &gcfg, const DacConfig &dcfg,
                       DacEngine &engine, RunStats &stats)
    : gcfg_(gcfg), dcfg_(dcfg), engine_(engine), stats_(stats)
{
}

void
AffineWarp::startBatch(const Kernel *code, const BatchInfo *batch,
                       const std::vector<RegVal> *params)
{
    code_ = code;
    batch_ = batch;
    params_ = params;
    valid_ = batch->validMasks();
    regs_.assign(static_cast<std::size_t>(code->numRegs), AffineValue{});
    regReady_.assign(static_cast<std::size_t>(code->numRegs), 0);
    preds_.assign(static_cast<std::size_t>(code->numPreds),
                  MaskSet(valid_.size(), 0));
    predReady_.assign(static_cast<std::size_t>(code->numPreds), 0);
    ctaEpochs_.assign(static_cast<std::size_t>(batch->numCtas), 0);
    stack_.reset(valid_);
    finished_ = false;
    wakeValid_ = false;
}

const Instruction &
AffineWarp::current() const
{
    ensure(!finished_, "current() on finished affine warp");
    return code_->insts[static_cast<std::size_t>(stack_.pc())];
}

MaskSet
AffineWarp::effectiveMask(const Instruction &inst) const
{
    MaskSet m = stack_.mask();
    if (inst.guardPred >= 0) {
        const MaskSet &p = preds_[static_cast<std::size_t>(inst.guardPred)];
        m = inst.guardNeg ? maskSetAndNot(m, p) : maskSetAnd(m, p);
    }
    return m;
}

AffineValue
AffineWarp::evalOperand(const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return regs_[static_cast<std::size_t>(op.index)];
      case Operand::Kind::Imm:
        return AffineValue::uniform(AffineTuple::scalar(op.imm));
      case Operand::Kind::Param:
        return AffineValue::uniform(AffineTuple::scalar(
            params_->at(static_cast<std::size_t>(op.index))));
      case Operand::Kind::Special: {
        SpecialReg s = op.sreg;
        int d = specialRegDim(s);
        if (isTidReg(s))
            return AffineValue::uniform(AffineTuple::tid(d));
        if (isCtaidReg(s))
            return AffineValue::uniform(AffineTuple::ctaid(d));
        // blockDim / gridDim are uniform scalars.
        RegVal v = 0;
        switch (s) {
          case SpecialReg::NtidX: v = batch_->block.x; break;
          case SpecialReg::NtidY: v = batch_->block.y; break;
          case SpecialReg::NtidZ: v = batch_->block.z; break;
          case SpecialReg::NctaidX: v = batch_->grid.x; break;
          case SpecialReg::NctaidY: v = batch_->grid.y; break;
          case SpecialReg::NctaidZ: v = batch_->grid.z; break;
          default: panic("unexpected special register");
        }
        return AffineValue::uniform(AffineTuple::scalar(v));
      }
      default:
        panic("affine warp cannot evaluate operand kind");
    }
}

MaskSet
AffineWarp::compareMasks(CmpOp cmp, const AffineValue &a,
                         const AffineValue &b, const MaskSet &scope)
{
    // --- expansion cost accounting (Section 4.3) ---
    bool scalars = a.isUniform() && a.onlyTuple().isScalar() &&
                   b.isUniform() && b.onlyTuple().isScalar();
    int active_warps = 0;
    for (ThreadMask w : scope)
        if (w)
            ++active_warps;
    if (scalars) {
        stats_.expansionAluOps += 1;
    } else if (a.isUniform() && a.onlyTuple().xOnly() && b.isUniform() &&
               b.onlyTuple().xOnly()) {
        // Endpoint comparison: 2 ALU ops per warp.
        stats_.expansionAluOps += 2ull * active_warps;
    } else {
        // Fall back to the SIMT lanes: full per-thread comparison.
        stats_.expansionAluOps += 32ull * active_warps;
    }

    // --- exact functional result ---
    MaskSet bits(scope.size(), 0);
    for (std::size_t w = 0; w < scope.size(); ++w) {
        ThreadMask m = scope[w];
        if (!m)
            continue;
        const WarpSlot &slot = batch_->warps[w];
        for (int lane = 0; lane < warpSize; ++lane) {
            if (!(m >> lane & 1))
                continue;
            Idx3 tid = batch_->tidOf(slot, lane);
            RegVal av = a.evalThread(static_cast<int>(w), lane, tid,
                                     slot.ctaId);
            RegVal bv = b.evalThread(static_cast<int>(w), lane, tid,
                                     slot.ctaId);
            if (cmpCompute(cmp, av, bv))
                bits[w] |= 1u << lane;
        }
    }
    return bits;
}

void
AffineWarp::writeReg(int reg, const AffineValue &v, const MaskSet &active,
                     Cycle now)
{
    AffineValue &dst = regs_[static_cast<std::size_t>(reg)];
    if (active == valid_) {
        dst = v;
    } else {
        bool ok = dst.overlay(v, active, valid_);
        ensure(ok, "divergent tuple budget exceeded at runtime; "
                   "the compiler should have rejected this kernel");
    }
    regReady_[static_cast<std::size_t>(reg)] =
        now + static_cast<Cycle>(gcfg_.aluLatency);
}

void
AffineWarp::writePred(int pred, const MaskSet &bits, const MaskSet &active,
                      Cycle now)
{
    MaskSet &dst = preds_[static_cast<std::size_t>(pred)];
    dst = maskSetOr(maskSetAndNot(dst, active), maskSetAnd(bits, active));
    predReady_[static_cast<std::size_t>(pred)] =
        now + static_cast<Cycle>(gcfg_.aluLatency);
}

void
AffineWarp::execAlu(const Instruction &inst, const MaskSet &active,
                    Cycle now)
{
    std::optional<AffineValue> result;
    switch (inst.op) {
      case Opcode::Sel: {
        AffineValue a = evalOperand(inst.src[0]);
        AffineValue b = evalOperand(inst.src[1]);
        const MaskSet &p =
            preds_[static_cast<std::size_t>(inst.src[2].index)];
        result = AffineValue::select(a, b, p, valid_);
        break;
      }
      case Opcode::Min:
      case Opcode::Max: {
        AffineValue a = evalOperand(inst.src[0]);
        AffineValue b = evalOperand(inst.src[1]);
        CmpOp cmp = inst.op == Opcode::Min ? CmpOp::Lt : CmpOp::Gt;
        MaskSet takeA = compareMasks(cmp, a, b, valid_);
        result = AffineValue::select(a, b, takeA, valid_);
        break;
      }
      case Opcode::Abs: {
        AffineValue a = evalOperand(inst.src[0]);
        AffineValue zero = AffineValue::uniform(AffineTuple::scalar(0));
        MaskSet isNeg = compareMasks(CmpOp::Lt, a, zero, valid_);
        auto neg = AffineValue::apply(Opcode::Sub, zero, a, {}, valid_);
        if (neg)
            result = AffineValue::select(*neg, a, isNeg, valid_);
        break;
      }
      default: {
        AffineValue a = evalOperand(inst.src[0]);
        AffineValue b = numSources(inst.op) > 1 ? evalOperand(inst.src[1])
                                                : AffineValue{};
        AffineValue c = numSources(inst.op) > 2 ? evalOperand(inst.src[2])
                                                : AffineValue{};
        result = AffineValue::apply(inst.op, a, b, c, valid_);
        break;
      }
    }
    ensure(result.has_value(),
           "affine warp cannot execute '", instToString(inst),
           "': not representable as affine tuples (compiler bug)");
    writeReg(inst.dst.index, *result, active, now);
}

void
AffineWarp::execSetp(const Instruction &inst, const MaskSet &active,
                     Cycle now)
{
    AffineValue a = evalOperand(inst.src[0]);
    AffineValue b = evalOperand(inst.src[1]);
    MaskSet bits = compareMasks(inst.cmp, a, b, valid_);
    writePred(inst.dst.index, bits, active, now);
}

void
AffineWarp::execBranch(const Instruction &inst, const MaskSet &active)
{
    int pc = stack_.pc();
    if (inst.guardPred < 0) {
        stack_.advance(inst.target);
        return;
    }
    const MaskSet &p = preds_[static_cast<std::size_t>(inst.guardPred)];
    MaskSet taken = inst.guardNeg ? maskSetAndNot(active, p)
                                  : maskSetAnd(active, p);
    MaskSet notTaken = maskSetAndNot(active, taken);
    if (maskSetEmpty(notTaken)) {
        stack_.advance(inst.target);
    } else if (maskSetEmpty(taken)) {
        stack_.advance(pc + 1);
    } else {
        stack_.diverge(inst.target, pc + 1, inst.reconvergePc, taken,
                       notTaken);
    }
}

void
AffineWarp::execEnq(const Instruction &inst, const MaskSet &active)
{
    if (inst.op == Opcode::EnqPred) {
        engine_.enqPred(preds_[static_cast<std::size_t>(inst.src[0].index)],
                        active, ctaEpochs_);
        return;
    }
    AffineValue addr = evalOperand(inst.src[0]);
    if (inst.addrOffset != 0) {
        auto shifted = AffineValue::apply(
            Opcode::Add, addr,
            AffineValue::uniform(AffineTuple::scalar(inst.addrOffset)), {},
            valid_);
        ensure(shifted.has_value(), "address displacement overflow");
        addr = *shifted;
    }
    engine_.enqAddr(addr, inst.width, inst.op == Opcode::EnqData, active,
                    ctaEpochs_);
}

bool
AffineWarp::ready(Cycle now) const
{
    // Every operand is ready iff the max of their ready cycles has
    // passed, so the cached wake answers the scoreboard side outright.
    if (finished_ || nextReadyCycle() > now)
        return false;
    const Instruction &inst = current();
    if (inst.isEnq() && !engine_.canEnq())
        return false;
    return true;
}

bool
AffineWarp::enqBlocked() const
{
    return !finished_ && current().isEnq() && !engine_.canEnq();
}

StallReason
AffineWarp::stallReason(Cycle now) const
{
    const Instruction &inst = current();
    // Operand waits take precedence: with a dependence outstanding the
    // warp could not issue even with ATQ space.
    if (nextReadyCycle() > now)
        return StallReason::Scoreboard;
    if (inst.isEnq() && !engine_.canEnq())
        return StallReason::DacQueueFull;
    return StallReason::Structural;
}

Cycle
AffineWarp::nextReadyCycle() const
{
    if (finished_)
        return ~static_cast<Cycle>(0);
    if (wakeValid_)
        return wake_;
    const Instruction &inst = current();
    Cycle t = 0;
    auto consider = [&](const Operand &op) {
        if (op.isReg())
            t = std::max(t, regReady_[static_cast<std::size_t>(op.index)]);
        else if (op.isPred())
            t = std::max(t,
                         predReady_[static_cast<std::size_t>(op.index)]);
    };
    if (inst.guardPred >= 0)
        t = std::max(t,
                     predReady_[static_cast<std::size_t>(inst.guardPred)]);
    for (int i = 0; i < numSources(inst.op); ++i)
        consider(inst.src[i]);
    consider(inst.dst);
    wake_ = t;
    wakeValid_ = true;
    return t;
}

void
AffineWarp::step(Cycle now)
{
    // Stepping writes the scoreboard and moves the PC: the cached
    // wake refers to an instruction that is no longer next.
    wakeValid_ = false;
    const Instruction &inst = current();
    int pc = stack_.pc();
    MaskSet active = effectiveMask(inst);
    ++stats_.affineWarpInsts;
    DACSIM_TRACE_LOG("       cyc %-8llu AFFINE pc %-3d %s",
                     static_cast<unsigned long long>(now), pc,
                     instToString(inst, code_->params).c_str());

    switch (inst.op) {
      case Opcode::Bra:
        // The guard is the branch condition itself: split on the raw
        // stack mask (effectiveMask would pre-apply the guard).
        execBranch(inst, stack_.mask());
        return;
      case Opcode::Bar: {
        if (inst.epochCounted) {
            // Advance the barrier epoch once per CTA with active warps.
            std::vector<bool> bumped(ctaEpochs_.size(), false);
            for (std::size_t w = 0; w < active.size(); ++w) {
                if (!active[w])
                    continue;
                int slot = batch_->warps[w].ctaSlot;
                if (!bumped[static_cast<std::size_t>(slot)]) {
                    bumped[static_cast<std::size_t>(slot)] = true;
                    ++ctaEpochs_[static_cast<std::size_t>(slot)];
                }
            }
        }
        stack_.advance(pc + 1);
        return;
      }
      case Opcode::Exit: {
        if (stack_.retire(active)) {
            finished_ = true;
            stats_.affineStackAccesses +=
                stack_.accesses().wls + stack_.accesses().pws;
            return;
        }
        if (stack_.pc() == pc)
            stack_.advance(pc + 1);
        return;
      }
      case Opcode::EnqData:
      case Opcode::EnqAddr:
      case Opcode::EnqPred:
        execEnq(inst, active);
        stack_.advance(pc + 1);
        return;
      case Opcode::Setp:
        execSetp(inst, active, now);
        stack_.advance(pc + 1);
        return;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::LdDeq:
      case Opcode::StDeq:
      case Opcode::DeqPred:
        panic("memory/deq instruction in the affine stream");
      default:
        execAlu(inst, active, now);
        stack_.advance(pc + 1);
        return;
    }
}

} // namespace dacsim
