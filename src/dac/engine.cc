#include "dac/engine.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "compiler/decoupler.h"
#include "mem/coalescer.h"
#include "sim/audit.h"

namespace dacsim
{

DacSplitSummary
dacActualSplit(const DecoupledKernel &dec)
{
    DacSplitSummary s;
    s.totalInsts = static_cast<int>(dec.coveredByDac.size());
    s.anyDecoupled = dec.anyDecoupled;
    for (int pc = 0; pc < s.totalInsts; ++pc) {
        auto i = static_cast<std::size_t>(pc);
        if (dec.coveredByDac[i])
            ++s.coveredInsts;
        if (dec.decoupled[i])
            ++s.decoupledInsts;
        if (dec.inAffineStream[i])
            ++s.affineStreamInsts;
    }
    return s;
}

int
dacExpansionCyclesPerRecord(const DacConfig &cfg)
{
    const int per = std::max(1, cfg.expansionsPerCycle);
    return (warpSize + per - 1) / per;
}

DacEngine::DacEngine(int sm_id, const GpuConfig &gcfg, const DacConfig &dcfg,
                     MemorySystem &mem, RunStats &stats)
    : smId_(sm_id), gcfg_(gcfg), dcfg_(dcfg), mem_(mem), stats_(stats)
{
}

void
DacEngine::startBatch(const BatchInfo *batch)
{
    ensure(empty() || batch_ == nullptr, "starting batch with live queues");
    batch_ = batch;
    atq_.clear();
    pwaq_.assign(batch->numWarps(), {});
    pwpq_.assign(batch->numWarps(), {});
    parkedAddr_.assign(static_cast<std::size_t>(batch->numWarps()), false);
    parkedPred_.assign(static_cast<std::size_t>(batch->numWarps()), false);
    lockWaitEpoch_.assign(static_cast<std::size_t>(batch->numWarps()),
                          ~0ull);
    mshrRetryAt_.assign(static_cast<std::size_t>(batch->numWarps()), 0);
    scanIdle_ = false;
    // The fixed SRAM budget is partitioned among the *resident* warps
    // (Table 1's 192 entries are per SM, not per warp slot).
    pwaqCap_ = std::max(1, dcfg_.pwaqPerWarp(batch->numWarps()));
    pwpqCap_ = std::max(1, dcfg_.pwpqPerWarp(batch->numWarps()));
}

bool
DacEngine::canEnq() const
{
    if (faults_ && faults_->affineBackpressure(smId_, lastCycle_)) {
        // Injected back-pressure: the ATQ reports full to the affine
        // warp, which stalls exactly as it would on a real full queue.
        ++stats_.faultsInjected;
        return false;
    }
    return static_cast<int>(atq_.size()) < dcfg_.atqEntries;
}

void
DacEngine::enqAddr(const AffineValue &addr, MemWidth width, bool is_data,
                   const MaskSet &active, const std::vector<int> &epochs)
{
    ensure(canEnq(), "enq on full ATQ");
    AtqEntry e;
    e.kind = is_data ? EntryKind::Data : EntryKind::Addr;
    e.value = addr;
    e.active = active;
    e.width = width;
    e.epochs = epochs;
    atq_.push_back(std::move(e));
    ++stats_.atqAccesses;
}

void
DacEngine::enqPred(const MaskSet &bits, const MaskSet &active,
                   const std::vector<int> &epochs)
{
    ensure(canEnq(), "enq on full ATQ");
    AtqEntry e;
    e.kind = EntryKind::Pred;
    e.bits = bits;
    e.active = active;
    e.epochs = epochs;
    atq_.push_back(std::move(e));
    ++stats_.atqAccesses;
}

DacEngine::AddrRecord
DacEngine::expandAddrs(const AtqEntry &entry, int w) const
{
    const WarpSlot &slot = batch_->warps[static_cast<std::size_t>(w)];
    AddrRecord rec;
    rec.mask = entry.active[static_cast<std::size_t>(w)];
    rec.width = entry.width;
    rec.isData = entry.kind == EntryKind::Data;
    for (int lane = 0; lane < warpSize; ++lane) {
        if (!(rec.mask >> lane & 1))
            continue;
        Idx3 tid = batch_->tidOf(slot, lane);
        rec.addrs[static_cast<std::size_t>(lane)] = static_cast<Addr>(
            entry.value.evalThread(w, lane, tid, slot.ctaId));
    }
    rec.lines = coalesce(rec.addrs, rec.mask, memWidthBytes(rec.width));
    return rec;
}

bool
DacEngine::deliverTo(AtqEntry &entry, int w, Cycle now,
                     const std::vector<int> &cta_bar_passed)
{
    const WarpSlot &slot = batch_->warps[static_cast<std::size_t>(w)];
    // Barrier gate: expansion for a CTA is disabled until its
    // non-affine warps have passed the barriers the affine warp saw.
    if (cta_bar_passed[static_cast<std::size_t>(slot.ctaSlot)] <
        entry.epochs[static_cast<std::size_t>(slot.ctaSlot)]) {
        return false;
    }

    if (entry.kind == EntryKind::Pred) {
        auto &q = pwpq_[static_cast<std::size_t>(w)];
        if (static_cast<int>(q.size()) >= pwpqCap_) {
            parkedPred_[static_cast<std::size_t>(w)] = true;
            return false;
        }
        PredRecord rec;
        rec.bits = entry.bits[static_cast<std::size_t>(w)];
        rec.mask = entry.active[static_cast<std::size_t>(w)];
        q.push_back(rec);
        ++stats_.pwpqAccesses;
        ++stats_.expansionAluOps;
        return true;
    }

    auto &q = pwaq_[static_cast<std::size_t>(w)];
    if (static_cast<int>(q.size()) >= pwaqCap_) {
        parkedAddr_[static_cast<std::size_t>(w)] = true;
        return false;
    }

    const std::size_t wi = static_cast<std::size_t>(w);
    if (entry.expanded.empty()) {
        std::size_t n = static_cast<std::size_t>(batch_->numWarps());
        entry.expanded.resize(n);
        entry.expandedValid.assign(n, false);
    }
    if (!entry.expandedValid[wi]) {
        entry.expanded[wi] = expandAddrs(entry, w);
        entry.expandedValid[wi] = true;
    }
    AddrRecord &rec = entry.expanded[wi];
    rec.earlyFetched =
        rec.isData &&
        rec.lines.size() <= static_cast<std::size_t>(maxEarlyFetchLines);
    if (rec.earlyFetched) {
        // Pre-check (non-mutating): every line lockable, and enough
        // MSHRs for the ones not already resident. On failure the AEU
        // retries next cycle without touching cache state.
        const std::size_t wix = static_cast<std::size_t>(w);
        int needed = 0;
        for (Addr line : rec.lines) {
            switch (mem_.earlyFetchProbe(smId_, line, now)) {
              case MemorySystem::EarlyFetchProbe::Blocked:
                if (!faults_)
                    lockWaitEpoch_[wix] = mem_.unlockEpoch(smId_);
                return false;
              case MemorySystem::EarlyFetchProbe::NeedsMshr:
                ++needed;
                break;
              case MemorySystem::EarlyFetchProbe::Present:
                break;
            }
        }
        if (mem_.freeMshrs(smId_, now) < needed) {
            if (!faults_)
                mshrRetryAt_[wix] = mem_.nextMshrRelease(smId_, now);
            return false;
        }
        Cycle ready = now;
        for (Addr line : rec.lines) {
            AccessResult r = mem_.load(smId_, line, now,
                                       Requester::DacEarly);
            ensure(r.accepted, "pre-checked early fetch rejected");
            ready = std::max(ready, r.ready);
            mem_.lock(smId_, line);
        }
        rec.ready = ready;
        stats_.loadRequests += rec.lines.size();
        stats_.affineLoadRequests += rec.lines.size();
    }
    // The AEU's accumulator produces one ALU op per generated line
    // (plus the once-per-CTA start, amortized; Section 4.2). Charged
    // only on successful delivery: a blocked attempt retries later.
    stats_.expansionAluOps += std::max<std::size_t>(1, rec.lines.size());
    q.push_back(std::move(rec));
    ++stats_.pwaqAccesses;
    return true;
}

void
DacEngine::cycle(Cycle now, const std::vector<int> &cta_bar_passed)
{
    lastCycle_ = now;
    if (scanIdle_) {
        if (popCount_ == scanPops_ &&
            mem_.unlockEpoch(smId_) == scanEpoch_ && now < scanWake_)
            return;
        scanIdle_ = false;
    }
    int budget = dcfg_.expansionsPerCycle;
    while (budget > 0) {
        if (atq_.empty())
            return;
        AtqEntry &entry = atq_.front();
        const int n = batch_->numWarps();
        if (entry.delivered.empty()) {
            entry.delivered.assign(static_cast<std::size_t>(n), false);
            entry.undelivered = n;
        }

        // Round-robin over the head entry's still-pending warps,
        // skipping those whose queue is full or whose CTA has not
        // passed the required barrier yet.
        const std::vector<bool> &parked =
            entry.kind == EntryKind::Pred ? parkedPred_ : parkedAddr_;
        bool progressed = false;
        bool pending = false;
        bool anyLive = false; // a deliverTo attempt actually ran
        Cycle wake = ~static_cast<Cycle>(0);
        for (int t = 0; t < n && budget > 0; ++t) {
            int w = (entry.nextWarp + t) % n;
            if (entry.delivered[static_cast<std::size_t>(w)])
                continue;
            if (entry.active[static_cast<std::size_t>(w)] == 0) {
                entry.delivered[static_cast<std::size_t>(w)] = true;
                --entry.undelivered;
                continue;
            }
            if (parked[static_cast<std::size_t>(w)]) {
                pending = true; // still undelivered; retried after a pop
                continue;
            }
            if (now < mshrRetryAt_[static_cast<std::size_t>(w)]) {
                pending = true; // pre-check outcome provably unchanged
                wake = std::min(wake,
                                mshrRetryAt_[static_cast<std::size_t>(w)]);
                continue;
            }
            if (lockWaitEpoch_[static_cast<std::size_t>(w)] ==
                mem_.unlockEpoch(smId_)) {
                pending = true; // blocked until an unlock-to-zero
                continue;
            }
            anyLive = true;
            if (deliverTo(entry, w, now, cta_bar_passed)) {
                entry.delivered[static_cast<std::size_t>(w)] = true;
                --entry.undelivered;
                entry.nextWarp = (w + 1) % n;
                --budget;
                progressed = true;
            } else {
                pending = true;
            }
        }
        if (entry.undelivered == 0) {
            atq_.pop_front();
            ++stats_.atqAccesses;
            // The next head entry's records have different lines, so
            // the pre-check parking state does not carry over.
            std::fill(lockWaitEpoch_.begin(), lockWaitEpoch_.end(), ~0ull);
            std::fill(mshrRetryAt_.begin(), mshrRetryAt_.end(), Cycle{0});
            continue;
        }
        if (!progressed || pending) {
            // Latch scan-idle only after a full no-op pass: nothing was
            // attempted (so no state moved) and every undelivered warp
            // is parked on an explicit wake source.
            if (!progressed && !anyLive && pending) {
                scanIdle_ = true;
                scanPops_ = popCount_;
                scanEpoch_ = mem_.unlockEpoch(smId_);
                scanWake_ = wake;
            }
            return; // everything reachable this cycle is blocked
        }
    }
}

const DacEngine::AddrRecord *
DacEngine::frontAddr(int warp) const
{
    const auto &q = pwaq_[static_cast<std::size_t>(warp)];
    return q.empty() ? nullptr : &q.front();
}

void
DacEngine::popAddr(int warp)
{
    auto &q = pwaq_[static_cast<std::size_t>(warp)];
    ensure(!q.empty(), "popAddr on empty PWAQ");
    ++stats_.pwaqAccesses;
    q.pop_front();
    parkedAddr_[static_cast<std::size_t>(warp)] = false;
    ++popCount_;
}

const DacEngine::PredRecord *
DacEngine::frontPred(int warp) const
{
    const auto &q = pwpq_[static_cast<std::size_t>(warp)];
    return q.empty() ? nullptr : &q.front();
}

void
DacEngine::popPred(int warp)
{
    auto &q = pwpq_[static_cast<std::size_t>(warp)];
    ensure(!q.empty(), "popPred on empty PWPQ");
    ++stats_.pwpqAccesses;
    q.pop_front();
    parkedPred_[static_cast<std::size_t>(warp)] = false;
    ++popCount_;
}

void
DacEngine::audit(Cycle now) const
{
    AuditContext ctx;
    ctx.cycle = now;
    ctx.sm = smId_;

    ctx.structure = "atq";
    auditCheck(static_cast<int>(atq_.size()) <= dcfg_.atqEntries, ctx,
               "occupancy ", atq_.size(), " exceeds ", dcfg_.atqEntries,
               " entries");

    for (std::size_t w = 0; w < pwaq_.size(); ++w) {
        ctx.warp = static_cast<int>(w);
        ctx.structure = "pwaq";
        auditCheck(static_cast<int>(pwaq_[w].size()) <= pwaqCap_, ctx,
                   "occupancy ", pwaq_[w].size(), " exceeds per-warp cap ",
                   pwaqCap_);
        ctx.structure = "pwpq";
        auditCheck(static_cast<int>(pwpq_[w].size()) <= pwpqCap_, ctx,
                   "occupancy ", pwpq_[w].size(), " exceeds per-warp cap ",
                   pwpqCap_);
    }
}

std::string
DacEngine::dumpState() const
{
    std::ostringstream os;
    os << "atq=" << atq_.size() << "/" << dcfg_.atqEntries;
    std::size_t aq = 0, pq = 0;
    for (const auto &q : pwaq_)
        aq += q.size();
    for (const auto &q : pwpq_)
        pq += q.size();
    os << " pwaq=" << aq << " pwpq=" << pq;
    return os.str();
}

bool
DacEngine::empty() const
{
    if (!atq_.empty())
        return false;
    for (const auto &q : pwaq_)
        if (!q.empty())
            return false;
    for (const auto &q : pwpq_)
        if (!q.empty())
            return false;
    return true;
}

} // namespace dacsim
