/**
 * @file
 * The DAC affine warp: a single warp context per SM that executes the
 * affine instruction stream once per batch of non-affine warps,
 * operating on affine tuples instead of vectors (paper Sections 4.1,
 * 4.4-4.6).
 *
 * Its registers hold AffineValues (tuples with up to four divergent
 * variants); its predicate registers hold exact per-warp bit vectors
 * produced by the PEU; its control flow runs on the two-level Affine
 * SIMT Stack, mirroring every non-affine warp of the batch at warp
 * granularity.
 */

#ifndef DACSIM_DAC_AFFINE_WARP_H
#define DACSIM_DAC_AFFINE_WARP_H

#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "dac/affine_stack.h"
#include "dac/affine_value.h"
#include "dac/engine.h"
#include "isa/instruction.h"
#include "sim/batch.h"

namespace dacsim
{

class StateIo;

class AffineWarp
{
  public:
    AffineWarp(const GpuConfig &gcfg, const DacConfig &dcfg,
               DacEngine &engine, RunStats &stats);

    /** Begin executing @p code for @p batch (kernel params supplied). */
    void startBatch(const Kernel *code, const BatchInfo *batch,
                    const std::vector<RegVal> *params);

    bool finished() const { return finished_; }

    /** May the next instruction issue at @p now? (scoreboard ready,
     * ATQ space for enq instructions). */
    bool ready(Cycle now) const;

    /**
     * First cycle at which the next instruction's scoreboard
     * dependences clear (ready() holds from then on, ATQ space
     * permitting). ~Cycle(0) when finished. Used by the idle-cycle
     * fast-forward and the event core (§13) to bound how far the SM
     * clock may jump. Cached per instruction: the value can only move
     * when the warp itself steps (its only scoreboard writer), which
     * invalidates the cache.
     */
    Cycle nextReadyCycle() const;

    /** The next instruction is an enq blocked on ATQ back-pressure.
     * Such a warp has no self-wake time: it unblocks only when the
     * engine retires its ATQ head (bounded by
     * DacEngine::nextWakeCycle) or the SM issues, so the event core
     * drops it from the SM's wake minimum (§13). */
    bool enqBlocked() const;

    /** Issue and functionally execute one instruction. */
    void step(Cycle now);

    /** Why the next instruction cannot issue right now (stall
     * attribution; only meaningful when !finished() && !ready(now)):
     * ATQ back-pressure or an operand scoreboard wait. */
    StallReason stallReason(Cycle now) const;

    /** Program counter of the next instruction (chrome trace). */
    int pc() const { return stack_.pc(); }

    /** Barrier epochs the affine warp has recorded, per CTA slot. */
    const std::vector<int> &ctaEpochs() const { return ctaEpochs_; }

    const AffineStack &stack() const { return stack_; }

  private:
    const GpuConfig &gcfg_;
    const DacConfig &dcfg_;
    DacEngine &engine_;
    RunStats &stats_;

    const Kernel *code_ = nullptr;
    const BatchInfo *batch_ = nullptr;
    const std::vector<RegVal> *params_ = nullptr;

    AffineStack stack_;
    MaskSet valid_;   ///< valid-thread masks of the batch
    std::vector<AffineValue> regs_;
    std::vector<Cycle> regReady_;
    std::vector<MaskSet> preds_;
    std::vector<Cycle> predReady_;
    std::vector<int> ctaEpochs_;
    bool finished_ = true;

    /** Cached nextReadyCycle() (host-only, never serialized; restore
     * and step() invalidate it). */
    mutable Cycle wake_ = 0;
    mutable bool wakeValid_ = false;

    const Instruction &current() const;
    /** Effective execution mask: stack mask AND guard bits. */
    MaskSet effectiveMask(const Instruction &inst) const;

    AffineValue evalOperand(const Operand &op) const;

    /**
     * PEU comparison: per-thread bits of "cmp(a,b)" over @p scope,
     * charging the scalar / endpoint / full-compare expansion cost
     * (Section 4.3).
     */
    MaskSet compareMasks(CmpOp cmp, const AffineValue &a,
                         const AffineValue &b, const MaskSet &scope);

    void writeReg(int reg, const AffineValue &v, const MaskSet &active,
                  Cycle now);
    void writePred(int pred, const MaskSet &bits, const MaskSet &active,
                   Cycle now);

    void execAlu(const Instruction &inst, const MaskSet &active, Cycle now);
    void execSetp(const Instruction &inst, const MaskSet &active,
                  Cycle now);
    void execBranch(const Instruction &inst, const MaskSet &active);
    void execEnq(const Instruction &inst, const MaskSet &active);

    friend class StateIo;
};

} // namespace dacsim

#endif // DACSIM_DAC_AFFINE_WARP_H
