/**
 * @file
 * The two-level Affine SIMT Stack (paper Section 4.5).
 *
 * The affine warp mirrors the control flow of every non-affine warp of
 * the batch, so each stack entry carries one mask per warp. The
 * hardware stores these as a Warp Level Stack (2 bits per warp: all-1s
 * / all-0s / mixed) backed by Per Warp Stacks holding full masks only
 * for the mixed case; functionally we keep full masks and account the
 * WLS/PWS access split for the energy model.
 */

#ifndef DACSIM_DAC_AFFINE_STACK_H
#define DACSIM_DAC_AFFINE_STACK_H

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "dac/affine_value.h"

namespace dacsim
{

class StateIo;

class AffineStack
{
  public:
    struct Entry
    {
        int pc = 0;
        int rpc = -1;
        MaskSet mask;
    };

    struct AccessCounts
    {
        std::uint64_t wls = 0; ///< warp-level (2-bit) entries touched
        std::uint64_t pws = 0; ///< per-warp full-mask entries touched
    };

    void
    reset(const MaskSet &initial)
    {
        entries_.clear();
        entries_.push_back({0, -1, initial});
        countAccess(initial);
    }

    bool empty() const { return entries_.empty(); }
    int depth() const { return static_cast<int>(entries_.size()); }
    int pc() const { return top().pc; }
    const MaskSet &mask() const { return top().mask; }
    int maxDepthSeen() const { return maxDepth_; }

    /** Reaching the top entry's reconvergence PC pops exactly that
     * entry; execution resumes at the next pending path's own PC. */
    void
    advance(int next_pc)
    {
        ensure(!empty(), "advance on empty affine stack");
        if (next_pc == top().rpc) {
            entries_.pop_back();
            normalize();
            return;
        }
        entries_.back().pc = next_pc;
    }

    void
    diverge(int target, int fallthrough, int rpc, const MaskSet &taken,
            const MaskSet &not_taken)
    {
        ensure(!empty(), "diverge on empty affine stack");
        Entry parent = entries_.back();
        entries_.pop_back();
        if (rpc >= 0)
            entries_.push_back({rpc, parent.rpc, parent.mask});
        entries_.push_back({fallthrough, rpc, not_taken});
        entries_.push_back({target, rpc, taken});
        normalize();
        maxDepth_ = std::max(maxDepth_, depth());
        countAccess(taken);
        countAccess(not_taken);
    }

    /** Retire exited threads; true when the whole batch has finished. */
    bool
    retire(const MaskSet &exited)
    {
        for (Entry &e : entries_)
            e.mask = maskSetAndNot(e.mask, exited);
        std::erase_if(entries_,
                      [](const Entry &e) { return maskSetEmpty(e.mask); });
        return entries_.empty();
    }

    const std::vector<Entry> &entries() const { return entries_; }
    const AccessCounts &accesses() const { return accesses_; }

  private:
    friend class StateIo;

    std::vector<Entry> entries_;
    AccessCounts accesses_;
    int maxDepth_ = 1;

    const Entry &
    top() const
    {
        ensure(!entries_.empty(), "empty affine stack");
        return entries_.back();
    }

    /** Pop path entries born already at their reconvergence PC. */
    void
    normalize()
    {
        while (!entries_.empty() &&
               entries_.back().pc == entries_.back().rpc) {
            entries_.pop_back();
        }
    }

    void
    countAccess(const MaskSet &m)
    {
        for (ThreadMask w : m) {
            ++accesses_.wls;
            if (w != 0 && w != fullMask)
                ++accesses_.pws;
        }
    }
};

} // namespace dacsim

#endif // DACSIM_DAC_AFFINE_STACK_H
