/**
 * @file
 * Affine register values with divergent-tuple variants (paper
 * Section 4.6) and the per-warp mask sets the affine warp uses to
 * mirror the control flow of a whole batch of non-affine warps.
 *
 * A MaskSet holds one 32-bit thread mask per non-affine warp of the
 * current batch — the representation behind both the two-level Affine
 * SIMT Stack (Section 4.5) and the Divergent Condition Register File.
 *
 * An AffineValue is either uniform (a single tuple valid for all
 * threads) or a small list of (tuple, mask) variants with disjoint
 * masks that together cover every thread; the mask selects which
 * threads use which tuple, as the DCRF entries do in hardware. At most
 * 2^maxDivergentConditions = 4 variants exist for decoupled values.
 */

#ifndef DACSIM_DAC_AFFINE_VALUE_H
#define DACSIM_DAC_AFFINE_VALUE_H

#include <memory>
#include <optional>
#include <vector>

#include "common/log.h"
#include "dac/affine_tuple.h"

namespace dacsim
{

class StateIo;

/** One thread mask per warp of the batch. */
using MaskSet = std::vector<ThreadMask>;

/** Shared immutable mask set; nullptr denotes "all threads". */
using MaskRef = std::shared_ptr<const MaskSet>;

// ----- MaskSet helpers ----------------------------------------------------

inline bool
maskSetAny(const MaskSet &m)
{
    for (ThreadMask w : m)
        if (w)
            return true;
    return false;
}

inline bool
maskSetEmpty(const MaskSet &m)
{
    return !maskSetAny(m);
}

inline MaskSet
maskSetAnd(const MaskSet &a, const MaskSet &b)
{
    ensure(a.size() == b.size(), "mask set size mismatch");
    MaskSet r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] & b[i];
    return r;
}

inline MaskSet
maskSetAndNot(const MaskSet &a, const MaskSet &b)
{
    ensure(a.size() == b.size(), "mask set size mismatch");
    MaskSet r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] & ~b[i];
    return r;
}

inline MaskSet
maskSetOr(const MaskSet &a, const MaskSet &b)
{
    ensure(a.size() == b.size(), "mask set size mismatch");
    MaskSet r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] | b[i];
    return r;
}

inline MaskSet
maskSetNotWithin(const MaskSet &a, const MaskSet &full)
{
    return maskSetAndNot(full, a);
}

// ----- AffineValue ---------------------------------------------------------

struct AffineVariant
{
    AffineTuple tuple;
    /** Threads using this tuple; nullptr only for a uniform value. */
    MaskRef cond;
};

class AffineValue
{
  public:
    /** Hardware bound: 2 divergent conditions -> at most 4 tuples. */
    static constexpr int maxVariants = 4;

    AffineValue() { variants_.push_back({AffineTuple{}, nullptr}); }

    static AffineValue
    uniform(const AffineTuple &t)
    {
        AffineValue v;
        v.variants_.clear();
        v.variants_.push_back({t, nullptr});
        return v;
    }

    bool isUniform() const { return variants_.size() == 1; }

    const AffineTuple &
    onlyTuple() const
    {
        ensure(isUniform(), "onlyTuple on divergent AffineValue");
        return variants_[0].tuple;
    }

    int numVariants() const { return static_cast<int>(variants_.size()); }
    const std::vector<AffineVariant> &variants() const { return variants_; }

    /** Tuple selecting thread (warp, lane); exact per the DCRF masks. */
    const AffineTuple &tupleFor(int warp, int lane) const;

    /** Concrete value for thread (warp, lane) with indices supplied. */
    RegVal
    evalThread(int warp, int lane, const Idx3 &tid, const Idx3 &cta) const
    {
        return tupleFor(warp, lane).eval(tid, cta);
    }

    /**
     * Apply a binary/ternary affine ALU op variant-wise. @p full is
     * the batch's valid-thread mask set (used to form explicit
     * variant masks). Returns nullopt when any intersecting variant
     * pair is not representable or the variant budget is exceeded.
     */
    static std::optional<AffineValue> apply(Opcode op, const AffineValue &a,
                                            const AffineValue &b,
                                            const AffineValue &c,
                                            const MaskSet &full);

    /**
     * Overwrite the threads of @p mask with @p v (a guarded or
     * divergent write; the incumbent value survives elsewhere).
     * Returns false when the variant budget is exceeded.
     */
    bool overlay(const AffineValue &v, const MaskSet &mask,
                 const MaskSet &full);

    /**
     * Build a two-sided selection: threads of @p mask take @p a,
     * the rest take @p b (used for min/max/abs/sel divergence).
     */
    static std::optional<AffineValue> select(const AffineValue &a,
                                             const AffineValue &b,
                                             const MaskSet &mask,
                                             const MaskSet &full);

  private:
    friend class StateIo;

    std::vector<AffineVariant> variants_;

    /** Convert a uniform value into explicit-mask form. */
    void makeExplicit(const MaskSet &full);
    /** Merge variants with identical tuples; drop empty ones. */
    void normalize();
};

} // namespace dacsim

#endif // DACSIM_DAC_AFFINE_VALUE_H
