/**
 * @file
 * The DAC queueing and expansion hardware of one SM (paper Figure 9):
 * the Affine Tuple Queue (ATQ), the Address and Predicate Expansion
 * Units (AEU/PEU, Sections 4.2/4.3), and the Per-Warp Address and
 * Predicate Queues (PWAQ/PWPQ) the non-affine warps dequeue from.
 *
 * The AEU issues early memory requests for enq.data tuples, locking
 * the fetched L1 lines until the consuming warp's deq.data unlocks
 * them, and gates fetches behind per-CTA barrier epochs (Section 4.2).
 */

#ifndef DACSIM_DAC_ENGINE_H
#define DACSIM_DAC_ENGINE_H

#include <algorithm>
#include <array>
#include <deque>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/stats.h"
#include "dac/affine_value.h"
#include "mem/coalescer.h"
#include "mem/mem_system.h"
#include "sim/batch.h"

namespace dacsim
{

class StateIo;
struct DecoupledKernel;

/**
 * Static instruction-split summary derived from the decoupler's
 * per-instruction provenance marks (DecoupledKernel::coveredByDac).
 * This is the ground truth the static predictor's independently
 * re-derived coverage (analysis/predict.h) is validated against.
 */
struct DacSplitSummary
{
    int totalInsts = 0;     ///< original static instructions
    int coveredInsts = 0;   ///< no longer execute on non-affine warps
    int decoupledInsts = 0; ///< became enq/deq pairs
    int affineStreamInsts = 0; ///< placed in the affine stream
    bool anyDecoupled = false;

    double
    coveredFraction() const
    {
        return totalInsts ? static_cast<double>(coveredInsts) / totalInsts
                          : 0.0;
    }
};

/** Summarize a decoupling's actual static split from its provenance. */
DacSplitSummary dacActualSplit(const DecoupledKernel &dec);

/**
 * Cycles the expansion units are occupied delivering the per-warp
 * records of one affine tuple to one warp: the AEU/PEU expand
 * warpSize lanes at DacConfig::expansionsPerCycle records per cycle.
 * Used by the static cost model (analysis/predict.h) to charge each
 * dequeue its expansion share.
 */
int dacExpansionCyclesPerRecord(const DacConfig &cfg);

class DacEngine
{
  public:
    /** One expanded warp address record (compactly a line address +
     * word bitmask in hardware; we keep concrete addresses and charge
     * the compact costs). */
    struct AddrRecord
    {
        std::array<Addr, warpSize> addrs{};
        ThreadMask mask = 0;      ///< threads the record applies to
        MemWidth width = MemWidth::U32;
        bool isData = false;      ///< enq.data (fetched+locked) vs enq.addr
        /** Data was fetched early and its lines locked; false for very
         * poorly-coalesced records (> maxEarlyFetchLines lines), which
         * the consuming warp loads on demand instead. */
        bool earlyFetched = false;
        LineSet lines;            ///< coalesced lines (locked when fetched)
        Cycle ready = 0;          ///< data-arrival cycle (earlyFetched)
    };

    /** One expanded predicate bit vector. */
    struct PredRecord
    {
        ThreadMask bits = 0;
        ThreadMask mask = 0;      ///< threads whose predicate updates
    };

    /** Records expanding to more lines than this are delivered as
     * address-only (no early fetch): locking 32 lines per record would
     * monopolize the MSHRs and the cache's lockable ways. */
    static constexpr int maxEarlyFetchLines = 8;

    DacEngine(int sm_id, const GpuConfig &gcfg, const DacConfig &dcfg,
              MemorySystem &mem, RunStats &stats);

    /** Begin serving a new batch (clears all queues). */
    void startBatch(const BatchInfo *batch);

    // ----- affine-warp side ------------------------------------------------

    /** ATQ has room for another tuple. */
    bool canEnq() const;

    /** Enqueue an address tuple (enq.data / enq.addr). */
    void enqAddr(const AffineValue &addr, MemWidth width, bool is_data,
                 const MaskSet &active, const std::vector<int> &epochs);

    /** Enqueue a predicate bit-vector (enq.pred). */
    void enqPred(const MaskSet &bits, const MaskSet &active,
                 const std::vector<int> &epochs);

    // ----- expansion (called once per SM cycle) ----------------------------

    /**
     * Run the expansion units for one cycle. @p cta_bar_passed gives,
     * per CTA slot of the batch, how many epoch-counted barriers the
     * non-affine warps have passed (the fetch gate).
     */
    void cycle(Cycle now, const std::vector<int> &cta_bar_passed);

    // ----- non-affine-warp side --------------------------------------------

    const AddrRecord *frontAddr(int warp) const;
    void popAddr(int warp);
    const PredRecord *frontPred(int warp) const;
    void popPred(int warp);

    /** All queues drained (asserted at batch end). */
    bool empty() const;

    /** Expansion work remains (keeps the SM's clock running). */
    bool busy() const { return !empty(); }

    /** ATQ entries are still being expanded: the engine may mutate
     * queue/cache state on any upcoming cycle, so the SM must be
     * stepped cycle-by-cycle (no fast-forward). */
    bool expansionPending() const { return !atq_.empty(); }

    /**
     * The engine's wake bound for the event core (§13): the earliest
     * cycle > @p now at which stepping the engine could change state.
     * Every engine sub-state that can act — head-entry expansion,
     * parked early-fetch delivery, lock-epoch waits, MSHR retries, the
     * idle back-off scan — belongs to a non-empty ATQ (a parked
     * delivery keeps its entry at the ATQ head until delivered), so
     * an empty ATQ means no self-wake at all. While the whole-scan
     * idle latch holds, cycle() is a provable no-op until the earliest
     * parked MSHR retry (scanWake_): the latch's other wake sources —
     * a queue pop or an unlock-to-zero — happen only on this SM's own
     * deq issues, and any issuing warp already wakes the SM through
     * its per-warp cache. New tail enqueues don't break the bound
     * either: entries retire strictly in order, so nothing behind a
     * parked head can be delivered before the head moves.
     */
    Cycle
    nextWakeCycle(Cycle now) const
    {
        if (atq_.empty())
            return ~static_cast<Cycle>(0);
        if (scanIdle_ && popCount_ == scanPops_ &&
            mem_.unlockEpoch(smId_) == scanEpoch_)
            return std::max(scanWake_, now + 1);
        return now + 1;
    }

    // ----- occupancy probes (observability, DESIGN.md §11) ----------------

    int atqSize() const { return static_cast<int>(atq_.size()); }
    int
    pwaqTotal() const
    {
        int n = 0;
        for (const auto &q : pwaq_)
            n += static_cast<int>(q.size());
        return n;
    }
    int
    pwpqTotal() const
    {
        int n = 0;
        for (const auto &q : pwpq_)
            n += static_cast<int>(q.size());
        return n;
    }

    /** Install a fault plan (affine-queue back-pressure; nullptr:
     * fault-free). The plan must outlive the simulation. */
    void setFaultPlan(const FaultPlan *faults) { faults_ = faults; }

    /** Audit queue-credit conservation; throws AuditError on violation. */
    void audit(Cycle now) const;

    /** Occupancy snapshot included in watchdog / audit state dumps. */
    std::string dumpState() const;

  private:
    enum class EntryKind
    {
        Data,
        Addr,
        Pred,
    };

    /** One ATQ entry: a tuple awaiting expansion. */
    struct AtqEntry
    {
        EntryKind kind = EntryKind::Data;
        AffineValue value;    ///< address tuple (Data/Addr)
        MaskSet bits;         ///< predicate bits (Pred)
        MaskSet active;       ///< warps/threads needing this record
        MemWidth width = MemWidth::U32;
        std::vector<int> epochs; ///< per-CTA-slot barrier epoch at enq
        /** Warps already served by this entry. Delivery within the
         * head entry may skip blocked warps (the paper's AEU switches
         * among CTAs to avoid stalls); per-warp FIFO order still
         * holds because entries retire strictly in order. */
        std::vector<bool> delivered;
        int undelivered = -1; ///< warps left to serve (-1: not yet init)
        int nextWarp = 0; ///< round-robin scan position
        /** Host-side retry cache: the lane expansion of a warp's
         * record depends only on immutable entry/batch state, so a
         * delivery blocked on locks, MSHRs, or queue space reuses it
         * instead of re-evaluating 32 lanes + coalescing every cycle.
         * The modeled AEU cost (expansionAluOps) is unaffected — it
         * is charged per successful delivery. */
        std::vector<AddrRecord> expanded;
        std::vector<bool> expandedValid;
    };

    int smId_;
    const GpuConfig &gcfg_;
    const DacConfig &dcfg_;
    MemorySystem &mem_;
    RunStats &stats_;
    const FaultPlan *faults_ = nullptr;
    const BatchInfo *batch_ = nullptr;
    /** Last cycle() timestamp; canEnq() has no time argument, so the
     * back-pressure fault window is evaluated against this. */
    Cycle lastCycle_ = 0;

    std::deque<AtqEntry> atq_;
    std::vector<std::deque<AddrRecord>> pwaq_;
    std::vector<std::deque<PredRecord>> pwpq_;
    int pwaqCap_ = 0;
    int pwpqCap_ = 0;
    /**
     * Host-side retry parking: a delivery that failed because the
     * warp's queue was full cannot succeed until that warp pops (the
     * engine is the only producer), so the scan skips the warp until
     * popAddr/popPred clears the flag. The skipped attempts would all
     * fail at the queue-occupancy check — before any stats or fault
     * accounting — so simulated results are unchanged.
     */
    std::vector<bool> parkedAddr_;
    std::vector<bool> parkedPred_;
    /**
     * Parking for head-entry deliveries blocked inside the early-fetch
     * pre-check (fault-free runs only; the pre-check does fault
     * accounting, so under a fault plan every attempt runs live).
     * Blocked on canLock: saturation persists until an unlock drops a
     * line to zero, so retry only when the SM's unlock epoch moves.
     * Blocked on MSHRs: free-vs-needed can only improve at an MSHR
     * expiry (every line fill is paired with an insert), so retry at
     * nextMshrRelease. Both vectors are per warp and reset when the
     * head entry retires (the next entry has different lines).
     */
    std::vector<std::uint64_t> lockWaitEpoch_; ///< ~0ull: not parked
    std::vector<Cycle> mshrRetryAt_;
    /**
     * Whole-scan idle latch: a complete pass that found every
     * undelivered warp parked (no deliverTo attempted) cannot change
     * outcome until one of the wake sources fires — a pop (popCount_),
     * an unlock-to-zero (the SM unlock epoch), or the earliest parked
     * MSHR retry time. Until then cycle() returns immediately.
     */
    bool scanIdle_ = false;
    std::uint64_t popCount_ = 0;
    std::uint64_t scanPops_ = 0;
    std::uint64_t scanEpoch_ = 0;
    Cycle scanWake_ = 0;

    /** Try to deliver the head entry's record to warp @p w.
     * @return true on success (progress made). */
    bool deliverTo(AtqEntry &entry, int w, Cycle now,
                   const std::vector<int> &cta_bar_passed);

    /** Build the address record for warp @p w from an entry. */
    AddrRecord expandAddrs(const AtqEntry &entry, int w) const;

    friend class StateIo;
};

} // namespace dacsim

#endif // DACSIM_DAC_ENGINE_H
