#include "dac/affine_tuple.h"

#include <sstream>

#include "common/log.h"
#include "sim/alu.h"

namespace dacsim
{

RegVal
AffineTuple::eval(const Idx3 &tid, const Idx3 &cta) const
{
    RegVal v = base;
    for (int d = 0; d < 3; ++d)
        v += tidOff[d] * tid.dim(d) + ctaOff[d] * cta.dim(d);
    if (hasMod) {
        RegVal m = modBase;
        for (int d = 0; d < 3; ++d)
            m += modTidOff[d] * tid.dim(d) + modCtaOff[d] * cta.dim(d);
        v += modScale * gpuMod(m, divisor);
    }
    return v;
}

std::string
AffineTuple::toString() const
{
    std::ostringstream os;
    os << "(" << base;
    for (int d = 0; d < 3; ++d)
        os << "," << tidOff[d];
    for (int d = 0; d < 3; ++d)
        os << "," << ctaOff[d];
    if (hasMod)
        os << ",mod[" << modScale << "*(" << modBase << "... % " << divisor
           << ")]";
    os << ")";
    return os.str();
}

namespace
{

std::optional<AffineTuple>
addTuples(const AffineTuple &a, const AffineTuple &b, bool negate_b)
{
    if (a.hasMod && b.hasMod)
        return std::nullopt;
    AffineTuple r = a.hasMod ? a : b;
    RegVal s = negate_b ? -1 : 1;
    if (!a.hasMod && b.hasMod) {
        // r currently equals b; rebuild from a's linear part.
        r.modScale *= s;
        r.base = a.base + s * b.base;
        for (int d = 0; d < 3; ++d) {
            r.tidOff[d] = a.tidOff[d] + s * b.tidOff[d];
            r.ctaOff[d] = a.ctaOff[d] + s * b.ctaOff[d];
        }
        return r;
    }
    r.base = a.base + s * b.base;
    for (int d = 0; d < 3; ++d) {
        r.tidOff[d] = a.tidOff[d] + s * b.tidOff[d];
        r.ctaOff[d] = a.ctaOff[d] + s * b.ctaOff[d];
    }
    return r;
}

std::optional<AffineTuple>
mulTuples(const AffineTuple &a, const AffineTuple &b)
{
    const AffineTuple *affine = &a;
    const AffineTuple *scalar = &b;
    if (!scalar->isScalar())
        std::swap(affine, scalar);
    if (!scalar->isScalar())
        return std::nullopt;
    RegVal k = scalar->base;
    AffineTuple r = *affine;
    r.base *= k;
    for (int d = 0; d < 3; ++d) {
        r.tidOff[d] *= k;
        r.ctaOff[d] *= k;
    }
    if (r.hasMod)
        r.modScale *= k;
    return r;
}

} // namespace

std::optional<AffineTuple>
affineAlu(Opcode op, const AffineTuple &a, const AffineTuple &b,
          const AffineTuple &c)
{
    switch (op) {
      case Opcode::Mov:
        return a;
      case Opcode::Add:
        return addTuples(a, b, false);
      case Opcode::Sub:
        return addTuples(a, b, true);
      case Opcode::Mul:
        return mulTuples(a, b);
      case Opcode::Mad: {
        auto prod = mulTuples(a, b);
        if (!prod)
            return std::nullopt;
        return addTuples(*prod, c, false);
      }
      case Opcode::Shl: {
        if (!b.isScalar())
            return std::nullopt;
        AffineTuple factor = AffineTuple::scalar(
            static_cast<RegVal>(1) << (b.base & 63));
        return mulTuples(a, factor);
      }
      case Opcode::Mod: {
        if (!b.isScalar() || a.hasMod)
            return std::nullopt;
        if (a.isScalar())
            return AffineTuple::scalar(gpuMod(a.base, b.base));
        AffineTuple r;
        r.hasMod = true;
        r.modScale = 1;
        r.modBase = a.base;
        r.modTidOff = a.tidOff;
        r.modCtaOff = a.ctaOff;
        r.divisor = b.base;
        return r;
      }
      case Opcode::Shr:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        if (!a.isScalar() || !b.isScalar())
            return std::nullopt;
        return AffineTuple::scalar(aluCompute(op, a.base, b.base));
      case Opcode::Not:
        if (!a.isScalar())
            return std::nullopt;
        return AffineTuple::scalar(~a.base);
      default:
        return std::nullopt;
    }
}

} // namespace dacsim
