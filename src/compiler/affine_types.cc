#include "compiler/affine_types.h"

#include <algorithm>

#include "common/log.h"

namespace dacsim
{

TypeInfo
joinTypes(const TypeInfo &a, const TypeInfo &b)
{
    TypeInfo r;
    r.kind = std::max(a.kind, b.kind);
    r.conds = std::max(a.conds, b.conds);
    r.hasMod = a.hasMod || b.hasMod;
    return r;
}

namespace
{

/** Clamp to NonAffine when the condition budget is exceeded. */
TypeInfo
capConds(TypeInfo t, int max_conds)
{
    if (t.kind != ValKind::NonAffine && t.conds > max_conds)
        return TypeInfo::nonAffine();
    return t;
}

TypeInfo
addLike(const TypeInfo &a, const TypeInfo &b)
{
    if (a.isNonAffine() || b.isNonAffine())
        return TypeInfo::nonAffine();
    // Two mod terms cannot be represented in one tuple.
    if (a.hasMod && b.hasMod)
        return TypeInfo::nonAffine();
    TypeInfo r;
    r.kind = std::max(a.kind, b.kind);
    r.conds = a.conds + b.conds;
    r.hasMod = a.hasMod || b.hasMod;
    return r;
}

TypeInfo
mulLike(const TypeInfo &a, const TypeInfo &b)
{
    if (a.isNonAffine() || b.isNonAffine())
        return TypeInfo::nonAffine();
    // Affine x Affine is not affine (Section 3).
    if (!a.isScalar() && !b.isScalar())
        return TypeInfo::nonAffine();
    TypeInfo r;
    r.kind = std::max(a.kind, b.kind);
    r.conds = a.conds + b.conds;
    r.hasMod = a.hasMod || b.hasMod;
    return r;
}

TypeInfo
scalarOnly(const std::vector<TypeInfo> &srcs)
{
    TypeInfo r;
    for (const TypeInfo &s : srcs) {
        if (!s.isScalar() || s.hasMod)
            return TypeInfo::nonAffine();
        r.conds += s.conds;
    }
    return r;
}

} // namespace

TypeInfo
aluResultType(Opcode op, const std::vector<TypeInfo> &srcs, int max_conds)
{
    auto cap = [max_conds](TypeInfo t) { return capConds(t, max_conds); };
    switch (op) {
      case Opcode::Mov:
        return srcs[0];
      case Opcode::Add:
      case Opcode::Sub:
        return cap(addLike(srcs[0], srcs[1]));
      case Opcode::Mul:
        return cap(mulLike(srcs[0], srcs[1]));
      case Opcode::Mad:
        return cap(addLike(mulLike(srcs[0], srcs[1]), srcs[2]));
      case Opcode::Shl:
        // shift amount must be uniform: equivalent to mul by 2^b.
        if (!srcs[1].isScalar() || srcs[1].hasMod)
            return TypeInfo::nonAffine();
        return cap(mulLike(srcs[0], srcs[1]));
      case Opcode::Shr:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
        // Not linearity-preserving: scalar operands only.
        return cap(scalarOnly(srcs));
      case Opcode::Mod: {
        const TypeInfo &a = srcs[0];
        const TypeInfo &b = srcs[1];
        if (a.isNonAffine() || a.hasMod || !b.isScalar() || b.hasMod)
            return TypeInfo::nonAffine();
        TypeInfo r;
        r.kind = a.kind;
        r.conds = a.conds + b.conds;
        r.hasMod = !a.isScalar(); // scalar mod scalar stays scalar
        return cap(r);
      }
      case Opcode::Min:
      case Opcode::Max: {
        // The comparison falls back to the SIMT lanes when the tuples
        // are not endpoint-comparable (e.g. mod-type), so any affine
        // operands are acceptable; the split is one condition.
        TypeInfo r = addLike(srcs[0], srcs[1]);
        if (r.isNonAffine())
            return r;
        if (!(srcs[0].isScalar() && srcs[1].isScalar()))
            r.conds += 1; // the comparison is one divergent condition
        return cap(r);
      }
      case Opcode::Abs: {
        TypeInfo r = srcs[0];
        if (r.isNonAffine() || r.hasMod)
            return TypeInfo::nonAffine();
        if (!r.isScalar())
            r.conds += 1;
        return cap(r);
      }
      case Opcode::Sel: {
        // srcs[2] is the selector predicate's type.
        const TypeInfo &p = srcs[2];
        if (p.isNonAffine())
            return TypeInfo::nonAffine();
        TypeInfo r = addLike(srcs[0], srcs[1]);
        if (r.isNonAffine())
            return r;
        r.kind = std::max(r.kind, p.kind);
        r.conds += p.conds;
        if (!p.isScalar())
            r.conds += 1;
        return cap(r);
      }
      case Opcode::Setp: {
        // The PEU compares scalars with one op, endpoint-comparable
        // tuples with two per warp, and anything else (e.g. mod-type)
        // on the SIMT lanes (Section 4.3) — all are expressible.
        if (srcs[0].isNonAffine() || srcs[1].isNonAffine())
            return TypeInfo::nonAffine();
        TypeInfo r;
        r.kind = (srcs[0].isScalar() && srcs[1].isScalar())
                     ? ValKind::Scalar
                     : ValKind::Affine;
        r.conds = srcs[0].conds + srcs[1].conds;
        return cap(r);
      }
      default:
        return TypeInfo::nonAffine();
    }
}

AffineAnalysis::AffineAnalysis(const Kernel &kernel, const Cfg &cfg,
                               const ReachingDefs &rd, int max_conds)
    : kernel_(kernel), cfg_(cfg), rd_(rd), maxConds_(max_conds)
{
    int num_defs = kernel.numInsts() + kernel.numRegs + kernel.numPreds;
    // Optimistic start: everything Scalar; the fixpoint only moves up.
    defTypes_.assign(num_defs, TypeInfo{});
    blockDiv_.assign(cfg.numBlocks(), ValKind::Scalar);
    runFixpoint();

    resident_.assign(cfg.numBlocks(), true);
    for (int b = 0; b < cfg.numBlocks(); ++b)
        resident_[b] = blockDiv_[b] != ValKind::NonAffine;
}

TypeInfo
AffineAnalysis::mergeDefs(const std::vector<int> &defs) const
{
    ensure(!defs.empty(), "operand with no reaching definition");
    TypeInfo merged = defTypes_[defs[0]];
    for (std::size_t i = 1; i < defs.size(); ++i)
        merged = joinTypes(merged, defTypes_[defs[i]]);
    if (defs.size() < 2 || merged.isNonAffine())
        return merged;

    // Divergence penalty: when distinct definitions merge under
    // thread-divergent control, one divergent affine condition (one
    // saved SIMT-stack entry) is needed to pick the right tuple.
    ValKind div = ValKind::Scalar;
    for (int d : defs) {
        if (rd_.isEntryDef(d))
            continue;
        const Instruction &inst = kernel_.insts[d];
        div = std::max(div, blockDiv_[cfg_.blockOf(d)]);
        // A guarded definition is itself divergent under its guard.
        if (inst.guardPred >= 0)
            div = std::max(div, ValKind::Affine);
    }
    if (div == ValKind::NonAffine)
        return TypeInfo::nonAffine();
    if (div == ValKind::Affine) {
        merged.conds += 1;
        // Even two scalar definitions become thread-varying when a
        // divergent condition selects between them.
        merged.kind = std::max(merged.kind, ValKind::Affine);
    }
    if (merged.conds > maxConds_)
        return TypeInfo::nonAffine();
    return merged;
}

TypeInfo
AffineAnalysis::srcType(int pc, const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::None:
        return TypeInfo{};
      case Operand::Kind::Imm:
      case Operand::Kind::Param:
        return TypeInfo{};
      case Operand::Kind::Special:
        if (isScalarSpecial(op.sreg))
            return TypeInfo{};
        return TypeInfo{ValKind::Affine, 0, false};
      case Operand::Kind::Reg:
        return mergeDefs(rd_.reachingRegDefs(pc, op.index));
      case Operand::Kind::Pred:
        return mergeDefs(rd_.reachingPredDefs(pc, op.index));
    }
    panic("bad operand kind");
}

TypeInfo
AffineAnalysis::guardType(int pc) const
{
    const Instruction &inst = kernel_.insts[pc];
    if (inst.guardPred < 0)
        return TypeInfo{};
    return mergeDefs(rd_.reachingPredDefs(pc, inst.guardPred));
}

void
AffineAnalysis::computeBlockDivergence()
{
    for (int b = 0; b < cfg_.numBlocks(); ++b) {
        ValKind div = ValKind::Scalar;
        for (int br : cfg_.controlDeps(b)) {
            const BasicBlock &bb = cfg_.blocks()[br];
            const Instruction &term = kernel_.insts[bb.last];
            if (!term.isBranch() || term.guardPred < 0)
                continue;
            TypeInfo t = guardType(bb.last);
            if (!t.affineOk(maxConds_))
                div = ValKind::NonAffine;
            else
                div = std::max(div, t.kind);
        }
        blockDiv_[b] = std::max(blockDiv_[b], div);
    }
}

void
AffineAnalysis::runFixpoint()
{
    bool changed = true;
    int iters = 0;
    while (changed) {
        changed = false;
        ensure(++iters < 1000, "affine analysis failed to converge");
        computeBlockDivergence();
        for (int b : cfg_.rpo()) {
            const BasicBlock &bb = cfg_.blocks()[b];
            for (int pc = bb.first; pc <= bb.last; ++pc) {
                const Instruction &inst = kernel_.insts[pc];
                if (inst.dst.isNone())
                    continue;
                TypeInfo result;
                if (inst.op == Opcode::Ld || inst.op == Opcode::LdDeq ||
                    inst.op == Opcode::DeqPred) {
                    result = TypeInfo::nonAffine();
                } else {
                    std::vector<TypeInfo> srcs;
                    for (int i = 0; i < numSources(inst.op); ++i)
                        srcs.push_back(srcType(pc, inst.src[i]));
                    result = aluResultType(inst.op, srcs, maxConds_);
                }
                // A guarded write merges with the incumbent value.
                TypeInfo g = guardType(pc);
                if (g.isNonAffine()) {
                    result = TypeInfo::nonAffine();
                } else if (!g.isScalar() && !result.isNonAffine()) {
                    result.conds += g.conds + 1;
                    result.kind = std::max(result.kind, ValKind::Affine);
                    if (result.conds > maxConds_)
                        result = TypeInfo::nonAffine();
                }
                TypeInfo merged = joinTypes(defTypes_[pc], result);
                if (!(merged == defTypes_[pc])) {
                    defTypes_[pc] = merged;
                    changed = true;
                }
            }
        }
    }
}

} // namespace dacsim
