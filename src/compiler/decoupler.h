/**
 * @file
 * The DAC decoupling pass (paper Section 4.7, "Decoupling").
 *
 * Splits a kernel into an affine instruction stream (executed once per
 * SM by the affine warp) and a non-affine stream (executed by the
 * ordinary warps), communicating through enq/deq queue instructions:
 *
 *   - decoupled global loads:   ld  -> enq.data (affine) + ld.deq
 *   - decoupled global stores:  st  -> enq.addr (affine) + st.deq
 *   - decoupled predicates:     setp -> setp+enq.pred (affine) + deq.pred
 *
 * The backward slice feeding each decoupled instruction moves into the
 * affine stream and is removed from the non-affine stream when no
 * remaining non-affine instruction depends on it. Branches with
 * affine-trackable predicates, barriers, and exits are replicated into
 * both streams so the affine warp mirrors the non-affine control flow.
 */

#ifndef DACSIM_COMPILER_DECOUPLER_H
#define DACSIM_COMPILER_DECOUPLER_H

#include <vector>

#include "common/config.h"
#include "isa/instruction.h"

namespace dacsim
{

/** Output of the decoupling pass. */
struct DecoupledKernel
{
    /** The affine stream (control-flow analysed, ready to execute). */
    Kernel affine;
    /** The non-affine stream (control-flow analysed, ready to execute). */
    Kernel nonAffine;

    /** Whether any instruction was decoupled at all. */
    bool anyDecoupled = false;

    // ----- per-original-instruction marks (indexed by original PC) ------
    /** Instruction became an enq/deq pair. */
    std::vector<bool> decoupled;
    /** Instruction was placed in the affine stream (slice or control). */
    std::vector<bool> inAffineStream;
    /** Instruction no longer executes on non-affine warps; such
     * instructions count toward DAC's affine coverage (Fig 18). */
    std::vector<bool> coveredByDac;

    // ----- per-emitted-instruction provenance ---------------------------
    /** For each instruction of `affine`: the original PC it was emitted
     * from (-1 for synthesized instructions, e.g. the trivial exit of an
     * undecoupled kernel). An EnqPred shares the PC of its setp. Used by
     * the decoupler-soundness auditor (DESIGN.md §10) to align the two
     * streams' queue operations. */
    std::vector<int> affineOrigPc;
    /** Same, for `nonAffine`. */
    std::vector<int> nonAffineOrigPc;

    // ----- static summary -------------------------------------------------
    int numDecoupledLoads = 0;
    int numDecoupledStores = 0;
    int numDecoupledPreds = 0;
};

/**
 * Decouple @p original into affine and non-affine streams.
 *
 * When nothing can be decoupled (e.g. all addressing is data-
 * dependent), the result has anyDecoupled == false and nonAffine is
 * the original kernel: DAC degenerates to the baseline for that
 * kernel, as in the paper's BFS/BT discussion.
 */
DecoupledKernel decouple(const Kernel &original, const DacConfig &cfg);

/** Static potential-affine classification for Fig 6. */
struct PotentialAffine
{
    int totalInsts = 0;      ///< countable static instructions
    int arithmetic = 0;      ///< potentially affine ALU instructions
    int memory = 0;          ///< loads/stores with affine addresses
    int branch = 0;          ///< affine predicate computations + branches

    int potential() const { return arithmetic + memory + branch; }
    double
    fraction() const
    {
        return totalInsts ? static_cast<double>(potential()) / totalInsts
                          : 0.0;
    }
};

/** Classify a kernel's static instructions (paper Fig 6). */
PotentialAffine classifyPotentialAffine(const Kernel &kernel);

} // namespace dacsim

#endif // DACSIM_COMPILER_DECOUPLER_H
