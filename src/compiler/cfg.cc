#include "compiler/cfg.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/log.h"

namespace dacsim
{

Cfg::Cfg(const Kernel &kernel)
{
    const int n = kernel.numInsts();
    ensure(n > 0, "CFG of empty kernel");

    // Leaders: inst 0, branch targets, and instructions after branches.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = kernel.insts[pc];
        if (inst.isBranch()) {
            ensure(inst.target >= 0 && inst.target < n,
                   "unresolved branch target at pc ", pc);
            leader[inst.target] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
        } else if (inst.isExit() && pc + 1 < n) {
            leader[pc + 1] = true;
        }
    }

    blockOfInst_.assign(n, -1);
    for (int pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            BasicBlock bb;
            bb.id = numBlocks();
            bb.first = pc;
            blocks_.push_back(bb);
        }
        blockOfInst_[pc] = numBlocks() - 1;
        blocks_.back().last = pc;
    }

    // Successor edges.
    for (BasicBlock &bb : blocks_) {
        const Instruction &term = kernel.insts[bb.last];
        if (term.isBranch()) {
            bb.succs.push_back(blockOf(term.target));
            if (term.fallsThrough() && bb.last + 1 < n)
                bb.succs.push_back(blockOf(bb.last + 1));
        } else if (term.fallsThrough()) {
            // Ordinary instructions, and guarded exits (the threads
            // failing the guard continue past the exit).
            ensure(bb.last + 1 < n, "kernel falls off the end");
            bb.succs.push_back(blockOf(bb.last + 1));
        }
        // Deduplicate (a conditional branch to the fall-through).
        std::sort(bb.succs.begin(), bb.succs.end());
        bb.succs.erase(std::unique(bb.succs.begin(), bb.succs.end()),
                       bb.succs.end());
    }
    for (const BasicBlock &bb : blocks_)
        for (int s : bb.succs)
            blocks_[s].preds.push_back(bb.id);

    computeRpo();
    computePostDominators();
}

void
Cfg::computeRpo()
{
    std::vector<int> state(numBlocks(), 0); // 0=unseen 1=open 2=done
    std::vector<int> order;
    // Iterative DFS from entry.
    std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, i] = stack.back();
        if (i < blocks_[b].succs.size()) {
            int s = blocks_[b].succs[i++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[b] = 2;
            order.push_back(b);
            stack.pop_back();
        }
    }
    rpo_.assign(order.rbegin(), order.rend());
}

void
Cfg::computePostDominators()
{
    const int nb = numBlocks();
    const int virtualExit = nb;
    // pdom sets as bit vectors over nb+1 nodes.
    const int words = (nb + 1 + 63) / 64;
    auto full = std::vector<std::uint64_t>(words, ~0ull);
    auto &pdom = pdom_;
    pdom.assign(nb + 1, full);

    auto setOnly = [&](int node) {
        std::vector<std::uint64_t> v(words, 0);
        v[node / 64] |= 1ull << (node % 64);
        return v;
    };
    pdom[virtualExit] = setOnly(virtualExit);

    // Successors including the virtual exit.
    auto succsOf = [&](int b) {
        std::vector<int> s = blocks_[b].succs;
        if (s.empty())
            s.push_back(virtualExit);
        return s;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate blocks in reverse RPO (i.e. roughly from exits upward).
        for (auto it = rpo_.rbegin(); it != rpo_.rend(); ++it) {
            int b = *it;
            std::vector<std::uint64_t> meet = full;
            for (int s : succsOf(b))
                for (int w = 0; w < words; ++w)
                    meet[w] &= pdom[s][w];
            meet[b / 64] |= 1ull << (b % 64);
            if (meet != pdom[b]) {
                pdom[b] = std::move(meet);
                changed = true;
            }
        }
    }

    auto contains = [&](const std::vector<std::uint64_t> &v, int node) {
        return (v[node / 64] >> (node % 64)) & 1;
    };

    // ipdom(b): the strict post-dominator of b that is post-dominated by
    // every other strict post-dominator of b.
    ipdom_.assign(nb, virtualExit);
    for (int b = 0; b < nb; ++b) {
        std::vector<int> strict;
        for (int c = 0; c <= nb; ++c)
            if (c != b && contains(pdom[b], c))
                strict.push_back(c);
        for (int cand : strict) {
            bool immediate = true;
            for (int other : strict) {
                if (other != cand && !contains(pdom[cand], other)) {
                    immediate = false;
                    break;
                }
            }
            if (immediate) {
                ipdom_[b] = cand;
                break;
            }
        }
    }
}

bool
Cfg::pdomContains(const std::vector<std::uint64_t> &v, int node) const
{
    return (v[node / 64] >> (node % 64)) & 1;
}

bool
Cfg::postDominates(int a, int b) const
{
    return pdomContains(pdom_[b], a);
}

std::vector<int>
Cfg::controlDeps(int b) const
{
    // b is control-dependent on branch block u iff u has a successor v
    // with b post-dominating v, and b does not strictly post-dominate u.
    std::vector<int> deps;
    for (const BasicBlock &u : blocks_) {
        if (u.succs.size() < 2)
            continue;
        if (u.id != b && postDominates(b, u.id))
            continue;
        for (int v : u.succs) {
            if (postDominates(b, v)) {
                deps.push_back(u.id);
                break;
            }
        }
    }
    return deps;
}

int
Cfg::reconvergencePc(int pc) const
{
    int b = blockOf(pc);
    int ip = ipdom(b);
    if (ip >= numBlocks())
        return -1; // reconverges only at kernel exit
    return blocks_[ip].first;
}

std::string
Cfg::toDot(const Kernel &kernel) const
{
    std::ostringstream os;
    os << "digraph \"" << kernel.name << "\" {\n";
    for (const BasicBlock &bb : blocks_) {
        os << "  b" << bb.id << " [shape=box,label=\"B" << bb.id << " ["
           << bb.first << ".." << bb.last << "]\"];\n";
        for (int s : bb.succs)
            os << "  b" << bb.id << " -> b" << s << ";\n";
    }
    os << "}\n";
    return os.str();
}

Cfg
analyzeControlFlow(Kernel &kernel)
{
    Cfg cfg(kernel);
    for (int pc = 0; pc < kernel.numInsts(); ++pc) {
        if (kernel.insts[pc].isBranch())
            kernel.insts[pc].reconvergePc = cfg.reconvergencePc(pc);
    }
    return cfg;
}

} // namespace dacsim
