#include "compiler/reaching_defs.h"

#include "common/log.h"

namespace dacsim
{

int
ReachingDefs::regDefinedBy(int pc) const
{
    const Instruction &inst = kernel_.insts[pc];
    if (inst.dst.isReg())
        return inst.dst.index;
    return -1;
}

int
ReachingDefs::predDefinedBy(int pc) const
{
    const Instruction &inst = kernel_.insts[pc];
    if (inst.dst.isPred())
        return inst.dst.index;
    return -1;
}

bool
ReachingDefs::defines(int def, int target, bool is_pred) const
{
    if (def >= numInsts_) {
        int slot = def - numInsts_;
        if (is_pred)
            return slot >= kernel_.numRegs &&
                   slot - kernel_.numRegs == target;
        return slot < kernel_.numRegs && slot == target;
    }
    return is_pred ? predDefinedBy(def) == target
                   : regDefinedBy(def) == target;
}

bool
ReachingDefs::kills(int def) const
{
    // Entry defs and guarded (predicated) writes do not kill: under a
    // guard the old value may survive in some threads.
    if (def >= numInsts_)
        return false;
    return kernel_.insts[def].guardPred < 0;
}

ReachingDefs::ReachingDefs(const Kernel &kernel, const Cfg &cfg)
    : kernel_(kernel), cfg_(cfg), numInsts_(kernel.numInsts())
{
    numDefs_ = numInsts_ + kernel.numRegs + kernel.numPreds;
    words_ = (numDefs_ + 63) / 64;

    auto setBit = [&](std::vector<std::uint64_t> &v, int b) {
        v[b / 64] |= 1ull << (b % 64);
    };
    auto clearBit = [&](std::vector<std::uint64_t> &v, int b) {
        v[b / 64] &= ~(1ull << (b % 64));
    };

    // Transfer function of one instruction applied to a live def set.
    auto apply = [&](std::vector<std::uint64_t> &set, int pc) {
        int reg = regDefinedBy(pc);
        int pred = predDefinedBy(pc);
        if (reg < 0 && pred < 0)
            return;
        if (kills(pc)) {
            for (int d = 0; d < numDefs_; ++d) {
                if (d == pc)
                    continue;
                if ((reg >= 0 && defines(d, reg, false)) ||
                    (pred >= 0 && defines(d, pred, true))) {
                    clearBit(set, d);
                }
            }
        }
        setBit(set, pc);
    };

    const int nb = cfg.numBlocks();
    in_.assign(nb, std::vector<std::uint64_t>(words_, 0));
    std::vector<std::vector<std::uint64_t>> out(
        nb, std::vector<std::uint64_t>(words_, 0));

    // Entry block starts with the entry pseudo-defs.
    std::vector<std::uint64_t> entry(words_, 0);
    for (int i = numInsts_; i < numDefs_; ++i)
        setBit(entry, i);

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : cfg.rpo()) {
            const BasicBlock &bb = cfg.blocks()[b];
            std::vector<std::uint64_t> inSet(words_, 0);
            if (b == 0)
                inSet = entry;
            for (int p : bb.preds)
                for (int w = 0; w < words_; ++w)
                    inSet[w] |= out[p][w];
            if (inSet != in_[b]) {
                in_[b] = inSet;
                changed = true;
            }
            for (int pc = bb.first; pc <= bb.last; ++pc)
                apply(inSet, pc);
            if (inSet != out[b]) {
                out[b] = std::move(inSet);
                changed = true;
            }
        }
    }
}

std::vector<int>
ReachingDefs::reaching(int pc, int target, bool is_pred) const
{
    int b = cfg_.blockOf(pc);
    const BasicBlock &bb = cfg_.blocks()[b];
    // Recompute the def set locally from the block entry to pc.
    std::vector<std::uint64_t> set = in_[b];
    for (int p = bb.first; p < pc; ++p) {
        int reg = regDefinedBy(p);
        int pred = predDefinedBy(p);
        if (reg < 0 && pred < 0)
            continue;
        if (kills(p)) {
            for (int d = 0; d < numDefs_; ++d) {
                if (d == p)
                    continue;
                if ((reg >= 0 && defines(d, reg, false)) ||
                    (pred >= 0 && defines(d, pred, true))) {
                    set[d / 64] &= ~(1ull << (d % 64));
                }
            }
        }
        set[p / 64] |= 1ull << (p % 64);
    }
    std::vector<int> result;
    for (int d = 0; d < numDefs_; ++d)
        if ((set[d / 64] >> (d % 64) & 1) && defines(d, target, is_pred))
            result.push_back(d);
    return result;
}

std::vector<int>
ReachingDefs::reachingRegDefs(int pc, int reg) const
{
    return reaching(pc, reg, false);
}

std::vector<int>
ReachingDefs::reachingPredDefs(int pc, int pred) const
{
    return reaching(pc, pred, true);
}

} // namespace dacsim
