/**
 * @file
 * Control-flow graph over a Kernel, with post-dominator analysis.
 *
 * The immediate post-dominator of a branch's block is the SIMT
 * reconvergence point used by both the hardware SIMT stacks and the
 * compiler's divergent affine analysis (paper Section 4.7).
 */

#ifndef DACSIM_COMPILER_CFG_H
#define DACSIM_COMPILER_CFG_H

#include <string>
#include <vector>

#include "isa/instruction.h"

namespace dacsim
{

/** One basic block: instructions [first, last] inclusive. */
struct BasicBlock
{
    int id = -1;
    int first = 0;   ///< PC of the first instruction
    int last = 0;    ///< PC of the last instruction
    std::vector<int> succs;
    std::vector<int> preds;
};

/**
 * Control-flow graph of one kernel.
 *
 * Block 0 is the entry block. A virtual exit block (id = numBlocks())
 * is the successor of every exit-ing block for post-dominance purposes,
 * but is not stored in blocks().
 */
class Cfg
{
  public:
    /** Build the CFG for a kernel (does not modify the kernel). */
    explicit Cfg(const Kernel &kernel);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    int numBlocks() const { return static_cast<int>(blocks_.size()); }

    /** Block containing instruction @p pc. */
    int blockOf(int pc) const { return blockOfInst_.at(pc); }

    /**
     * Immediate post-dominator block of block @p b; numBlocks() when the
     * only post-dominator is the virtual exit.
     */
    int ipdom(int b) const { return ipdom_.at(b); }

    /**
     * Reconvergence PC for a branch instruction at @p pc: the first
     * instruction of the branch block's immediate post-dominator, or -1
     * when control only reconverges at kernel exit.
     */
    int reconvergencePc(int pc) const;

    /** Blocks in reverse post-order from the entry (for dataflow). */
    const std::vector<int> &rpo() const { return rpo_; }

    /** True when block @p a post-dominates block @p b (a == b counts). */
    bool postDominates(int a, int b) const;

    /**
     * Branch blocks that block @p b is control-dependent on (standard
     * Ferrante et al. definition over the CFG's post-dominator sets).
     */
    std::vector<int> controlDeps(int b) const;

    /** Graphviz rendering for debugging. */
    std::string toDot(const Kernel &kernel) const;

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOfInst_;
    std::vector<int> ipdom_;
    std::vector<int> rpo_;
    /** Post-dominator bitsets, one per block (plus the virtual exit). */
    std::vector<std::vector<std::uint64_t>> pdom_;

    bool pdomContains(const std::vector<std::uint64_t> &v, int node) const;
    void computePostDominators();
    void computeRpo();
};

/**
 * Annotate every branch in @p kernel with its reconvergence PC
 * (Instruction::reconvergePc). Returns the constructed CFG.
 */
Cfg analyzeControlFlow(Kernel &kernel);

} // namespace dacsim

#endif // DACSIM_COMPILER_CFG_H
