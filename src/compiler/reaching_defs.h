/**
 * @file
 * Reaching-definitions dataflow over a kernel's registers and
 * predicate registers, used by the affine type analysis and the
 * decoupler's backward slicing (paper Section 4.7).
 */

#ifndef DACSIM_COMPILER_REACHING_DEFS_H
#define DACSIM_COMPILER_REACHING_DEFS_H

#include <vector>

#include "compiler/cfg.h"
#include "isa/instruction.h"

namespace dacsim
{

/**
 * Definition sites are identified by small integers:
 *  - [0, numInsts): the instruction at that PC defines its destination;
 *  - numInsts + r: the "entry" pseudo-definition of register r
 *    (registers read before any write hold zero);
 *  - numInsts + numRegs + p: the entry pseudo-definition of predicate p.
 */
class ReachingDefs
{
  public:
    ReachingDefs(const Kernel &kernel, const Cfg &cfg);

    int numInsts() const { return numInsts_; }

    bool isEntryDef(int def) const { return def >= numInsts_; }

    /**
     * The definitions of register @p reg that reach the program point
     * just before @p pc executes.
     */
    std::vector<int> reachingRegDefs(int pc, int reg) const;

    /** Same, for predicate register @p pred. */
    std::vector<int> reachingPredDefs(int pc, int pred) const;

    /** Destination register defined by @p pc; -1 if none. */
    int regDefinedBy(int pc) const;
    /** Destination predicate defined by @p pc; -1 if none. */
    int predDefinedBy(int pc) const;

  private:
    const Kernel &kernel_;
    const Cfg &cfg_;
    int numInsts_;
    int numDefs_;
    int words_;
    /** IN set per basic block. */
    std::vector<std::vector<std::uint64_t>> in_;

    std::vector<int> reaching(int pc, int target, bool is_pred) const;
    /** Does def @p def define (reg/pred) @p target? */
    bool defines(int def, int target, bool is_pred) const;
    /** Is def @p def a killing (unguarded) definition? */
    bool kills(int def) const;
};

} // namespace dacsim

#endif // DACSIM_COMPILER_REACHING_DEFS_H
