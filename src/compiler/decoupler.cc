#include "compiler/decoupler.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/log.h"
#include "compiler/affine_types.h"
#include "compiler/cfg.h"
#include "compiler/reaching_defs.h"

namespace dacsim
{

namespace
{

/** Candidate kinds for decoupling. */
enum class CandKind
{
    No,
    Load,
    Store,
    Pred,
};

/** Working state of one decoupling run. */
class Decoupling
{
  public:
    Decoupling(const Kernel &original, const DacConfig &cfg)
        : kernel_(original), dcfg_(cfg), cfg_(analyzeControlFlow(kernel_)),
          rd_(kernel_, cfg_),
          aa_(kernel_, cfg_, rd_, cfg.maxDivergentConditions)
    {
    }

    DecoupledKernel run();

  private:
    Kernel kernel_;   ///< analysed copy of the original
    const DacConfig &dcfg_;
    Cfg cfg_;
    ReachingDefs rd_;
    AffineAnalysis aa_;

    std::vector<bool> resident_;   ///< refined block residency
    std::vector<bool> keepBranch_; ///< branch PCs replicated to affine
    std::vector<CandKind> cand_;
    std::vector<bool> slice_;      ///< union of accepted candidate slices

    int maxConds() const { return dcfg_.maxDivergentConditions; }

    bool exitsDecoupleable() const;
    void refineResidency();
    void findCandidates();
    /** Backward slice of the registers/predicates used by (pc, seeds).
     * Returns nullopt when the slice leaves resident blocks or crosses
     * a non-affine definition. */
    std::optional<std::vector<int>> backwardSlice(
        int pc, const std::vector<Operand> &seeds) const;
    std::vector<Operand> seedsOf(int pc, CandKind kind) const;

    Kernel buildAffineStream(const std::vector<bool> &deq_pred_live,
                             std::vector<int> &orig_out) const;
    Kernel buildNonAffineStream(std::vector<bool> &present_out,
                                std::vector<bool> &deq_pred_live_out,
                                std::vector<int> &orig_out) const;

    static Kernel emitProjection(const Kernel &base,
                                 const std::vector<std::pair<int,
                                     Instruction>> &emitted,
                                 const std::string &suffix,
                                 std::vector<int> &orig_out);
};

bool
Decoupling::exitsDecoupleable() const
{
    for (int pc = 0; pc < kernel_.numInsts(); ++pc) {
        const Instruction &inst = kernel_.insts[pc];
        if (!inst.isExit())
            continue;
        if (!aa_.blockAffineResident(cfg_.blockOf(pc)))
            return false;
        if (inst.guardPred >= 0 && !aa_.guardType(pc).affineOk(maxConds()))
            return false;
    }
    return true;
}

std::vector<Operand>
Decoupling::seedsOf(int pc, CandKind kind) const
{
    const Instruction &inst = kernel_.insts[pc];
    std::vector<Operand> seeds;
    switch (kind) {
      case CandKind::Load:
      case CandKind::Store:
        seeds.push_back(inst.src[0]); // the address
        break;
      case CandKind::Pred:
        seeds.push_back(inst.src[0]);
        seeds.push_back(inst.src[1]);
        break;
      case CandKind::No:
        break;
    }
    if (inst.guardPred >= 0)
        seeds.push_back(Operand::pred(inst.guardPred));
    return seeds;
}

std::optional<std::vector<int>>
Decoupling::backwardSlice(int pc, const std::vector<Operand> &seeds) const
{
    std::set<int> in_slice;
    // Worklist of (use pc, operand).
    std::vector<std::pair<int, Operand>> work;
    for (const Operand &s : seeds)
        work.emplace_back(pc, s);

    while (!work.empty()) {
        auto [use_pc, op] = work.back();
        work.pop_back();
        std::vector<int> defs;
        if (op.isReg())
            defs = rd_.reachingRegDefs(use_pc, op.index);
        else if (op.isPred())
            defs = rd_.reachingPredDefs(use_pc, op.index);
        else
            continue;
        for (int d : defs) {
            if (rd_.isEntryDef(d))
                continue;
            if (in_slice.count(d))
                continue;
            const Instruction &di = kernel_.insts[d];
            // The slice must be computable by the affine warp.
            if (di.isLoad() || di.op == Opcode::DeqPred)
                return std::nullopt;
            if (aa_.defType(d).isNonAffine())
                return std::nullopt;
            if (!resident_[static_cast<std::size_t>(cfg_.blockOf(d))])
                return std::nullopt;
            if (!affineEligibleAlu(di.op) && di.op != Opcode::Setp &&
                !(di.op == Opcode::And || di.op == Opcode::Or ||
                  di.op == Opcode::Xor || di.op == Opcode::Not ||
                  di.op == Opcode::Shr)) {
                return std::nullopt;
            }
            in_slice.insert(d);
            for (int i = 0; i < numSources(di.op); ++i)
                work.emplace_back(d, di.src[i]);
            if (di.guardPred >= 0)
                work.emplace_back(d, Operand::pred(di.guardPred));
        }
    }
    return std::vector<int>(in_slice.begin(), in_slice.end());
}

void
Decoupling::refineResidency()
{
    const int nb = cfg_.numBlocks();
    resident_.assign(nb, true);
    for (int b = 0; b < nb; ++b)
        resident_[b] = aa_.blockAffineResident(b);
    keepBranch_.assign(kernel_.numInsts(), false);

    bool changed = true;
    while (changed) {
        changed = false;
        // A branch can live in the affine stream when its own block is
        // resident, its predicate is affine-trackable, and the
        // predicate's slice stays inside resident blocks.
        for (int pc = 0; pc < kernel_.numInsts(); ++pc) {
            const Instruction &inst = kernel_.insts[pc];
            if (!inst.isBranch())
                continue;
            bool keep = resident_[cfg_.blockOf(pc)];
            if (keep && inst.guardPred >= 0) {
                if (!aa_.guardType(pc).affineOk(maxConds()))
                    keep = false;
                else
                    keep = backwardSlice(
                               pc, {Operand::pred(inst.guardPred)})
                               .has_value();
            }
            keepBranch_[pc] = keep;
        }
        // Residency: every controlling branch must be keepable.
        for (int b = 0; b < nb; ++b) {
            if (!resident_[b])
                continue;
            for (int br : cfg_.controlDeps(b)) {
                int term = cfg_.blocks()[br].last;
                if (!keepBranch_[term]) {
                    resident_[b] = false;
                    changed = true;
                    break;
                }
            }
        }
    }
}

void
Decoupling::findCandidates()
{
    const int n = kernel_.numInsts();
    cand_.assign(n, CandKind::No);
    slice_.assign(n, false);

    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = kernel_.insts[pc];
        if (!resident_[cfg_.blockOf(pc)])
            continue;
        if (inst.guardPred >= 0 && !aa_.guardType(pc).affineOk(maxConds()))
            continue;

        CandKind kind = CandKind::No;
        if (inst.op == Opcode::Ld && inst.space == MemSpace::Global &&
            aa_.srcType(pc, inst.src[0]).affineOk(maxConds())) {
            kind = CandKind::Load;
        } else if (inst.op == Opcode::St &&
                   inst.space == MemSpace::Global &&
                   aa_.srcType(pc, inst.src[0]).affineOk(maxConds())) {
            kind = CandKind::Store;
        } else if (inst.op == Opcode::Setp &&
                   aa_.defType(pc).affineOk(maxConds())) {
            kind = CandKind::Pred;
        }
        if (kind == CandKind::No)
            continue;

        auto slice = backwardSlice(pc, seedsOf(pc, kind));
        if (!slice)
            continue;
        cand_[pc] = kind;
        for (int d : *slice)
            slice_[d] = true;
    }

    // Branch predicate slices are also part of the affine stream.
    for (int pc = 0; pc < n; ++pc) {
        if (!keepBranch_[pc] || kernel_.insts[pc].guardPred < 0)
            continue;
        auto slice =
            backwardSlice(pc, {Operand::pred(kernel_.insts[pc].guardPred)});
        ensure(slice.has_value(), "keepable branch with infeasible slice");
        for (int d : *slice)
            slice_[d] = true;
    }
}

Kernel
Decoupling::emitProjection(
    const Kernel &base,
    const std::vector<std::pair<int, Instruction>> &emitted,
    const std::string &suffix,
    std::vector<int> &orig_out)
{
    Kernel out;
    out.name = base.name + suffix;
    out.numRegs = base.numRegs;
    out.numPreds = base.numPreds;
    out.params = base.params;
    out.sharedBytes = base.sharedBytes;

    std::vector<int> &orig = orig_out;
    orig.clear();
    orig.reserve(emitted.size());
    for (const auto &[opc, inst] : emitted) {
        orig.push_back(opc);
        out.insts.push_back(inst);
    }
    // Remap branch targets: old target T maps to the first emitted
    // instruction whose original PC is >= T.
    auto mapTarget = [&](int t) {
        auto it = std::lower_bound(orig.begin(), orig.end(), t);
        if (it == orig.end())
            return static_cast<int>(orig.size()) - 1;
        return static_cast<int>(it - orig.begin());
    };
    for (Instruction &inst : out.insts) {
        if (inst.isBranch())
            inst.target = mapTarget(inst.target);
        inst.reconvergePc = -1; // recomputed below
    }
    analyzeControlFlow(out);
    return out;
}

Kernel
Decoupling::buildNonAffineStream(std::vector<bool> &present_out,
                                 std::vector<bool> &deq_pred_live_out,
                                 std::vector<int> &orig_out) const
{
    const int n = kernel_.numInsts();
    // Replace decoupled instructions in place (same PC positions) so
    // the original reaching-definition structure still applies.
    std::vector<Instruction> replaced(kernel_.insts);
    for (int pc = 0; pc < n; ++pc) {
        Instruction &inst = replaced[pc];
        switch (cand_[pc]) {
          case CandKind::Load:
            inst.op = Opcode::LdDeq;
            inst.src = {};
            inst.addrOffset = 0;
            break;
          case CandKind::Store:
            inst.op = Opcode::StDeq;
            inst.src = {inst.src[1], Operand{}, Operand{}};
            inst.addrOffset = 0;
            break;
          case CandKind::Pred:
            inst.op = Opcode::DeqPred;
            inst.src = {};
            break;
          case CandKind::No:
            break;
        }
        if (inst.isBarrier())
            inst.epochCounted =
                resident_[cfg_.blockOf(pc)];
    }

    // Dead-code elimination: roots are instructions with side effects
    // or control relevance; mark their operands' reaching definitions
    // transitively. Instructions moved to the affine stream survive
    // here only if still needed.
    std::vector<bool> needed(n, false);
    std::vector<int> work;
    auto markNeeded = [&](int pc) {
        if (!needed[pc]) {
            needed[pc] = true;
            work.push_back(pc);
        }
    };
    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = replaced[pc];
        bool root = inst.isMemory() || inst.isBranch() ||
                    inst.isBarrier() || inst.isExit();
        if (root)
            markNeeded(pc);
    }
    while (!work.empty()) {
        int pc = work.back();
        work.pop_back();
        const Instruction &inst = replaced[pc];
        auto markUse = [&](const Operand &op) {
            std::vector<int> defs;
            if (op.isReg())
                defs = rd_.reachingRegDefs(pc, op.index);
            else if (op.isPred())
                defs = rd_.reachingPredDefs(pc, op.index);
            for (int d : defs)
                if (!rd_.isEntryDef(d))
                    markNeeded(d);
        };
        for (int i = 0; i < numSources(inst.op); ++i)
            markUse(inst.src[i]);
        if (inst.guardPred >= 0)
            markUse(Operand::pred(inst.guardPred));
    }

    deq_pred_live_out.assign(n, false);
    present_out.assign(n, false);
    std::vector<std::pair<int, Instruction>> emitted;
    for (int pc = 0; pc < n; ++pc) {
        if (!needed[pc])
            continue;
        present_out[pc] = true;
        if (replaced[pc].op == Opcode::DeqPred)
            deq_pred_live_out[pc] = true;
        emitted.emplace_back(pc, replaced[pc]);
    }
    return emitProjection(kernel_, emitted, ".na", orig_out);
}

Kernel
Decoupling::buildAffineStream(const std::vector<bool> &deq_pred_live,
                              std::vector<int> &orig_out) const
{
    std::vector<std::pair<int, Instruction>> emitted;
    for (int pc = 0; pc < kernel_.numInsts(); ++pc) {
        const Instruction &inst = kernel_.insts[pc];
        bool res = resident_[cfg_.blockOf(pc)];
        if (inst.isBranch()) {
            if (keepBranch_[pc])
                emitted.emplace_back(pc, inst);
            continue;
        }
        if (inst.isBarrier()) {
            if (res) {
                Instruction bar = inst;
                bar.epochCounted = true;
                emitted.emplace_back(pc, bar);
            }
            continue;
        }
        if (inst.isExit()) {
            emitted.emplace_back(pc, inst);
            continue;
        }
        switch (cand_[pc]) {
          case CandKind::Load:
          case CandKind::Store: {
            Instruction enq = inst;
            enq.op = cand_[pc] == CandKind::Load ? Opcode::EnqData
                                                 : Opcode::EnqAddr;
            enq.dst = Operand{};
            if (cand_[pc] == CandKind::Store)
                enq.src[1] = Operand{};
            emitted.emplace_back(pc, enq);
            break;
          }
          case CandKind::Pred: {
            emitted.emplace_back(pc, inst); // the setp itself
            if (deq_pred_live[pc]) {
                Instruction enq;
                enq.op = Opcode::EnqPred;
                enq.src[0] = inst.dst;
                enq.guardPred = inst.guardPred;
                enq.guardNeg = inst.guardNeg;
                emitted.emplace_back(pc, enq);
            }
            break;
          }
          case CandKind::No:
            if (slice_[pc])
                emitted.emplace_back(pc, inst);
            break;
        }
    }
    return emitProjection(kernel_, emitted, ".aff", orig_out);
}

DecoupledKernel
Decoupling::run()
{
    const int n = kernel_.numInsts();
    DecoupledKernel out;
    out.decoupled.assign(n, false);
    out.inAffineStream.assign(n, false);
    out.coveredByDac.assign(n, false);

    bool feasible = exitsDecoupleable();
    if (feasible) {
        refineResidency();
        findCandidates();
        feasible = std::any_of(cand_.begin(), cand_.end(),
                               [](CandKind k) { return k != CandKind::No; });
    }
    if (!feasible) {
        // Nothing decoupled: DAC degenerates to the baseline.
        out.nonAffine = kernel_;
        out.nonAffineOrigPc.resize(static_cast<std::size_t>(n));
        for (int pc = 0; pc < n; ++pc)
            out.nonAffineOrigPc[static_cast<std::size_t>(pc)] = pc;
        out.affineOrigPc = {-1}; // the synthesized trivial exit
        Kernel trivial;
        trivial.name = kernel_.name + ".aff";
        trivial.numRegs = kernel_.numRegs;
        trivial.numPreds = kernel_.numPreds;
        trivial.params = kernel_.params;
        Instruction ex;
        ex.op = Opcode::Exit;
        trivial.insts.push_back(ex);
        analyzeControlFlow(trivial);
        out.affine = std::move(trivial);
        out.anyDecoupled = false;
        return out;
    }

    std::vector<bool> present, deqPredLive;
    out.nonAffine =
        buildNonAffineStream(present, deqPredLive, out.nonAffineOrigPc);
    out.affine = buildAffineStream(deqPredLive, out.affineOrigPc);
    out.anyDecoupled = true;

    if (dcfg_.bugPerturbAffineImm) {
        // Deliberate decoupler bug (fuzz-oracle test knob): corrupt
        // the first immediate the affine stream consumes.
        for (Instruction &inst : out.affine.insts) {
            bool done = false;
            for (Operand &s : inst.src)
                if (s.isImm()) {
                    s.imm += 1;
                    done = true;
                    break;
                }
            if (done)
                break;
        }
    }

    for (int pc = 0; pc < n; ++pc) {
        bool dec = cand_[pc] != CandKind::No;
        out.decoupled[pc] = dec;
        out.inAffineStream[pc] = dec || slice_[pc] || keepBranch_[pc];
        out.coveredByDac[pc] = dec || (slice_[pc] && !present[pc]);
        switch (cand_[pc]) {
          case CandKind::Load: ++out.numDecoupledLoads; break;
          case CandKind::Store: ++out.numDecoupledStores; break;
          case CandKind::Pred: ++out.numDecoupledPreds; break;
          case CandKind::No: break;
        }
    }
    return out;
}

} // namespace

DecoupledKernel
decouple(const Kernel &original, const DacConfig &cfg)
{
    Decoupling d(original, cfg);
    return d.run();
}

PotentialAffine
classifyPotentialAffine(const Kernel &original)
{
    Kernel kernel = original;
    Cfg cfg = analyzeControlFlow(kernel);
    ReachingDefs rd(kernel, cfg);
    AffineAnalysis aa(kernel, cfg, rd, /*max_conds=*/2);

    PotentialAffine result;
    for (int pc = 0; pc < kernel.numInsts(); ++pc) {
        const Instruction &inst = kernel.insts[pc];
        ++result.totalInsts;
        if (inst.isBarrier() || inst.isExit())
            continue;
        if (inst.isBranch()) {
            if (inst.guardPred < 0 || aa.guardType(pc).affineOk(2))
                ++result.branch;
            continue;
        }
        if (inst.op == Opcode::Setp) {
            if (!aa.defType(pc).isNonAffine())
                ++result.branch;
            continue;
        }
        if (inst.isMemory()) {
            if (!aa.srcType(pc, inst.src[0]).isNonAffine())
                ++result.memory;
            continue;
        }
        // Plain ALU instruction.
        if (!aa.defType(pc).isNonAffine())
            ++result.arithmetic;
    }
    return result;
}

} // namespace dacsim
