/**
 * @file
 * Affine type analysis (paper Section 4.7, "Identifying Affine
 * Operands" + "Divergent Affine Analysis").
 *
 * Every value is classified on the lattice
 *
 *     Scalar  <  Affine  <  NonAffine
 *
 * (most specific to most general). Scalar values are uniform across
 * all threads of a block (kernel parameters, blockDim, immediates);
 * affine values are linear in the thread/block indices (optionally
 * with one trailing mod-by-scalar term, Section 4.4); everything else
 * (loaded data and anything derived from it) is non-affine.
 *
 * In addition to the kind, the analysis tracks the number of
 * *divergent affine conditions* affecting a value: each merge of
 * distinct definitions under thread-divergent (affine-predicate)
 * control flow, and each min/max/abs/sel, contributes one condition
 * (one SIMT-stack-entry selector; Section 4.6). Values needing more
 * than DacConfig::maxDivergentConditions conditions — including all
 * loop-carried divergent tuples — degrade to NonAffine and are not
 * decoupled.
 */

#ifndef DACSIM_COMPILER_AFFINE_TYPES_H
#define DACSIM_COMPILER_AFFINE_TYPES_H

#include <vector>

#include "compiler/cfg.h"
#include "compiler/reaching_defs.h"
#include "isa/instruction.h"

namespace dacsim
{

enum class ValKind : std::uint8_t
{
    Scalar = 0,
    Affine = 1,
    NonAffine = 2,
};

/** Abstract type of one value. */
struct TypeInfo
{
    ValKind kind = ValKind::Scalar;
    /** Divergent affine conditions needed to select this value's tuple. */
    int conds = 0;
    /** Value carries a mod-by-scalar term (mod-type tuple, Section 4.4). */
    bool hasMod = false;

    static TypeInfo
    nonAffine()
    {
        return {ValKind::NonAffine, 0, false};
    }

    bool isScalar() const { return kind == ValKind::Scalar; }
    bool isNonAffine() const { return kind == ValKind::NonAffine; }
    /** Usable by the affine datapath under the condition budget? */
    bool
    affineOk(int max_conds) const
    {
        return kind != ValKind::NonAffine && conds <= max_conds;
    }

    bool operator==(const TypeInfo &) const = default;
};

/** Least upper bound of two types (no condition penalty). */
TypeInfo joinTypes(const TypeInfo &a, const TypeInfo &b);

/**
 * Result type of an ALU/setp opcode given source types. Encodes the
 * affine-datapath capability rules of Sections 3, 4.4 and 4.6; the
 * runtime affine warp supports exactly the operations this function
 * does not map to NonAffine.
 */
TypeInfo aluResultType(Opcode op, const std::vector<TypeInfo> &srcs,
                       int max_conds);

/**
 * Whole-kernel affine analysis: an optimistic fixpoint over the CFG
 * using reaching definitions.
 */
class AffineAnalysis
{
  public:
    AffineAnalysis(const Kernel &kernel, const Cfg &cfg,
                   const ReachingDefs &rd, int max_conds);

    /** Type of the value defined by definition site @p def. */
    const TypeInfo &defType(int def) const { return defTypes_.at(def); }

    /** Type of source operand @p op as seen by the instruction at
     * @p pc (reaching definitions merged, divergence penalty applied). */
    TypeInfo srcType(int pc, const Operand &op) const;

    /** Type of the instruction's guard predicate (Scalar if unguarded). */
    TypeInfo guardType(int pc) const;

    /** Join of the predicate kinds of all branches block @p b is
     * control-dependent on (Scalar: uniform control). */
    ValKind blockDivergence(int b) const { return blockDiv_.at(b); }

    /**
     * True when the affine warp can traverse block @p b: every branch
     * controlling it has a Scalar or Affine predicate within the
     * condition budget (paper Section 4.5).
     */
    bool blockAffineResident(int b) const { return resident_.at(b); }

    int maxConds() const { return maxConds_; }

  private:
    const Kernel &kernel_;
    const Cfg &cfg_;
    const ReachingDefs &rd_;
    int maxConds_;
    std::vector<TypeInfo> defTypes_;
    std::vector<ValKind> blockDiv_;
    std::vector<bool> resident_;

    void runFixpoint();
    void computeBlockDivergence();
    TypeInfo mergeDefs(const std::vector<int> &defs) const;
};

} // namespace dacsim

#endif // DACSIM_COMPILER_AFFINE_TYPES_H
