#!/bin/sh
# Tier-1 gate: build and run the full test suite twice — a plain
# RelWithDebInfo build, then an ASan+UBSan build. Fails on the first
# error of either pass.
set -eu

cd "$(dirname "$0")/.."

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== asan+ubsan build =="
cmake -B build-san -S . -DDACSIM_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j
(cd build-san && ctest --output-on-failure -j)

echo "All checks passed."
