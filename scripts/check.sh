#!/bin/sh
# Tier-1 gate: build and run the full test suite twice — a plain
# RelWithDebInfo build, then an ASan+UBSan build. Fails on the first
# error of either pass.
set -eu

cd "$(dirname "$0")/.."

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== asan+ubsan build =="
cmake -B build-san -S . -DDACSIM_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j
(cd build-san && ctest --output-on-failure -j)

echo "== release throughput smoke =="
# Host sim-speed tracking (DESIGN.md §8): the quick benchmark must run
# and emit a well-formed BENCH_host_throughput.json.
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j --target host_throughput
(cd build-rel && bench/host_throughput --quick)
test -s build-rel/BENCH_host_throughput.json
grep -q '"kcycles_per_sec"' build-rel/BENCH_host_throughput.json
grep -q '"winsts_per_sec"' build-rel/BENCH_host_throughput.json

echo "All checks passed."
