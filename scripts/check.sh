#!/bin/sh
# Tier-1 gate: build and run the full test suite twice — a plain
# RelWithDebInfo build, then an ASan+UBSan build. Fails on the first
# error of either pass.
set -eu

cd "$(dirname "$0")/.."

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== debug checkpoint round-trip smoke =="
# Snapshot at mid-run, kill, restore, and require bit-identical final
# stats and hash chain (DESIGN.md §9) — one memory-bound and one
# compute-bound workload, with and without DAC.
cmake -B build-dbg -S . -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-dbg -j --target dacsim_bisect
(cd build-dbg && rm -rf bisect-ck \
    && bench/dacsim-bisect --roundtrip SP dac \
    && bench/dacsim-bisect --roundtrip BS baseline)

echo "== static analysis (debug build) =="
# dacsim-lint over all registered kernels (DESIGN.md §10): exits
# non-zero on any unsuppressed error-severity finding, and the JSON
# reports for the golden-fixture kernels must match byte-for-byte
# (refresh with DACSIM_UPDATE_GOLDEN=1 via the GoldenLint tests).
cmake --build build-dbg -j --target dacsim_lint
(
    cd build-dbg
    bench/dacsim-lint --quiet --json lint-report.json
    for k in PF HI; do
        bench/dacsim-lint --quiet --json-one "lint-$k.json" "$k" >/dev/null
        cmp "lint-$k.json" "../tests/golden/lint_$k.json"
    done
)

echo "== static prediction golden (debug build) =="
# dacsim-predict report fixtures (DESIGN.md §15): the text and JSON
# renderings for the golden kernels must match byte-for-byte (refresh
# with DACSIM_UPDATE_GOLDEN=1 via the GoldenPredict tests).
cmake --build build-dbg -j --target dacsim_predict
(
    cd build-dbg
    for k in SP PF; do
        bench/dacsim-predict --text-one "predict-$k.txt" "$k" >/dev/null
        cmp "predict-$k.txt" "../tests/golden/predict_$k.txt"
        bench/dacsim-predict --json-one "predict-$k.json" "$k" >/dev/null
        cmp "predict-$k.json" "../tests/golden/predict_$k.json"
    done
)

echo "== observability golden (debug build) =="
# Stall attribution + counter timeline through the real fig16 driver
# (DESIGN.md §11): the timeline JSON must match the golden fixture
# byte-for-byte (refresh via DACSIM_UPDATE_GOLDEN=1, ObsGolden tests)
# and the Chrome trace must be emitted alongside it.
cmake --build build-dbg -j --target fig16_speedup
(
    cd build-dbg
    rm -f obs-SP-*.timeline.json trace-SP-*.trace.json
    bench/fig16_speedup --only SP --timeline obs --chrome-trace trace \
        >/dev/null
    cmp obs-SP-DAC.timeline.json ../tests/golden/obs_timeline_SP_DAC.json
    grep -q '"traceEvents"' trace-SP-DAC.trace.json
)

echo "== event-core parity (debug build) =="
# The event core is a pure host-side optimization (DESIGN.md §13):
# the quick fig16 sweep re-run with the simulation core pinned to the
# stepped reference loop must produce a byte-identical JSON report —
# every stat, checksum, and speedup ratio in it.
(
    cd build-dbg
    rm -f fig16-stepped.json fig16-event.json
    DACSIM_SIM_CORE=stepped bench/fig16_speedup --quick \
        --json fig16-stepped.json >/dev/null
    DACSIM_SIM_CORE=event bench/fig16_speedup --quick \
        --json fig16-event.json >/dev/null
    cmp fig16-stepped.json fig16-event.json
)

echo "== fuzz campaign smoke (debug build) =="
# Quick differential-fuzzing campaign (DESIGN.md §12): 100 seeds
# through the crash-isolated runner must all match; the committed
# regression corpus must replay clean; and a campaign killed mid-run
# (--abort-after, mirroring the sweep smoke) must resume from its
# journal and reproduce the report byte-identically.
cmake --build build-dbg -j --target dacsim_fuzz
(
    cd build-dbg
    rm -rf fuzz-ck fuzz-ck2 && mkdir fuzz-ck fuzz-ck2
    bench/dacsim-fuzz --seeds 100 --dir fuzz-ck --json fuzz-report.json
    bench/dacsim-fuzz --replay ../tests/corpus/*.dacasm
    tries=0
    until bench/dacsim-fuzz --seeds 100 --dir fuzz-ck2 --abort-after 25 \
        --json fuzz-report2.json >/dev/null; do
        tries=$((tries + 1))
        test "$tries" -le 20 || { echo "campaign never completed"; exit 1; }
    done
    echo "campaign finished after $tries kills"
    cmp fuzz-report.json fuzz-report2.json
)

echo "== simulation service chaos smoke (debug build) =="
# A 200-job stress sweep through the dacsimd daemon with ~20% injected
# fork-child crashes and watchdog timeouts (DESIGN.md §14): every job
# must come back byte-identical to a direct in-process run, with the
# daemon retrying host-side flakes and the client resubmitting jobs
# whose retry budget ran out. SIGTERM must produce a clean shutdown.
cmake --build build-dbg -j --target dacsimd
(
    cd build-dbg
    rm -rf svc
    bench/dacsimd --socket svc/sock --dir svc \
        --chaos crash=0.15,timeout=0.05,seed=7 --retries 3 \
        >daemon-chaos.log &
    daemon=$!
    bench/dacsimd --socket svc/sock --stress 200 --scale 0.05
    kill -TERM "$daemon"
    wait "$daemon"
    grep 'dacsimd: jobs=' daemon-chaos.log
    grep -q ' crashes=0 ' daemon-chaos.log \
        && { echo "chaos injected no crashes"; exit 1; }
    exit 0
)

echo "== asan+ubsan build =="
cmake -B build-san -S . -DDACSIM_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j
(cd build-san && ctest --output-on-failure -j)

echo "== static analysis (sanitized build) =="
# Re-run the linter itself under ASan+UBSan: the analyses walk every
# kernel, so this doubles as a memory-safety pass over src/analysis/.
cmake --build build-san -j --target dacsim_lint
(cd build-san && bench/dacsim-lint --quiet >/dev/null)

echo "== static prediction golden (sanitized build) =="
# The predictor walks every loop, address expression, and decoupled
# stream of the golden kernels: re-check the fixtures under ASan+UBSan.
cmake --build build-san -j --target dacsim_predict
(
    cd build-san
    for k in SP PF; do
        bench/dacsim-predict --text-one "predict-$k.txt" "$k" >/dev/null
        cmp "predict-$k.txt" "../tests/golden/predict_$k.txt"
        bench/dacsim-predict --json-one "predict-$k.json" "$k" >/dev/null
        cmp "predict-$k.json" "../tests/golden/predict_$k.json"
    done
)

echo "== simulation service streaming smoke (sanitized build) =="
# The daemon's codec, fork isolation, cache, streaming pipe, and
# socket loop under ASan+UBSan, with chaos injection exercising the
# crash/timeout classification paths. --progress makes every stress
# job stream its boundary timeline; the client requires each stream to
# end at the run's exact final cycle even across chaos-forced
# restarts. (The service unit tests already ran under the sanitized
# ctest pass above; this drives the real daemon binary.)
cmake --build build-san -j --target dacsimd
(
    cd build-san
    rm -rf svc
    bench/dacsimd --socket svc/sock --dir svc \
        --chaos crash=0.2,timeout=0.1,seed=11 --retries 3 \
        >daemon-chaos.log &
    daemon=$!
    bench/dacsimd --socket svc/sock --stress 40 --scale 0.05 --progress
    kill -TERM "$daemon"
    wait "$daemon"
    grep 'dacsimd: jobs=' daemon-chaos.log
    grep -q ' progress_frames=0 ' daemon-chaos.log \
        && { echo "stress streamed no progress frames"; exit 1; }
    exit 0
)

echo "== fuzz campaign smoke (sanitized build) =="
# The generator/oracle/shrink stack under ASan+UBSan, plus the corpus.
cmake --build build-san -j --target dacsim_fuzz
(
    cd build-san
    rm -rf fuzz-ck && mkdir fuzz-ck
    bench/dacsim-fuzz --seeds 100 --dir fuzz-ck >/dev/null
    bench/dacsim-fuzz --replay ../tests/corpus/*.dacasm >/dev/null
)

echo "== sanitized checkpoint round-trip smoke =="
(cd build-san && rm -rf bisect-ck \
    && bench/dacsim-bisect --roundtrip SP dac \
    && bench/dacsim-bisect --roundtrip BS baseline)

echo "== observability golden (sanitized build) =="
cmake --build build-san -j --target fig16_speedup
(
    cd build-san
    rm -f obs-SP-*.timeline.json trace-SP-*.trace.json
    bench/fig16_speedup --only SP --timeline obs --chrome-trace trace \
        >/dev/null
    cmp obs-SP-DAC.timeline.json ../tests/golden/obs_timeline_SP_DAC.json
    grep -q '"traceEvents"' trace-SP-DAC.trace.json
)

echo "== event-core parity (sanitized build) =="
# Same byte-compare under ASan+UBSan: the clock-jump loop and wake
# caches must also be memory-clean while skipping.
(
    cd build-san
    rm -f fig16-stepped.json fig16-event.json
    DACSIM_SIM_CORE=stepped bench/fig16_speedup --quick \
        --json fig16-stepped.json >/dev/null
    DACSIM_SIM_CORE=event bench/fig16_speedup --quick \
        --json fig16-event.json >/dev/null
    cmp fig16-stepped.json fig16-event.json
)

echo "== release throughput smoke =="
# Host sim-speed tracking (DESIGN.md §8): the quick benchmark must run
# and emit a well-formed BENCH_host_throughput.json.
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j --target host_throughput
(cd build-rel && bench/host_throughput --quick)
test -s build-rel/BENCH_host_throughput.json
grep -q '"kcycles_per_sec"' build-rel/BENCH_host_throughput.json
grep -q '"winsts_per_sec"' build-rel/BENCH_host_throughput.json
grep -q '"event_speedup"' build-rel/BENCH_host_throughput.json
grep -q '"stats_identical": true' build-rel/BENCH_host_throughput.json

echo "== static prediction validation sweep (release build) =="
# dacsim-predict --all (DESIGN.md §15): every kernel predicted AND
# simulated under baseline and DAC. The guaranteed bound must dominate
# the simulated cycles on every point (exit non-zero otherwise), the
# predicted coverage must agree with the decoupler's split, and the
# estimate's accuracy (MAPE, Spearman) must be recorded in the JSON.
cmake --build build-rel -j --target dacsim_predict
(cd build-rel && bench/dacsim-predict --all --quick --quiet)
grep -q '"bound_violations": 0' build-rel/BENCH_predict.json
grep -q '"coverage_violations": 0' build-rel/BENCH_predict.json
grep -q '"sound": true' build-rel/BENCH_predict.json
grep -q '"mape"' build-rel/BENCH_predict.json
grep -q '"spearman"' build-rel/BENCH_predict.json

echo "== resumable sweep smoke =="
# A sweep killed mid-run (DACSIM_SWEEP_ABORT_AFTER simulates kill -9
# after n fresh points) must restart from its journal and reproduce
# BENCH_fig16.json byte-identically (DESIGN.md §9).
cmake --build build-rel -j --target fig16_speedup
(
    cd build-rel
    rm -rf sweep-ck BENCH_fig16.json && mkdir sweep-ck
    DACSIM_CHECKPOINT_DIR=sweep-ck bench/fig16_speedup --quick >/dev/null
    cp BENCH_fig16.json BENCH_fig16.ref.json
    rm -rf sweep-ck BENCH_fig16.json && mkdir sweep-ck
    tries=0
    until DACSIM_CHECKPOINT_DIR=sweep-ck DACSIM_SWEEP_ABORT_AFTER=3 \
        bench/fig16_speedup --quick >/dev/null; do
        tries=$((tries + 1))
        test "$tries" -le 20 || { echo "sweep never completed"; exit 1; }
    done
    echo "sweep finished after $tries kills"
    cmp BENCH_fig16.ref.json BENCH_fig16.json
)

echo "== service sweep smoke (release build) =="
# The fig16 sweep as service traffic (DESIGN.md §14): run --quick
# through dacsimd with ~20% injected crashes/timeouts while the daemon
# itself is repeatedly killed (--abort-after is the in-process kill -9
# stand-in: _Exit after a cache store, before the response) and
# restarted — the report must byte-match a fault-free direct run.
# Then: a rerun against the warm cache must re-simulate nothing, and a
# deliberately corrupted cache entry must be quarantined and
# recomputed, again byte-identically.
cmake --build build-rel -j --target dacsimd fig16_speedup
(
    cd build-rel
    rm -rf svc BENCH_fig16.json
    bench/fig16_speedup --quick >/dev/null
    mv BENCH_fig16.json BENCH_fig16.direct.json

    # Pass 1: chaos + daemon restart loop. Each daemon exits 3 after 4
    # completed simulations; the loop restarts it until the sweep lets
    # it idle out (exit 0). Clients resubmit across the kills.
    rm -f daemon-kills.log
    (
        until bench/dacsimd --socket svc/sock --dir svc \
            --chaos crash=0.15,timeout=0.05,seed=3 --retries 3 \
            --abort-after 4 --idle-exit-ms 4000 >>daemon-kills.log; do
            :
        done
    ) &
    loop=$!
    DACSIM_SERVICE_SOCKET=svc/sock bench/fig16_speedup --quick >/dev/null
    cmp BENCH_fig16.direct.json BENCH_fig16.json
    wait "$loop"

    # Pass 2: warm cache — every job must be served without running a
    # single simulation.
    rm -f BENCH_fig16.json
    bench/dacsimd --socket svc/sock --dir svc --idle-exit-ms 2000 \
        >daemon-hits.log &
    daemon=$!
    DACSIM_SERVICE_SOCKET=svc/sock bench/fig16_speedup --quick >/dev/null
    cmp BENCH_fig16.direct.json BENCH_fig16.json
    wait "$daemon"
    grep -q ' sims=0 ' daemon-hits.log

    # Pass 3: corrupt one cache entry — the daemon must quarantine it,
    # recompute, and still byte-match.
    entry=$(ls svc/cache/*.result | head -n 1)
    printf 'X' | dd of="$entry" bs=1 seek=8 conv=notrunc 2>/dev/null
    rm -f BENCH_fig16.json
    bench/dacsimd --socket svc/sock --dir svc --idle-exit-ms 2000 \
        >daemon-quarantine.log &
    daemon=$!
    DACSIM_SERVICE_SOCKET=svc/sock bench/fig16_speedup --quick >/dev/null
    cmp BENCH_fig16.direct.json BENCH_fig16.json
    wait "$daemon"
    grep -q ' quarantined=1' daemon-quarantine.log
    test -n "$(ls svc/cache/*.quarantined 2>/dev/null)"
)

echo "== sharded service sweep smoke (release build) =="
# The fig16 sweep across three rendezvous-sharded daemons (DESIGN.md
# §16.2): both survivors run ~20% injected chaos and one shard dies
# mid-sweep (--abort-after, never restarted), so the router's
# failover must re-home its keys onto the siblings — and the report
# must still byte-match the fault-free direct run.
(
    cd build-rel
    rm -rf shard1 shard2 shard3 BENCH_fig16.json
    bench/dacsimd --socket shard1/sock --dir shard1 \
        --chaos crash=0.15,timeout=0.05,seed=5 --retries 3 \
        --idle-exit-ms 6000 >daemon-shard1.log &
    d1=$!
    bench/dacsimd --socket shard2/sock --dir shard2 \
        --abort-after 1 --idle-exit-ms 6000 >daemon-shard2.log &
    d2=$!
    bench/dacsimd --socket shard3/sock --dir shard3 \
        --chaos crash=0.15,timeout=0.05,seed=6 --retries 3 \
        --idle-exit-ms 6000 >daemon-shard3.log &
    d3=$!
    DACSIM_SERVICE_SHARDS=shard1/sock,shard2/sock,shard3/sock \
        bench/fig16_speedup --quick >/dev/null
    cmp BENCH_fig16.direct.json BENCH_fig16.json
    wait "$d2" || true # _Exit(3) after its first sim: the dead shard
    wait "$d1"
    wait "$d3"
    grep 'dacsimd: jobs=' daemon-shard1.log daemon-shard3.log
)

echo "== streamed timeline golden (release build) =="
# A timeline request routed through the service travels as streamed
# JobProgress frames and is reassembled client-side (DESIGN.md §16.3):
# the streamed SP/DAC timeline's header and samples array must match
# the golden fixture a direct in-process --timeline run pins, byte for
# byte. (The golden's per-SM/per-warp stall tables are end-of-run
# diagnostics that deliberately do not stream, so the compare stops at
# the samples section both files render identically.)
(
    cd build-rel
    rm -rf svc-obs obs-SP-*.timeline.json
    bench/dacsimd --socket svc-obs/sock --dir svc-obs \
        --idle-exit-ms 4000 >daemon-obs.log &
    daemon=$!
    DACSIM_SERVICE_SOCKET=svc-obs/sock \
        bench/fig16_speedup --only SP --timeline obs >/dev/null
    wait "$daemon"
    sed -n '1,/^  \],$/p' obs-SP-DAC.timeline.json >streamed-samples.txt
    sed -n '1,/^  \],$/p' ../tests/golden/obs_timeline_SP_DAC.json \
        >golden-samples.txt
    cmp streamed-samples.txt golden-samples.txt
    grep -q ' progress_frames=0 ' daemon-obs.log \
        && { echo "timeline run streamed no frames"; exit 1; }
    exit 0
)

echo "All checks passed."
