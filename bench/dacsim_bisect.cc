/**
 * @file
 * dacsim-bisect — divergence localization and checkpoint round-trip
 * smoke (DESIGN.md §9).
 *
 * Two runs of the same workload fold a state hash every 4096-cycle
 * audit boundary, so their hash chains agree exactly up to the first
 * interval in which simulated state diverged and disagree from then on
 * (each link folds the previous one). That monotone structure lets
 * this tool *binary-search* the chains for the first divergent link,
 * then *replay* the reference run from the nearest snapshot at or
 * before that link to confirm the divergence reproduces from saved
 * state — localizing a determinism regression to one 4096-cycle
 * window without stepping either full run again.
 *
 * Modes:
 *   dacsim-bisect --localize <bench> <tech> [--perturb <cycle>]
 *       Reference run vs a run whose hash digest is artificially
 *       perturbed in the interval covering <cycle> (default: mid-run)
 *       via GpuConfig::hashPerturbCycle; reports the first divergent
 *       interval and replay-confirms it. Exits 0 when the located
 *       interval contains the perturbation point.
 *   dacsim-bisect --roundtrip <bench> <tech>
 *       Checkpoint round-trip smoke for scripts/check.sh: kill the run
 *       at its midpoint (haltAtCycle), auto-resume from the snapshot,
 *       and require bit-identical stats, checksums, and hash chain
 *       versus an uninterrupted run.
 *
 * Snapshots land in DACSIM_CHECKPOINT_DIR (default: a bisect-ck
 * subdirectory of the working directory).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_util.h"

using namespace dacsim;

namespace
{

bool
parseTech(const char *name, Technique *out)
{
    auto eqNoCase = [](const char *a, const char *b) {
        for (; *a != '\0' && *b != '\0'; ++a, ++b)
            if (std::tolower(static_cast<unsigned char>(*a)) !=
                std::tolower(static_cast<unsigned char>(*b)))
                return false;
        return *a == *b;
    };
    for (Technique t : {Technique::Baseline, Technique::Cae,
                        Technique::Mta, Technique::Dac}) {
        if (eqNoCase(name, techniqueName(t))) {
            *out = t;
            return true;
        }
    }
    return false;
}

std::string
snapshotDir()
{
    std::string dir = bench::checkpointDir();
    if (dir.empty())
        dir = "bisect-ck";
    std::filesystem::create_directories(dir);
    return dir;
}

RunOptions
baseOptions(Technique tech)
{
    RunOptions opt;
    opt.tech = tech;
    // Small machine at full workload scale (the configuration the
    // CheckpointRoundTrip tests lock): long enough in simulated time
    // that every benchmark crosses several audit boundaries, yet quick
    // on the host even in Debug/sanitized builds.
    opt.gpu.numSms = 2;
    opt.scale = 1.0;
    return opt;
}

/** Index of the first link where the chains disagree (or the shorter
 * length), found by binary search: chain equality is monotone because
 * every link folds its predecessor. */
std::size_t
firstDivergentLink(const std::vector<HashLink> &a,
                   const std::vector<HashLink> &b)
{
    std::size_t lo = 0, hi = std::min(a.size(), b.size());
    // Invariant: links before lo match, links at/after hi diverge (or
    // are past the end).
    while (lo < hi) {
        std::size_t mid = lo + (hi - lo) / 2;
        if (a[mid].cycle == b[mid].cycle && a[mid].hash == b[mid].hash)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

int
localize(const std::string &bench, Technique tech, Cycle perturb)
{
    const std::string dir = snapshotDir();

    bench::printHeader("dacsim-bisect: localize first divergent "
                       "interval (" +
                       bench + ", " + techniqueName(tech) + ")");

    // Reference run, checkpointing every audit boundary so a snapshot
    // exists near any interval the search might need to replay.
    RunOptions ref = baseOptions(tech);
    ref.checkpoint.dir = dir;
    ref.checkpoint.tag = "bisect-ref";
    ref.checkpoint.everyCycles = 4096;
    RunOutcome a = runWorkload(bench, ref);
    require(a.ok(), "reference run failed: ", a.error.what);
    require(a.hashChain.size() >= 2, "run too short to bisect (",
            a.hashChain.size(), " hash links)");

    if (perturb == 0) // default: perturb the middle interval
        perturb = a.hashChain[a.hashChain.size() / 2].cycle;
    std::printf("reference: %zu hash links over %llu cycles; "
                "perturbing the digest at cycle %llu\n",
                a.hashChain.size(),
                static_cast<unsigned long long>(a.stats.cycles),
                static_cast<unsigned long long>(perturb));

    // Suspect run: identical except the digest perturbation — a
    // stand-in for any single-interval determinism regression.
    RunOptions sus = baseOptions(tech);
    sus.gpu.hashPerturbCycle = perturb;
    RunOutcome b = runWorkload(bench, sus);
    require(b.ok(), "suspect run failed: ", b.error.what);

    std::size_t k = firstDivergentLink(a.hashChain, b.hashChain);
    if (k == a.hashChain.size() && k == b.hashChain.size()) {
        std::printf("chains identical (%zu links): no divergence\n", k);
        return 2;
    }
    Cycle lo = k > 0 ? a.hashChain[k - 1].cycle : 0;
    Cycle hi = k < a.hashChain.size() ? a.hashChain[k].cycle
                                      : a.stats.cycles;
    std::printf("first divergent link: %zu of %zu -> interval (%llu, "
                "%llu]\n",
                k, a.hashChain.size(),
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));

    // Replay-confirm from the nearest snapshot at or before the
    // interval. Chain links can sit at launch-end cycles, but
    // snapshots only land on 4096-cycle audit boundaries — so halt a
    // fresh reference run at the last boundary at or before `lo`
    // (which leaves its snapshot there), then restore that snapshot
    // into a perturbed machine and check the divergence reproduces at
    // link k. Any restore point <= lo works: replay regenerates the
    // links in between bit-identically.
    const Cycle haltB = lo & ~static_cast<Cycle>(0xfff);
    bool confirmed = true;
    if (k > 0 && haltB > 0) {
        // A stale replay snapshot from a previous bisect would satisfy
        // resume= before the halt ever fires: clear it.
        std::filesystem::remove(dir + "/bisect-replay.snap");
        RunOptions cut = baseOptions(tech);
        cut.checkpoint.dir = dir;
        cut.checkpoint.tag = "bisect-replay";
        cut.checkpoint.everyCycles = 4096;
        cut.checkpoint.haltAtCycle = haltB;
        cut.checkpoint.resume = true; // defeat the in-process auto-retry
        RunOutcome halted = runWorkload(bench, cut);
        require(halted.error.kind == RunErrorKind::Halted,
                "replay setup: expected a halt, got ",
                runErrorKindName(halted.error.kind));

        RunOptions replay = baseOptions(tech);
        replay.gpu.hashPerturbCycle = perturb;
        replay.checkpoint.dir = dir;
        replay.checkpoint.tag = "bisect-replay";
        replay.checkpoint.resume = true;
        RunOutcome c = runWorkload(bench, replay);
        require(c.ok() && c.resumed, "replay from snapshot failed: ",
                c.error.what);
        confirmed = c.hashChain.size() > k &&
                    c.hashChain[k - 1].hash == a.hashChain[k - 1].hash &&
                    c.hashChain[k].hash != a.hashChain[k].hash &&
                    c.hashChain[k].hash == b.hashChain[k].hash;
        std::printf("replay from snapshot at cycle %llu: divergence "
                    "%s\n",
                    static_cast<unsigned long long>(haltB),
                    confirmed ? "reproduced" : "NOT reproduced");
    }

    bool inWindow = perturb > lo && perturb <= hi;
    std::printf("localized interval %s the perturbation point %llu\n",
                inWindow ? "contains" : "MISSES",
                static_cast<unsigned long long>(perturb));
    return confirmed && inWindow ? 0 : 1;
}

int
roundtrip(const std::string &bench, Technique tech)
{
    const std::string dir = snapshotDir();

    bench::printHeader("dacsim-bisect: checkpoint round-trip smoke (" +
                       bench + ", " + techniqueName(tech) + ")");

    RunOutcome clean = runWorkload(bench, baseOptions(tech));
    require(clean.ok(), "clean run failed: ", clean.error.what);
    require(clean.stats.cycles > 2 * 4096, "run too short (",
            clean.stats.cycles, " cycles) for a mid-run snapshot");

    RunOptions ck = baseOptions(tech);
    ck.checkpoint.dir = dir;
    ck.checkpoint.tag = "roundtrip-" + bench;
    ck.checkpoint.everyCycles = 4096;
    ck.checkpoint.haltAtCycle = clean.stats.cycles / 2;
    RunOutcome res = runWorkload(bench, ck);
    require(res.ok(), "resumed run failed: ", res.error.what);
    require(res.resumed, "run was not killed/resumed (halt at ",
            ck.checkpoint.haltAtCycle, ")");

    bool same = res.stats == clean.stats &&
                res.checksums == clean.checksums &&
                res.hashChain.size() == clean.hashChain.size();
    for (std::size_t i = 0; same && i < res.hashChain.size(); ++i)
        same = res.hashChain[i].cycle == clean.hashChain[i].cycle &&
               res.hashChain[i].hash == clean.hashChain[i].hash;
    std::printf("killed at cycle %llu, resumed from %s: stats/"
                "checksums/hash chain %s (%zu links)\n",
                static_cast<unsigned long long>(ck.checkpoint.haltAtCycle),
                res.checkpointId.c_str(),
                same ? "bit-identical" : "DIVERGED",
                res.hashChain.size());
    return same ? 0 : 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dacsim-bisect --localize <bench> <tech> [--perturb N]\n"
        "       dacsim-bisect --roundtrip <bench> <tech>\n"
        "  <tech>: baseline | cae | mta | dac\n");
    return 64;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::guardedMain("dacsim-bisect", [&]() -> int {
        if (argc < 4)
            return usage();
        const std::string mode = argv[1];
        const std::string bench = argv[2];
        Technique tech;
        if (!parseTech(argv[3], &tech))
            return usage();
        if (mode == "--roundtrip")
            return roundtrip(bench, tech);
        if (mode == "--localize") {
            Cycle perturb = 0;
            for (int i = 4; i + 1 < argc; ++i)
                if (std::strcmp(argv[i], "--perturb") == 0)
                    perturb = std::strtoull(argv[i + 1], nullptr, 0);
            return localize(bench, tech, perturb);
        }
        return usage();
    });
}
